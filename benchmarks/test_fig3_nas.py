"""Figure 3 bench: NAS benchmarks — sim vs model vs measured.

Shape targets: IS (and FT on the comm side) shows the largest
divergences among the NAS codes; EP is essentially exact; both tools
predict below the measured time on average, with the simulator closer.
"""

from repro.experiments import fig3


def test_fig3_panels(study, benchmark):
    result = benchmark(fig3.compute, study)
    print("\n" + fig3.render(result))
    assert set(result) >= {"EP", "IS", "FT", "CG", "MG", "LU", "BT", "SP", "DT"}


def test_is_and_ft_are_the_outliers(study):
    result = fig3.compute(study)
    quiet = ["EP", "BT", "MG", "LU", "SP", "CG", "DT"]
    noisy_max = max(result[a]["max_total_diff"] for a in ("IS", "FT"))
    quiet_max = max(result[a]["max_total_diff"] for a in quiet)
    assert noisy_max > quiet_max


def test_ep_predicted_exactly(study):
    result = fig3.compute(study)
    assert result["EP"]["max_total_diff"] < 0.03


def test_both_tools_below_measured_on_average(study):
    result = fig3.compute(study)
    avg = result["_average"]
    assert 0.0 < avg["mfact_below"] < 0.35  # paper: 14.8%
    assert 0.0 < avg["sst_below"] < 0.30  # paper: 10.9%
    # The simulator is the closer predictor.
    assert avg["sst_below"] <= avg["mfact_below"]
