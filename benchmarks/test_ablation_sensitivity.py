"""Ablation: the zero-replay sensitivity features (PR 10).

``lat_tolerance``, ``bw_sensitivity`` and ``critical_path_frac`` come
from one recorded MFACT replay (``repro.sensitivity``), so they are
essentially free.  The ablation compares the full candidate pool
against the Table III-only pool and verifies the classifier does not
get *worse* for having them — stepwise selection is allowed to ignore
features that do not pay their way.
"""

import pytest

from repro.experiments.ablations import sweep_sensitivity_features
from repro.trace.features import SENSITIVITY_FEATURE_NAMES


@pytest.fixture(scope="module")
def rows(labelled):
    return sweep_sensitivity_features(labelled, runs=25, seed=7)


def test_sweep_runs(benchmark, labelled):
    rows = benchmark.pedantic(
        sweep_sensitivity_features,
        args=(labelled,),
        kwargs={"runs": 25, "seed": 7},
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 2


def test_variants_are_well_formed(rows):
    by_label = {row["variant"]: row for row in rows}
    assert set(by_label) == {"with_sensitivity", "tableIII_only"}
    for row in rows:
        assert 0.0 <= row["success_rate"] <= 1.0
        assert 0.0 <= row["trimmed_mr"] <= 1.0
    delta = (
        by_label["with_sensitivity"]["n_features"]
        - by_label["tableIII_only"]["n_features"]
    )
    assert delta == len(SENSITIVITY_FEATURE_NAMES)


def test_sensitivity_features_do_not_hurt(rows):
    by_label = {row["variant"]: row for row in rows}
    with_s = by_label["with_sensitivity"]["trimmed_mr"]
    without = by_label["tableIII_only"]["trimmed_mr"]
    # Selection may skip the new features entirely, so the full pool
    # should track the restricted pool to within CV noise.
    assert with_s <= without + 0.05
    for row in rows:
        print(
            f"\n{row['variant']}: {int(row['n_features'])} candidates, "
            f"trimmed MR {100 * row['trimmed_mr']:.1f}%, "
            f"success {100 * row['success_rate']:.0f}%"
        )
