"""Figure 5 bench: DIFFtotal by MFACT application group.

Shape targets: computation-bound applications have (almost all) tiny
DIFFtotal; load-imbalanced ones are nearly as tight (paper: 79% within
1%); only communication-sensitive applications reach double-digit
percentages (paper max 26.97%, >90% within 10%).
"""

from repro.experiments import fig5


def test_fig5_distributions(study, benchmark):
    result = benchmark(fig5.compute, study)
    print("\n" + fig5.render(result))
    assert all(result[g]["n"] > 0 for g in result)


def test_computation_bound_tiny_diff(study):
    result = fig5.compute(study)
    assert result["computation-bound"]["within_2pct"] >= 0.9


def test_load_imbalanced_tight(study):
    result = fig5.compute(study)
    assert result["load-imbalance-bound"]["within_2pct"] >= 0.7


def test_comm_sensitive_has_the_tail(study):
    result = fig5.compute(study)
    cs = result["communication-sensitive"]
    assert cs["max"] > result["computation-bound"]["max"]
    assert cs["max"] > 0.05
    assert cs["max"] < 0.70  # bounded tail (paper 26.97%; our FB worst case ~60%)


def test_group_sizes_populated(study):
    """Paper: 102 cs / 70 computation / 63 load-imbalance.  Our synthetic
    corpus is somewhat more communication-sensitive (its mid-intensity
    traces carry bandwidth-type messages, so the conservative 5%-at-bw/8
    rule fires more often), but every group must be well populated and
    cs must be the largest, as in the paper."""
    result = fig5.compute(study)
    cs = result["communication-sensitive"]["n"]
    comp = result["computation-bound"]["n"]
    imb = result["load-imbalance-bound"]["n"]
    assert cs + comp + imb == 235
    assert cs >= comp and cs >= imb
    assert comp >= 15
    assert imb >= 30
