"""Table II bench: wall-clock execution time of the four tools.

Times MFACT and the three simulation models live on the paper's three
runs — CMC(1024), LULESH(512), MiniFE(1152).  Shape targets: MFACT is
the fastest tool on every run (paper: modeling ranked first in all
cases) and the packet model is the slowest simulation (paper: slowest
for 89% of runs).
"""

import pytest

from repro.core.pipeline import measure_trace
from repro.experiments import table2
from repro.experiments.table2 import TABLE2_SPECS
from repro.workloads.suite import build_trace

_RECORDS = {}


def _record(label):
    if label not in _RECORDS:
        spec = dict(TABLE2_SPECS)[label]
        trace = build_trace(spec)
        _RECORDS[label] = measure_trace(trace, spec_index=spec.index, suite=spec.suite)
    return _RECORDS[label]


@pytest.mark.parametrize("label", [label for label, _ in TABLE2_SPECS])
def test_table2_tool_ordering(label, benchmark):
    record = benchmark.pedantic(_record, args=(label,), rounds=1, iterations=1)
    paper = table2.PAPER_TIMES[label]
    walls = {m: record.sims[m].walltime for m in record.sims}
    walls["mfact"] = record.mfact.walltime
    print(f"\nTable II {label}: " + "  ".join(
        f"{k}={walls[k]:.2f}s (paper {paper[k]:.2f}s)" for k in ("packet", "flow", "packet-flow", "mfact")
    ))
    # MFACT ranks first in all cases.
    assert walls["mfact"] < min(walls["packet"], walls["flow"], walls["packet-flow"])
    # The packet model is the most expensive simulation wherever the
    # trace actually moves bytes; CMC is nearly communication-free, so
    # its tool times are replay-layer overhead and the sims tie.
    if label != "CMC(1024)":
        assert walls["packet"] >= 0.8 * max(walls["flow"], walls["packet-flow"])


def test_table2_render():
    result = {
        label: {
            "mfact": _record(label).mfact.walltime,
            **{m: _record(label).sims[m].walltime for m in _record(label).sims},
        }
        for label, _ in TABLE2_SPECS
    }
    text = table2.render(result)
    print("\n" + text)
    assert "Table II" in text
