"""Section V-B bench: per-application tool ranking shares."""

from repro.experiments import section5b


def test_ranking_shares(study, benchmark):
    result = benchmark(section5b.compute, study)
    print("\n" + section5b.render(result))
    # Modeling ranks first in (almost) all cases.
    assert result["first"]["mfact"] >= 90.0
    # The packet model is the most frequent last place.
    assert result["fourth"]["packet"] >= max(
        result["fourth"]["flow"], result["fourth"]["packet-flow"]
    )


def test_second_place_is_a_simulation(study):
    result = section5b.compute(study)
    sims_second = (
        result["second"]["flow"]
        + result["second"]["packet-flow"]
        + result["second"]["packet"]
    )
    assert sims_second >= 90.0
