"""Ablation: the stepwise selection cap (paper: five variables).

Sweeps the maximum model size 1..8 and reports the cross-validated
misclassification rate: accuracy should saturate around the paper's cap
(over-fitting risk grows past it, gains vanish).
"""

import pytest

from repro.core.enhanced_mfact import CANDIDATE_NAMES, design_matrix, labels
from repro.stats.mccv import monte_carlo_cv

CAPS = [1, 2, 3, 5, 8]


@pytest.fixture(scope="module")
def matrices(labelled):
    return design_matrix(labelled), labels(labelled)


@pytest.mark.parametrize("cap", CAPS)
def test_cap_sweep(benchmark, matrices, cap):
    X, y = matrices
    cv = benchmark.pedantic(
        monte_carlo_cv,
        args=(X, y, CANDIDATE_NAMES),
        kwargs={"runs": 25, "max_vars": cap, "seed": 11},
        rounds=1,
        iterations=1,
    )
    print(f"\nmax_vars={cap}: trimmed MR {100 * cv.trimmed_mr:.1f}%")
    assert 0.0 <= cv.trimmed_mr <= 0.5


def test_five_variables_near_saturation(matrices):
    X, y = matrices
    mr = {
        cap: monte_carlo_cv(
            X, y, CANDIDATE_NAMES, runs=25, max_vars=cap, seed=11
        ).trimmed_mr
        for cap in (1, 5, 8)
    }
    # Five variables should be at least as good as one, and adding three
    # more should not buy a large improvement.
    assert mr[5] <= mr[1] + 0.02
    assert mr[8] >= mr[5] - 0.04
