"""Shared fixtures for the benchmark harness.

``study`` loads the cached 235-trace measurement campaign (building it
on first use — that one-time pass simulates every trace with all four
tools and takes tens of minutes; subsequent runs read ``.cache/``).
"""

import pytest

from repro.core.pipeline import load_or_run_study


@pytest.fixture(scope="session")
def study():
    """All 235 study records (cached)."""
    return load_or_run_study(verbose=True)


@pytest.fixture(scope="session")
def labelled(study):
    """Records with a packet-flow DIFFtotal label (all 235 by design)."""
    return [r for r in study if r.requires_simulation() is not None]
