"""Section VI bench: the headline prediction numbers.

Shape targets: a clear majority of cases have DIFFtotal under 5%
(paper: 85%, with 63% under 2%); the enhanced MFACT beats the naive
"simulate everything communication-sensitive" heuristic by a wide
margin (paper: 93.2% vs 73.4%).
"""

from repro.experiments import section6


def test_section6_headline(labelled, benchmark):
    result = benchmark.pedantic(
        section6.compute, args=(labelled,), kwargs={"runs": 100, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + section6.render(result))
    assert result["within_2pct"] >= 0.40
    assert result["within_5pct"] >= 0.60
    assert result["within_5pct"] >= result["within_2pct"]


def test_enhanced_beats_naive(labelled):
    result = section6.compute(labelled, runs=60, seed=2)
    assert result["enhanced_success"] > result["naive_success"]
    assert result["enhanced_success"] >= 0.78


def test_enhanced_absolute_band(labelled):
    result = section6.compute(labelled, runs=60, seed=3)
    # Paper: 93.2%; allow a band for the synthetic corpus.
    assert 0.75 <= result["enhanced_success"] <= 1.0
    assert result["enhanced_fn"] <= 0.45
    assert result["enhanced_fp"] <= 0.30
