"""Ablation: rank-to-node placement and modeling-vs-simulation divergence.

DESIGN.md substitutes scatter placement for the adaptive routing of
real fabrics on the alltoall applications.  This bench quantifies the
choice on the topology where it matters: on a *dragonfly* (Edison),
block placement + deterministic minimal routing concentrates each
Bruck round of an FT transpose onto a single group-to-group trunk
(DIFFtotal near 100%), while scatter placement spreads it to the
paper's band.  On a torus, shifted Bruck rounds are translations and
block placement is already balanced; there the halo workload shows the
reverse preference.
"""

import pytest

from repro.machines import EDISON, HOPPER
from repro.mfact import ConfigGrid, model_trace
from repro.sim import simulate_trace
from repro.workloads import generate_doe, generate_npb

MAPPINGS = ("block", "scatter")


def _diff(trace, mapping, machine):
    trace.metadata["mapping"] = mapping
    trace.metadata["mapping_seed"] = 7
    mfact = model_trace(trace, machine, ConfigGrid.single(machine)).baseline_total_time
    sim = simulate_trace(trace, machine, "packet-flow").total_time
    return abs(sim / mfact - 1.0)


@pytest.fixture(scope="module")
def ft_trace():
    return generate_npb("FT", 64, EDISON, seed=71, compute_per_iter=0.002,
                        ranks_per_node=1)


@pytest.fixture(scope="module")
def halo_trace():
    return generate_doe("CNS", 64, HOPPER, seed=72, compute_per_iter=0.002,
                        ranks_per_node=1)


@pytest.mark.parametrize("mapping", MAPPINGS)
def test_ft_mapping_sweep(benchmark, ft_trace, mapping):
    diff = benchmark.pedantic(
        _diff, args=(ft_trace, mapping, EDISON), rounds=1, iterations=1
    )
    print(f"\nFT on dragonfly, {mapping}: DIFFtotal {100 * diff:.1f}%")
    assert diff >= 0


def test_scatter_tames_transpose_divergence_on_dragonfly(ft_trace):
    block = _diff(ft_trace, "block", EDISON)
    scatter = _diff(ft_trace, "scatter", EDISON)
    # Shifted Bruck traffic under block placement piles onto one
    # group-to-group trunk; scattering (like adaptive routing) spreads it.
    assert scatter < block


def test_halo_prefers_block_on_torus(halo_trace):
    block = _diff(halo_trace, "block", HOPPER)
    scatter = _diff(halo_trace, "scatter", HOPPER)
    # Neighbors placed on neighboring nodes keep halo routes short;
    # scattering can only lengthen them.
    assert block <= scatter + 0.02
