"""Table IV bench: stepwise-selected variables over 100 MCCV partitions.

Shape targets: CL{ncs} is the dominant predictor — selected in (almost)
every partition with a negative coefficient, exactly the paper's
finding that network-insensitive applications need no simulation.
"""

from repro.experiments import table4


def test_table4_selection(labelled, benchmark):
    result = benchmark.pedantic(
        table4.compute, args=(labelled,), kwargs={"runs": 100, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + table4.render(result))
    top = result["top"]
    names = [row["name"] for row in top]
    assert "CL{ncs}" in names[:2]
    cl = next(row for row in top if row["name"] == "CL{ncs}")
    assert cl["selected_pct"] >= 90.0
    assert cl["coefficient"] < 0.0


def test_table4_rates_beat_naive_band(labelled):
    result = table4.compute(labelled, runs=60, seed=1)
    # Paper: trimmed MR 6.8%. Allow a generous band for the synthetic corpus.
    assert result["trimmed_mr"] < 0.22
    assert 0.0 <= result["trimmed_fn"] <= 0.5
    assert 0.0 <= result["trimmed_fp"] <= 0.5
