"""Ablation: the 2% DIFFtotal decision threshold.

Sweeps the label threshold and reports the positive-class share and the
enhanced model's cross-validated success rate.  The paper notes that
cases near the 2% boundary drive misclassifications; the sweep makes
that sensitivity visible.
"""

import numpy as np
import pytest

from repro.core.enhanced_mfact import CANDIDATE_NAMES, design_matrix
from repro.stats.mccv import monte_carlo_cv

THRESHOLDS = [0.01, 0.02, 0.05, 0.10]


def labels_at(records, threshold):
    return np.array(
        [int(r.diff_total() > threshold) for r in records if r.diff_total() is not None]
    )


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_threshold_sweep(benchmark, labelled, threshold):
    X = design_matrix(labelled)
    y = labels_at(labelled, threshold)
    if y.sum() in (0, len(y)):
        pytest.skip("degenerate labels at this threshold")
    cv = benchmark.pedantic(
        monte_carlo_cv,
        args=(X, y, CANDIDATE_NAMES),
        kwargs={"runs": 25, "seed": 5},
        rounds=1,
        iterations=1,
    )
    share = y.mean()
    print(
        f"\nthreshold {100 * threshold:.0f}%: positives {100 * share:.1f}%, "
        f"success {100 * cv.success_rate:.1f}%"
    )
    assert 0.0 <= cv.success_rate <= 1.0


def test_positive_share_decreases_with_threshold(labelled):
    shares = [labels_at(labelled, t).mean() for t in THRESHOLDS]
    assert all(b <= a + 1e-9 for a, b in zip(shares, shares[1:]))


def test_paper_threshold_not_degenerate(labelled):
    y = labels_at(labelled, 0.02)
    assert 0.1 < y.mean() < 0.9
