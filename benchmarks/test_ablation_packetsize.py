"""Ablation: packet-flow coarse-packet size (SST recommends 1-8 KiB).

Sweeps the chunk size and measures both simulator cost and predicted
time: bigger chunks mean fewer per-packet samples (cheaper) at a minor
accuracy cost — the trade-off Section IV-B describes.
"""

import pytest

from repro.machines import CIELITO
from repro.sim import SimReplay
from repro.util.units import KIB
from repro.workloads import generate_doe, synthesize_ground_truth

SIZES = [1 * KIB, 2 * KIB, 4 * KIB, 8 * KIB]


@pytest.fixture(scope="module")
def trace():
    t = generate_doe("CNS", 64, CIELITO, seed=31, compute_per_iter=0.002,
                     ranks_per_node=2)
    return synthesize_ground_truth(t, CIELITO, seed=31)


def run(trace, chunk):
    return SimReplay(trace, CIELITO, "packet-flow", chunk_size=chunk).run()


@pytest.mark.parametrize("chunk", SIZES)
def test_chunk_size_sweep(benchmark, trace, chunk):
    result = benchmark.pedantic(run, args=(trace, chunk), rounds=2, iterations=1)
    print(f"\nchunk {chunk // KIB:2d}KiB: predicted {result.total_time:.6f}s, "
          f"{result.events} events")
    assert result.total_time > 0


def test_bigger_chunks_fewer_packets(trace):
    small = SimReplay(trace, CIELITO, "packet-flow", chunk_size=1 * KIB)
    small.run()
    big = SimReplay(trace, CIELITO, "packet-flow", chunk_size=8 * KIB)
    big.run()
    assert big.model.packets_sent < small.model.packets_sent


def test_accuracy_loss_minor(trace):
    """The predicted time moves only slightly across the 1-8 KiB range
    (the 'minor cost in simulation accuracy' of Section IV-B)."""
    totals = [run(trace, chunk).total_time for chunk in SIZES]
    assert max(totals) / min(totals) < 1.15
