"""Table I bench: regenerate the corpus characteristics table."""

from collections import Counter

from repro.experiments import table1
from repro.workloads import corpus_specs
from repro.workloads.suite import RANK_POOL


def test_table1_rank_panel_exact(study, benchmark):
    """Table Ia must match the paper exactly (it is our construction)."""
    result = benchmark(table1.compute, study)
    print("\n" + table1.render(result))
    assert result["ranks"] == table1.PAPER_RANKS
    assert result["total"]["traces"] == 235


def test_table1_comm_panel_shape(study):
    """Table Ib: every bin populated; the heavy middle bins dominate."""
    result = table1.compute(study)
    comm = result["comm_time_pct"]
    assert sum(comm.values()) == 235
    assert all(count > 0 for count in comm.values())
    # Paper shape: 10-20% and 20-40% are the two largest bins together
    # holding about half the corpus; the reproduction should keep the
    # middle-heavy shape.
    middle = comm["10-20"] + comm["20-40"]
    assert middle >= 60


def test_corpus_spec_generation_fast(benchmark):
    """Spec generation itself is cheap and exact."""
    specs = benchmark(corpus_specs)
    assert Counter(s.nranks for s in specs) == Counter(RANK_POOL)
