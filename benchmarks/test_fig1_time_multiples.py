"""Figure 1 bench: simulation time as multiples of modeling time.

Shape targets from the paper: modeling is the fastest tool for
essentially every trace; a sizeable share of packet simulations run
10-1000x slower than MFACT; the cumulative bucket curves are ordered
flow/packet-flow above packet (packet is the most expensive).
"""

from repro.experiments import fig1


def test_fig1_buckets(study, benchmark):
    result = benchmark(fig1.compute, study)
    print("\n" + fig1.render(result))
    for model in ("packet", "flow", "packet-flow"):
        buckets = result[model]
        assert buckets["<=10x"] <= buckets["<=100x"] <= buckets["<=1000x"] <= 100.0


def test_modeling_fastest_for_nearly_all(study):
    subset = fig1.time_study_subset(study)
    wins = sum(
        1
        for r in subset
        if r.mfact.walltime <= min(s.walltime for s in r.sims.values())
    )
    assert wins / len(subset) >= 0.9  # paper: first place in all cases


def test_packet_slowest_sim_for_most(study):
    subset = fig1.time_study_subset(study)
    slowest = sum(
        1
        for r in subset
        if r.sims["packet"].walltime
        >= max(r.sims["flow"].walltime, r.sims["packet-flow"].walltime) * 0.999
    )
    # Paper: the packet model requires the longest simulation time for
    # 89% of cases.
    assert slowest / len(subset) >= 0.6


def test_order_of_magnitude_gap_exists(study):
    """Modeling is at least 10x faster than packet simulation for a
    substantial share of applications (paper: 79%)."""
    subset = fig1.time_study_subset(study)
    ratios = [r.sims["packet"].walltime / max(r.mfact.walltime, 1e-9) for r in subset]
    share = sum(1 for x in ratios if x >= 10.0) / len(ratios)
    assert share >= 0.4
