"""Figure 4 bench: DOE applications — sim vs model vs measured.

Shape targets: CR and FillBoundary diverge the most (paper: >20% total
time difference, driven by their irregular and intensive communication
patterns); the regular mini-apps (MiniFE, CMC, LULESH, AMG) stay tight;
both tools predict below measured with the simulator closer.
"""

from repro.experiments import fig4


def test_fig4_panels(study, benchmark):
    result = benchmark(fig4.compute, study)
    print("\n" + fig4.render(result))
    assert set(result) >= {
        "BigFFT", "CR", "AMG", "MiniFE", "MultiGrid", "FillBoundary",
        "LULESH", "CNS", "CMC", "Nekbone",
    }


def test_cr_and_fb_are_the_outliers(study):
    result = fig4.compute(study)
    outlier = max(result[a]["max_total_diff"] for a in ("CR", "FillBoundary"))
    tight_apps = ("MiniFE", "CMC", "LULESH", "CNS")
    tight = max(result[a]["max_total_diff"] for a in tight_apps)
    assert outlier > tight


def test_regular_miniapps_tight(study):
    """Paper: within ~1% for MiniFE, CMC, AMG, LULESH."""
    result = fig4.compute(study)
    for app in ("MiniFE", "CMC", "LULESH"):
        assert result[app]["max_total_diff"] < 0.15


def test_both_tools_below_measured_on_average(study):
    result = fig4.compute(study)
    avg = result["_average"]
    assert 0.0 < avg["mfact_below"] < 0.35  # paper: 13.1%
    assert 0.0 < avg["sst_below"] < 0.30  # paper: 8.0%
    assert avg["sst_below"] <= avg["mfact_below"]
