"""Table III bench: the candidate feature catalogue over the corpus."""

import numpy as np

from repro.experiments import table3
from repro.trace.features import NUMERIC_FEATURE_NAMES, SENSITIVITY_FEATURE_NAMES


def test_table3_summary(study, benchmark):
    result = benchmark(table3.compute, study)
    print("\n" + table3.render(result))
    assert set(NUMERIC_FEATURE_NAMES) <= set(result)


def test_every_record_has_all_features(study):
    expected = set(NUMERIC_FEATURE_NAMES) | set(SENSITIVITY_FEATURE_NAMES)
    for record in study:
        assert set(record.features) == expected
        assert all(np.isfinite(v) for v in record.features.values())


def test_feature_ranges_sane(study):
    result = table3.compute(study)
    assert result["R"]["min"] == 64
    assert result["R"]["max"] == 1728
    for pct in ("PoCP", "PoC", "PoSYN", "PoCOLL"):
        assert 0.0 <= result[pct]["min"]
        assert result[pct]["max"] <= 100.0 + 1e-9


def test_cl_split_present(study):
    result = table3.compute(study)
    assert result["CL"]["cs"] + result["CL"]["ncs"] == len(study)
