"""Figure 2 bench: accuracy CDFs of the three simulation models vs MFACT.

Shape targets: most traces' packet-flow total time is within 5% of
MFACT (paper: 85%), the within-10% share is higher still (94%), and the
three simulation models track each other (no model is wildly apart).
"""

from repro.experiments import fig2


def test_fig2_cdf_readings(study, benchmark):
    result = benchmark(fig2.compute, study)
    print("\n" + fig2.render(result))
    pf = result["packet-flow"]
    # Headline: the bulk of the corpus agrees within 5% and 10%.
    assert pf["total_within"][0.05] >= 0.6
    assert pf["total_within"][0.10] >= 0.75
    assert pf["total_within"][0.10] >= pf["total_within"][0.05]


def test_fig2_completion_counts(study):
    """SST/Macro 3.0's engines fail on some traces: 216 packet, 162
    flow, 235 packet-flow completions."""
    result = fig2.compute(study)
    assert result["packet-flow"]["completed"] == 235
    assert result["packet"]["completed"] == 216
    assert result["flow"]["completed"] == 162


def test_fig2_models_similar(study):
    """No significant difference in overall prediction power among the
    three models (Section V-C)."""
    result = fig2.compute(study)
    shares = [result[m]["total_within"][0.10] for m in ("packet", "flow", "packet-flow")]
    assert max(shares) - min(shares) < 0.25


def test_fig2_comm_time_looser_than_total(study):
    """Communication-time estimates diverge more than total time
    (Figure 2a vs 2b)."""
    result = fig2.compute(study)
    pf = result["packet-flow"]
    assert pf["comm_within"][0.10] <= pf["total_within"][0.10] + 0.05
