"""Ablation: the flow model's ripple updates.

Each flow arrival/departure recomputes the max-min allocation of every
active flow — the "ripple effect" the paper cites as the flow model's
cost driver.  The ablation freezes rates at admission instead and
compares cost and fidelity: the frozen variant must be cheaper per
event but lose the fair-sharing behaviour under contention.
"""

import pytest

from repro.machines import CIELITO
from repro.sim import SimReplay
from repro.trace.events import Op, OpKind
from repro.trace.trace import TraceSet
from repro.workloads import generate_doe, synthesize_ground_truth


@pytest.fixture(scope="module")
def trace():
    t = generate_doe("FB", 64, CIELITO, seed=41, compute_per_iter=0.001,
                     ranks_per_node=2)
    return synthesize_ground_truth(t, CIELITO, seed=41)


def run(trace, ripple):
    return SimReplay(trace, CIELITO, "flow", ripple=ripple).run()


def test_flow_with_ripple(benchmark, trace):
    result = benchmark.pedantic(run, args=(trace, True), rounds=2, iterations=1)
    assert result.total_time > 0


def test_flow_frozen_rates(benchmark, trace):
    result = benchmark.pedantic(run, args=(trace, False), rounds=2, iterations=1)
    assert result.total_time > 0


def test_ripple_count_tracks_flows(trace):
    replay = SimReplay(trace, CIELITO, "flow")
    replay.run()
    # Arrivals and departures ripple (same-timestamp batches coalesce
    # into one recomputation, so the count is below 2x messages).
    assert 0 < replay.model.ripple_updates <= 2 * replay.model.messages_sent + 2


def test_frozen_rates_distort_contention():
    """Under a *staggered* incast, frozen rates mis-predict: a flow
    admitted while k rivals are active keeps rate cap/k forever, even
    after the rivals drain, whereas the ripple upgrades it.  (A
    simultaneous incast hides the difference: every flow is admitted
    and finishes at the same share.)"""
    from repro.trace.events import make_compute

    n, nbytes = 8, 4 << 20
    ranks = []
    for r in range(n):
        if r == 0:
            ops = [Op(OpKind.IRECV, peer=s, nbytes=nbytes, tag=1, req=s) for s in range(1, n)]
            ops += [Op(OpKind.WAIT, req=s) for s in range(1, n)]
        else:
            # Staggered arrivals: sender s starts s milliseconds late.
            ops = [make_compute(0.001 * r), Op(OpKind.SEND, peer=0, nbytes=nbytes, tag=1)]
        ranks.append(ops)
    trace = TraceSet("incast", "T", ranks, machine="cielito", ranks_per_node=1)
    with_ripple = SimReplay(trace, CIELITO, "flow", ripple=True).run().total_time
    frozen = SimReplay(trace, CIELITO, "flow", ripple=False).run().total_time
    assert abs(frozen / with_ripple - 1.0) > 0.05
