"""Executor scaling benchmark: serial vs 2/4 workers, cold vs warm cache.

Runs the 16-trace mini corpus through the executor at ``-j 1/2/4`` and
once more against a warm per-record cache, printing a wall-clock table.
The parallel-speedup assertions are gated on the machine actually
having the cores (CI boxes with one core still run the benchmark and
report, but only the cache-speedup invariant is enforced there).
"""

import os
import time

import pytest

from repro.core.executor import execute_study
from repro.workloads.suite import mini_corpus_specs

SEED = 31
CORPUS = 16


@pytest.fixture(scope="module")
def specs():
    return mini_corpus_specs(CORPUS, seed=SEED)


def _timed(specs, jobs, cache_root):
    t0 = time.perf_counter()
    run = execute_study(specs, jobs=jobs, cache_root=cache_root, seed=SEED)
    elapsed = time.perf_counter() - t0
    assert len(run.records) == CORPUS and not run.failures
    return elapsed, run


class TestExecutorScaling:
    def test_parallel_and_cache_speedups(self, specs, tmp_path):
        cores = os.cpu_count() or 1
        serial, _ = _timed(specs, jobs=1, cache_root=None)
        two, _ = _timed(specs, jobs=2, cache_root=None)
        four, _ = _timed(specs, jobs=4, cache_root=None)

        root = tmp_path / "records"
        cold, cold_run = _timed(specs, jobs=1, cache_root=root)
        warm, warm_run = _timed(specs, jobs=1, cache_root=root)

        print(f"\nexecutor scaling over {CORPUS} traces ({cores} cores):")
        print(f"  -j 1 cold        {serial:8.2f}s")
        print(f"  -j 2 cold        {two:8.2f}s   ({serial / two:4.1f}x)")
        print(f"  -j 4 cold        {four:8.2f}s   ({serial / four:4.1f}x)")
        print(f"  -j 1 cold cached {cold:8.2f}s")
        print(f"  -j 1 warm cache  {warm:8.2f}s   ({cold / warm:4.1f}x, "
              f"{100 * warm_run.manifest.hit_rate():.0f}% hits)")

        # Cache invariants hold on any machine.
        assert cold_run.manifest.misses == CORPUS
        assert warm_run.manifest.hit_rate() == 1.0
        assert warm < cold, "a fully warm cache must beat recomputation"

        # Parallel speedup claims only where the hardware can deliver them.
        if cores >= 2:
            assert two < serial * 0.95, (
                f"-j 2 ({two:.2f}s) should beat serial ({serial:.2f}s) on {cores} cores"
            )
        if cores >= 4:
            assert four < serial / 2, (
                f"-j 4 ({four:.2f}s) should be >= 2x serial ({serial:.2f}s) on {cores} cores"
            )

    def test_warm_cache_is_order_of_magnitude_cheaper_per_record(self, specs, tmp_path):
        """Per-record cost: a cache hit vs a full four-tool measurement."""
        root = tmp_path / "records"
        _, cold_run = _timed(specs, jobs=1, cache_root=root)
        _, warm_run = _timed(specs, jobs=1, cache_root=root)
        cold_cost = cold_run.manifest.total_walltime / CORPUS
        warm_cost = warm_run.manifest.total_walltime / CORPUS
        print(f"\nper-record cost: cold {1e3 * cold_cost:.1f}ms, "
              f"warm {1e3 * warm_cost:.1f}ms ({cold_cost / warm_cost:.0f}x)")
        assert warm_cost * 10 <= cold_cost, (
            f"cache hits ({1e3 * warm_cost:.1f}ms) should be >= 10x cheaper than "
            f"measurement ({1e3 * cold_cost:.1f}ms)"
        )
