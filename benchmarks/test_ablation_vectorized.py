"""Ablation: MFACT's vectorized multi-configuration replay.

MFACT's design choice is to maintain logical clocks for the whole
configuration grid in one replay.  The ablation compares that against
the naive alternative — one single-configuration replay per grid point
— and verifies the predictions are identical while the vectorized
replay is substantially cheaper.
"""

import numpy as np
import pytest

from repro.machines import CIELITO
from repro.mfact import ConfigGrid, LogicalClockReplay
from repro.workloads import generate_doe, synthesize_ground_truth


@pytest.fixture(scope="module")
def trace():
    t = generate_doe("Nekbone", 64, CIELITO, seed=21, compute_per_iter=0.001,
                     ranks_per_node=1)
    return synthesize_ground_truth(t, CIELITO, seed=21)


@pytest.fixture(scope="module")
def grid():
    return ConfigGrid.sweep(CIELITO)


def vectorized(trace, grid):
    return LogicalClockReplay(trace, CIELITO, grid).run().total_time


def per_config(trace, grid):
    totals = []
    for i in range(len(grid)):
        single = ConfigGrid(
            [grid.latency[i]], [grid.bandwidth[i]], [grid.compute_scale[i]]
        )
        totals.append(LogicalClockReplay(trace, CIELITO, single).run().total_time[0])
    return np.array(totals)


def test_vectorized_replay(benchmark, trace, grid):
    totals = benchmark(vectorized, trace, grid)
    assert totals.shape == (len(grid),)


def test_per_config_replay(benchmark, trace, grid):
    totals = benchmark.pedantic(per_config, args=(trace, grid), rounds=2, iterations=1)
    assert totals.shape == (len(grid),)


def test_identical_predictions(trace, grid):
    np.testing.assert_allclose(vectorized(trace, grid), per_config(trace, grid), rtol=1e-12)


def test_vectorized_cheaper(trace, grid):
    import time

    t0 = time.perf_counter()
    vectorized(trace, grid)
    tv = time.perf_counter() - t0
    t0 = time.perf_counter()
    per_config(trace, grid)
    ts = time.perf_counter() - t0
    # 21 configurations in one pass should beat 21 passes clearly.
    assert tv < ts / 2
