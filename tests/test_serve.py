"""In-process integration tests for the distributed study service.

A real :class:`Coordinator` listens on a loopback socket; worker agents
run as threads of this process (so ``kill-worker`` plans cannot fire —
process-level chaos lives in ``test_serve_chaos.py``).  The invariants
under test: distributed canonical records are byte-identical to a
``jobs=1`` serial run, a dead worker's lease is reclaimed and its spec
completed elsewhere exactly once, the journal makes a coordinator
restart resume rather than restart studies, and a coordinator with no
workers degrades to pure-local execution.
"""

import json
import threading
import time

import pytest

from repro.core.executor import drive_spec, execute_study, study_options
from repro.core.resilience import RetryPolicy
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.coordinator import Coordinator
from repro.serve.worker import WorkerAgent
from repro.workloads.suite import mini_corpus_specs

SEED = 31
N = 4


@pytest.fixture()
def specs():
    return mini_corpus_specs(N, seed=SEED, nranks=4)


@pytest.fixture()
def serial_canonical(specs, tmp_path_factory):
    root = tmp_path_factory.mktemp("serial-cache") / "records"
    run = execute_study(specs, jobs=1, seed=SEED, cache_root=root)
    return json.dumps(
        [r.to_json(canonical=True) for r in run.records], sort_keys=True
    )


def canonical(records):
    return json.dumps([r.to_json(canonical=True) for r in records], sort_keys=True)


def start_coordinator(tmp_path, **kwargs):
    kwargs.setdefault("cache_root", str(tmp_path / "coord-cache"))
    kwargs.setdefault("lease_timeout", 5.0)
    kwargs.setdefault("fallback_grace", 60.0)  # no surprise local fallback
    coordinator = Coordinator(**kwargs)
    coordinator.start()
    return coordinator


def start_workers(coordinator, tmp_path, count=2, **kwargs):
    agents, threads = [], []
    for i in range(count):
        agent = WorkerAgent(
            coordinator.address,
            f"w{i}",
            worker_index=i,
            cache_root=tmp_path / f"worker-cache-{i}",
            seed=SEED,
            **kwargs,
        )
        thread = threading.Thread(target=agent.run, daemon=True)
        thread.start()
        agents.append(agent)
        threads.append(thread)
    return agents, threads


class TestDistributedEquivalence:
    def test_two_workers_match_serial_byte_for_byte(
        self, specs, serial_canonical, tmp_path
    ):
        coordinator = start_coordinator(tmp_path, collect_metrics=True)
        try:
            agents, threads = start_workers(coordinator, tmp_path)
            client = ServeClient(coordinator.address)
            study_id = client.submit(specs, seed=SEED)
            client.wait(study_id, timeout=90)
            result = client.result(study_id)
            assert canonical(result.records) == serial_canonical

            manifest = result.manifest
            assert len(manifest.entries) == N
            assert {e.spec_index for e in manifest.entries} == set(range(N))
            assert all(e.status == "ok" for e in manifest.entries)
            assert all(e.worker_id in {"w0", "w1"} for e in manifest.entries)
            # Both workers really participated (4 specs, 2 pullers).
            assert len({e.worker_id for e in manifest.entries}) == 2
            assert manifest.to_json()["summary"]["workers"] == ["w0", "w1"]

            client.drain()
            for thread in threads:
                thread.join(timeout=30)
            assert sum(a.specs_done for a in agents) == N
        finally:
            coordinator.stop()

    def test_submit_is_idempotent_by_content(self, specs, tmp_path):
        coordinator = start_coordinator(tmp_path)
        try:
            client = ServeClient(coordinator.address)
            first = client.submit(specs, seed=SEED)
            second = client.submit(specs, seed=SEED)
            assert first == second
            other_seed = client.submit(specs, seed=SEED + 1)
            assert other_seed != first
        finally:
            coordinator.stop()

    def test_status_reports_workers_and_studies(self, specs, tmp_path):
        coordinator = start_coordinator(tmp_path)
        try:
            agents, threads = start_workers(coordinator, tmp_path, count=1)
            client = ServeClient(coordinator.address)
            study_id = client.submit(specs, seed=SEED)
            client.wait(study_id, timeout=90)
            report = client.status()
            assert report["studies"][study_id]["complete"] is True
            assert "w0" in report["workers"]
            client.drain()
            for thread in threads:
                thread.join(timeout=30)
        finally:
            coordinator.stop()

    def test_poll_unknown_study_is_error(self, tmp_path):
        coordinator = start_coordinator(tmp_path)
        try:
            with pytest.raises(ServeError, match="unknown study"):
                ServeClient(coordinator.address).poll("study-nope")
        finally:
            coordinator.stop()


class TestLeaseReclaim:
    def test_abandoned_lease_is_reclaimed_and_completed_once(
        self, specs, serial_canonical, tmp_path
    ):
        coordinator = start_coordinator(
            tmp_path, lease_timeout=0.4, heartbeat_timeout=0.4
        )
        try:
            client = ServeClient(coordinator.address)
            study_id = client.submit(specs, seed=SEED)

            # A "worker" that grabs one lease and silently dies: no
            # result, no goodbye, heartbeats stop with the connection.
            sock = protocol.connect(*coordinator.address, timeout=5.0)
            protocol.send_frame(sock, {"type": "hello", "worker_id": "doomed"})
            assert protocol.recv_frame(sock)["type"] == "welcome"
            protocol.send_frame(sock, {"type": "ready", "worker_id": "doomed"})
            grabbed = protocol.recv_frame(sock)
            assert grabbed["type"] == "assign"
            sock.close()

            agents, threads = start_workers(coordinator, tmp_path, count=1)
            client.wait(study_id, timeout=90)
            result = client.result(study_id)
            assert canonical(result.records) == serial_canonical

            entries = {e.spec_index: e for e in result.manifest.entries}
            assert len(entries) == N  # exactly once each, none lost
            reclaimed = entries[grabbed["index"]]
            assert reclaimed.worker_id == "w0"
            assert reclaimed.lease >= 1
            summary = result.manifest.to_json()["summary"]
            assert summary["leases_reclaimed"] >= 1

            client.drain()
            for thread in threads:
                thread.join(timeout=30)
        finally:
            coordinator.stop()

    def test_duplicate_result_is_acked_not_double_counted(self, specs, tmp_path):
        coordinator = start_coordinator(tmp_path)
        try:
            agents, threads = start_workers(coordinator, tmp_path, count=1)
            client = ServeClient(coordinator.address)
            study_id = client.submit(specs, seed=SEED)
            client.wait(study_id, timeout=90)

            entry, record, _ = drive_spec(
                specs[0],
                study_options(cache_root=str(tmp_path / "dup-cache")),
                seed=SEED,
            )
            import dataclasses

            ack = coordinator._dispatch(
                {
                    "type": "result",
                    "worker_id": "late",
                    "study_id": study_id,
                    "index": specs[0].index,
                    "lease": 0,
                    "entry": dataclasses.asdict(entry),
                    "record": record.to_json() if record else None,
                }
            )
            assert ack == {"type": "ack", "duplicate": True}
            # The original completion stands: still N entries, and the
            # duplicate's worker id did not overwrite the winner's.
            result = client.result(study_id)
            assert len(result.manifest.entries) == N
            assert all(e.worker_id == "w0" for e in result.manifest.entries)

            client.drain()
            for thread in threads:
                thread.join(timeout=30)
        finally:
            coordinator.stop()


class TestLocalFallback:
    def test_no_workers_degrades_to_local_execution(
        self, specs, serial_canonical, tmp_path
    ):
        coordinator = start_coordinator(tmp_path, fallback_grace=0.1)
        try:
            client = ServeClient(coordinator.address)
            study_id = client.submit(specs, seed=SEED)
            client.wait(study_id, timeout=90)
            result = client.result(study_id)
            assert canonical(result.records) == serial_canonical
            assert all(e.worker_id == "local" for e in result.manifest.entries)
        finally:
            coordinator.stop()


class TestJournalRestart:
    def test_restart_resumes_completed_study(
        self, specs, serial_canonical, tmp_path
    ):
        journal_path = tmp_path / "journal.jsonl"
        first = start_coordinator(tmp_path, journal_path=journal_path)
        agents, threads = start_workers(first, tmp_path)
        client = ServeClient(first.address)
        study_id = client.submit(specs, seed=SEED)
        client.wait(study_id, timeout=90)
        client.drain()
        for thread in threads:
            thread.join(timeout=30)
        first.stop()

        # Restarted coordinator, same journal: the study is already
        # done — no workers needed, records byte-identical.
        second = start_coordinator(tmp_path, journal_path=journal_path)
        try:
            client2 = ServeClient(second.address)
            assert client2.poll(study_id)["state"] == "done"
            result = client2.result(study_id)
            assert canonical(result.records) == serial_canonical
            # Resubmitting the same study joins it, fully done.
            rejoin = client2.submit(specs, seed=SEED)
            assert rejoin == study_id
        finally:
            second.stop()

    def test_restart_resumes_partial_study(self, specs, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        first = start_coordinator(tmp_path, journal_path=journal_path)
        client = ServeClient(first.address)
        study_id = client.submit(specs, seed=SEED)

        # Hand-complete exactly one spec through the protocol, then
        # kill the coordinator (no drain, no journal close).
        sock = protocol.connect(*first.address, timeout=5.0)
        protocol.send_frame(sock, {"type": "hello", "worker_id": "wX"})
        assert protocol.recv_frame(sock)["type"] == "welcome"
        protocol.send_frame(sock, {"type": "ready", "worker_id": "wX"})
        assignment = protocol.recv_frame(sock)
        assert assignment["type"] == "assign"
        entry, record, _ = drive_spec(
            specs[assignment["index"]],
            study_options(cache_root=str(tmp_path / "wx-cache")),
            seed=SEED,
        )
        import dataclasses

        protocol.send_frame(
            sock,
            {
                "type": "result",
                "worker_id": "wX",
                "study_id": study_id,
                "index": assignment["index"],
                "lease": assignment["lease"],
                "entry": dataclasses.asdict(entry),
                "record": record.to_json() if record else None,
            },
        )
        assert protocol.recv_frame(sock)["type"] == "ack"
        sock.close()
        first.stop()

        second = start_coordinator(tmp_path, journal_path=journal_path)
        try:
            status = ServeClient(second.address).poll(study_id)
            assert status["done"] == 1
            assert status["total"] == N
            assert status["state"] == "running"
            # The journaled entry kept its worker attribution.
            study = second._studies[study_id]
            done_slots = [s for s in study.slots.values() if s.state == "done"]
            assert len(done_slots) == 1
            assert done_slots[0].entry["worker_id"] == "wX"
        finally:
            second.stop()


class TestDriveSpecLease:
    def test_lease_generation_lands_on_entry(self, specs, tmp_path):
        entry, record, _ = drive_spec(
            specs[0],
            study_options(cache_root=str(tmp_path / "cache")),
            seed=SEED,
            retry=RetryPolicy(max_attempts=2),
            lease=3,
        )
        assert entry.lease == 3
        assert entry.status == "ok"
        assert record is not None


class TestWorkerReconnectBackoff:
    def test_backoff_schedule_is_seeded_and_deterministic(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=2.0)
        agent_a = WorkerAgent(("127.0.0.1", 1), "w0", seed=SEED, reconnect=policy)
        agent_b = WorkerAgent(("127.0.0.1", 1), "w0", seed=SEED, reconnect=policy)
        schedule_a = [policy.delay(agent_a.seed, agent_a.worker_id, k) for k in range(4)]
        schedule_b = [policy.delay(agent_b.seed, agent_b.worker_id, k) for k in range(4)]
        assert schedule_a == schedule_b
        other = [policy.delay(SEED, "w1", k) for k in range(4)]
        assert schedule_a != other  # per-worker jitter substreams

    def test_agent_gives_up_after_max_attempts(self):
        # Nothing listens on this port: run() must return, not hang.
        policy = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02)
        agent = WorkerAgent(
            ("127.0.0.1", 9), "w0", seed=SEED, reconnect=policy, timeout=0.2
        )
        sleeps = []
        agent._sleep = sleeps.append
        assert agent.run() == 0
        assert len(sleeps) == 1  # one backoff, then gave up


class TestCheapQuery:
    """The ``query`` message: zero-replay sensitivity analytics served
    inline by the coordinator — no study, no lease, no worker."""

    def test_query_answers_without_workers(self, specs, tmp_path):
        coordinator = start_coordinator(tmp_path)
        try:
            client = ServeClient(coordinator.address)
            reply = client.query_sensitivity(specs[0])
            assert reply["type"] == "sensitivity-report"
            assert reply["cached"] is False
            report = reply["report"]
            assert report["trace"] == specs[0].name
            assert set(report["features"]) == {
                "lat_tolerance", "bw_sensitivity", "critical_path_frac"
            }
            assert report["graph"]["nodes"] > 0
            # No study was created as a side effect.
            assert coordinator._studies == {}
        finally:
            coordinator.stop()

    def test_repeat_query_is_memoized(self, specs, tmp_path):
        coordinator = start_coordinator(tmp_path)
        try:
            client = ServeClient(coordinator.address)
            first = client.query_sensitivity(specs[1])
            second = client.query_sensitivity(specs[1])
            assert first["cached"] is False
            assert second["cached"] is True
            assert second["report"] == first["report"]
        finally:
            coordinator.stop()

    def test_unknown_query_kind_rejected(self, specs, tmp_path):
        coordinator = start_coordinator(tmp_path)
        try:
            sock = protocol.connect(*coordinator.address, timeout=5.0)
            try:
                protocol.send_frame(
                    sock, {"type": "query", "kind": "horoscope", "spec": {}}
                )
                reply = protocol.recv_frame(sock)
            finally:
                sock.close()
            assert reply["type"] == "error"
            assert "horoscope" in reply["error"]
        finally:
            coordinator.stop()

    def test_bad_spec_is_an_error_not_a_crash(self, specs, tmp_path):
        import dataclasses

        coordinator = start_coordinator(tmp_path)
        try:
            client = ServeClient(coordinator.address)
            with pytest.raises(ServeError):
                client.query_sensitivity(
                    dataclasses.replace(specs[0], machine="not-a-machine")
                )
            # The coordinator survives and still answers good queries.
            good = client.query_sensitivity(specs[0])
            assert good["type"] == "sensitivity-report"
        finally:
            coordinator.stop()
