"""Simulator tests: event engine, fabric, and the three network models."""

import numpy as np
import pytest

from repro.machines import CIELITO, EDISON, HOPPER
from repro.sim import (
    EventEngine,
    Fabric,
    FlowModel,
    PacketFlowModel,
    PacketModel,
    SimReplay,
    UnsupportedTraceError,
    expand_collectives,
    simulate_trace,
)
from repro.trace.events import Op, OpKind, make_compute
from repro.trace.trace import TraceSet


class TestEventEngine:
    def test_time_order(self):
        engine = EventEngine()
        seen = []
        engine.schedule(2.0, lambda: seen.append(2))
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(3.0, lambda: seen.append(3))
        engine.run()
        assert seen == [1, 2, 3]

    def test_fifo_for_ties(self):
        engine = EventEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append("a"))
        engine.schedule(1.0, lambda: seen.append("b"))
        engine.run()
        assert seen == ["a", "b"]

    def test_now_advances(self):
        engine = EventEngine()
        times = []
        engine.schedule(0.5, lambda: times.append(engine.now))
        engine.schedule(1.5, lambda: times.append(engine.now))
        engine.run()
        assert times == [0.5, 1.5]

    def test_past_scheduling_rejected(self):
        engine = EventEngine()

        def bad():
            engine.schedule(0.0, lambda: None)

        engine.schedule(1.0, bad)
        with pytest.raises(ValueError):
            engine.run()

    def test_cascading_events(self):
        engine = EventEngine()
        seen = []

        def first():
            seen.append("first")
            engine.schedule(engine.now + 1.0, lambda: seen.append("second"))

        engine.schedule(1.0, first)
        engine.run()
        assert seen == ["first", "second"]

    def test_event_budget(self):
        engine = EventEngine()

        def loop():
            engine.schedule(engine.now + 1.0, loop)

        engine.schedule(0.0, loop)
        with pytest.raises(RuntimeError, match="budget"):
            engine.run(max_events=100)


def make_trace(nranks=4, nbytes=65536, rpn=2, **kwargs):
    ranks = []
    for r in range(nranks):
        ranks.append([
            make_compute(0.001),
            Op(OpKind.IRECV, peer=(r - 1) % nranks, nbytes=nbytes, tag=1, req=1),
            Op(OpKind.ISEND, peer=(r + 1) % nranks, nbytes=nbytes, tag=1, req=2),
            Op(OpKind.WAIT, req=1),
            Op(OpKind.WAIT, req=2),
            Op(OpKind.ALLREDUCE, nbytes=64),
        ])
    return TraceSet("ring", "RING", ranks, machine="cielito", ranks_per_node=rpn, **kwargs)


class TestFabric:
    def test_routes_between_ranks(self):
        fabric = Fabric(make_trace(8, rpn=2), CIELITO)
        route = fabric.route(0, 7)
        assert len(route) >= 3  # injection + fabric + ejection

    def test_same_node_empty_route(self):
        fabric = Fabric(make_trace(8, rpn=2), CIELITO)
        assert fabric.route(0, 1) == ()

    def test_route_latency_exceeds_alpha(self):
        fabric = Fabric(make_trace(8, rpn=1), CIELITO)
        route = fabric.route(0, 5)
        assert fabric.route_latency(route) >= CIELITO.latency

    def test_scatter_mapping_honored(self):
        t = make_trace(16, rpn=1)
        t.metadata["mapping"] = "scatter"
        t.metadata["mapping_seed"] = 3
        f1 = Fabric(t, CIELITO)
        t.metadata["mapping"] = "block"
        f2 = Fabric(t, CIELITO)
        assert f1.mapping != f2.mapping

    def test_mapping_length_checked(self):
        with pytest.raises(ValueError):
            Fabric(make_trace(8), CIELITO, mapping=[0, 1])


class TestExpandCollectives:
    def test_no_collectives_left(self):
        flat = expand_collectives(make_trace())
        for stream in flat.ranks:
            assert all(not op.is_collective for op in stream)

    def test_expanded_trace_validates(self):
        expand_collectives(make_trace()).validate()

    def test_p2p_ops_preserved(self):
        original = make_trace()
        flat = expand_collectives(original)
        orig_msgs = original.message_count()
        assert flat.message_count() > orig_msgs  # collective traffic added

    def test_unique_tags_per_instance(self):
        ranks = [[Op(OpKind.BARRIER)], [Op(OpKind.BARRIER)]]
        two = TraceSet("t", "T", [r + [Op(OpKind.BARRIER)] for r in ranks])
        flat = expand_collectives(two)
        tags = {op.tag for stream in flat.ranks for op in stream if op.is_p2p}
        assert len(tags) == 2

    def test_subcomm_expansion(self):
        ranks = [
            [Op(OpKind.ALLREDUCE, nbytes=64, comm=1)],
            [Op(OpKind.ALLREDUCE, nbytes=64, comm=1)],
            [],
        ]
        trace = TraceSet("t", "T", ranks, comms={1: (0, 1)})
        flat = expand_collectives(trace)
        flat.validate()
        assert not flat.ranks[2]


MODELS = ["packet", "flow", "packet-flow"]


class TestModelsAgreeUncontended:
    @pytest.mark.parametrize("model", MODELS)
    def test_single_message_time(self, model):
        nbytes = 1 << 20
        ranks = [
            [Op(OpKind.SEND, peer=1, nbytes=nbytes, tag=1)],
            [Op(OpKind.RECV, peer=0, nbytes=nbytes, tag=1)],
        ]
        trace = TraceSet("t", "T", ranks, machine="cielito", ranks_per_node=1)
        res = simulate_trace(trace, CIELITO, model)
        hockney = CIELITO.latency + nbytes / CIELITO.bandwidth
        assert res.total_time == pytest.approx(hockney, rel=0.25)

    @pytest.mark.parametrize("model", MODELS)
    def test_ring_runs(self, model):
        res = simulate_trace(make_trace(), CIELITO, model)
        assert res.total_time > 0.001
        assert res.model == model
        assert res.events > 0

    def test_models_mutually_close_on_light_traffic(self):
        totals = [simulate_trace(make_trace(), CIELITO, m).total_time for m in MODELS]
        assert max(totals) / min(totals) < 1.1

    @pytest.mark.parametrize("machine", [CIELITO, EDISON, HOPPER])
    def test_all_machines(self, machine):
        res = simulate_trace(make_trace(), machine, "packet-flow")
        assert res.total_time > 0


class TestContention:
    def _hotspot(self, n=8, nbytes=1 << 20):
        ranks = []
        for r in range(n):
            if r == 0:
                ops = [Op(OpKind.IRECV, peer=s, nbytes=nbytes, tag=1, req=s) for s in range(1, n)]
                ops += [Op(OpKind.WAIT, req=s) for s in range(1, n)]
            else:
                ops = [Op(OpKind.SEND, peer=0, nbytes=nbytes, tag=1)]
            ranks.append(ops)
        return TraceSet("hot", "HOT", ranks, machine="cielito", ranks_per_node=1)

    @pytest.mark.parametrize("model", MODELS)
    def test_incast_serializes(self, model):
        n, nbytes = 8, 1 << 20
        res = simulate_trace(self._hotspot(n, nbytes), CIELITO, model)
        serial = (n - 1) * nbytes / CIELITO.bandwidth
        assert res.total_time >= 0.5 * serial

    def test_packet_exclusive_reservation_slowest_or_equal(self):
        totals = {m: simulate_trace(self._hotspot(), CIELITO, m).total_time for m in MODELS}
        assert totals["packet"] >= 0.9 * totals["flow"]

    def test_node_nic_shared(self):
        # Two ranks on one node sending cross-machine share injection.
        nbytes = 4 << 20
        ranks = [
            [Op(OpKind.SEND, peer=2, nbytes=nbytes, tag=1)],
            [Op(OpKind.SEND, peer=3, nbytes=nbytes, tag=2)],
            [Op(OpKind.RECV, peer=0, nbytes=nbytes, tag=1)],
            [Op(OpKind.RECV, peer=1, nbytes=nbytes, tag=2)],
        ]
        shared = TraceSet("t", "T", ranks, machine="cielito", ranks_per_node=2)
        apart = TraceSet("t", "T", ranks, machine="cielito", ranks_per_node=1)
        t_shared = simulate_trace(shared, CIELITO, "flow").total_time
        t_apart = simulate_trace(apart, CIELITO, "flow").total_time
        assert t_shared > 1.5 * t_apart


class TestEngineLimitations:
    def test_packet_rejects_threads(self):
        trace = make_trace(uses_threads=True)
        with pytest.raises(UnsupportedTraceError):
            simulate_trace(trace, CIELITO, "packet")

    def test_flow_rejects_threads_and_split(self):
        with pytest.raises(UnsupportedTraceError):
            simulate_trace(make_trace(uses_threads=True), CIELITO, "flow")
        with pytest.raises(UnsupportedTraceError):
            simulate_trace(make_trace(uses_comm_split=True), CIELITO, "flow")

    def test_packet_allows_split(self):
        res = simulate_trace(make_trace(uses_comm_split=True), CIELITO, "packet")
        assert res.total_time > 0

    def test_packet_flow_handles_everything(self):
        res = simulate_trace(
            make_trace(uses_threads=True, uses_comm_split=True), CIELITO, "packet-flow"
        )
        assert res.total_time > 0

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            simulate_trace(make_trace(), CIELITO, "quantum")


class TestFlowModelInternals:
    def test_ripple_counter_increments(self):
        replay = SimReplay(make_trace(), CIELITO, "flow")
        replay.run()
        assert replay.model.ripple_updates > 0

    def test_frozen_rate_ablation_runs(self):
        replay = SimReplay(make_trace(), CIELITO, "flow", ripple=False)
        result = replay.run()
        assert result.total_time > 0

    def test_max_min_fairness_two_flows(self):
        # Two flows sharing one bottleneck finish in ~2x the solo time.
        nbytes = 8 << 20
        ranks = [
            [Op(OpKind.SEND, peer=1, nbytes=nbytes, tag=1)],
            [Op(OpKind.RECV, peer=0, nbytes=nbytes, tag=1),
             Op(OpKind.RECV, peer=2, nbytes=nbytes, tag=2)],
            [Op(OpKind.SEND, peer=1, nbytes=nbytes, tag=2)],
        ]
        trace = TraceSet("t", "T", ranks, machine="cielito", ranks_per_node=1)
        res = simulate_trace(trace, CIELITO, "flow")
        solo = nbytes / CIELITO.bandwidth
        assert res.total_time == pytest.approx(2 * solo, rel=0.3)


class TestPacketModelInternals:
    def test_packet_count(self):
        nbytes = 10 * 1024
        ranks = [
            [Op(OpKind.SEND, peer=1, nbytes=nbytes, tag=1)],
            [Op(OpKind.RECV, peer=0, nbytes=nbytes, tag=1)],
        ]
        trace = TraceSet("t", "T", ranks, machine="cielito", ranks_per_node=1)
        replay = SimReplay(trace, CIELITO, "packet")
        replay.run()
        assert replay.model.packets_sent == 10  # 10 KiB / 1 KiB packets

    def test_custom_packet_size(self):
        trace = make_trace()
        replay = SimReplay(trace, CIELITO, "packet", packet_size=4096)
        replay.run()
        small = SimReplay(trace, CIELITO, "packet", packet_size=512)
        small.run()
        assert small.model.packets_sent > replay.model.packets_sent

    def test_invalid_packet_size(self):
        with pytest.raises(ValueError):
            SimReplay(make_trace(), CIELITO, "packet", packet_size=0)


class TestSimResultAccounting:
    def test_comm_and_compute_tracked(self):
        res = simulate_trace(make_trace(), CIELITO, "packet-flow")
        assert res.compute_time == pytest.approx(0.001, rel=0.05)
        assert res.comm_time > 0

    def test_messages_and_bytes(self):
        res = simulate_trace(make_trace(nranks=4, nbytes=1000), CIELITO, "packet-flow")
        assert res.messages >= 4
        assert res.bytes_sent >= 4000
