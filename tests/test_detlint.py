"""Per-rule tests for the CFG/dataflow linter (repro.analysis.detlint).

Each rule gets a firing case and a clean twin; the repo-wide test pins
the whole package to the checked-in baseline (zero unbaselined
findings, zero stale allowances).
"""

import textwrap
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.detlint import DETLINT_RULES, lint_paths, lint_source
from repro.analysis.diagnostics import Severity

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Path label inside the measurement-critical warn scope.
SCOPED = "src/repro/core/mod.py"


def lint(src, rel="m.py"):
    return lint_source(textwrap.dedent(src), rel)


def rules(src, rel="m.py"):
    return [d.rule for d in lint(src, rel)]


class TestUnorderedIter:
    def test_set_order_into_dumps_is_error(self):
        src = """
            import json

            def f(items):
                s = set(items)
                return json.dumps(list(s))
            """
        diags = lint(src)
        assert [d.rule for d in diags] == ["det/unordered-iter"]
        assert diags[0].severity == Severity.ERROR

    def test_sorted_before_dumps_is_clean(self):
        src = """
            import json

            def f(items):
                s = set(items)
                return json.dumps(sorted(s))
            """
        assert rules(src) == []

    def test_listing_order_into_fingerprint_is_error(self):
        src = """
            import os

            def f(d):
                files = os.listdir(d)
                return make_fingerprint(files)
            """
        assert rules(src) == ["det/unordered-iter"]

    def test_set_join_into_digest_update_is_error(self):
        src = """
            import hashlib

            def f(items):
                names = {i.name for i in items}
                h = hashlib.sha256()
                h.update(",".join(names).encode())
                return h.hexdigest()
            """
        assert rules(src) == ["det/unordered-iter"]

    def test_capture_warns_only_in_critical_packages(self):
        src = """
            def f(items):
                s = set(items)
                return list(s)
            """
        diags = lint(src, SCOPED)
        assert [d.rule for d in diags] == ["det/unordered-iter"]
        assert diags[0].severity == Severity.WARNING
        assert rules(src, "src/repro/experiments/mod.py") == []

    def test_listcomp_capture_warns_in_scope(self):
        src = """
            def f(active):
                pending = {i for i in range(len(active))}
                return [i for i in pending if active[i]]
            """
        diags = lint(src, SCOPED)
        assert [d.rule for d in diags] == ["det/unordered-iter"]
        assert diags[0].severity == Severity.WARNING

    def test_sorted_comprehension_is_clean_in_scope(self):
        src = """
            def f(active):
                pending = {i for i in range(len(active))}
                return [i for i in sorted(pending) if active[i]]
            """
        assert rules(src, SCOPED) == []

    def test_membership_and_len_are_clean_in_scope(self):
        src = """
            def f(items, probe):
                s = set(items)
                return probe in s, len(s)
            """
        assert rules(src, SCOPED) == []


class TestWallClock:
    def test_wallclock_into_dumps_is_error(self):
        src = """
            import json
            import time

            def f(record):
                record["measured_at"] = time.time()
                return json.dumps(record, sort_keys=True)
            """
        diags = lint(src)
        assert [d.rule for d in diags] == ["det/wall-clock"]
        assert diags[0].severity == Severity.ERROR

    def test_manifest_sink_is_exempt(self):
        src = """
            import time

            def f(entry):
                entry["walltime"] = time.time()
                return write_manifest(entry)
            """
        assert rules(src) == []

    def test_timing_a_deterministic_payload_is_clean(self):
        src = """
            import json
            import time

            def f(record):
                t0 = time.perf_counter()
                payload = json.dumps(record, sort_keys=True)
                return payload, time.perf_counter() - t0
            """
        assert rules(src) == []


class TestObsNondetSeries:
    def test_wallclock_into_deterministic_series_is_error(self):
        src = """
            import time

            from repro import obs

            def timed(work):
                t0 = time.perf_counter()
                work()
                dt = time.perf_counter() - t0
                obs.counter("repro_probe_total").inc(dt)
                return dt
            """
        assert rules(src) == ["det/obs-nondet-series"]

    def test_walltime_named_series_is_clean(self):
        src = """
            import time

            from repro import obs

            def timed(work):
                t0 = time.perf_counter()
                work()
                dt = time.perf_counter() - t0
                obs.counter("repro_probe_seconds_total").inc(dt)
                return dt
            """
        assert rules(src) == []

    def test_deterministic_count_is_clean(self):
        src = """
            from repro import obs

            def bump(n):
                obs.counter("repro_records_total").inc(n)
            """
        assert rules(src) == []


class TestBuiltinHash:
    def test_hash_into_persisted_key_is_error(self):
        src = """
            import json

            def f(spec):
                key = hash(spec)
                return json.dumps({"key": key})
            """
        assert rules(src) == ["det/builtin-hash"]

    def test_hash_for_comparison_is_clean(self):
        src = """
            def same(a, b):
                return hash(a) == hash(b)
            """
        assert rules(src) == []

    def test_hashlib_key_is_clean(self):
        src = """
            import hashlib
            import json

            def f(spec):
                key = hashlib.sha256(repr(spec).encode()).hexdigest()
                return json.dumps({"key": key})
            """
        assert rules(src) == []


class TestGlobalMutation:
    def test_worker_subscript_write_is_error(self):
        src = """
            from repro.core.resilience import WorkerPool

            STATE = {}

            def crunch(task):
                STATE[task[0]] = task[1]
                return task

            def run(jobs):
                return WorkerPool(crunch, jobs)
            """
        assert rules(src) == ["conc/global-mutation"]

    def test_worker_global_assign_is_error(self):
        src = """
            from repro.core.resilience import WorkerPool

            TOTAL = 0

            def crunch(task):
                global TOTAL
                TOTAL = TOTAL + 1
                return task

            def run(jobs):
                return WorkerPool(crunch, jobs)
            """
        assert rules(src) == ["conc/global-mutation"]

    def test_worker_mutator_method_is_error(self):
        src = """
            from repro.core.resilience import WorkerPool

            SEEN = []

            def crunch(task):
                SEEN.append(task)
                return task

            def run(jobs):
                return WorkerPool(crunch, jobs)
            """
        assert rules(src) == ["conc/global-mutation"]

    def test_non_worker_write_is_clean(self):
        src = """
            STATE = {}

            def record(task):
                STATE[task[0]] = task[1]
            """
        assert rules(src) == []

    def test_worker_local_shadow_is_clean(self):
        src = """
            from repro.core.resilience import WorkerPool

            STATE = {}

            def crunch(task):
                STATE = {}
                STATE[task[0]] = task[1]
                return STATE

            def run(jobs):
                return WorkerPool(crunch, jobs)
            """
        assert rules(src) == []


class TestUnpicklablePayload:
    def test_lambda_dispatch_is_error(self):
        src = """
            def f(pool, specs):
                for index, spec in enumerate(specs):
                    pool.submit(index, lambda: spec)
            """
        assert rules(src) == ["conc/unpicklable-payload"]

    def test_nested_function_dispatch_is_error(self):
        src = """
            def f(pool, x):
                def inner(v):
                    return v

                pool.submit(inner, x)
            """
        assert rules(src) == ["conc/unpicklable-payload"]

    def test_worker_returning_engine_is_error(self):
        src = """
            from repro.core.resilience import WorkerPool
            from repro.sim.engine import EventEngine

            def crunch(task):
                engine = EventEngine()
                engine.run()
                return engine

            def run(jobs):
                return WorkerPool(crunch, jobs)
            """
        assert rules(src) == ["conc/unpicklable-payload"]

    def test_plain_data_payload_is_clean(self):
        src = """
            from repro.core.resilience import WorkerPool
            from repro.sim.engine import EventEngine

            def crunch(task):
                engine = EventEngine()
                processed = engine.run()
                return {"processed": processed}

            def run(jobs):
                return WorkerPool(crunch, jobs)
            """
        assert rules(src) == []


class TestForkSharedState:
    def test_module_rng_in_worker_is_error(self):
        src = """
            from repro.core.resilience import WorkerPool
            from repro.util.rng import substream

            SHARED = substream(0, "probe")

            def crunch(task):
                return task + float(SHARED.random())

            def run(jobs):
                return WorkerPool(crunch, jobs)
            """
        assert rules(src) == ["conc/fork-shared-state"]

    def test_per_task_rng_is_clean(self):
        src = """
            from repro.core.resilience import WorkerPool
            from repro.util.rng import substream

            def crunch(task):
                rng = substream(task[1], "probe")
                return task[0] + float(rng.random())

            def run(jobs):
                return WorkerPool(crunch, jobs)
            """
        assert rules(src) == []

    def test_module_rng_outside_worker_is_clean(self):
        src = """
            from repro.util.rng import substream

            SHARED = substream(0, "probe")

            def draw():
                return SHARED.random()
            """
        assert rules(src) == []


class TestOpenNoClose:
    def test_never_closed_is_error(self):
        src = """
            import json

            def f(path):
                stream = open(path)
                payload = json.load(stream)
                return payload
            """
        diags = lint(src)
        assert [d.rule for d in diags] == ["res/open-no-close"]
        assert diags[0].severity == Severity.ERROR

    def test_closed_on_one_branch_only_is_error(self):
        src = """
            def f(path, verbose):
                stream = open(path)
                data = stream.read()
                if verbose:
                    stream.close()
                return data
            """
        assert rules(src) == ["res/open-no-close"]

    def test_with_block_is_clean(self):
        src = """
            import json

            def f(path):
                with open(path) as stream:
                    return json.load(stream)
            """
        assert rules(src) == []

    def test_close_in_finally_is_clean(self):
        src = """
            def f(path):
                stream = open(path)
                try:
                    return stream.read()
                finally:
                    stream.close()
            """
        assert rules(src) == []

    def test_closed_on_every_branch_is_clean(self):
        src = """
            def f(path, verbose):
                stream = open(path)
                if verbose:
                    data = stream.read()
                    stream.close()
                else:
                    data = ""
                    stream.close()
                return data
            """
        assert rules(src) == []

    def test_returned_handle_is_handed_off(self):
        src = """
            def f(path):
                stream = open(path)
                return stream
            """
        assert rules(src) == []

    def test_stored_handle_is_handed_off(self):
        src = """
            def f(self, path):
                stream = open(path)
                self.stream = stream
            """
        assert rules(src) == []


class TestSocketNoTimeout:
    SERVE = "src/repro/serve/mod.py"

    def test_bare_socket_in_serve_is_error(self):
        src = """
            import socket

            def f(host, port):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.connect((host, port))
                return sock.recv(4)
            """
        diags = lint(src, self.SERVE)
        assert [d.rule for d in diags] == ["conc/socket-no-timeout"]
        assert diags[0].severity == Severity.ERROR

    def test_settimeout_in_same_function_is_clean(self):
        src = """
            import socket

            def f(host, port):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.settimeout(5.0)
                sock.connect((host, port))
                return sock.recv(4)
            """
        assert rules(src, self.SERVE) == []

    def test_create_connection_without_timeout_is_error(self):
        src = """
            import socket

            def f(host, port):
                sock = socket.create_connection((host, port))
                return sock.recv(4)
            """
        assert rules(src, self.SERVE) == ["conc/socket-no-timeout"]

    def test_create_connection_with_timeout_kwarg_is_clean(self):
        src = """
            import socket

            def f(host, port):
                sock = socket.create_connection((host, port), timeout=3.0)
                return sock.recv(4)
            """
        assert rules(src, self.SERVE) == []

    def test_accept_result_needs_timeout(self):
        src = """
            def f(listener):
                conn, addr = listener.accept()
                return conn.recv(4)
            """
        assert rules(src, self.SERVE) == ["conc/socket-no-timeout"]

    def test_accept_result_with_settimeout_is_clean(self):
        src = """
            def f(listener, deadline):
                conn, addr = listener.accept()
                conn.settimeout(deadline)
                return conn.recv(4)
            """
        assert rules(src, self.SERVE) == []

    def test_rule_is_scoped_to_serve_package(self):
        src = """
            import socket

            def f(host, port):
                sock = socket.create_connection((host, port))
                return sock.recv(4)
            """
        assert rules(src, "src/repro/core/mod.py") == []
        assert rules(src, "m.py") == []


class TestDriverAndMeta:
    def test_syntax_error_becomes_diagnostic(self):
        diags = lint_source("def broken(:\n", "m.py")
        assert [d.rule for d in diags] == ["det/syntax"]
        assert diags[0].severity == Severity.ERROR

    def test_every_emitted_rule_is_documented(self):
        src = """
            import json

            def f(items):
                s = set(items)
                return json.dumps(list(s))
            """
        for diag in lint(src):
            assert diag.rule in DETLINT_RULES

    def test_findings_are_deterministic(self):
        src = textwrap.dedent(
            """
            import json
            import time

            def f(record):
                return json.dumps({"at": time.time(), "k": hash(record)})
            """
        )
        first = [str(d) for d in lint_source(src, "m.py")]
        second = [str(d) for d in lint_source(src, "m.py")]
        assert first == second
        assert sorted({d.rule for d in lint_source(src, "m.py")}) == [
            "det/builtin-hash", "det/wall-clock",
        ]


class TestRepoUnderBaseline:
    def test_whole_package_within_baseline(self):
        report = lint_paths([SRC_ROOT])
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = baseline.apply(report.diagnostics)
        assert result.kept == [], "\n".join(str(d) for d in result.kept)
        assert result.stale == [], [a.to_json() for a in result.stale]

    def test_baselined_debt_is_documented(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        for allowance in baseline.allowances:
            assert allowance.reason, (
                f"{allowance.rule} in {allowance.path} needs a reason"
            )
