"""Tests for the trace event model."""

import math

import pytest

from repro.trace.events import COLLECTIVE_KINDS, P2P_KINDS, Op, OpKind, make_compute


class TestOpConstruction:
    def test_compute(self):
        op = make_compute(0.5)
        assert op.kind == OpKind.COMPUTE
        assert op.duration == 0.5
        assert math.isnan(op.t_entry)

    def test_send_requires_peer(self):
        with pytest.raises(ValueError, match="peer"):
            Op(OpKind.SEND, nbytes=10)

    def test_rooted_collective_requires_root(self):
        with pytest.raises(ValueError, match="root"):
            Op(OpKind.BCAST, nbytes=10)

    def test_allreduce_needs_no_root(self):
        op = Op(OpKind.ALLREDUCE, nbytes=8)
        assert op.peer == -1

    def test_nonblocking_requires_request(self):
        with pytest.raises(ValueError, match="request"):
            Op(OpKind.ISEND, peer=1, nbytes=10)
        with pytest.raises(ValueError, match="request"):
            Op(OpKind.WAIT)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Op(OpKind.SEND, peer=0, nbytes=-1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Op(OpKind.COMPUTE, duration=-0.1)


class TestOpProperties:
    def test_p2p_flags(self):
        assert Op(OpKind.SEND, peer=1).is_p2p
        assert Op(OpKind.IRECV, peer=1, req=1).is_recv_like
        assert Op(OpKind.ISEND, peer=1, req=1).is_send_like
        assert not Op(OpKind.BARRIER).is_p2p

    def test_collective_flags(self):
        assert Op(OpKind.ALLTOALL, nbytes=4).is_collective
        assert not Op(OpKind.SEND, peer=1).is_collective

    def test_kind_sets_are_disjoint(self):
        assert not (P2P_KINDS & COLLECTIVE_KINDS)

    def test_measured_duration(self):
        op = Op(OpKind.SEND, peer=0, nbytes=8, t_entry=1.0, t_exit=1.5)
        assert op.measured_duration == pytest.approx(0.5)

    def test_equality_ignores_timestamps(self):
        a = Op(OpKind.SEND, peer=1, nbytes=8, t_entry=0.0, t_exit=1.0)
        b = Op(OpKind.SEND, peer=1, nbytes=8)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_metadata(self):
        assert Op(OpKind.SEND, peer=1, nbytes=8) != Op(OpKind.SEND, peer=2, nbytes=8)

    def test_repr_mentions_kind(self):
        assert "SEND" in repr(Op(OpKind.SEND, peer=1, nbytes=8))
        assert "duration" in repr(make_compute(1.0))
