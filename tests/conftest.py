"""Shared test helpers."""

import pytest

from typing import List

from repro.core.pipeline import StudyRecord, ToolRun
from repro.trace.features import NUMERIC_FEATURE_NAMES, SENSITIVITY_FEATURE_NAMES
from repro.util.rng import substream


def fabricate_records(n=60, seed=0):
    """Records shaped like a miniature study (no simulation run)."""
    rng = substream(seed, "fab")
    records = []
    apps = ["CG", "EP", "IS", "LULESH", "CR", "MiniFE"]
    suites = {"CG": "NPB", "EP": "NPB", "IS": "NPB",
              "LULESH": "DOE", "CR": "DOE", "MiniFE": "DOE"}
    for i in range(n):
        app = apps[i % len(apps)]
        cs = app in ("CG", "IS", "CR")
        diff = float(rng.uniform(0.03, 0.2)) if cs else float(rng.uniform(0, 0.015))
        features = {name: float(rng.normal()) for name in NUMERIC_FEATURE_NAMES}
        features["R"] = [64, 128, 256, 512, 1024, 1728][i % 6]
        # Zero-replay sensitivity features, shaped like the real ones
        # (finite, in-range) and weakly correlated with cs.
        features["lat_tolerance"] = float(
            rng.uniform(0.0, 2.5) if cs else rng.uniform(2.0, 6.0)
        )
        features["bw_sensitivity"] = float(
            rng.uniform(0.05, 0.6) if cs else rng.uniform(0.0, 0.1)
        )
        features["critical_path_frac"] = float(rng.uniform(0.0, 1.0))
        assert set(SENSITIVITY_FEATURE_NAMES) <= set(features)
        record = StudyRecord(
            name=f"{app.lower()}.{i}",
            app=app,
            suite=suites[app],
            machine="cielito",
            nranks=int(features["R"]),
            spec_index=i,
            measured_total=1.3,
            measured_comm=0.3,
            comm_fraction=float(rng.uniform(0.02, 0.8)),
            features=features,
        )
        record.mfact = ToolRun(True, total_time=1.0, comm_time=0.2,
                               walltime=0.01)
        record.mfact_cs = cs
        record.mfact_class = "communication-bound" if cs else (
            "load-imbalance-bound" if i % 4 == 1 else "computation-bound")
        for model, factor in (("packet", 40), ("flow", 15), ("packet-flow", 8)):
            record.sims[model] = ToolRun(
                True,
                total_time=1.0 + diff * (1 + 0.02 * rng.normal()),
                comm_time=0.2 * (1 + diff),
                walltime=0.01 * factor * float(rng.lognormal(0, 1)),
            )
        records.append(record)
    return records


@pytest.fixture(scope="session")
def fabricate():
    """Factory fixture: build synthetic study records."""
    return fabricate_records
