"""Golden-trace regression tests.

Three seeded mini-corpus specs — one per machine preset, spanning a
communication-light (CG), communication-heavy (IS) and DOE (CR)
workload — are pinned down to the SHA-256 of their canonical
:class:`~repro.core.pipeline.StudyRecord` JSON and the trace
fingerprint of the stamped trace.  Any change to trace synthesis,
calibration, feature extraction, MFACT, or *any* simulation engine
(scalar or vectorized — canonical records are byte-identical across
modes) shows up here as a hash flip.

If a hash changes because the model intentionally changed, re-pin it
in the same commit and say why in the commit message; a flip in an
optimization-only PR means the fast path diverged from the reference
and is a bug, full stop.
"""

import hashlib
import json

import pytest

from repro.core.pipeline import measure_trace
from repro.util.fingerprint import trace_fingerprint
from repro.workloads.suite import build_trace, mini_corpus_specs

#: spec index -> (trace fingerprint, canonical-record sha256).
#: Record digests re-pinned in PR 10: records gained the three
#: zero-replay sensitivity features (trace fingerprints unchanged).
GOLDEN = {
    0: (  # cg.8.cielito.i000
        "e8a16e420235b915a48f21c643a3ee0e9b4c63dbd468bd8dc1b0cbc1cfd028cc",
        "5bf86488d02a91794c4dbc375a753e405f268001aed0af49e0351abcdc0f0a51",
    ),
    5: (  # cr.8.hopper.i005
        "03c807a632347e8ef87bee492a89879788291c99a416ba90805aff22a8ae3cb6",
        "ca9f99efd68f7503fa945b880b787f188fc5977c96bf4d89660098ca3b8cc474",
    ),
    10: (  # is.8.edison.i010
        "22fc7f6531aafaec696eafde449e4c9949a6a8392ecd847ef6d7a73927a1846d",
        "21cd3876330b8f885874ddec9dad50515f2bdea283210f94874e881921310b9c",
    ),
}


def record_digest(record) -> str:
    payload = json.dumps(record.to_json(canonical=True), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@pytest.mark.parametrize("index", sorted(GOLDEN))
def test_golden_trace_and_record_fingerprints(index):
    spec = mini_corpus_specs()[index]
    trace = build_trace(spec)
    expected_trace, expected_record = GOLDEN[index]
    assert trace_fingerprint(trace) == expected_trace, (
        f"{spec.name}: trace synthesis changed — the stamped trace no longer "
        "matches its pinned fingerprint"
    )
    record = measure_trace(trace, spec_index=spec.index)
    assert record_digest(record) == expected_record, (
        f"{spec.name}: canonical StudyRecord changed — a model, feature or "
        "engine now produces different numbers for a pinned golden trace"
    )


@pytest.mark.parametrize("index", sorted(GOLDEN))
def test_golden_records_identical_in_both_sim_modes(index):
    """The pinned hash is mode-independent: scalar and vectorized
    measurement of a golden trace produce the same canonical bytes."""
    spec = mini_corpus_specs()[index]
    trace = build_trace(spec)
    for mode in (False, True):
        record = measure_trace(trace, spec_index=spec.index, sim_vectorized=mode)
        assert record_digest(record) == GOLDEN[index][1], (
            f"{spec.name}: sim_vectorized={mode} diverged from the golden hash"
        )
