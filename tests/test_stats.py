"""Statistics tests: logistic regression, AIC, stepwise, MCCV, metrics."""

import numpy as np
import pytest

from repro.stats import (
    ConfusionCounts,
    DegenerateLabelsError,
    LogisticModel,
    MAX_VARIABLES,
    aic,
    aicc,
    confusion,
    fit_logistic,
    misclassification_rate,
    monte_carlo_cv,
    stepwise_forward,
)
from repro.util.rng import substream


def make_data(n=200, k=4, informative=(0,), seed=0, noise=0.5):
    rng = substream(seed, "logit-data")
    X = rng.normal(size=(n, k))
    eta = sum(2.5 * X[:, j] for j in informative) + noise * rng.normal(size=n)
    y = (eta > 0).astype(int)
    return X, y


class TestLogisticRegression:
    def test_recovers_separating_direction(self):
        X, y = make_data()
        model = fit_logistic(X, y)
        assert model.coef[1] > 1.0  # informative feature has positive weight
        assert abs(model.coef[2]) < abs(model.coef[1])

    def test_predict_proba_in_unit_interval(self):
        X, y = make_data()
        model = fit_logistic(X, y)
        p = model.predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))

    def test_training_accuracy_high(self):
        X, y = make_data(noise=0.1)
        model = fit_logistic(X, y)
        acc = (model.predict(X) == y).mean()
        assert acc > 0.95

    def test_intercept_only_model(self):
        y = np.array([0, 0, 0, 1])
        model = fit_logistic(np.zeros((4, 0)), y, ())
        assert model.predict_proba(np.zeros((1, 0)))[0] == pytest.approx(0.25, abs=0.05)

    def test_separation_does_not_crash(self):
        X = np.linspace(-1, 1, 20)[:, None]
        y = (X[:, 0] > 0).astype(int)
        model = fit_logistic(X, y)
        assert (model.predict(X) == y).all()

    def test_feature_name_mismatch(self):
        X, y = make_data()
        with pytest.raises(ValueError):
            fit_logistic(X, y, feature_names=("a",))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            fit_logistic(np.zeros((3, 1)), [0, 1, 2])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_logistic(np.zeros((3, 1)), [0, 1])

    def test_predict_wrong_width(self):
        X, y = make_data(k=3)
        model = fit_logistic(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((1, 5)))

    def test_log_likelihood_negative(self):
        X, y = make_data()
        model = fit_logistic(X, y)
        assert model.log_likelihood < 0

    def test_constant_feature_handled(self):
        X, y = make_data(k=2)
        X[:, 1] = 3.0  # zero variance
        model = fit_logistic(X, y)
        assert np.isfinite(model.coef).all()


class TestAIC:
    def test_aic_formula(self):
        X, y = make_data(k=2)
        model = fit_logistic(X, y)
        assert aic(model) == pytest.approx(2 * 3 - 2 * model.log_likelihood)

    def test_aicc_exceeds_aic(self):
        X, y = make_data(n=20, k=2)
        model = fit_logistic(X, y)
        assert aicc(model) > aic(model)

    def test_extra_noise_feature_increases_aic(self):
        X, y = make_data(noise=0.2)
        informative = fit_logistic(X[:, :1], y)
        with_noise = fit_logistic(X[:, :2], y)
        # AIC penalizes the useless second feature (usually).
        assert aic(with_noise) > aic(informative) - 2.5


class TestStepwise:
    def test_selects_informative_first(self):
        X, y = make_data(k=6, informative=(2,), noise=0.2)
        names = [f"f{i}" for i in range(6)]
        result = stepwise_forward(X, y, names)
        assert result.selected[0] == "f2"

    def test_respects_cap(self):
        X, y = make_data(k=10, informative=(0, 1, 2, 3, 4, 5), noise=0.1)
        result = stepwise_forward(X, y, [f"f{i}" for i in range(10)], max_vars=3)
        assert len(result.selected) <= 3

    def test_default_cap_is_five(self):
        assert MAX_VARIABLES == 5

    def test_aic_path_decreases(self):
        X, y = make_data(k=4, informative=(0, 1), noise=0.2)
        result = stepwise_forward(X, y, [f"f{i}" for i in range(4)])
        assert all(b < a for a, b in zip(result.aic_path, result.aic_path[1:]))

    def test_pure_noise_selects_nothing_much(self):
        rng = substream(3, "noise")
        X = rng.normal(size=(100, 5))
        y = rng.integers(0, 2, size=100)
        result = stepwise_forward(X, y, [f"f{i}" for i in range(5)])
        assert len(result.selected) <= 2

    def test_invalid_max_vars(self):
        X, y = make_data()
        with pytest.raises(ValueError):
            stepwise_forward(X, y, [f"f{i}" for i in range(4)], max_vars=0)


class TestMetrics:
    def test_confusion_counts(self):
        c = confusion([1, 1, 0, 0], [1, 0, 1, 0])
        assert (c.tp, c.fn, c.fp, c.tn) == (1, 1, 1, 1)

    def test_rates_match_paper_definitions(self):
        c = ConfusionCounts(tp=8, tn=80, fp=6, fn=2)
        assert c.fn_rate == pytest.approx(2 / 10)
        assert c.fp_rate == pytest.approx(6 / 86)
        assert c.misclassification_rate == pytest.approx(8 / 96)
        assert c.success_rate == pytest.approx(1 - 8 / 96)

    def test_degenerate_rates(self):
        c = ConfusionCounts(tp=0, tn=4, fp=0, fn=0)
        assert c.fn_rate == 0.0
        assert c.fp_rate == 0.0

    def test_misclassification_helper(self):
        assert misclassification_rate([1, 0], [0, 0]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion([1], [1, 0])


class TestMonteCarloCV:
    def test_low_error_on_separable_data(self):
        X, y = make_data(n=150, k=5, informative=(0,), noise=0.2)
        cv = monte_carlo_cv(X, y, [f"f{i}" for i in range(5)], runs=30, seed=1)
        assert cv.trimmed_mr < 0.1
        assert cv.success_rate > 0.9

    def test_informative_variable_always_selected(self):
        X, y = make_data(n=150, k=5, informative=(1,), noise=0.2)
        cv = monte_carlo_cv(X, y, [f"f{i}" for i in range(5)], runs=20, seed=2)
        top = cv.top_variables(1)[0]
        assert top.name == "f1"
        assert top.selected_pct == 100.0

    def test_confusions_per_run(self):
        X, y = make_data(n=60)
        cv = monte_carlo_cv(X, y, [f"f{i}" for i in range(4)], runs=10, seed=0)
        assert len(cv.confusions) == 10
        assert cv.runs == 10

    def test_deterministic_by_seed(self):
        X, y = make_data(n=80)
        a = monte_carlo_cv(X, y, [f"f{i}" for i in range(4)], runs=5, seed=7)
        b = monte_carlo_cv(X, y, [f"f{i}" for i in range(4)], runs=5, seed=7)
        assert a.trimmed_mr == b.trimmed_mr

    def test_train_fraction_validated(self):
        X, y = make_data(n=50)
        with pytest.raises(ValueError):
            monte_carlo_cv(X, y, [f"f{i}" for i in range(4)], train_fraction=1.5)

    def test_too_few_observations(self):
        with pytest.raises(ValueError):
            monte_carlo_cv(np.zeros((3, 1)), [0, 1, 0], ["a"])


class TestDegenerateLabels:
    """Single-class folds raise a typed error; MCCV records them as skipped."""

    def test_fit_raises_on_single_class_labels(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        for y in (np.zeros(20, dtype=int), np.ones(20, dtype=int)):
            with pytest.raises(DegenerateLabelsError, match="single-class"):
                fit_logistic(X, y)

    def test_degenerate_error_is_a_value_error(self):
        # Pre-existing broad handlers keep working.
        assert issubclass(DegenerateLabelsError, ValueError)

    def test_stepwise_propagates_degenerate_labels(self):
        X = np.random.default_rng(1).normal(size=(12, 3))
        with pytest.raises(DegenerateLabelsError):
            stepwise_forward(X, np.ones(12, dtype=int), ["a", "b", "c"])

    def test_aic_finite_under_complete_separation(self):
        # A perfectly separated fit saturates predicted probabilities;
        # the symmetric clamp before log keeps the AIC finite.
        X = np.array([[-2.0], [-1.5], [-1.0], [1.0], [1.5], [2.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        model = fit_logistic(X, y)
        assert np.isfinite(model.log_likelihood)
        assert np.isfinite(model.aic())

    def _rare_positive_data(self, n=10, seed=3):
        rng = substream(seed, "degen")
        X = rng.normal(size=(n, 2))
        y = np.zeros(n, dtype=int)
        y[0] = 1  # one positive: 80/20 folds sometimes train single-class
        return X, y

    def test_mccv_records_degenerate_folds_as_skipped(self):
        X, y = self._rare_positive_data()
        cv = monte_carlo_cv(X, y, ["a", "b"], runs=40, seed=11)
        assert 0 < cv.skipped < 40
        assert cv.completed == 40 - cv.skipped
        assert len(cv.confusions) == cv.completed
        # Selection percentages normalize over completed splits only.
        assert all(0.0 <= v.selected_pct <= 100.0 for v in cv.variable_stats)

    def test_mccv_skipped_defaults_to_zero(self):
        X, y = make_data(n=60)
        cv = monte_carlo_cv(X, y, [f"f{i}" for i in range(4)], runs=5, seed=0)
        assert cv.skipped == 0 and cv.completed == 5

    def test_mccv_all_degenerate_raises(self):
        X = np.random.default_rng(4).normal(size=(10, 2))
        with pytest.raises(DegenerateLabelsError, match="all 5"):
            monte_carlo_cv(X, np.zeros(10, dtype=int), ["a", "b"], runs=5)

    def test_mccv_skipping_keeps_surviving_splits_seed_stable(self):
        # Substreams are indexed by run number, so the splits that do
        # complete are identical whether or not others were skipped.
        X, y = self._rare_positive_data()
        a = monte_carlo_cv(X, y, ["a", "b"], runs=25, seed=9)
        b = monte_carlo_cv(X, y, ["a", "b"], runs=25, seed=9)
        assert a.skipped == b.skipped
        assert [c.__dict__ for c in a.confusions] == [c.__dict__ for c in b.confusions]
