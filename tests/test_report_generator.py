"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.experiments.report import generate_markdown, write_experiments_md


@pytest.fixture(scope="module")
def records(fabricate):
    return fabricate(n=72, seed=4)


class TestReport:
    def test_all_sections_present(self, records):
        md = generate_markdown(records, runs=10)
        for heading in (
            "# EXPERIMENTS",
            "## Table I",
            "## Figure 1",
            "## Figure 2",
            "## Figure 3",
            "## Figure 4",
            "## Figure 5",
            "## Table III",
            "## Table IV",
            "## Section VI",
        ):
            assert heading in md

    def test_table2_optional(self, records):
        md = generate_markdown(records, runs=10)
        assert "## Table II —" not in md
        table2 = {
            "CMC(1024)": {"packet": 10.0, "flow": 2.0, "packet-flow": 1.5, "mfact": 0.1},
            "LULESH(512)": {"packet": 20.0, "flow": 4.0, "packet-flow": 3.0, "mfact": 0.2},
            "MiniFE(1152)": {"packet": 30.0, "flow": 9.0, "packet-flow": 5.0, "mfact": 0.5},
        }
        md2 = generate_markdown(records, table2_result=table2, runs=10)
        assert "## Table II —" in md2
        assert "CMC(1024)" in md2

    def test_paper_reference_values_included(self, records):
        md = generate_markdown(records, runs=10)
        assert "93.2%" in md  # paper's enhanced success rate
        assert "73.4%" in md  # naive heuristic
        assert "26.97" in md  # comm-sensitive max DIFF

    def test_write_to_disk(self, records, tmp_path):
        path = write_experiments_md(records, path=tmp_path / "EXPERIMENTS.md", runs=10)
        assert path.exists()
        assert path.read_text().startswith("# EXPERIMENTS")

    def test_markdown_tables_well_formed(self, records):
        md = generate_markdown(records, runs=10)
        for line in md.splitlines():
            if line.startswith("|") and not line.startswith("|-"):
                assert line.rstrip().endswith("|"), line
