"""Workload generator and pattern tests."""

import numpy as np
import pytest

from repro.machines import CIELITO, EDISON
from repro.trace.events import OpKind
from repro.util.rng import substream
from repro.workloads import (
    DOE_APPS,
    NPB_APPS,
    ProgramBuilder,
    butterfly_exchange,
    generate_doe,
    generate_npb,
    grid_dims,
    halo_exchange,
    irregular_exchange,
    neighbor_lists_grid,
    ring_shift,
    sweep_pipeline,
)


class TestProgramBuilder:
    def test_request_ids_unique_per_rank(self):
        b = ProgramBuilder(2, "A", "t")
        r1 = b.isend(0, 1, 10, 1)
        r2 = b.irecv(0, 1, 10, 2)
        assert r1 != r2

    def test_fresh_tags_increase(self):
        b = ProgramBuilder(2, "A", "t")
        assert b.fresh_tag() != b.fresh_tag()

    def test_collective_emitted_on_all_members(self):
        b = ProgramBuilder(3, "A", "t")
        b.allreduce(64)
        assert all(len(ops) == 1 for ops in b.ops)

    def test_subcomm_collective_only_members(self):
        b = ProgramBuilder(3, "A", "t")
        comm = b.add_comm([0, 2])
        b.barrier(comm)
        assert len(b.ops[1]) == 0
        assert b.uses_comm_split

    def test_build_validates(self):
        b = ProgramBuilder(2, "A", "t")
        b.isend(0, 1, 10, 1)  # never waited, never received
        with pytest.raises(Exception):
            b.build()

    def test_compute_zero_skipped(self):
        b = ProgramBuilder(1, "A", "t")
        b.compute(0, 0.0)
        assert len(b.ops[0]) == 0


class TestGridDims:
    def test_product(self):
        for n in (4, 6, 64, 192, 256, 1728):
            for d in (1, 2, 3):
                dims = grid_dims(n, d)
                assert int(np.prod(dims)) == n

    def test_balance(self):
        assert grid_dims(64, 3) == (4, 4, 4)
        assert grid_dims(64, 2) == (8, 8)

    def test_prime(self):
        assert grid_dims(7, 2) == (7, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_dims(0, 2)


class TestPatterns:
    def _build(self, n=16):
        return ProgramBuilder(n, "A", "t", ranks_per_node=2)

    def test_halo_validates(self):
        b = self._build()
        halo_exchange(b, grid_dims(16, 2), 1024)
        b.barrier()
        b.build()

    def test_halo_neighbor_count(self):
        lists = neighbor_lists_grid(16, (4, 4))
        assert all(len(nbrs) == 4 for nbrs in lists)

    def test_halo_degenerate_dim_skipped(self):
        lists = neighbor_lists_grid(4, (4, 1))
        assert all(len(nbrs) == 2 for nbrs in lists)

    def test_halo_nonperiodic_boundaries(self):
        lists = neighbor_lists_grid(16, (4, 4), periodic=False)
        corner = lists[0]
        assert len(corner) == 2

    def test_halo_size_jitter_matches(self):
        b = self._build()
        halo_exchange(b, (4, 4), 1000, size_jitter=lambda r: 1000 + r)
        b.build()  # validation checks sizes match

    def test_sweep_validates(self):
        b = self._build()
        sweep_pipeline(b, (4, 4), 512)
        b.build()

    def test_sweep_corner_has_no_upstream(self):
        b = self._build()
        sweep_pipeline(b, (4, 4), 512)
        assert b.ops[0][0].kind == OpKind.SEND

    def test_sweep_reverse(self):
        b = self._build()
        sweep_pipeline(b, (4, 4), 512, reverse=True)
        b.build()
        assert b.ops[15][0].kind == OpKind.SEND

    def test_butterfly_validates(self):
        b = self._build()
        butterfly_exchange(b, lambda k: 256 << k)
        b.build()

    def test_butterfly_non_power_of_two(self):
        b = ProgramBuilder(6, "A", "t")
        butterfly_exchange(b, lambda k: 128)
        b.barrier()
        b.build()

    def test_irregular_validates(self):
        b = self._build()
        rng = substream(1, "irr")
        irregular_exchange(b, rng, 3.0, lambda r: int(r.integers(100, 1000)))
        b.build()

    def test_irregular_no_self_messages(self):
        b = self._build()
        rng = substream(2, "irr")
        irregular_exchange(b, rng, 5.0, lambda r: 100)
        for rank, ops in enumerate(b.ops):
            for op in ops:
                if op.is_p2p:
                    assert op.peer != rank

    def test_ring_shift_validates(self):
        b = self._build()
        ring_shift(b, 2048, displacement=3)
        b.build()


ALL_APPS = [("NPB", name) for name in NPB_APPS] + [("DOE", name) for name in DOE_APPS]


class TestGenerators:
    @pytest.mark.parametrize("suite,app", ALL_APPS)
    def test_every_app_generates_valid_trace(self, suite, app):
        gen = generate_npb if suite == "NPB" else generate_doe
        trace = gen(app, 16, CIELITO, seed=5, compute_per_iter=0.001)
        assert trace.nranks == 16
        assert trace.op_count() > 0
        # build() already validated; re-validate to be sure.
        trace.validate()

    def test_deterministic_given_seed(self):
        a = generate_npb("CG", 16, CIELITO, seed=9, compute_per_iter=0.002)
        b = generate_npb("CG", 16, CIELITO, seed=9, compute_per_iter=0.002)
        for s1, s2 in zip(a.ranks, b.ranks):
            assert s1 == s2

    def test_seed_changes_trace(self):
        a = generate_doe("FB", 16, CIELITO, seed=1, compute_per_iter=0.001)
        b = generate_doe("FB", 16, CIELITO, seed=2, compute_per_iter=0.001)
        assert any(s1 != s2 for s1, s2 in zip(a.ranks, b.ranks))

    def test_traffic_invariant_under_compute_budget(self):
        """The calibration contract: changing only the compute budget
        must not change the communication structure."""
        a = generate_doe("FB", 16, CIELITO, seed=3, compute_per_iter=0.0)
        b = generate_doe("FB", 16, CIELITO, seed=3, compute_per_iter=0.01)
        msgs_a = [
            (r, op.peer, op.nbytes, op.tag)
            for r, ops in enumerate(a.ranks)
            for op in ops
            if op.is_send_like
        ]
        msgs_b = [
            (r, op.peer, op.nbytes, op.tag)
            for r, ops in enumerate(b.ranks)
            for op in ops
            if op.is_send_like
        ]
        assert msgs_a == msgs_b

    def test_compute_budget_inserted(self):
        trace = generate_npb("EP", 8, CIELITO, seed=1, compute_per_iter=0.01)
        comp = sum(
            op.duration for ops in trace.ranks for op in ops if op.kind == OpKind.COMPUTE
        )
        assert comp == pytest.approx(8 * 6 * 0.01, rel=0.15)

    def test_imbalance_spreads_compute(self):
        trace = generate_npb("EP", 32, CIELITO, seed=1, compute_per_iter=0.01, imbalance=0.5)
        per_rank = [
            sum(op.duration for op in ops if op.kind == OpKind.COMPUTE)
            for ops in trace.ranks
        ]
        assert max(per_rank) > 1.3 * min(per_rank)

    def test_iters_override(self):
        short = generate_npb("CG", 16, CIELITO, seed=1, iters=2)
        long = generate_npb("CG", 16, CIELITO, seed=1, iters=8)
        assert long.op_count() > short.op_count()
        assert short.metadata["iters"] == 2

    def test_flags_propagate(self):
        trace = generate_doe(
            "AMG", 16, CIELITO, seed=1, use_threads=True, use_comm_split=True
        )
        assert trace.uses_threads and trace.uses_comm_split

    def test_unknown_app(self):
        with pytest.raises(ValueError):
            generate_npb("ZZ", 16, CIELITO, seed=1)
        with pytest.raises(ValueError):
            generate_doe("ZZ", 16, CIELITO, seed=1)

    def test_machine_recorded(self):
        trace = generate_npb("FT", 16, EDISON, seed=1)
        assert trace.machine == "edison"

    def test_alltoall_apps_emit_alltoall(self):
        trace = generate_npb("FT", 16, CIELITO, seed=1)
        kinds = {op.kind for ops in trace.ranks for op in ops}
        assert OpKind.ALLTOALL in kinds

    def test_halo_apps_emit_p2p(self):
        trace = generate_doe("LULESH", 27, CIELITO, seed=1)
        assert trace.message_count() > 0
