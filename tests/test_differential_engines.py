"""Differential test harness for the replay engines.

Replays one calibrated small trace per workload generator (every NPB
and DOE app at 4-8 ranks) through all three simulation engines and the
MFACT model, and cross-checks them against each other:

* packet, flow and packet-flow predictions agree within documented
  tolerances (they share the MPI replay layer and differ only in
  congestion modeling, so on small calibrated traces they must stay
  close — measured spread on this grid is <5% of total time);
* MFACT vs simulation DIFFtotal is finite for every engine;
* the whole pipeline is bitwise-deterministic: rebuilding and
  re-simulating the same spec yields the exact same trace fingerprint
  and the exact same predicted times.
"""

import math

import pytest

from repro.core.difftotal import diff_total
from repro.machines.presets import get_machine
from repro.mfact.logical_clock import model_trace
from repro.sim.mpi_replay import simulate_trace
from repro.util.fingerprint import trace_fingerprint
from repro.workloads.doe import DOE_APPS
from repro.workloads.npb import NPB_APPS
from repro.workloads.suite import TraceSpec, build_trace

ENGINES = ("packet", "flow", "packet-flow")

#: Documented cross-engine agreement tolerances on calibrated traces
#: (relative to the packet-flow reference).  Empirical spread on this
#: grid is <= 0.05 for total time and <= 0.15 for communication time;
#: the bounds leave margin without hiding a real model divergence.
TOTAL_TOLERANCE = 0.15
COMM_TOLERANCE = 0.40

#: Communication-fraction target per app (mirrors each generator's
#: typical corpus profile; keeps calibration realistic and cheap).
_COMM_TARGETS = {
    "EP": 0.02, "DT": 0.08, "IS": 0.45, "FT": 0.40, "CG": 0.30,
    "MG": 0.20, "LU": 0.15, "BT": 0.10, "SP": 0.15,
    "BIGFFT": 0.45, "CR": 0.50, "AMG": 0.25, "MINIFE": 0.08,
    "MGPROD": 0.18, "FB": 0.35, "LULESH": 0.08, "CNS": 0.12,
    "CMC": 0.04, "NEKBONE": 0.30,
}

ALL_APPS = sorted(NPB_APPS) + sorted(DOE_APPS)


def grid_spec(app: str, seed: int = 11) -> TraceSpec:
    """One small calibrated spec for ``app`` (4-8 ranks, 2 nodes)."""
    suite = "NPB" if app in NPB_APPS else "DOE"
    nranks = 4 if app in ("EP", "CMC") else 8
    return TraceSpec(
        index=ALL_APPS.index(app),
        app=app,
        suite=suite,
        nranks=nranks,
        machine=("cielito", "edison", "hopper")[ALL_APPS.index(app) % 3],
        seed=seed,
        scale=0.05,
        comm_target=_COMM_TARGETS[app],
        imbalance=0.05,
        ranks_per_node=nranks // 2,
    )


@pytest.fixture(scope="module")
def grid():
    """app -> (trace, machine, {engine: SimResult}, MFACTReport)."""
    out = {}
    for app in ALL_APPS:
        spec = grid_spec(app)
        trace = build_trace(spec)
        machine = get_machine(spec.machine)
        sims = {engine: simulate_trace(trace, machine, engine) for engine in ENGINES}
        out[app] = (trace, machine, sims, model_trace(trace, machine))
    return out


class TestEngineAgreement:
    @pytest.mark.parametrize("app", ALL_APPS)
    def test_engines_agree_on_total_time(self, grid, app):
        _, _, sims, _ = grid[app]
        reference = sims["packet-flow"].total_time
        assert reference > 0
        for engine in ENGINES:
            spread = abs(sims[engine].total_time - reference) / reference
            assert spread <= TOTAL_TOLERANCE, (
                f"{app}: {engine} total {sims[engine].total_time:.6f} vs "
                f"packet-flow {reference:.6f} ({100 * spread:.1f}% apart)"
            )

    @pytest.mark.parametrize("app", ALL_APPS)
    def test_engines_agree_on_comm_time(self, grid, app):
        _, _, sims, _ = grid[app]
        reference = max(sims["packet-flow"].comm_time, 1e-12)
        for engine in ENGINES:
            spread = abs(sims[engine].comm_time - reference) / reference
            assert spread <= COMM_TOLERANCE, (
                f"{app}: {engine} comm time {100 * spread:.1f}% from packet-flow"
            )

    @pytest.mark.parametrize("app", ALL_APPS)
    def test_difftotal_is_finite_for_every_engine(self, grid, app):
        _, _, sims, report = grid[app]
        assert math.isfinite(report.baseline_total_time)
        assert report.baseline_total_time > 0
        for engine in ENGINES:
            diff = diff_total(sims[engine].total_time, report.baseline_total_time)
            assert math.isfinite(diff), f"{app}/{engine}: DIFFtotal is not finite"
            assert diff >= 0

    @pytest.mark.parametrize("app", ALL_APPS)
    def test_engines_conserve_traffic(self, grid, app):
        """All engines replay the same expanded message stream."""
        _, _, sims, _ = grid[app]
        reference = sims["packet-flow"]
        for engine in ENGINES:
            assert sims[engine].messages == reference.messages
            assert sims[engine].bytes_sent == reference.bytes_sent


class TestBitwiseStability:
    """Same spec, same seed -> the exact same numbers, twice."""

    @pytest.mark.parametrize("app", ["CG", "IS", "LULESH", "CR"])
    def test_rebuild_is_bitwise_identical(self, app):
        first = build_trace(grid_spec(app))
        second = build_trace(grid_spec(app))
        assert trace_fingerprint(first) == trace_fingerprint(second)

    @pytest.mark.parametrize("app", ["CG", "NEKBONE"])
    def test_resimulation_is_bitwise_identical(self, grid, app):
        trace, machine, sims, report = grid[app]
        for engine in ENGINES:
            again = simulate_trace(trace, machine, engine)
            assert again.total_time == sims[engine].total_time
            assert again.comm_time == sims[engine].comm_time
            assert again.events == sims[engine].events
        again_report = model_trace(trace, machine)
        assert again_report.baseline_total_time == report.baseline_total_time
        assert again_report.baseline_comm_time == report.baseline_comm_time
