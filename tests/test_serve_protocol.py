"""Wire framing and journal durability for the distributed service."""

import json
import socket
import threading

import pytest

from repro.serve import protocol
from repro.serve.journal import Journal


def socket_pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestFraming:
    def test_round_trip(self):
        a, b = socket_pair()
        try:
            message = {"type": "hello", "worker_id": "w0", "n": 3, "ok": True}
            protocol.send_frame(a, message)
            assert protocol.recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_many_frames_in_sequence(self):
        a, b = socket_pair()
        try:
            for i in range(20):
                protocol.send_frame(a, {"i": i, "pad": "x" * i * 100})
            for i in range(20):
                assert protocol.recv_frame(b)["i"] == i
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket_pair()
        try:
            protocol.send_frame(a, {"last": True})
            a.close()
            assert protocol.recv_frame(b) == {"last": True}
            assert protocol.recv_frame(b) is None
        finally:
            b.close()

    def test_torn_frame_raises(self):
        a, b = socket_pair()
        try:
            payload = json.dumps({"big": "x" * 100}).encode()
            a.sendall(len(payload).to_bytes(4, "big") + payload[: len(payload) // 2])
            a.close()
            with pytest.raises(protocol.ProtocolError, match="mid-frame"):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_oversized_length_prefix_raises(self):
        a, b = socket_pair()
        try:
            a.sendall((protocol.MAX_FRAME + 1).to_bytes(4, "big"))
            with pytest.raises(protocol.ProtocolError, match="MAX_FRAME"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_payload_raises(self):
        a, b = socket_pair()
        try:
            payload = json.dumps([1, 2, 3]).encode()
            a.sendall(len(payload).to_bytes(4, "big") + payload)
            with pytest.raises(protocol.ProtocolError, match="JSON object"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_garbage_payload_raises(self):
        a, b = socket_pair()
        try:
            a.sendall((4).to_bytes(4, "big") + b"\xff\xfe\x00\x01")
            with pytest.raises(protocol.ProtocolError, match="JSON"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_send_refused(self):
        a, b = socket_pair()
        try:
            with pytest.raises(protocol.ProtocolError, match="MAX_FRAME"):
                protocol.send_frame(a, {"blob": "x" * (protocol.MAX_FRAME + 1)})
        finally:
            a.close()
            b.close()

    def test_idle_socket_times_out(self):
        a, b = socket_pair()
        b.settimeout(0.05)
        try:
            with pytest.raises(TimeoutError):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_connect_sets_timeout(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.settimeout(5.0)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()[:2]
        accepted = []

        def accept():
            conn, _ = listener.accept()
            conn.settimeout(5.0)
            accepted.append(conn)

        thread = threading.Thread(target=accept)
        thread.start()
        sock = protocol.connect(host, port, timeout=2.5)
        thread.join()
        try:
            assert sock.gettimeout() == 2.5
        finally:
            sock.close()
            for conn in accepted:
                conn.close()
            listener.close()


class TestAddressing:
    def test_parse_and_format_round_trip(self):
        assert protocol.parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert protocol.format_address(("10.0.0.5", 80)) == "10.0.0.5:80"

    def test_parse_defaults_host(self):
        assert protocol.parse_address(":9000") == ("127.0.0.1", 9000)

    @pytest.mark.parametrize("bad", ["nohost", "host:", "host:abc", ""])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            protocol.parse_address(bad)


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append({"event": "study", "study_id": "s1"})
            journal.append({"event": "entry", "index": 0})
        assert Journal(path).replay() == [
            {"event": "study", "study_id": "s1"},
            {"event": "entry", "index": 0},
        ]

    def test_missing_file_replays_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.jsonl").replay() == []

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append({"event": "entry", "index": 0})
        with path.open("a") as fh:
            fh.write('{"event": "entry", "ind')  # mid-append crash
        events = Journal(path).replay()
        assert events == [{"event": "entry", "index": 0}]

    def test_non_object_lines_are_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('[1, 2]\n{"event": "entry"}\nnull\n')
        assert Journal(path).replay() == [{"event": "entry"}]

    def test_append_after_replay_extends(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append({"n": 1})
        with Journal(path) as journal:
            assert journal.replay() == [{"n": 1}]
            journal.append({"n": 2})
        assert [e["n"] for e in Journal(path).replay()] == [1, 2]
