"""Topology tests: structure, routing validity, determinism."""

import networkx as nx
import pytest

from repro.topology import (
    Dragonfly,
    FatTree,
    Torus3D,
    block_mapping,
    build_topology,
    fit_dragonfly,
    fit_fattree,
    fit_torus_dims,
    random_mapping,
    round_robin_mapping,
)


def route_is_path(topo, src, dst):
    """Follow a route through the edge list; it must go src -> dst."""
    graph = topo.to_networkx()
    by_link = {data["link"]: (u, v) for u, v, data in graph.edges(data=True)}
    route = topo.route(src, dst)
    return route, by_link


class TestTorus:
    def test_fit_covers(self):
        for n in (1, 5, 64, 100, 108, 1000):
            dims = fit_torus_dims(n)
            assert dims[0] * dims[1] * dims[2] >= n

    def test_fit_is_near_cubic(self):
        a, b, c = fit_torus_dims(64)
        assert (a, b, c) == (4, 4, 4)

    def test_coords_roundtrip(self):
        t = Torus3D((3, 4, 5))
        for node in range(t.nnodes):
            assert t.node_at(*t.coords(node)) == node

    def test_route_empty_for_self(self):
        t = Torus3D((4, 4, 4))
        assert t.route(5, 5) == ()

    def test_route_follows_edges(self):
        t = Torus3D((4, 3, 2))
        by_link = {link: (u, v) for u, v, link in t._edges()}
        for src, dst in [(0, 23), (7, 2), (11, 12), (23, 0)]:
            here = src
            for link in t.route(src, dst):
                u, v = by_link[link]
                assert u == here
                here = v
            assert here == dst

    def test_route_is_minimal_on_ring(self):
        t = Torus3D((8, 1, 1))
        # 0 -> 3 goes forward (3 hops), 0 -> 6 goes backward (2 hops).
        assert t.hop_count(0, 3) == 3
        assert t.hop_count(0, 6) == 2

    def test_dimension_order(self):
        t = Torus3D((4, 4, 4))
        # x differences resolve before y and z.
        route = t.route(0, t.node_at(1, 1, 1))
        assert len(route) == 3

    def test_route_cached(self):
        t = Torus3D((4, 4, 4))
        assert t.route(1, 2) is t.route(1, 2)

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            Torus3D((0, 4, 4))

    def test_out_of_range_node(self):
        t = Torus3D((2, 2, 2))
        with pytest.raises(ValueError):
            t.route(0, 8)

    def test_six_links_per_node(self):
        t = Torus3D((3, 3, 3))
        assert t.nlinks == 27 * 6


class TestDragonfly:
    def test_fit_covers(self):
        for n in (1, 8, 72, 100, 342, 1000):
            p, a, h, g = fit_dragonfly(n)
            assert p * a * g >= n
            assert g <= a * h + 1

    def test_locate(self):
        d = Dragonfly(2, 4, 2, 9)
        group, router = d.locate(71)
        assert 0 <= group < 9 and 0 <= router < 4

    def test_intra_router_route_empty(self):
        d = Dragonfly(2, 4, 2, 9)
        assert d.route(0, 1) == ()  # both nodes on router 0

    def test_intra_group_route_single_local(self):
        d = Dragonfly(2, 4, 2, 9)
        assert len(d.route(0, 2)) == 1

    def test_inter_group_at_most_three_hops(self):
        d = Dragonfly(2, 4, 2, 9)
        for src in range(0, d.nnodes, 7):
            for dst in range(0, d.nnodes, 11):
                assert len(d.route(src, dst)) <= 3

    def test_routes_follow_edges(self):
        d = Dragonfly(2, 4, 2, 9)
        by_link = {link: (u, v) for u, v, link in d._edges()}
        for src, dst in [(0, 70), (5, 40), (33, 8), (71, 0)]:
            sg, sr = d.locate(src)
            dg, dr = d.locate(dst)
            here = ("r", sg, sr)
            for link in d.route(src, dst):
                u, v = by_link[link]
                assert u == here, f"route {src}->{dst} broken at {link}"
                here = v
            assert here == ("r", dg, dr)

    def test_trunk_spreading_uses_multiple_links(self):
        # Small group count, many ports: parallel trunks must be used.
        d = Dragonfly(2, 8, 4, 5)
        links = set()
        for src in range(0, 16):  # group 0 nodes
            for dst in range(16, 32):  # group 1 nodes
                for link in d.route(src, dst):
                    if link >= d._global_base:
                        links.add(link)
        assert len(links) > 1

    def test_too_many_groups_rejected(self):
        with pytest.raises(ValueError):
            Dragonfly(2, 4, 2, 10)


class TestFatTree:
    def test_fit_covers(self):
        for n in (1, 10, 64, 100):
            m, nn, r = fit_fattree(n)
            assert m * nn >= n

    def test_same_leaf_two_hops(self):
        f = FatTree(4, 4, 4)
        assert len(f.route(0, 1)) == 2

    def test_cross_leaf_four_hops(self):
        f = FatTree(4, 4, 4)
        assert len(f.route(0, 15)) == 4

    def test_dmod_routing_funnels_by_destination(self):
        f = FatTree(4, 4, 4)
        # Same destination from different leaves uses the same root.
        r1 = f.route(0, 15)
        r2 = f.route(4, 15)
        assert r1[1] != r2[1]  # different up links
        assert r1[2] == r2[2]  # same down link (same root)

    def test_routes_follow_edges(self):
        f = FatTree(3, 2, 2)
        by_link = {link: (u, v) for u, v, link in f._edges()}
        for src in range(f.nnodes):
            for dst in range(f.nnodes):
                if src == dst:
                    continue
                here = ("node", src)
                for link in f.route(src, dst):
                    u, v = by_link[link]
                    assert u == here
                    here = v
                assert here == ("node", dst)


class TestBuildTopology:
    def test_families(self):
        assert isinstance(build_topology("torus3d", 27), Torus3D)
        assert isinstance(build_topology("dragonfly", 72), Dragonfly)
        assert isinstance(build_topology("fattree", 64), FatTree)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown topology"):
            build_topology("hypercube", 16)


class TestMappings:
    def test_block(self):
        assert block_mapping(6, 2) == [0, 0, 1, 1, 2, 2]

    def test_round_robin(self):
        assert round_robin_mapping(5, 2) == [0, 1, 0, 1, 0]

    def test_random_respects_capacity(self):
        mapping = random_mapping(64, 4, seed=9)
        from collections import Counter

        assert max(Counter(mapping).values()) <= 4

    def test_random_deterministic(self):
        assert random_mapping(32, 4, seed=1) == random_mapping(32, 4, seed=1)
        assert random_mapping(32, 4, seed=1) != random_mapping(32, 4, seed=2)
