"""Tests for RNG substreams, statistics helpers and validation."""

import numpy as np
import pytest

from repro.util import rng as rng_mod
from repro.util.stats import ecdf, fraction_within, percentile_of, trimmed_mean
from repro.util.validation import check_nonnegative, check_positive, check_rank, require


class TestSubstreams:
    def test_deterministic(self):
        a = rng_mod.substream(42, "x", 1).integers(0, 1 << 30, 10)
        b = rng_mod.substream(42, "x", 1).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_label_paths_independent(self):
        a = rng_mod.substream(42, "x", 1).integers(0, 1 << 30, 10)
        b = rng_mod.substream(42, "x", 2).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_seed_changes_stream(self):
        a = rng_mod.substream(1, "x").integers(0, 1 << 30, 10)
        b = rng_mod.substream(2, "x").integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_spawn_accepts_int(self):
        gen = rng_mod.spawn(7, "child")
        assert isinstance(gen, np.random.Generator)

    def test_spawn_rejects_generator(self):
        with pytest.raises(TypeError):
            rng_mod.spawn(np.random.default_rng(0), "child")


class TestTrimmedMean:
    def test_plain_mean_when_no_trim(self):
        assert trimmed_mean([1, 2, 3], trim=0.0) == pytest.approx(2.0)

    def test_discards_extremes(self):
        values = [0.0] * 2 + [5.0] * 96 + [100.0] * 2
        assert trimmed_mean(values, trim=0.02) == pytest.approx(5.0)

    def test_matches_paper_protocol_on_100_runs(self):
        values = list(range(100))
        # Discards 2 smallest and 2 largest.
        assert trimmed_mean(values) == pytest.approx(np.mean(range(2, 98)))

    def test_invalid_trim(self):
        with pytest.raises(ValueError):
            trimmed_mean([1.0], trim=0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            trimmed_mean([])


class TestECDF:
    def test_sorted_output(self):
        xs, ps = ecdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert ps[-1] == 1.0

    def test_probabilities_increase(self):
        _, ps = ecdf(np.random.default_rng(0).random(50))
        assert np.all(np.diff(ps) > 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ecdf([])


class TestFractionWithin:
    def test_all_within(self):
        assert fraction_within([0.01, 0.02], 0.05) == 1.0

    def test_half(self):
        assert fraction_within([1, 2, 3, 4], 2) == 0.5

    def test_boundary_inclusive(self):
        assert fraction_within([0.05], 0.05) == 1.0


class TestPercentile:
    def test_median(self):
        assert percentile_of([1, 2, 3], 50) == 2.0


class TestValidation:
    def test_require_passes(self):
        require(True, "never")

    def test_require_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_check_nonnegative(self):
        assert check_nonnegative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_nonnegative(-1, "x")

    def test_check_rank(self):
        assert check_rank(3, 4) == 3
        with pytest.raises(ValueError):
            check_rank(4, 4)
        with pytest.raises(ValueError):
            check_rank(-1, 4)
        with pytest.raises(TypeError):
            check_rank(True, 4)
        with pytest.raises(TypeError):
            check_rank(1.5, 4)
