"""Observability tests: registry semantics, determinism, CLI surfaces.

The load-bearing property is mode-independence: a seeded corpus run
must produce the same non-walltime metrics at ``-j 1`` and ``-j 4``,
even under an active fault plan, because every instrument merges
order-free and every histogram shares one bucket scheme.  The rest
covers instrument semantics (counter exactness, gauge high-water mark,
bucket boundaries), span nesting, no-op mode, the Prometheus
render/parse round trip, manifest schema v1→v3 loading, the warm-cache
``compute_walltime`` split and the ``measure`` exit-code table.
"""

import json

import pytest

from repro import obs
from repro.obs.registry import (
    HISTOGRAM_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    deterministic_view,
    is_walltime_series,
)
from repro.obs.report import (
    load_snapshot,
    parse_prometheus,
    render_prometheus,
    render_report,
    render_top_spans,
)
from repro.core.executor import execute_study
from repro.core.resilience import RetryPolicy
from repro.trace.cli import (
    EXIT_BUDGET,
    EXIT_ERROR,
    EXIT_OK,
    EXIT_WARN,
    measure_exit_code,
)
from repro.trace.cli import main as cli_main
from repro.trace.dumpi import write_trace
from repro.util.faults import FaultPlan, FaultSpec, fault_plan_env
from repro.util.manifest import (
    MANIFEST_VERSION,
    ManifestEntry,
    ManifestError,
    ManifestFieldWarning,
    RunManifest,
)
from repro.workloads.suite import build_trace, mini_corpus_specs

SEED = 83
N = 3

#: Real backoff shape, tiny delays — chaos runs stay fast.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.005, max_delay=0.02)


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts and ends in no-op mode with a clean registry."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def specs():
    return mini_corpus_specs(N, seed=SEED)


# -- instrument semantics -----------------------------------------------------


class TestInstruments:
    def test_counter_stays_integer_exact_at_large_values(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total")
        c.inc(2**62)
        c.inc(1)
        value = reg.snapshot().counters["repro_test_total"]
        assert value == 2**62 + 1  # a float would have rounded this away
        assert isinstance(value, int)

    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("repro_test_total").inc(-1)

    def test_gauge_set_max_keeps_high_water_mark(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_test_depth")
        g.set_max(5)
        g.set_max(3)
        assert reg.snapshot().gauges["repro_test_depth"] == 5
        g.set(2)  # plain set overwrites
        assert reg.snapshot().gauges["repro_test_depth"] == 2

    def test_histogram_bucket_boundaries_and_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_sizes")
        h.observe(HISTOGRAM_BUCKETS[0])  # exactly on a bound: that bucket
        h.observe(HISTOGRAM_BUCKETS[0] * 1.0001)  # just above: next bucket
        h.observe(HISTOGRAM_BUCKETS[-1] * 10)  # beyond the top: overflow slot
        data = reg.snapshot().histograms["repro_test_sizes"]
        assert data["counts"][0] == 1
        assert data["counts"][1] == 1
        assert data["counts"][-1] == 1
        assert data["count"] == 3
        assert len(data["counts"]) == len(HISTOGRAM_BUCKETS) + 1

    def test_same_labels_any_order_is_one_series(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_test_total", engine="packet", status="ok")
        b = reg.counter("repro_test_total", status="ok", engine="packet")
        assert a is b
        a.inc()
        snap = reg.snapshot()
        assert snap.counters['repro_test_total{engine="packet",status="ok"}'] == 1

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("not a metric name")

    def test_merge_is_order_free(self):
        def make(seed_value):
            reg = MetricsRegistry()
            reg.counter("repro_test_total").inc(seed_value)
            reg.gauge("repro_test_depth").set_max(seed_value)
            reg.histogram("repro_test_sizes").observe(float(seed_value))
            return reg.snapshot()

        a, b = make(3), make(7)
        left, right = MetricsRegistry(), MetricsRegistry()
        left.merge_snapshot(a)
        left.merge_snapshot(b)
        right.merge_snapshot(b)
        right.merge_snapshot(a)
        assert left.snapshot() == right.snapshot()
        merged = left.snapshot()
        assert merged.counters["repro_test_total"] == 10
        assert merged.gauges["repro_test_depth"] == 7  # max, not sum
        assert merged.histograms["repro_test_sizes"]["count"] == 2

    def test_merge_rejects_bucket_scheme_mismatch(self):
        reg = MetricsRegistry()
        bad = MetricsSnapshot(
            histograms={"repro_test_sizes": {"counts": [1, 2, 3], "sum": 1.0, "count": 6}}
        )
        with pytest.raises(ValueError, match="bucket scheme"):
            reg.merge_snapshot(bad)

    def test_merge_accepts_json_image(self):
        reg = MetricsRegistry()
        reg.merge_snapshot({"counters": {"repro_test_total": 4}})
        assert reg.snapshot().counters["repro_test_total"] == 4


# -- spans --------------------------------------------------------------------


class TestSpans:
    def test_nesting_builds_slash_paths(self):
        with obs.collect_task() as reg:
            with obs.span("record"):
                with obs.span("mfact"):
                    with obs.span("replay"):
                        pass
                with obs.span("mfact"):
                    pass
            snap = reg.snapshot()
        assert snap.spans["record"]["count"] == 1
        assert snap.spans["record/mfact"]["count"] == 2
        assert snap.spans["record/mfact/replay"]["count"] == 1
        assert snap.spans["record"]["total_seconds"] >= 0.0

    def test_span_survives_exception(self):
        with obs.collect_task() as reg:
            with pytest.raises(RuntimeError):
                with obs.span("boom"):
                    raise RuntimeError("x")
            snap = reg.snapshot()
        assert snap.spans["boom"]["count"] == 1


# -- no-op mode and task collection -------------------------------------------


class TestActiveRegistry:
    def test_noop_mode_costs_nothing_and_records_nothing(self):
        assert not obs.enabled()
        obs.counter("repro_test_total").inc()
        obs.gauge("repro_test_depth").set_max(9)
        obs.histogram("repro_test_sizes").observe(1.0)
        with obs.span("anything"):
            pass
        assert obs.snapshot().is_empty()
        # Null instruments are shared singletons, not per-call objects.
        assert obs.counter("a_total") is obs.counter("b_total")

    def test_collect_task_disabled_yields_none(self):
        with obs.collect_task(enabled=False) as reg:
            assert reg is None
            assert not obs.enabled()

    def test_collect_task_isolates_and_restores(self):
        global_reg = obs.enable()
        obs.counter("repro_outer_total").inc()
        with obs.collect_task() as task_reg:
            assert obs.active_registry() is task_reg
            assert task_reg is not global_reg
            obs.counter("repro_inner_total").inc()
        assert obs.active_registry() is global_reg
        assert "repro_inner_total" not in global_reg.snapshot().counters
        assert global_reg.snapshot().counters["repro_outer_total"] == 1


# -- walltime family and the deterministic view -------------------------------


class TestWalltimeFamily:
    @pytest.mark.parametrize(
        "key,expected",
        [
            ("repro_executor_record_walltime_seconds_total", True),
            ("repro_dispatch_seconds_total{engine=\"packet\"}", True),
            ("repro_executor_backoff_delay", False),  # seeded, deterministic
            ("repro_engine_events_total", False),
            ("repro_records_measured_total", False),
        ],
    )
    def test_is_walltime_series(self, key, expected):
        assert is_walltime_series(key) is expected

    def test_view_drops_walltime_but_keeps_span_counts(self):
        snap = MetricsSnapshot(
            counters={"repro_a_total": 1, "repro_b_seconds_total": 0.5},
            spans={"record": {"count": 2, "total_seconds": 1.0, "max_seconds": 0.9}},
        )
        view = deterministic_view(snap)
        assert view["counters"] == {"repro_a_total": 1}
        assert view["span_counts"] == {"record": 2}
        assert "seconds" not in json.dumps(view["counters"])


# -- Prometheus render / parse round trip -------------------------------------


class TestPrometheus:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total", engine="packet").inc(7)
        reg.gauge("repro_test_depth").set(3)
        h = reg.histogram("repro_test_sizes")
        h.observe(0.5)
        h.observe(1e12)  # overflow bucket
        reg._record_span("record/sim", 0.25)
        return reg.snapshot()

    def test_round_trip(self):
        snap = self._snapshot()
        samples = parse_prometheus(render_prometheus(snap))
        assert samples['repro_test_total{engine="packet"}'] == 7
        assert samples["repro_test_depth"] == 3
        # Buckets are cumulative; +Inf equals the total count.
        assert samples['repro_test_sizes_bucket{le="+Inf"}'] == 2
        assert samples["repro_test_sizes_count"] == 2
        assert samples['repro_span_count{path="record/sim"}'] == 1
        assert samples['repro_span_seconds_total{path="record/sim"}'] == 0.25

    def test_parser_rejects_malformed_line(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("this is not prometheus\n")

    def test_parser_rejects_duplicate_series(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus("repro_x_total 1\nrepro_x_total 2\n")

    def test_render_report_and_top_spans(self):
        snap = self._snapshot()
        report = render_report(snap)
        assert "== counters ==" in report and "repro_test_total" in report
        assert "record/sim" in render_top_spans(snap)
        assert render_top_spans(MetricsSnapshot()) == "no spans recorded\n"


# -- executor integration: determinism, manifest v3, compute_walltime ---------


class TestExecutorMetrics:
    def test_serial_and_parallel_views_identical_under_faults(self, specs, tmp_path):
        """The tentpole invariant: -j 1 and -j 4 agree on every
        non-walltime metric, histograms included, even while the fault
        plan forces retries and backoff on record 0."""
        plan = FaultPlan(seed=SEED, faults=(FaultSpec(index=0, kind="flaky"),))
        views = {}
        for jobs in (1, 4):
            with fault_plan_env(plan, tmp_path / f"j{jobs}"):
                run = execute_study(
                    specs,
                    jobs=jobs,
                    cache_root=None,
                    seed=SEED,
                    retry=FAST_RETRY,
                    collect_metrics=True,
                )
            snap = MetricsSnapshot.from_json(run.manifest.metrics)
            assert not snap.is_empty()
            views[jobs] = deterministic_view(snap)
        assert views[1] == views[4]
        counters = views[1]["counters"]
        assert counters["repro_records_measured_total"] == N
        assert counters["repro_executor_retries_total"] == 1  # the flaky record
        assert any(k.startswith("repro_engine_events_per_run") for k in views[1]["histograms"])
        assert views[1]["span_counts"]["record"] == N

    def test_manifest_embeds_snapshot_and_round_trips(self, specs, tmp_path):
        run = execute_study(
            specs[:1], jobs=1, cache_root=None, seed=SEED, collect_metrics=True
        )
        assert run.manifest.metrics is not None
        doc = run.manifest.to_json()
        assert doc["version"] == MANIFEST_VERSION
        path = run.manifest.write(tmp_path / "manifest.json")
        loaded = RunManifest.read(path)
        assert loaded.metrics == run.manifest.metrics
        assert loaded.to_json() == doc

    def test_metrics_off_by_default_leaves_manifest_clean(self, specs):
        run = execute_study(specs[:1], jobs=1, cache_root=None, seed=SEED)
        assert run.manifest.metrics is None

    def test_warm_cache_splits_compute_from_total_walltime(self, specs, tmp_path):
        """Satellite regression: a warm-cache run reports walltime > 0
        (the lookup isn't free) but compute_walltime == 0 — previously
        cache hits inflated the single walltime figure."""
        root = tmp_path / "cache"
        cold = execute_study(specs, jobs=1, cache_root=root, seed=SEED)
        assert all(not e.cache_hit for e in cold.manifest.entries)
        assert all(e.compute_walltime > 0 for e in cold.manifest.entries)
        assert all(e.walltime >= e.compute_walltime for e in cold.manifest.entries)
        warm = execute_study(specs, jobs=1, cache_root=root, seed=SEED)
        assert all(e.cache_hit for e in warm.manifest.entries)
        assert all(e.walltime > 0 for e in warm.manifest.entries)
        assert all(e.compute_walltime == 0.0 for e in warm.manifest.entries)
        assert warm.manifest.compute_walltime == 0.0
        assert cold.manifest.compute_walltime > 0.0


# -- manifest schema versions -------------------------------------------------


def _v1_doc():
    return {
        "version": 1,
        "seed": 7,
        "jobs": 2,
        "engines": ["mfact"],
        "code_version": "abc",
        "interrupted": False,
        "entries": [
            {
                "name": "t0",
                "spec_index": 0,
                "key": "k0",
                "status": "ok",
                "cache_hit": False,
                "walltime": 1.5,
                "worker": 42,
            }
        ],
    }


class TestManifestVersions:
    def test_v1_loads_with_defaults(self):
        manifest = RunManifest.from_json(_v1_doc())
        entry = manifest.entries[0]
        assert entry.attempts == 1
        assert entry.backoffs == []
        assert entry.compute_walltime == 0.0
        assert manifest.metrics is None
        assert manifest.retry_policy is None

    def test_v2_fields_load_and_newer_fields_warn_but_are_ignored(self):
        doc = _v1_doc()
        doc["version"] = 2
        doc["entries"][0].update(
            attempts=3, backoffs=[0.01, 0.02], ladder_step=1, some_future_field=True
        )
        with pytest.warns(ManifestFieldWarning, match="some_future_field"):
            entry = RunManifest.from_json(doc).entries[0]
        assert entry.attempts == 3
        assert entry.backoffs == [0.01, 0.02]
        assert not hasattr(entry, "some_future_field")

    def test_v3_round_trips_through_disk(self, tmp_path):
        manifest = RunManifest.from_json(_v1_doc())
        manifest.metrics = {"counters": {"repro_x_total": 1}}
        loaded = RunManifest.read(manifest.write(tmp_path / "m.json"))
        assert loaded.to_json() == manifest.to_json()

    def test_unsupported_version_raises(self):
        doc = _v1_doc()
        doc["version"] = 99
        with pytest.raises(ManifestError, match="version"):
            RunManifest.from_json(doc)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(entries="nope"),
            lambda d: d.update(metrics=[1, 2]),
            lambda d: d["entries"].append(["not", "a", "dict"]),
            lambda d: d["entries"][0].pop("name"),
            lambda d: d["entries"][0].update(status="bogus"),
        ],
    )
    def test_structural_damage_raises_manifest_error(self, mutate):
        doc = _v1_doc()
        mutate(doc)
        with pytest.raises(ManifestError):
            RunManifest.from_json(doc)

    def test_garbled_file_raises_manifest_error(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"version": 3, "entries": [')  # truncated
        with pytest.raises(ManifestError, match="JSON"):
            RunManifest.read(path)
        with pytest.raises(ManifestError, match="cannot read"):
            RunManifest.read(tmp_path / "absent.json")


# -- CLI surfaces -------------------------------------------------------------


def _failure(kind):
    return ManifestEntry(
        name="t",
        spec_index=0,
        key="k",
        status="failed",
        cache_hit=False,
        walltime=0.0,
        worker=0,
        failure_kind=kind,
    )


class TestCliExitCodes:
    @pytest.mark.parametrize(
        "kinds,expected",
        [
            ([], EXIT_OK),
            (["budget"], EXIT_BUDGET),
            (["timeout"], EXIT_BUDGET),
            (["budget", "timeout"], EXIT_BUDGET),
            (["permanent"], EXIT_ERROR),
            (["transient"], EXIT_ERROR),
            (["budget", "permanent"], EXIT_ERROR),  # error outranks budget
            (["timeout", "transient", "budget"], EXIT_ERROR),
        ],
    )
    def test_measure_exit_code_table(self, kinds, expected):
        assert measure_exit_code([_failure(k) for k in kinds]) == expected

    def test_garbled_trace_is_an_error_not_a_traceback(self, tmp_path, capsys):
        path = tmp_path / "garbled.dmp"
        path.write_text("definitely not a trace {{{")
        assert cli_main(["info", str(path)]) == EXIT_ERROR
        assert "invalid trace" in capsys.readouterr().err

    def test_missing_trace_stays_a_warning(self, tmp_path):
        assert cli_main(["info", str(tmp_path / "absent.dmp")]) == EXIT_WARN


class TestCliMetrics:
    def test_measure_metrics_out_and_stats(self, specs, tmp_path, capsys):
        trace_path = tmp_path / f"{specs[0].name}.dmp"
        write_trace(build_trace(specs[0]), trace_path)
        out = tmp_path / "metrics.prom"
        code = cli_main(
            ["measure", str(trace_path), "--no-cache", "--metrics-out", str(out),
             "--profile"]
        )
        assert code == EXIT_OK
        profile = capsys.readouterr().out
        assert "record/mfact" in profile  # --profile printed the span tree
        samples = parse_prometheus(out.read_text())
        assert samples["repro_records_measured_total"] == 1
        snap = load_snapshot(str(out) + ".json")
        assert snap is not None and not snap.is_empty()
        assert cli_main(["stats", str(out) + ".json"]) == EXIT_OK
        assert "== counters ==" in capsys.readouterr().out

    def test_stats_on_manifest_without_metrics_warns(self, tmp_path, capsys):
        path = RunManifest().write(tmp_path / "manifest.json")
        assert cli_main(["stats", str(path)]) == EXIT_WARN
        assert "no metrics" in capsys.readouterr().err

    def test_stats_on_garbage_is_an_error(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        assert cli_main(["stats", str(path)]) == EXIT_ERROR
