"""Property-based tests (hypothesis) for the content-addressed cache key.

The executor's memoization is only sound if (1) a trace's fingerprint
survives serialization round-trips — otherwise saving and reloading a
trace would spuriously recompute its records — and (2) the composite
key changes whenever anything that affects a measurement changes: any
event field, any machine parameter, or the engine suite.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.config import MachineConfig
from repro.machines.presets import get_machine
from repro.trace.binary import dumps_binary, loads_binary
from repro.trace.dumpi import dumps, loads
from repro.trace.events import Op, OpKind
from repro.trace.trace import TraceSet
from repro.util.fingerprint import (
    code_version,
    machine_config_hash,
    record_cache_key,
    trace_fingerprint,
)

# -- strategies ---------------------------------------------------------------

_finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def ops(draw, nranks: int):
    """One structurally valid Op (matching is NOT required here —
    fingerprints hash content, they do not validate semantics)."""
    kind = draw(st.sampled_from(sorted(OpKind, key=int)))
    peer = draw(st.integers(0, nranks - 1))
    req = draw(st.integers(0, 7))
    stamped = draw(st.booleans())
    t_entry = draw(_finite) if stamped else float("nan")
    return Op(
        kind,
        peer=peer,
        nbytes=draw(st.integers(0, 1 << 20)),
        tag=draw(st.integers(0, 255)),
        comm=0,
        req=req,
        duration=draw(_finite) if kind == OpKind.COMPUTE else 0.0,
        t_entry=t_entry,
        t_exit=t_entry + draw(_finite) if stamped else float("nan"),
    )


@st.composite
def traces(draw):
    nranks = draw(st.integers(1, 4))
    ranks = [
        draw(st.lists(ops(nranks), min_size=1, max_size=6)) for _ in range(nranks)
    ]
    return TraceSet(
        name=draw(st.text(st.characters(categories=("Ll", "Nd")), min_size=1, max_size=12)),
        app="PROP",
        ranks=ranks,
        machine=draw(st.sampled_from(["cielito", "edison", "hopper"])),
        ranks_per_node=draw(st.integers(1, 4)),
        uses_threads=draw(st.booleans()),
        uses_comm_split=draw(st.booleans()),
        metadata={"seed": draw(st.integers(0, 99)), "suite": "PROP"},
    )


#: Scalar op fields a mutation can bump without violating Op invariants.
_MUTABLE_FIELDS = ("nbytes", "tag", "comm", "duration", "t_entry")

#: Positive scalar machine parameters to perturb.
_MACHINE_FIELDS = ("bandwidth", "latency", "hop_latency", "compute_scale")


# -- fingerprint properties ---------------------------------------------------


class TestFingerprintRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(traces())
    def test_invariant_under_binary_round_trip(self, trace):
        assert trace_fingerprint(loads_binary(dumps_binary(trace))) == trace_fingerprint(trace)

    @settings(max_examples=40, deadline=None)
    @given(traces())
    def test_invariant_under_ascii_round_trip(self, trace):
        assert trace_fingerprint(loads(dumps(trace))) == trace_fingerprint(trace)

    @settings(max_examples=25, deadline=None)
    @given(traces())
    def test_invariant_under_mixed_double_round_trip(self, trace):
        once = loads(dumps(loads_binary(dumps_binary(trace))))
        assert trace_fingerprint(once) == trace_fingerprint(trace)

    def test_real_generator_trace_round_trips(self):
        from repro.workloads.npb import generate_npb

        machine = get_machine("cielito")
        trace = generate_npb("CG", 4, machine, seed=5, compute_per_iter=1e-4)
        assert trace_fingerprint(loads(dumps(trace))) == trace_fingerprint(trace)
        assert trace_fingerprint(loads_binary(dumps_binary(trace))) == trace_fingerprint(trace)


class TestFingerprintSensitivity:
    @settings(max_examples=40, deadline=None)
    @given(traces(), st.data())
    def test_any_event_field_change_changes_fingerprint(self, trace, data):
        before = trace_fingerprint(trace)
        rank = data.draw(st.integers(0, trace.nranks - 1))
        index = data.draw(st.integers(0, len(trace.ranks[rank]) - 1))
        field = data.draw(st.sampled_from(_MUTABLE_FIELDS))
        op = trace.ranks[rank][index]
        if field in ("duration", "t_entry"):
            value = getattr(op, field)
            setattr(op, field, (value if value == value else 0.0) + 0.25)
        else:
            setattr(op, field, getattr(op, field) + 1)
        assert trace_fingerprint(trace) != before

    @settings(max_examples=20, deadline=None)
    @given(traces(), st.data())
    def test_dropping_an_op_changes_fingerprint(self, trace, data):
        before = trace_fingerprint(trace)
        rank = data.draw(st.integers(0, trace.nranks - 1))
        trace.ranks[rank] = trace.ranks[rank][:-1] + [Op(OpKind.BARRIER)]
        assert trace_fingerprint(trace) != before

    @settings(max_examples=20, deadline=None)
    @given(traces())
    def test_metadata_and_flags_participate(self, trace):
        before = trace_fingerprint(trace)
        trace.metadata["seed"] = trace.metadata["seed"] + 1
        after = trace_fingerprint(trace)
        assert after != before
        trace.uses_threads = not trace.uses_threads
        assert trace_fingerprint(trace) != after


# -- composite key properties -------------------------------------------------


class TestRecordCacheKey:
    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(_MACHINE_FIELDS), st.floats(min_value=1.001, max_value=3.0))
    def test_any_machine_parameter_change_changes_key(self, field, factor):
        machine = get_machine("cielito")
        bumped = dataclasses.replace(machine, **{field: getattr(machine, field) * factor})
        assert machine_config_hash(bumped) != machine_config_hash(machine)
        fp = "f" * 64
        before = record_cache_key(fp, machine_config_hash(machine), ("packet",), code_version())
        after = record_cache_key(fp, machine_config_hash(bumped), ("packet",), code_version())
        assert before != after

    def test_engine_suite_changes_key(self):
        fp, mh, cv = "a" * 64, machine_config_hash(get_machine("edison")), code_version()
        keys = {
            record_cache_key(fp, mh, engines, cv)
            for engines in (
                ("packet",),
                ("flow",),
                ("packet-flow",),
                ("packet", "flow"),
                ("packet", "flow", "packet-flow"),
            )
        }
        assert len(keys) == 5

    def test_code_version_changes_key(self):
        fp, mh = "a" * 64, machine_config_hash(get_machine("edison"))
        one = record_cache_key(fp, mh, ("packet",), "v1")
        two = record_cache_key(fp, mh, ("packet",), "v2")
        assert one != two

    def test_key_is_pure(self):
        fp, mh, cv = "b" * 64, machine_config_hash(get_machine("hopper")), code_version()
        assert record_cache_key(fp, mh, ("packet",), cv) == record_cache_key(
            fp, mh, ("packet",), cv
        )

    def test_machine_hash_distinguishes_presets(self):
        hashes = {machine_config_hash(get_machine(m)) for m in ("cielito", "edison", "hopper")}
        assert len(hashes) == 3

    def test_code_version_is_cached_and_hexadecimal(self):
        assert code_version() == code_version()
        assert len(code_version()) == 64
        int(code_version(), 16)
