"""Additional coverage: fat-tree machines, CLI error paths, report APIs."""

import pytest

from repro.machines import CIELITO, MachineConfig
from repro.mfact import ConfigGrid, model_trace
from repro.sim import Fabric, simulate_trace
from repro.trace import write_trace
from repro.trace.cli import main as trace_cli
from repro.trace.events import Op, OpKind, make_compute
from repro.trace.trace import TraceSet
from repro.workloads import generate_npb

FATTREE_MACHINE = MachineConfig(
    name="cluster-ft",
    bandwidth=12.5e9 / 8,
    latency=1.5e-6,
    topology="fattree",
    cores_per_node=8,
)


def ring(n=8, nbytes=65536):
    ranks = []
    for r in range(n):
        ranks.append([
            make_compute(0.001),
            Op(OpKind.IRECV, peer=(r - 1) % n, nbytes=nbytes, tag=1, req=1),
            Op(OpKind.ISEND, peer=(r + 1) % n, nbytes=nbytes, tag=1, req=2),
            Op(OpKind.WAIT, req=1),
            Op(OpKind.WAIT, req=2),
        ])
    return TraceSet("ring", "RING", ranks, machine="cluster-ft", ranks_per_node=2)


class TestFatTreeMachine:
    def test_simulation_on_fattree(self):
        for model in ("packet", "flow", "packet-flow"):
            res = simulate_trace(ring(), FATTREE_MACHINE, model)
            assert res.total_time > 0.001

    def test_fabric_routes_have_four_resources_cross_leaf(self):
        trace = ring(16)
        fabric = Fabric(trace, FATTREE_MACHINE)
        # ranks 0 and 15 live on different leaves
        route = fabric.route(0, 15)
        assert len(route) >= 4

    def test_mfact_blind_to_topology(self):
        """MFACT only sees (alpha, B): same trace, same parameters,
        different topology family -> identical prediction."""
        trace = ring()
        torus_machine = MachineConfig(
            name="cluster-torus",
            bandwidth=FATTREE_MACHINE.bandwidth,
            latency=FATTREE_MACHINE.latency,
            topology="torus3d",
            cores_per_node=8,
        )
        a = model_trace(trace, FATTREE_MACHINE, ConfigGrid.single(FATTREE_MACHINE))
        b = model_trace(trace, torus_machine, ConfigGrid.single(torus_machine))
        assert a.baseline_total_time == pytest.approx(b.baseline_total_time)


class TestReportAccessors:
    def test_time_at_and_totals(self):
        trace = ring()
        machine = FATTREE_MACHINE
        report = model_trace(trace, machine)
        assert report.baseline_total_time == report.time_at(1.0, 1.0, machine)
        assert report.per_rank_total.shape == (trace.nranks,)
        assert report.trace_name == "ring"

    def test_counters_dict_keys(self):
        report = model_trace(ring(), FATTREE_MACHINE)
        assert set(report.baseline_counters) == {"compute", "latency", "bandwidth", "wait"}


class TestCLIErrorPaths:
    def test_features_on_unstamped_trace(self, tmp_path, capsys):
        trace = generate_npb("CG", 8, CIELITO, seed=1, compute_per_iter=0.001)
        path = write_trace(trace, tmp_path / "t.dmp")
        assert trace_cli(["features", str(path)]) == 1
        assert "unstamped" in capsys.readouterr().err

    def test_validate_reports_invalid(self, tmp_path, capsys):
        bad = TraceSet("bad", "B", [[Op(OpKind.SEND, peer=1, nbytes=4, tag=1)], []])
        path = write_trace(bad, tmp_path / "bad.dmp")
        # error-level findings exit 2 (shared severity convention)
        assert trace_cli(["validate", str(path)]) == 2
        assert "INVALID" in capsys.readouterr().out

    def test_info_on_unstamped(self, tmp_path, capsys):
        trace = generate_npb("CG", 8, CIELITO, seed=1, compute_per_iter=0.001)
        path = write_trace(trace, tmp_path / "t.dmp")
        assert trace_cli(["info", str(path)]) == 0
        assert "unstamped" in capsys.readouterr().out


class TestSendSemantics:
    def test_blocking_send_waits_for_own_nic(self):
        machine = CIELITO
        nbytes = 8 << 20
        ranks = [
            [
                Op(OpKind.SEND, peer=1, nbytes=nbytes, tag=1),
                Op(OpKind.SEND, peer=1, nbytes=nbytes, tag=2),
            ],
            [
                Op(OpKind.RECV, peer=0, nbytes=nbytes, tag=1),
                Op(OpKind.RECV, peer=0, nbytes=nbytes, tag=2),
            ],
        ]
        trace = TraceSet("t", "T", ranks, machine="cielito", ranks_per_node=1)
        report = model_trace(trace, machine, ConfigGrid.single(machine))
        # Sender's clock carries both serializations.
        assert report.per_rank_total[0] >= 2 * nbytes / machine.bandwidth

    def test_compute_scale_in_grid(self):
        trace = TraceSet("t", "T", [[make_compute(1.0)]])
        grid = ConfigGrid([CIELITO.latency] * 3, [CIELITO.bandwidth] * 3,
                          compute_scale=[0.5, 1.0, 2.0])
        report = model_trace(trace, CIELITO, grid)
        assert report.total_time[0] == pytest.approx(0.5)
        assert report.total_time[2] == pytest.approx(2.0)


class TestCLIConvert:
    def test_ascii_to_binary_and_back(self, tmp_path, capsys):
        from repro.trace.binary import read_trace_binary

        trace = generate_npb("CG", 8, CIELITO, seed=2, compute_per_iter=0.001)
        ascii_path = write_trace(trace, tmp_path / "t.dmp")
        bin_path = tmp_path / "t.bin"
        assert trace_cli(["convert", str(ascii_path), str(bin_path)]) == 0
        again = read_trace_binary(bin_path)
        assert again.op_count() == trace.op_count()
        back_path = tmp_path / "t2.dmp"
        assert trace_cli(["convert", str(bin_path), str(back_path)]) == 0
        assert trace_cli(["validate", str(back_path)]) == 0

    def test_convert_requires_output(self, tmp_path, capsys):
        trace = generate_npb("CG", 8, CIELITO, seed=2, compute_per_iter=0.001)
        path = write_trace(trace, tmp_path / "t.dmp")
        assert trace_cli(["convert", str(path)]) == 1
