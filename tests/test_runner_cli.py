"""End-to-end tests for the experiments CLI (uses the study cache when
present; otherwise exercises parsing/error paths only)."""

from pathlib import Path

import pytest

from repro.core.pipeline import study_cache_path
from repro.experiments.runner import EXPERIMENTS, main, run_experiment

CACHE_PRESENT = study_cache_path().exists()


class TestRunnerParsing:
    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_experiments_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "table3", "table4",
            "fig1", "fig2", "fig3", "fig4", "fig5",
            "section5b", "section6",
        }

    def test_every_registered_experiment_has_compute_and_render(self):
        for name, (compute, render) in EXPERIMENTS.items():
            assert callable(compute) and callable(render)


@pytest.mark.skipif(not CACHE_PRESENT, reason="study cache not built")
class TestRunnerAgainstCache:
    def test_record_driven_targets(self, capsys):
        assert main(["table1", "fig5", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Figure 5" in out

    def test_audit_target(self, capsys):
        assert main(["audit", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "corpus size" in out
        assert "FAIL" not in out

    def test_run_experiment_helper(self):
        from repro.experiments.corpus import study_records

        records = study_records()
        text = run_experiment("section5b", records)
        assert "Section V-B" in text

    def test_limit_slices_cache(self, capsys):
        assert main(["table1", "--limit", "40", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "40" in out
