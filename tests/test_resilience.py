"""Resilience and chaos tests: budgets, retries, ladder, quarantine.

Every recovery path of the resilient executor is proven under the
deterministic chaos harness (:mod:`repro.util.faults`): a hung engine
is killed at its deadline and the record completes degraded, a flaky
replay succeeds on retry with its backoff recorded, a corrupted cache
entry is detected and recomputed, an always-failing trace is
quarantined and skipped next run, and serial and parallel runs under
the same fault plan produce identical canonical records.
"""

import json
import shutil
import time

import pytest

from repro.core.executor import RecordCache, execute_study
from repro.core.pipeline import StudyRecord, measure_trace
from repro.core.resilience import (
    EXPECTED_DIFF_BANDS,
    LADDER,
    MFACT_ONLY_STEP,
    QuarantineEntry,
    QuarantineRegistry,
    RetryPolicy,
    band_for_step,
    classify_failure,
    ladder_engines,
    step_engines,
)
from repro.sim.engine import EventEngine
from repro.trace.cli import EXIT_BUDGET
from repro.trace.cli import main as cli_main
from repro.trace.dumpi import write_trace
from repro.util.budget import (
    Budget,
    BudgetExceeded,
    EventBudgetExceeded,
    WallClockExceeded,
)
from repro.util.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    fault_plan_env,
)
from repro.workloads.suite import build_trace, mini_corpus_specs

SEED = 31
N = 4


@pytest.fixture(scope="module")
def specs():
    return mini_corpus_specs(N, seed=SEED)


def canonical(records):
    return [r.to_json(canonical=True) for r in records]


#: Fast retry policy for chaos tests (real backoff shape, tiny delays).
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.005, max_delay=0.02)


# -- engine budget enforcement ------------------------------------------------


class TestEngineBudgets:
    @staticmethod
    def _reschedule_forever(engine):
        def tick():
            engine.schedule(engine.now + 1.0, tick)

        engine.schedule(0.0, tick)

    def test_event_budget_raises_typed_exception(self):
        engine = EventEngine()
        self._reschedule_forever(engine)
        with pytest.raises(EventBudgetExceeded) as info:
            engine.run(max_events=50)
        exc = info.value
        assert exc.events_executed == 51
        assert exc.budget == 50
        assert exc.sim_time_reached == pytest.approx(50.0)
        assert isinstance(exc, BudgetExceeded)
        # Pre-budget callers catching runaway replays keep working.
        assert isinstance(exc, RuntimeError)
        assert engine.events_processed == 51

    def test_wall_deadline_trips_inside_run_loop(self):
        engine = EventEngine()
        self._reschedule_forever(engine)
        engine.set_wall_deadline(0.0)
        with pytest.raises(WallClockExceeded) as info:
            engine.run(max_events=10_000_000)
        assert info.value.elapsed >= 0.0
        assert info.value.budget == 0.0

    def test_check_budget_covers_time_between_events(self):
        engine = EventEngine()
        engine.set_wall_deadline(0.0)
        time.sleep(0.002)
        with pytest.raises(WallClockExceeded):
            engine.check_budget()

    def test_disarmed_deadline_never_trips(self):
        engine = EventEngine()
        engine.set_wall_deadline(0.0)
        engine.set_wall_deadline(None)
        engine.check_budget()  # must not raise


# -- retry policy -------------------------------------------------------------


class TestRetryPolicy:
    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, max_delay=1.0, multiplier=2.0, jitter=0.5
        )
        delays = [policy.delay(7, "trace-a", k) for k in range(5)]
        assert delays == [policy.delay(7, "trace-a", k) for k in range(5)]
        for k, delay in enumerate(delays):
            raw = min(1.0, 0.1 * 2.0 ** k)
            assert raw * (1.0 - policy.jitter) <= delay <= raw
        # Jitter decorrelates records and seeds.
        assert policy.delay(7, "trace-b", 0) != delays[0]
        assert policy.delay(8, "trace-a", 0) != delays[0]

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay=0.05, multiplier=2.0, max_delay=10.0, jitter=0.0)
        assert policy.delay(1, "x", 2) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_json_round_trip(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.2)
        assert RetryPolicy.from_json(policy.to_json()) == policy
        assert RetryPolicy.from_json(None) == RetryPolicy()


# -- degradation ladder helpers -----------------------------------------------


class TestLadder:
    def test_ladder_orders_by_detail(self):
        assert LADDER == ("packet", "packet-flow", "flow")
        assert MFACT_ONLY_STEP == 3
        assert ladder_engines(0) == LADDER
        assert ladder_engines(1) == ("packet-flow", "flow")
        assert ladder_engines(3) == ()
        with pytest.raises(ValueError):
            ladder_engines(-1)

    def test_step_engines_preserves_caller_order(self):
        base = ("packet", "flow", "packet-flow")
        assert step_engines(0, base) == base
        assert step_engines(1, base) == ("flow", "packet-flow")
        assert step_engines(2, base) == ("flow",)
        assert step_engines(3, base) == ()

    def test_bands(self):
        assert band_for_step(0) == "reference"
        assert band_for_step(1) == "<=10%"
        assert band_for_step(2) == "<=20%"
        assert band_for_step(3) == "unbounded"
        assert band_for_step(99) == "unbounded"  # clamped
        assert len(EXPECTED_DIFF_BANDS) == MFACT_ONLY_STEP + 1


# -- failure classification ---------------------------------------------------


class TestClassifyFailure:
    def test_mapping(self):
        assert classify_failure(EventBudgetExceeded(1, 0.0, 1)) == "budget"
        assert classify_failure(WallClockExceeded(1.0, 0.5)) == "budget"
        assert classify_failure(ConnectionResetError("reset")) == "transient"
        assert classify_failure(EOFError()) == "transient"
        assert classify_failure(FileNotFoundError("gone")) == "permanent"
        assert classify_failure(ValueError("bad")) == "permanent"
        assert classify_failure(FaultInjected("f", transient=True)) == "transient"
        assert classify_failure(FaultInjected("f", transient=False)) == "permanent"


# -- quarantine registry ------------------------------------------------------


class TestQuarantineRegistry:
    def test_add_get_discard(self, tmp_path):
        registry = QuarantineRegistry(tmp_path / "q")
        entry = QuarantineEntry(
            key="k1", name="trace-a", reason="failed everything", attempts=12
        )
        assert "k1" not in registry
        registry.add(entry)
        assert "k1" in registry
        hit = registry.get("k1")
        assert hit.name == "trace-a" and hit.attempts == 12
        registry.discard("k1")
        assert registry.get("k1") is None

    def test_entries_sorted_and_corrupt_ignored(self, tmp_path):
        registry = QuarantineRegistry(tmp_path / "q")
        registry.add(QuarantineEntry(key="kb", name="b", reason="r"))
        registry.add(QuarantineEntry(key="ka", name="a", reason="r"))
        registry.path("kc").write_text("{not json")
        assert [e.name for e in registry.entries()] == ["a", "b"]
        assert registry.clear() == 3  # the corrupt file is deleted too
        assert registry.entries() == []

    def test_add_stamps_current_code_version(self, tmp_path):
        from repro.util.fingerprint import code_version

        registry = QuarantineRegistry(tmp_path / "q")
        registry.add(QuarantineEntry(key="k1", name="t", reason="r"))
        assert registry.get("k1").code_version == code_version()
        # An explicit stamp (e.g. a migrated entry) is preserved.
        registry.add(QuarantineEntry(
            key="k2", name="t2", reason="r", code_version="cafe42"
        ))
        assert registry.get("k2").code_version == "cafe42"

    def test_prune_stale_drops_only_other_versions(self, tmp_path):
        from repro.util.fingerprint import code_version

        registry = QuarantineRegistry(tmp_path / "q")
        registry.add(QuarantineEntry(key="old", name="a", reason="r",
                                     code_version="deadbeef"))
        registry.add(QuarantineEntry(key="older", name="b", reason="r",
                                     code_version="feedface"))
        registry.add(QuarantineEntry(key="live", name="c", reason="r"))
        assert registry.prune_stale() == 2
        assert registry.get("live") is not None
        assert registry.get("old") is None
        assert registry.get("older") is None
        # Idempotent, and a missing root prunes nothing.
        assert registry.prune_stale() == 0
        assert QuarantineRegistry(tmp_path / "absent").prune_stale() == 0
        assert registry.prune_stale(current="deadbeef") == 1  # drops "live"

    def test_pre_version_entries_load_and_prune(self, tmp_path):
        # An entry written before code_version existed (v8-era JSON
        # without the field) loads with "" and counts as stale.
        registry = QuarantineRegistry(tmp_path / "q")
        registry.path("legacy").parent.mkdir(parents=True, exist_ok=True)
        registry.path("legacy").write_text(
            '{"key": "legacy", "name": "t", "reason": "r", "attempts": 2}'
        )
        assert registry.get("legacy").code_version == ""
        assert registry.prune_stale() == 1


# -- fault plan ---------------------------------------------------------------


class TestFaultPlan:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=5,
            faults=(
                FaultSpec(index=0, kind="flaky", fail_attempts=2),
                FaultSpec(index=3, kind="hang", engine="packet"),
            ),
        )
        path = plan.write(tmp_path / "plan.json")
        assert FaultPlan.read(path) == plan
        assert plan.for_index(3) == (plan.faults[1],)
        assert plan.for_index(9) == ()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(index=0, kind="meteor")


# -- cache integrity ----------------------------------------------------------


def _tiny_record(name="t0"):
    return StudyRecord(
        name=name,
        app="synthetic",
        suite="mini",
        machine="cielito",
        nranks=4,
        spec_index=0,
        measured_total=1.0,
        measured_comm=0.4,
        comm_fraction=0.4,
    )


class TestRecordCacheIntegrity:
    def test_round_trip_through_envelope(self, tmp_path):
        cache = RecordCache(tmp_path)
        record = _tiny_record()
        cache.put("abc", record)
        hit, status = cache.get_checked("abc")
        assert status == "hit"
        assert hit.to_json() == record.to_json()
        envelope = json.loads(cache.path("abc").read_text())
        assert set(envelope) == {"key", "checksum", "record"}

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert RecordCache(tmp_path).get_checked("nope") == (None, "miss")

    def test_tampered_payload_detected_and_deleted(self, tmp_path):
        cache = RecordCache(tmp_path)
        cache.put("abc", _tiny_record())
        envelope = json.loads(cache.path("abc").read_text())
        envelope["record"]["measured_total"] = 99.0  # checksum now stale
        cache.path("abc").write_text(json.dumps(envelope))
        assert cache.get_checked("abc") == (None, "corrupt")
        assert not cache.path("abc").exists()

    def test_misfiled_entry_detected(self, tmp_path):
        cache = RecordCache(tmp_path)
        cache.put("abc", _tiny_record())
        shutil.copy(cache.path("abc"), cache.path("xyz"))
        record, status = cache.get_checked("xyz")
        assert record is None and status == "corrupt"
        # The rightful entry is untouched.
        assert cache.get_checked("abc")[1] == "hit"


# -- in-record degradation (cooperative event budget) -------------------------


class TestInRecordDegradation:
    def test_event_budget_fails_packet_but_cheaper_engines_survive(self, specs):
        spec = specs[0]
        full = measure_trace(build_trace(spec), spec_index=spec.index, suite=spec.suite)
        packet_events = full.sims["packet"].events
        cheaper = max(full.sims["flow"].events, full.sims["packet-flow"].events)
        assert packet_events > cheaper, "packet must be the most event-hungry engine"
        budget = Budget(events=(packet_events + cheaper) // 2)
        record = measure_trace(
            build_trace(spec), spec_index=spec.index, suite=spec.suite, budget=budget
        )
        assert not record.sims["packet"].completed
        assert "EventBudgetExceeded" in record.sims["packet"].error
        assert record.sims["flow"].completed
        assert record.sims["packet-flow"].completed
        assert record.degraded_from == "packet"
        assert record.ladder_step == 1
        assert record.expected_diff_band == "<=10%"
        # The full-detail record carries no degradation annotations.
        assert full.degraded_from == "" and full.expected_diff_band == ""


# -- chaos acceptance: the five recovery paths --------------------------------


class TestChaosRecovery:
    def test_hung_worker_is_watchdog_killed_and_record_degrades(self, specs, tmp_path):
        """(a) A hard engine hang is killed at the deadline; the record
        completes one ladder step down with ``degraded_from`` set."""
        plan = FaultPlan(
            seed=SEED, faults=(FaultSpec(index=0, kind="hang", engine="packet"),)
        )
        with fault_plan_env(plan, tmp_path):
            run = execute_study(
                specs[:2],
                jobs=2,
                cache_root=None,
                seed=SEED,
                record_timeout=0.3,
                retry=FAST_RETRY,
            )
        assert len(run.records) == 2 and not run.failures
        degraded = run.records[0]
        assert degraded.degraded_from == "packet"
        assert degraded.ladder_step >= 1
        assert degraded.expected_diff_band in EXPECTED_DIFF_BANDS[1:]
        assert "packet" not in degraded.sims  # the hung engine never completed
        entry = run.manifest.entries[0]
        assert entry.status == "ok"
        assert entry.attempts >= 2  # the killed attempt plus the degraded one
        assert entry.failure_kind == ""  # the record ultimately succeeded
        assert run.manifest.degraded and run.manifest.degraded[0].spec_index == 0
        # The healthy sibling record is untouched.
        assert run.records[1].degraded_from == ""

    def test_flaky_then_ok_succeeds_on_retry_with_backoff_recorded(self, specs, tmp_path):
        """(b) A transient double-failure retries with exponential
        backoff and the waits land in the manifest."""
        plan = FaultPlan(
            seed=SEED, faults=(FaultSpec(index=1, kind="flaky", fail_attempts=2),)
        )
        with fault_plan_env(plan, tmp_path):
            run = execute_study(
                specs[:2], jobs=1, cache_root=None, seed=SEED, retry=FAST_RETRY
            )
        assert len(run.records) == 2 and not run.failures
        entry = run.manifest.entries[1]
        assert entry.status == "ok"
        assert entry.attempts == 3
        assert entry.ladder_step == 0  # retries sufficed; no degradation
        expected = [FAST_RETRY.delay(SEED, entry.name, k) for k in range(2)]
        assert entry.backoffs == pytest.approx(expected)
        assert expected[0] < expected[1]  # backoff grows
        assert run.manifest.retries == 2
        assert run.manifest.retry_policy == FAST_RETRY.to_json()

    def test_corrupt_cache_entry_detected_counted_and_recomputed(self, specs, tmp_path):
        """(c) A corrupted cache file is detected by checksum, counted
        as ``cache_corrupt`` and transparently recomputed."""
        root = tmp_path / "records"
        cold = execute_study(specs[:3], jobs=1, cache_root=root, seed=SEED)
        plan = FaultPlan(seed=SEED, faults=(FaultSpec(index=0, kind="corrupt-cache"),))
        with fault_plan_env(plan, tmp_path):
            warm = execute_study(specs[:3], jobs=1, cache_root=root, seed=SEED)
        assert warm.manifest.cache_corrupt == 1
        entry = warm.manifest.entries[0]
        assert entry.status == "ok"
        assert entry.cache_corrupt and not entry.cache_hit  # recomputed, not served
        assert warm.manifest.hits == 2 and warm.manifest.misses == 1
        assert canonical(warm.records) == canonical(cold.records)

    def test_always_failing_trace_is_quarantined_then_skipped(self, specs, tmp_path):
        """(d) A trace failing every attempt at every ladder step lands
        in quarantine and the next run skips it with the reason."""
        root = tmp_path / "records"
        policy = RetryPolicy(max_attempts=2, base_delay=0.001, max_delay=0.002)
        plan = FaultPlan(
            seed=SEED, faults=(FaultSpec(index=2, kind="flaky", fail_attempts=999),)
        )
        with fault_plan_env(plan, tmp_path):
            first = execute_study(
                specs[:3], jobs=1, cache_root=root, seed=SEED, retry=policy
            )
        assert len(first.records) == 2
        failed = first.failures[0]
        assert failed.spec_index == 2
        assert failed.quarantined
        assert failed.ladder_step == MFACT_ONLY_STEP  # fell the whole ladder
        assert failed.attempts == 2 * (MFACT_ONLY_STEP + 1)  # 2 tries per step
        registry = QuarantineRegistry(tmp_path / "quarantine")  # beside the cache
        assert len(registry.entries()) == 1
        # Next run — faults gone — still skips it, with the reason.
        second = execute_study(specs[:3], jobs=1, cache_root=root, seed=SEED)
        entry = [e for e in second.manifest.entries if e.spec_index == 2][0]
        assert entry.status == "quarantined"
        assert entry.attempts == 0  # never dispatched
        assert "quarantined:" in entry.error
        assert len(second.records) == 2 and second.manifest.hits == 2
        # Releasing the quarantine restores the record.
        registry.clear()
        third = execute_study(specs[:3], jobs=1, cache_root=root, seed=SEED)
        assert len(third.records) == 3

    def test_serial_and_parallel_identical_under_same_fault_plan(self, specs, tmp_path):
        """(e) The same fault plan yields bitwise-identical canonical
        records and identical resilience bookkeeping at -j 1 and -j 3.

        The record budget must be small enough that the hung engine
        degrades quickly but large enough that the *un*-faulted specs
        never trip it: a wall budget is load-sensitive, and on a
        starved CPU three workers time-slicing one core can push a
        healthy record over a knife-edge budget in one mode only, which
        reads as a (spurious) determinism failure.  0.5s keeps the
        faulted spec fast to degrade while giving healthy records
        contention headroom.
        """
        plan = FaultPlan(
            seed=SEED,
            faults=(
                FaultSpec(index=0, kind="flaky"),
                FaultSpec(index=1, kind="slow", delay=0.02),
                FaultSpec(index=2, kind="engine-hang", engine="packet"),
                FaultSpec(index=3, kind="crash"),
            ),
        )
        with fault_plan_env(plan, tmp_path):
            serial = execute_study(
                specs,
                jobs=1,
                cache_root=None,
                seed=SEED,
                record_timeout=0.5,
                retry=FAST_RETRY,
            )
            parallel = execute_study(
                specs,
                jobs=3,
                cache_root=None,
                seed=SEED,
                record_timeout=0.5,
                retry=FAST_RETRY,
            )
        assert len(serial.records) == len(parallel.records) == N
        assert canonical(serial.records) == canonical(parallel.records)

        def bookkeeping(run):
            # Backoffs are computed, not measured — they must match to
            # the last bit, not approximately.
            return [
                (
                    e.spec_index,
                    e.status,
                    e.attempts,
                    tuple(e.backoffs),
                    e.ladder_step,
                    e.degraded_from,
                )
                for e in run.manifest.entries
            ]

        assert bookkeeping(serial) == bookkeeping(parallel)
        # The crash record retried once on both paths, despite the
        # mechanism differing (in-process raise vs worker death).
        crash_entry = serial.manifest.entries[3]
        assert crash_entry.attempts == 2 and crash_entry.status == "ok"
        # The engine-hang record degraded identically on both paths.
        assert serial.records[2].degraded_from == "packet"
        assert parallel.records[2].degraded_from == "packet"


# -- CLI budget exit code -----------------------------------------------------


class TestCliBudgetExit:
    def _write_mini_trace(self, tmp_path):
        trace = build_trace(mini_corpus_specs(1, seed=SEED)[0])
        path = tmp_path / "mini.dmp"
        write_trace(trace, path)
        return path

    def test_budget_flags_accepted_and_within_budget_exits_ok(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = self._write_mini_trace(tmp_path)
        code = cli_main(
            [
                "measure",
                str(path),
                "--no-cache",
                "--record-timeout", "30",
                "--event-budget", "100000000",
                "--max-attempts", "2",
            ]
        )
        assert code == 0

    def test_unrecoverable_hang_maps_to_exit_budget(self, tmp_path, monkeypatch, capsys):
        """A record the watchdog kills at every ladder step fails with
        kind 'timeout' and the CLI reports exit code 3."""
        monkeypatch.chdir(tmp_path)
        path = self._write_mini_trace(tmp_path)
        plan = FaultPlan(seed=SEED, faults=(FaultSpec(index=0, kind="hang"),))
        with fault_plan_env(plan, tmp_path):
            code = cli_main(
                ["measure", str(path), "--no-cache", "-j", "2",
                 "--record-timeout", "0.05"]
            )
        assert code == EXIT_BUDGET == 3
        assert "FAILED" in capsys.readouterr().err
