"""Round-trip tests for the DUMPI-like serialization."""

import math

import pytest

from repro.machines import CIELITO
from repro.trace.dumpi import FORMAT_MAGIC, dumps, loads, read_trace, write_trace
from repro.trace.events import Op, OpKind, make_compute
from repro.trace.trace import TraceSet
from repro.workloads import generate_npb


def sample_trace():
    ranks = [
        [make_compute(0.25), Op(OpKind.ISEND, peer=1, nbytes=4096, tag=3, req=1),
         Op(OpKind.WAIT, req=1), Op(OpKind.BARRIER)],
        [Op(OpKind.RECV, peer=0, nbytes=4096, tag=3), Op(OpKind.BARRIER)],
    ]
    return TraceSet(
        "sample",
        "TEST",
        ranks,
        machine="cielito",
        ranks_per_node=2,
        comms={1: (0, 1)},
        uses_comm_split=True,
        metadata={"seed": 7, "note": "hello world"},
    )


class TestRoundTrip:
    def test_header_fields(self):
        t2 = loads(dumps(sample_trace()))
        assert t2.name == "sample"
        assert t2.app == "TEST"
        assert t2.machine == "cielito"
        assert t2.ranks_per_node == 2
        assert t2.uses_comm_split and not t2.uses_threads
        assert t2.metadata == {"seed": 7, "note": "hello world"}
        assert t2.comms[1] == (0, 1)

    def test_ops_identical(self):
        t = sample_trace()
        t2 = loads(dumps(t))
        for s1, s2 in zip(t.ranks, t2.ranks):
            assert s1 == s2

    def test_nan_timestamps_roundtrip(self):
        t2 = loads(dumps(sample_trace()))
        assert math.isnan(t2.ranks[0][0].t_entry)

    def test_stamped_timestamps_exact(self):
        t = sample_trace()
        t.ranks[0][0].t_entry = 0.1234567890123456
        t.ranks[0][0].t_exit = 0.9876543210987654
        t2 = loads(dumps(t))
        assert t2.ranks[0][0].t_entry == t.ranks[0][0].t_entry
        assert t2.ranks[0][0].t_exit == t.ranks[0][0].t_exit

    def test_file_roundtrip(self, tmp_path):
        t = sample_trace()
        path = write_trace(t, tmp_path / "trace.dmp")
        t2 = read_trace(path)
        assert t2.name == t.name
        assert t2.op_count() == t.op_count()

    def test_generated_trace_roundtrip(self):
        t = generate_npb("CG", 16, CIELITO, seed=3, compute_per_iter=0.001)
        t2 = loads(dumps(t))
        assert t2.op_count() == t.op_count()
        for s1, s2 in zip(t.ranks, t2.ranks):
            assert s1 == s2
        t2.validate()


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="not a"):
            loads("#SOMETHING ELSE\n")

    def test_truncated(self):
        text = dumps(sample_trace())
        with pytest.raises((ValueError, IndexError)):
            loads("\n".join(text.splitlines()[:5]))

    def test_magic_constant(self):
        assert dumps(sample_trace()).startswith(FORMAT_MAGIC)
