"""Property-based tests for the max-min water-fill and the compressor."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machines import CIELITO
from repro.sim.engine import EventEngine
from repro.sim.flow import FlowModel, _Flow
from repro.sim.network import Fabric
from repro.trace.compress import compress_trace, decompress_trace
from repro.trace.events import Op, OpKind, make_compute
from repro.trace.trace import TraceSet

slow = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _flow_model(nranks=8):
    trace = TraceSet("t", "T", [[] for _ in range(nranks)], machine="cielito",
                     ranks_per_node=1)
    fabric = Fabric(trace, CIELITO)
    # Scalar engine: these tests drive the reference water-fill through
    # the scalar-side flow list (`_flows`); the vectorized path keeps
    # its own flow state and is held equivalent by
    # tests/test_vectorized_equivalence.py.
    return FlowModel(fabric, EventEngine(vectorized=False)), fabric


class TestWaterfillProperties:
    @given(data=st.data())
    @slow
    def test_capacity_never_exceeded(self, data):
        model, fabric = _flow_model()
        nflows = data.draw(st.integers(min_value=1, max_value=60))
        pairs = data.draw(
            st.lists(
                st.tuples(st.integers(0, 7), st.integers(0, 7)),
                min_size=nflows, max_size=nflows,
            )
        )
        flows = []
        for src, dst in pairs:
            if src == dst:
                continue
            route = fabric.route(src, dst)
            flows.append(_Flow(route, 1 << 20, lambda t: None, 1e-6))
        if not flows:
            return
        model._flows = flows
        model._recompute_rates()
        # Per-link capacity constraint.
        load = {}
        for flow in flows:
            for link in flow.route:
                load[link] = load.get(link, 0.0) + flow.rate
        for link, total in load.items():
            assert total <= model._caps[link] * (1 + 1e-6)

    @given(data=st.data())
    @slow
    def test_every_flow_gets_positive_rate(self, data):
        model, fabric = _flow_model()
        nflows = data.draw(st.integers(min_value=1, max_value=40))
        flows = []
        for i in range(nflows):
            src, dst = i % 8, (i + 1 + i % 7) % 8
            if src == dst:
                continue
            flows.append(_Flow(fabric.route(src, dst), 1024, lambda t: None, 1e-6))
        if not flows:
            return
        model._flows = flows
        model._recompute_rates()
        for flow in flows:
            assert flow.rate > 0

    def test_single_flow_gets_bottleneck_capacity(self):
        model, fabric = _flow_model()
        route = fabric.route(0, 5)
        flow = _Flow(route, 1 << 20, lambda t: None, 1e-6)
        model._flows = [flow]
        model._recompute_rates()
        assert flow.rate == pytest.approx(float(model._caps[list(route)].min()))

    def test_two_identical_flows_split_evenly(self):
        model, fabric = _flow_model()
        route = fabric.route(0, 5)
        flows = [_Flow(route, 1 << 20, lambda t: None, 1e-6) for _ in range(2)]
        model._flows = flows
        model._recompute_rates()
        cap = float(model._caps[list(route)].min())
        for flow in flows:
            assert flow.rate == pytest.approx(cap / 2, rel=1e-6)


def _op_block(rng, tag):
    """A small request-closed op block."""
    kind = rng.integers(0, 3)
    if kind == 0:
        return [make_compute(float(rng.integers(1, 5)) / 1000)]
    if kind == 1:
        return [Op(OpKind.BARRIER)]
    return [
        Op(OpKind.IRECV, peer=1, nbytes=int(rng.integers(1, 4096)), tag=tag, req=900 + tag),
        Op(OpKind.WAIT, req=900 + tag),
    ]


class TestCompressorProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        repeats=st.integers(min_value=1, max_value=12),
    )
    @slow
    def test_roundtrip_op_count_and_structure(self, seed, repeats):
        rng = np.random.default_rng(seed)
        # rank 0: repeated block + literal tail; rank 1: matching sends.
        block = []
        ntags = int(rng.integers(1, 4))
        for t in range(ntags):
            block.extend(_op_block(rng, t))
        ops0 = block * repeats + [make_compute(0.123456)]
        recv_tags = [op.tag for op in ops0 if op.kind == OpKind.IRECV]
        sizes = {op.tag: op.nbytes for op in ops0 if op.kind == OpKind.IRECV}
        ops1 = [Op(OpKind.SEND, peer=0, nbytes=sizes[t], tag=t) for t in recv_tags]
        ops1 += [Op(OpKind.BARRIER)] * sum(1 for op in ops0 if op.kind == OpKind.BARRIER)
        trace = TraceSet("t", "T", [ops0, ops1])
        trace.validate()
        compressed = compress_trace(trace)
        restored = decompress_trace(compressed)
        restored.validate()
        assert restored.op_count() == trace.op_count()
        for s1, s2 in zip(trace.ranks, restored.ranks):
            k1 = [(op.kind, op.peer, op.nbytes, op.tag) for op in s1]
            k2 = [(op.kind, op.peer, op.nbytes, op.tag) for op in s2]
            assert k1 == k2

    @given(repeats=st.integers(min_value=3, max_value=30))
    @slow
    def test_repetition_compresses(self, repeats):
        block = [Op(OpKind.BARRIER), make_compute(0.001)]
        trace = TraceSet("t", "T", [list(block) * repeats])
        compressed = compress_trace(trace)
        assert compressed.compression_ratio >= repeats / 2
