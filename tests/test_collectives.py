"""Tests for collective schedules and cost models.

The key invariant: every schedule's sends and receives match pairwise
(the simulator's expansion of a collective must not deadlock or drop
bytes), and cost models agree with schedule critical paths in order of
magnitude.
"""

from collections import Counter

import pytest

from repro.collectives import (
    ALLTOALL_BRUCK_MAX_BYTES,
    CollectiveCost,
    collective_cost,
    schedule_collective,
)
from repro.trace.events import OpKind

ALL_COLLECTIVES = [
    OpKind.BARRIER,
    OpKind.BCAST,
    OpKind.REDUCE,
    OpKind.ALLREDUCE,
    OpKind.ALLGATHER,
    OpKind.ALLTOALL,
    OpKind.GATHER,
    OpKind.SCATTER,
    OpKind.REDUCE_SCATTER,
]

SIZES = [2, 3, 4, 7, 8, 16, 17]


def check_matching(schedule):
    """Sends from a to b must equal recvs posted at b from a (as multisets)."""
    sends = Counter()
    recvs = Counter()
    for rank, phases in schedule.items():
        for phase in phases:
            for peer, size in phase.sends:
                sends[(rank, peer, size)] += 1
            for peer, size in phase.recvs:
                recvs[(peer, rank, size)] += 1
    assert sends == recvs, f"unmatched traffic: {sends - recvs} / {recvs - sends}"


class TestScheduleMatching:
    @pytest.mark.parametrize("kind", ALL_COLLECTIVES)
    @pytest.mark.parametrize("p", SIZES)
    def test_sends_match_recvs(self, kind, p):
        ranks = tuple(range(p))
        check_matching(schedule_collective(kind, ranks, 1024, root=0))

    @pytest.mark.parametrize("kind", [OpKind.BCAST, OpKind.REDUCE, OpKind.GATHER, OpKind.SCATTER])
    def test_nonzero_root(self, kind):
        ranks = tuple(range(6))
        check_matching(schedule_collective(kind, ranks, 512, root=4))

    def test_noncontiguous_world_ranks(self):
        ranks = (3, 7, 11, 20)
        sched = schedule_collective(OpKind.ALLREDUCE, ranks, 256)
        check_matching(sched)
        assert set(sched) == set(ranks)

    def test_single_member_trivial(self):
        sched = schedule_collective(OpKind.ALLREDUCE, (5,), 1024)
        assert sched == {5: []}

    def test_root_not_member_rejected(self):
        with pytest.raises(ValueError, match="root"):
            schedule_collective(OpKind.BCAST, (0, 1), 8, root=9)

    def test_empty_comm_rejected(self):
        with pytest.raises(ValueError):
            schedule_collective(OpKind.BARRIER, (), 0)

    def test_non_collective_rejected(self):
        with pytest.raises(ValueError):
            schedule_collective(OpKind.SEND, (0, 1), 8)


class TestScheduleStructure:
    def test_bcast_root_only_sends(self):
        sched = schedule_collective(OpKind.BCAST, tuple(range(8)), 100, root=0)
        assert all(not phase.recvs for phase in sched[0])
        # Every non-root receives exactly once.
        for rank in range(1, 8):
            recvs = sum(len(ph.recvs) for ph in sched[rank])
            assert recvs == 1

    def test_bcast_log_depth(self):
        sched = schedule_collective(OpKind.BCAST, tuple(range(16)), 100, root=0)
        assert len(sched[0]) == 4  # root sends ceil(log2 16) times

    def test_reduce_is_reversed_bcast(self):
        bcast = schedule_collective(OpKind.BCAST, tuple(range(8)), 64, root=2)
        reduce_ = schedule_collective(OpKind.REDUCE, tuple(range(8)), 64, root=2)
        root_sends = sum(len(ph.sends) for ph in bcast[2])
        root_recvs = sum(len(ph.recvs) for ph in reduce_[2])
        assert root_sends == root_recvs

    def test_allreduce_power_of_two_rounds(self):
        sched = schedule_collective(OpKind.ALLREDUCE, tuple(range(8)), 64)
        assert all(len(phases) == 3 for phases in sched.values())

    def test_allreduce_non_power_of_two_fold(self):
        sched = schedule_collective(OpKind.ALLREDUCE, tuple(range(6)), 64)
        # Extra ranks (4, 5) fold into the pow2 core then unfold.
        assert len(sched[4]) == 2  # one send, one recv
        assert len(sched[0]) >= 3

    def test_allgather_bruck_sizes_double(self):
        sched = schedule_collective(OpKind.ALLGATHER, tuple(range(8)), 100)
        sizes = [ph.sends[0][1] for ph in sched[0]]
        assert sizes == [100, 200, 400]

    def test_alltoall_small_uses_bruck(self):
        p = 8
        sched = schedule_collective(OpKind.ALLTOALL, tuple(range(p)), 64)
        assert all(len(phases) == 3 for phases in sched.values())  # log2(8)

    def test_alltoall_large_uses_pairwise(self):
        p = 8
        size = ALLTOALL_BRUCK_MAX_BYTES + 1
        sched = schedule_collective(OpKind.ALLTOALL, tuple(range(p)), size)
        assert all(len(phases) == p - 1 for phases in sched.values())

    def test_alltoall_total_bytes_conserved(self):
        p, m = 8, 128
        for size in (m, ALLTOALL_BRUCK_MAX_BYTES + 1):
            sched = schedule_collective(OpKind.ALLTOALL, tuple(range(p)), size)
            total = sum(
                s for phases in sched.values() for ph in phases for _, s in ph.sends
            )
            # Pairwise moves exactly p*(p-1)*size; Bruck moves at least that.
            assert total >= p * (p - 1) * min(size, m)

    def test_barrier_everyone_participates(self):
        sched = schedule_collective(OpKind.BARRIER, tuple(range(7)), 0)
        assert all(phases for phases in sched.values())

    def test_gather_payload_grows_toward_root(self):
        sched = schedule_collective(OpKind.GATHER, tuple(range(8)), 100, root=0)
        root_recv_sizes = sorted(s for ph in sched[0] for _, s in ph.recvs)
        assert root_recv_sizes == [100, 200, 400]


class TestCostModel:
    @pytest.mark.parametrize("kind", ALL_COLLECTIVES)
    @pytest.mark.parametrize("p", SIZES)
    def test_nonnegative(self, kind, p):
        cost = collective_cost(kind, p, 4096)
        assert cost.alpha_count >= 0
        assert cost.bytes_on_wire >= 0

    def test_single_rank_free(self):
        assert collective_cost(OpKind.ALLREDUCE, 1, 1 << 20) == CollectiveCost(0.0, 0.0)

    def test_barrier_log_steps(self):
        assert collective_cost(OpKind.BARRIER, 16, 0).alpha_count == 4
        assert collective_cost(OpKind.BARRIER, 17, 0).alpha_count == 5

    def test_bcast_scales_with_log_p(self):
        c8 = collective_cost(OpKind.BCAST, 8, 1000)
        c64 = collective_cost(OpKind.BCAST, 64, 1000)
        assert c64.bytes_on_wire == 2 * c8.bytes_on_wire

    def test_time_evaluation(self):
        cost = CollectiveCost(alpha_count=2, bytes_on_wire=1000)
        assert cost.time(1e-6, 1e9) == pytest.approx(2e-6 + 1e-6)

    def test_alltoall_switches_algorithm(self):
        small = collective_cost(OpKind.ALLTOALL, 16, 64)
        large = collective_cost(OpKind.ALLTOALL, 16, ALLTOALL_BRUCK_MAX_BYTES + 1)
        assert small.alpha_count == 4  # Bruck: log p rounds
        assert large.alpha_count == 15  # pairwise: p - 1 rounds

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            collective_cost(OpKind.BCAST, 0, 10)
        with pytest.raises(ValueError):
            collective_cost(OpKind.BCAST, 4, -1)
        with pytest.raises(ValueError):
            collective_cost(OpKind.SEND, 4, 1)

    def test_cost_tracks_schedule_critical_path(self):
        """Closed-form bytes should be within 2x of the schedule's
        per-rank maximum (they price the same algorithm)."""
        for kind in (OpKind.ALLREDUCE, OpKind.ALLGATHER, OpKind.BCAST):
            p, m = 16, 1024
            sched = schedule_collective(kind, tuple(range(p)), m, root=0)
            max_rank_bytes = max(
                sum(s for ph in phases for _, s in ph.sends)
                + sum(s for ph in phases for _, s in ph.recvs)
                for phases in sched.values()
            )
            cost = collective_cost(kind, p, m)
            assert cost.bytes_on_wire <= 2 * max_rank_bytes
            assert max_rank_bytes <= 4 * max(cost.bytes_on_wire, m)
