"""Differential equivalence: vectorized vs scalar simulation paths.

The scalar replay path is the executable specification; the vectorized
path is an optimization of it.  These tests hold the two to the
strongest possible standard — *byte-identical* canonical
:class:`~repro.core.pipeline.StudyRecord` JSON — over the full seeded
mini-corpus, every simulation engine, every degradation-ladder step,
and serial vs parallel execution.  Any relaxation here (tolerances,
field subsets) would let the fast path drift from the reference; keep
it exact.
"""

import dataclasses
import json

import pytest

from repro.core.executor import execute_study
from repro.core.pipeline import SIM_MODELS, measure_trace
from repro.core.resilience import LADDER, step_engines
from repro.machines.presets import get_machine
from repro.sim.mpi_replay import simulate_trace
from repro.workloads.suite import build_trace, mini_corpus_specs

SPECS = mini_corpus_specs()


def canonical_json(record) -> str:
    """The byte string both paths must agree on (walltimes dropped)."""
    return json.dumps(record.to_json(canonical=True), sort_keys=True)


@pytest.fixture(scope="module")
def corpus():
    """spec -> stamped trace, built once for the whole module."""
    return {spec.index: build_trace(spec) for spec in SPECS}


class TestFullCorpusEquivalence:
    """Every mini-corpus spec, all engines at once, both modes."""

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_canonical_record_is_byte_identical(self, corpus, spec):
        trace = corpus[spec.index]
        scalar = measure_trace(trace, spec_index=spec.index, sim_vectorized=False)
        vector = measure_trace(trace, spec_index=spec.index, sim_vectorized=True)
        assert canonical_json(scalar) == canonical_json(vector)

    @pytest.mark.parametrize("engine", SIM_MODELS)
    def test_single_engine_results_match_bitwise(self, corpus, engine):
        """Engine-level check with exact field attribution on failure."""
        for spec in SPECS[:4]:
            trace = corpus[spec.index]
            machine = get_machine(trace.machine)
            s = simulate_trace(trace, machine, model=engine, vectorized=False)
            v = simulate_trace(trace, machine, model=engine, vectorized=True)
            for field in ("total_time", "comm_time", "compute_time",
                          "events", "messages", "bytes_sent"):
                assert getattr(s, field) == getattr(v, field), (
                    f"{spec.name}/{engine}: {field} diverged: "
                    f"scalar={getattr(s, field)!r} vectorized={getattr(v, field)!r}"
                )


class TestLadderStepEquivalence:
    """Equivalence must hold at every engine-degradation ladder step,
    not just at full detail — degraded records are still records."""

    @pytest.mark.parametrize("step", range(len(LADDER) + 1))
    def test_each_ladder_step_is_byte_identical(self, corpus, step):
        engines = step_engines(step, SIM_MODELS)
        for spec in SPECS[:3]:
            trace = corpus[spec.index]
            scalar = measure_trace(
                trace, spec_index=spec.index, engines=engines,
                ladder_step=step, sim_vectorized=False,
            )
            vector = measure_trace(
                trace, spec_index=spec.index, engines=engines,
                ladder_step=step, sim_vectorized=True,
            )
            assert canonical_json(scalar) == canonical_json(vector), (
                f"{spec.name} diverged at ladder step {step} ({engines})"
            )


class TestExecutorEquivalence:
    """The full executor path: serial and parallel, both modes, all
    four combinations produce the same canonical record set."""

    def test_jobs_and_modes_all_agree(self, tmp_path):
        specs = [dataclasses.replace(s) for s in mini_corpus_specs(count=4)]
        payloads = {}
        for mode in (False, True):
            for jobs in (1, 4):
                run = execute_study(
                    specs, jobs=jobs, cache_root=None, sim_vectorized=mode,
                )
                assert not run.failures
                records = sorted(run.records, key=lambda r: r.spec_index)
                payloads[(mode, jobs)] = "\n".join(
                    canonical_json(r) for r in records
                )
        reference = payloads[(False, 1)]
        for key, payload in payloads.items():
            assert payload == reference, (
                f"(vectorized={key[0]}, jobs={key[1]}) diverged from "
                "(vectorized=False, jobs=1)"
            )
