"""Regression tests for the FlowModel water-filling allocators.

The small (dict-based) and vectorized (numpy) water-fills must agree,
and the small fill must be order-deterministic: it previously iterated
a raw ``set`` when freezing flows at a level, which detlint's
``det/unordered-iter`` rule now flags (the fix iterates
``sorted(unfrozen)``).
"""

from pathlib import Path

import numpy as np

from repro.analysis.detlint import lint_source
from repro.sim.flow import FlowModel, _Flow

FLOW_PY = Path(__file__).resolve().parent.parent / "src" / "repro" / "sim" / "flow.py"


def make_model(caps):
    model = FlowModel.__new__(FlowModel)
    model._caps = np.asarray(caps, dtype=float)
    return model


def make_flows(routes):
    return [_Flow(route, 1.0, None, 0.0) for route in routes]


ROUTES = [[0], [0, 2], [2, 3], [3]]
CAPS = [10.0, 10.0, 4.0, 100.0]


class TestWaterfillAgreement:
    def test_small_fill_max_min_rates(self):
        model = make_model(CAPS)
        flows = make_flows(ROUTES)
        model._waterfill_small(flows)
        # Link 2 (cap 4, 2 flows) bottlenecks flows 1 and 2 at 2.0;
        # flow 0 then gets link 0's remainder, flow 3 link 3's.
        assert [f.rate for f in flows] == [8.0, 2.0, 2.0, 98.0]

    def test_small_and_vector_fills_agree(self):
        model = make_model(CAPS)
        small = make_flows(ROUTES)
        vector = make_flows(ROUTES)
        model._waterfill_small(small)
        model._waterfill_vector(vector)
        np.testing.assert_allclose(
            [f.rate for f in small], [f.rate for f in vector], rtol=1e-9
        )

    def test_agreement_on_uniform_contention(self):
        # Eight flows over one shared link: everyone gets cap / 8.
        model = make_model([8.0])
        small = make_flows([[0]] * 8)
        vector = make_flows([[0]] * 8)
        model._waterfill_small(small)
        model._waterfill_vector(vector)
        assert all(abs(f.rate - 1.0) < 1e-12 for f in small)
        np.testing.assert_allclose(
            [f.rate for f in small], [f.rate for f in vector], rtol=1e-9
        )

    def test_small_fill_is_permutation_invariant(self):
        model = make_model(CAPS)
        forward = make_flows(ROUTES)
        backward = make_flows(ROUTES[::-1])
        model._waterfill_small(forward)
        model._waterfill_small(backward)
        assert [f.rate for f in forward] == [f.rate for f in backward][::-1]


class TestFlowModuleIsOrderClean:
    def test_detlint_reports_no_unordered_iteration(self):
        diags = lint_source(FLOW_PY.read_text(), "src/repro/sim/flow.py")
        assert [d for d in diags if d.rule == "det/unordered-iter"] == []
