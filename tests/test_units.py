"""Unit conversion tests."""

import math

import pytest

from repro.util import units


class TestConversions:
    def test_gbps_to_bytes_per_s(self):
        assert units.gbps_to_bytes_per_s(8.0) == 1e9

    def test_bytes_per_s_to_gbps_roundtrip(self):
        assert units.bytes_per_s_to_gbps(units.gbps_to_bytes_per_s(24.0)) == pytest.approx(24.0)

    def test_ns_to_s(self):
        assert units.ns_to_s(2500.0) == pytest.approx(2.5e-6)

    def test_s_to_ns_roundtrip(self):
        assert units.s_to_ns(units.ns_to_s(1300.0)) == pytest.approx(1300.0)

    def test_constants(self):
        assert units.KIB == 1024
        assert units.MIB == 1024 * 1024
        assert units.GBPS == 1e9 / 8.0


class TestParseBandwidth:
    def test_gbps(self):
        assert units.parse_bandwidth("10Gbps") == pytest.approx(10e9 / 8)

    def test_with_comma(self):
        assert units.parse_bandwidth("1,000Mbps") == pytest.approx(1e9 / 8)

    def test_bytes_per_second(self):
        assert units.parse_bandwidth("3 GB/s") == pytest.approx(3e9)

    def test_case_insensitive(self):
        assert units.parse_bandwidth("24GBPS") == units.parse_bandwidth("24gbps")

    def test_unknown_unit_raises(self):
        with pytest.raises(ValueError, match="unknown bandwidth unit"):
            units.parse_bandwidth("10 parsecs")

    def test_garbage_raises(self):
        with pytest.raises(ValueError, match="cannot parse"):
            units.parse_bandwidth("fast")


class TestParseLatency:
    def test_ns_with_comma(self):
        assert units.parse_latency("2,500ns") == pytest.approx(2.5e-6)

    def test_us(self):
        assert units.parse_latency("1.3us") == pytest.approx(1.3e-6)

    def test_seconds(self):
        assert units.parse_latency("2s") == 2.0

    def test_bad_unit(self):
        with pytest.raises(ValueError):
            units.parse_latency("5 minutes")


class TestParseSize:
    def test_kib(self):
        assert units.parse_size("4KiB") == 4096

    def test_mb_decimal(self):
        assert units.parse_size("1MB") == 1_000_000

    def test_plain_bytes(self):
        assert units.parse_size("512B") == 512


class TestFormatTime:
    def test_seconds(self):
        assert units.format_time(1.5) == "1.500s"

    def test_milliseconds(self):
        assert units.format_time(0.0025) == "2.500ms"

    def test_microseconds(self):
        assert units.format_time(3.2e-6) == "3.200us"

    def test_nanoseconds(self):
        assert units.format_time(5e-9) == "5.0ns"

    def test_zero(self):
        assert units.format_time(0.0) == "0.000s"

    def test_nan(self):
        assert units.format_time(float("nan")) == "nan"
