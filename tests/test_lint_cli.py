"""Tests for the unified repro-lint CLI (repro.analysis.cli)."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import (
    Allowance,
    Baseline,
    canonical_path,
)
from repro.analysis.cli import main, run_lint
from repro.machines.presets import get_machine
from repro.trace.dumpi import write_trace
from repro.workloads.npb import generate_npb

REPO_ROOT = Path(__file__).resolve().parent.parent

CLEAN_SRC = "def double(x):\n    return 2 * x\n"

#: One det/wall-clock ERROR on line 5.
WALLCLOCK_SRC = (
    "import json\n"
    "import time\n"
    "\n"
    "def f(record):\n"
    "    return json.dumps({\"at\": time.time()})\n"
)


def make_pkg(tmp_path, name, source):
    """A file under a ``repro/core/`` prefix so paths canonicalize."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    path = pkg / name
    path.write_text(source)
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text(CLEAN_SRC)
        assert main([str(path), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_detlint_error_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(WALLCLOCK_SRC)
        assert main([str(path), "--no-baseline"]) == 2
        assert "det/wall-clock" in capsys.readouterr().out

    def test_seed_provenance_error_exits_two(self, tmp_path, capsys):
        # Stdlib random use: srclint's src/unseeded-rng is superseded by
        # the interprocedural det/seed-provenance rule for covered modules.
        path = tmp_path / "bad.py"
        path.write_text("import random\nrandom.seed(1)\n")
        assert main([str(path), "--no-baseline"]) == 2
        out = capsys.readouterr().out
        assert "det/seed-provenance" in out
        assert "src/unseeded-rng" not in out

    def test_warning_only_exits_one(self, tmp_path):
        # Inside the repro/ prefix the unordered-capture rule warns.
        path = make_pkg(
            tmp_path, "warn.py",
            "def f(items):\n    s = set(items)\n    return list(s)\n",
        )
        assert main([str(path), "--no-baseline"]) == 1


class TestBaselineRatchet:
    def test_allowance_suppresses_known_finding(self, tmp_path, capsys):
        make_pkg(tmp_path, "mod.py", WALLCLOCK_SRC)
        bpath = tmp_path / "baseline.json"
        Baseline([
            Allowance("det/wall-clock", "repro/core/mod.py", 1, "known"),
        ]).save(bpath)
        code = main([str(tmp_path / "repro"), "--baseline", str(bpath)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 known finding(s) suppressed" in out

    def test_new_finding_beyond_allowance_fails(self, tmp_path, capsys):
        two = WALLCLOCK_SRC + (
            "\ndef g(record):\n"
            "    return json.dumps({\"seen\": time.time()})\n"
        )
        make_pkg(tmp_path, "mod.py", two)
        bpath = tmp_path / "baseline.json"
        Baseline([
            Allowance("det/wall-clock", "repro/core/mod.py", 1, "known"),
        ]).save(bpath)
        code = main([str(tmp_path / "repro"), "--baseline", str(bpath)])
        out = capsys.readouterr().out
        assert code == 2
        # The whole over-allowance group is shown, not just the newcomer.
        assert out.count("det/wall-clock") >= 2

    def test_stale_allowance_is_reported(self, tmp_path, capsys):
        make_pkg(tmp_path, "mod.py", CLEAN_SRC)
        bpath = tmp_path / "baseline.json"
        Baseline([
            Allowance("det/wall-clock", "repro/core/mod.py", 1, "fixed"),
        ]).save(bpath)
        code = main([str(tmp_path / "repro"), "--baseline", str(bpath)])
        out = capsys.readouterr().out
        assert code == 0
        assert "stale allowance" in out

    def test_update_baseline_writes_and_carries_reasons(self, tmp_path, capsys):
        two = WALLCLOCK_SRC + (
            "\ndef g(record):\n"
            "    return json.dumps({\"seen\": time.time()})\n"
        )
        make_pkg(tmp_path, "mod.py", two)
        bpath = tmp_path / "baseline.json"
        Baseline([
            Allowance("det/wall-clock", "repro/core/mod.py", 1,
                      "intentional timestamp"),
        ]).save(bpath)
        code = main([
            str(tmp_path / "repro"), "--baseline", str(bpath),
            "--update-baseline",
        ])
        assert code == 0
        assert "baseline written" in capsys.readouterr().out
        updated = Baseline.load(bpath)
        (allowance,) = updated.allowances
        assert allowance.count == 2
        assert allowance.reason == "intentional timestamp"
        # The regenerated baseline makes the same tree pass.
        assert main([
            str(tmp_path / "repro"), "--baseline", str(bpath),
        ]) == 0
        capsys.readouterr()

    def test_run_lint_returns_raw_source_diags(self, tmp_path):
        make_pkg(tmp_path, "mod.py", WALLCLOCK_SRC)
        baseline = Baseline([
            Allowance("det/wall-clock", "repro/core/mod.py", 1, "known"),
        ])
        report, source_diags, result, analysis = run_lint(
            [tmp_path / "repro"], baseline, use_cache=False
        )
        assert report.diagnostics == []
        assert [d.rule for d in source_diags] == ["det/wall-clock"]
        assert result.suppressed == 1
        assert analysis.stats()["modules"] == 1

    def test_canonical_path_strips_line_and_prefix(self):
        loc = "/tmp/x/repro/core/mod.py:17"
        assert canonical_path(loc) == "repro/core/mod.py"
        assert canonical_path("other/file.py") == "other/file.py"


class TestJsonOutput:
    def test_json_payload_includes_baseline_info(self, tmp_path, capsys):
        make_pkg(tmp_path, "mod.py", WALLCLOCK_SRC)
        bpath = tmp_path / "baseline.json"
        Baseline([
            Allowance("det/wall-clock", "repro/core/mod.py", 1, "known"),
        ]).save(bpath)
        code = main([
            str(tmp_path / "repro"), "--baseline", str(bpath), "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["baseline"]["suppressed"] == 1
        assert payload["diagnostics"] == []

    def test_json_without_baseline_lists_findings(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(WALLCLOCK_SRC)
        assert main([str(path), "--no-baseline", "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["ERROR"] == 1
        assert payload["diagnostics"][0]["rule"] == "det/wall-clock"


class TestTracePaths:
    def test_unreadable_trace_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "garbage.dmp"
        path.write_text("not a trace at all\n")
        assert main([str(path), "--no-baseline"]) == 2
        assert "trace/unreadable" in capsys.readouterr().out

    def test_sources_and_trace_merge_into_one_report(self, tmp_path, capsys):
        trace = generate_npb(
            "CG", 16, get_machine("cielito"), seed=3, compute_per_iter=0.001
        )
        tpath = write_trace(trace, tmp_path / "cg.dmp")
        spath = tmp_path / "ok.py"
        spath.write_text(CLEAN_SRC)
        assert main([str(spath), str(tpath), "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "ok.py" in out and "cg.dmp" in out


class TestEntryPoint:
    def test_module_entry_point_repo_is_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.cli"],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "suppressed" in proc.stdout
