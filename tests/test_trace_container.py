"""Tests for TraceSet validation and measured-time accessors."""

import pytest

from repro.trace.events import Op, OpKind, make_compute
from repro.trace.trace import TraceSet, TraceValidationError


def two_rank_trace(stamp=False):
    send = Op(OpKind.SEND, peer=1, nbytes=100, tag=7)
    recv = Op(OpKind.RECV, peer=0, nbytes=100, tag=7)
    c0, c1 = make_compute(1.0), make_compute(2.0)
    if stamp:
        c0.t_entry, c0.t_exit = 0.0, 1.0
        send.t_entry, send.t_exit = 1.0, 1.1
        c1.t_entry, c1.t_exit = 0.0, 2.0
        recv.t_entry, recv.t_exit = 2.0, 2.2
    return TraceSet("t", "APP", [[c0, send], [c1, recv]])


class TestBasics:
    def test_shape(self):
        t = two_rank_trace()
        assert t.nranks == 2
        assert t.op_count() == 4
        assert t.message_count() == 1
        assert t.total_send_bytes() == 100
        assert len(t) == 2

    def test_world_comm_auto(self):
        t = two_rank_trace()
        assert t.comm_ranks(0) == (0, 1)

    def test_unknown_comm(self):
        with pytest.raises(KeyError):
            two_rank_trace().comm_ranks(9)

    def test_nnodes(self):
        t = TraceSet("t", "A", [[], [], []], ranks_per_node=2)
        assert t.nnodes == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceSet("t", "A", [])


class TestMeasuredTimes:
    def test_unstamped_raises(self):
        with pytest.raises(ValueError):
            two_rank_trace().measured_total_time()

    def test_has_timestamps(self):
        assert not two_rank_trace().has_timestamps()
        assert two_rank_trace(stamp=True).has_timestamps()

    def test_total_is_latest_exit(self):
        assert two_rank_trace(stamp=True).measured_total_time() == pytest.approx(2.2)

    def test_comm_time_mean_over_ranks(self):
        # rank0 MPI time 0.1, rank1 MPI time 0.2 -> mean 0.15
        assert two_rank_trace(stamp=True).measured_comm_time() == pytest.approx(0.15)

    def test_comm_fraction(self):
        t = two_rank_trace(stamp=True)
        assert t.comm_fraction() == pytest.approx(0.15 / 2.2)


class TestValidation:
    def test_valid_trace_passes(self):
        two_rank_trace().validate()

    def test_unmatched_send(self):
        t = TraceSet("t", "A", [[Op(OpKind.SEND, peer=1, nbytes=4, tag=1)], []])
        with pytest.raises(TraceValidationError, match="unmatched"):
            t.validate()

    def test_byte_mismatch(self):
        t = TraceSet(
            "t",
            "A",
            [
                [Op(OpKind.SEND, peer=1, nbytes=4, tag=1)],
                [Op(OpKind.RECV, peer=0, nbytes=8, tag=1)],
            ],
        )
        with pytest.raises(TraceValidationError, match="mismatch"):
            t.validate()

    def test_unwaited_request(self):
        t = TraceSet(
            "t",
            "A",
            [
                [Op(OpKind.ISEND, peer=1, nbytes=4, tag=1, req=1)],
                [Op(OpKind.RECV, peer=0, nbytes=4, tag=1)],
            ],
        )
        with pytest.raises(TraceValidationError, match="unwaited"):
            t.validate()

    def test_request_reuse(self):
        ops = [
            Op(OpKind.IRECV, peer=1, nbytes=4, tag=1, req=1),
            Op(OpKind.IRECV, peer=1, nbytes=4, tag=2, req=1),
        ]
        t = TraceSet("t", "A", [ops, [Op(OpKind.SEND, peer=0, nbytes=4, tag=1),
                                      Op(OpKind.SEND, peer=0, nbytes=4, tag=2)]])
        with pytest.raises(TraceValidationError, match="reuses request"):
            t.validate()

    def test_wait_unknown_request(self):
        t = TraceSet("t", "A", [[Op(OpKind.WAIT, req=5)], []])
        with pytest.raises(TraceValidationError, match="unknown request"):
            t.validate()

    def test_collective_sequence_mismatch(self):
        t = TraceSet(
            "t",
            "A",
            [[Op(OpKind.ALLREDUCE, nbytes=8)], [Op(OpKind.ALLREDUCE, nbytes=16)]],
        )
        with pytest.raises(TraceValidationError, match="collective sequence"):
            t.validate()

    def test_collective_on_foreign_comm(self):
        t = TraceSet(
            "t",
            "A",
            [[Op(OpKind.BARRIER, comm=1)], []],
            comms={1: (1,)},
        )
        with pytest.raises(TraceValidationError, match="does not belong"):
            t.validate()

    def test_subcomm_collective_valid(self):
        t = TraceSet(
            "t",
            "A",
            [[Op(OpKind.BARRIER, comm=1)], [Op(OpKind.BARRIER, comm=1)], []],
            comms={1: (0, 1)},
        )
        t.validate()
