"""Property tests for the batched event queue (PR 8 tentpole).

The batched drain (:meth:`EventEngine._drain_batched`) must process
callbacks in the *identical total order* as the scalar one-``heappop``
-per-event reference loop — (time, scheduling sequence) order — under
every adversarial schedule Hypothesis can construct: duplicate
timestamps, ties broken only by scheduling order, and events scheduled
from *inside* a batch dispatch at the batch's own timestamp (the
fast path that appends to the live pool and skips the heap entirely).

The plans generated here are two-level trees: top-level events at
times drawn from a small pool (forcing heavy timestamp collisions),
each optionally scheduling children at non-negative offsets when it
runs — offset ``0.0`` lands exactly on the live batch.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventEngine

#: Small time pools force duplicate timestamps in nearly every example.
TIMES = st.sampled_from([0.0, 1.0, 1.0, 2.0, 2.5, 2.5, 3.0])
OFFSETS = st.sampled_from([0.0, 0.0, 0.0, 0.5, 1.0, 2.0])

#: A child schedules grandchildren at these offsets when it runs.
GRANDCHILDREN = st.lists(OFFSETS, max_size=2)
CHILDREN = st.lists(st.tuples(OFFSETS, GRANDCHILDREN), max_size=3)
PLANS = st.lists(st.tuples(TIMES, CHILDREN), min_size=1, max_size=10)

relaxed = settings(
    max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def execute_plan(plan, vectorized):
    """Run ``plan`` on a fresh engine; return (labels-in-order, engine).

    Labels record both execution order and the virtual time each
    callback observed, so a reordering *or* a clock glitch fails the
    comparison.
    """
    engine = EventEngine(vectorized=vectorized)
    order = []
    counter = [0]

    def spawn(children):
        label = counter[0]
        counter[0] += 1

        def callback():
            order.append((label, engine.now))
            for offset, grandchildren in children:
                engine.schedule(
                    engine.now + offset,
                    spawn([(g, []) for g in grandchildren]),
                )
        return callback

    for when, children in plan:
        engine.schedule(when, spawn(children))
    engine.run()
    return order, engine


class TestBatchedOrderMatchesScalar:
    @given(plan=PLANS)
    @relaxed
    def test_same_total_order_as_heapq_reference(self, plan):
        """The core contract: batched == scalar on every schedule,
        including events scheduled from inside a batch dispatch."""
        scalar_order, scalar_engine = execute_plan(plan, vectorized=False)
        batched_order, batched_engine = execute_plan(plan, vectorized=True)
        assert batched_order == scalar_order
        assert batched_engine.events_processed == scalar_engine.events_processed
        assert batched_engine.now == scalar_engine.now

    @given(
        times=st.lists(TIMES, min_size=2, max_size=12),
    )
    @relaxed
    def test_duplicate_timestamps_run_in_scheduling_order(self, times):
        """Ties are broken by scheduling sequence alone, in both modes."""
        for vectorized in (False, True):
            engine = EventEngine(vectorized=vectorized)
            order = []
            for label, when in enumerate(times):
                engine.schedule(when, lambda label=label: order.append(label))
            engine.run()
            expected = [label for _, label in sorted(
                (when, label) for label, when in enumerate(times)
            )]
            assert order == expected, f"vectorized={vectorized}"

    @given(plan=PLANS)
    @relaxed
    def test_virtual_time_is_monotonic(self, plan):
        for vectorized in (False, True):
            order, _ = execute_plan(plan, vectorized)
            observed = [now for _, now in order]
            assert observed == sorted(observed), f"vectorized={vectorized}"


class TestInBatchScheduling:
    """Regression tests for the stale-local hazard: an event scheduled
    at the live batch's own timestamp must run in the *same* drain
    (the dispatch loop re-reads the pool length; a cached bound would
    strand it until a later — or never — sweep)."""

    def test_same_timestamp_event_from_callback_runs_in_same_run(self):
        engine = EventEngine(vectorized=True)
        order = []

        def parent():
            order.append("parent")
            engine.schedule(engine.now, lambda: order.append("child"))

        engine.schedule(1.0, parent)
        engine.run()
        assert order == ["parent", "child"]
        assert engine.events_processed == 2

    def test_chained_same_timestamp_events_all_run(self):
        """A chain of N same-timestamp events scheduled link-by-link
        from inside the batch is fully drained in one run."""
        engine = EventEngine(vectorized=True)
        order = []

        def link(n):
            def callback():
                order.append(n)
                if n < 50:
                    engine.schedule(engine.now, link(n + 1))
            return callback

        engine.schedule(2.0, link(0))
        engine.run()
        assert order == list(range(51))

    def test_in_batch_event_keeps_position_relative_to_later_times(self):
        """A same-timestamp child runs before any later-time event that
        was already in the heap."""
        engine = EventEngine(vectorized=True)
        order = []
        engine.schedule(2.0, lambda: order.append("later"))

        def parent():
            order.append("parent")
            engine.schedule(1.0, lambda: order.append("child"))

        engine.schedule(1.0, parent)
        engine.run()
        assert order == ["parent", "child", "later"]

    def test_events_processed_counts_in_batch_events(self):
        """events_processed is exact in both modes for the same plan."""
        plan = [(0.0, [(0.0, [0.0, 0.5]), (1.0, [])]), (0.0, []), (1.0, [(0.0, [])])]
        _, scalar = execute_plan(plan, vectorized=False)
        _, batched = execute_plan(plan, vectorized=True)
        assert batched.events_processed == scalar.events_processed == 8
