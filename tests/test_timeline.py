"""Tests for the ASCII timeline renderer."""

import pytest

from repro.machines import CIELITO
from repro.trace.timeline import CELL_SYMBOLS, render_timeline
from repro.workloads import generate_doe, generate_npb, synthesize_ground_truth


@pytest.fixture(scope="module")
def stamped():
    trace = generate_npb("CG", 8, CIELITO, seed=77, compute_per_iter=0.002,
                         ranks_per_node=2)
    return synthesize_ground_truth(trace, CIELITO, seed=77)


class TestRenderTimeline:
    def test_one_row_per_rank(self, stamped):
        text = render_timeline(stamped, width=40)
        rows = [l for l in text.splitlines() if l.startswith("rank")]
        assert len(rows) == stamped.nranks

    def test_row_width(self, stamped):
        text = render_timeline(stamped, width=40)
        row = next(l for l in text.splitlines() if l.startswith("rank"))
        assert len(row) == len("rank    0 ") + 40

    def test_contains_compute_and_comm(self, stamped):
        text = render_timeline(stamped, width=60)
        assert CELL_SYMBOLS["compute"] in text
        assert (CELL_SYMBOLS["p2p"] in text) or (CELL_SYMBOLS["collective"] in text)

    def test_legend_and_scale(self, stamped):
        text = render_timeline(stamped, width=40)
        assert "#=compute" in text.replace("compute=#", "#=compute") or "compute" in text

    def test_rank_subset(self, stamped):
        text = render_timeline(stamped, width=40, ranks=[0, 3])
        rows = [l for l in text.splitlines() if l.startswith("rank")]
        assert len(rows) == 2

    def test_elision_for_many_ranks(self):
        trace = generate_doe("CMC", 64, CIELITO, seed=78, compute_per_iter=0.005,
                             ranks_per_node=4)
        synthesize_ground_truth(trace, CIELITO, seed=78)
        text = render_timeline(trace, width=30)
        assert "..." in text
        rows = [l for l in text.splitlines() if l.startswith("rank")]
        assert len(rows) == 32

    def test_window_selection(self, stamped):
        total = stamped.measured_total_time()
        text = render_timeline(stamped, width=30, t_start=0.0, t_end=total / 2)
        assert text

    def test_unstamped_rejected(self):
        trace = generate_npb("CG", 4, CIELITO, seed=1, compute_per_iter=0.001)
        with pytest.raises(ValueError, match="unstamped"):
            render_timeline(trace)

    def test_bad_window(self, stamped):
        with pytest.raises(ValueError):
            render_timeline(stamped, t_start=1.0, t_end=0.5)
        with pytest.raises(ValueError):
            render_timeline(stamped, width=4)
