"""Differential suite: analytic (recorded-tape) sensitivity results vs
brute-force replays, across the seeded mini-corpus.

The sensitivity package documents a ``1e-6`` relative agreement band
between tape evaluation and a real replay; this suite holds the much
tighter ``1e-9`` observed in practice so any structural regression in
the recorder (a missing edge, a mis-folded cost) fails loudly rather
than hiding inside the documented band.
"""

import numpy as np
import pytest

from repro.core.pipeline import SIM_MODELS, measure_trace
from repro.machines.presets import get_machine
from repro.mfact.hockney import ConfigGrid
from repro.mfact.logical_clock import LogicalClockReplay
from repro.mfact.whatif import explore_design_space
from repro.sensitivity import bandwidth_curve, latency_curve, record_graph
from repro.trace.features import SENSITIVITY_FEATURE_NAMES
from repro.workloads.suite import build_trace, mini_corpus_specs

REL_BAND = 1e-9

BW_FACTORS = (0.25, 1.0, 4.0)
LAT_FACTORS = (1.0, 8.0)
COMPUTE_FACTORS = (1.0, 10.0)


@pytest.fixture(scope="module")
def corpus():
    """(trace, machine) for a small seeded mini-corpus slice."""
    out = []
    for spec in mini_corpus_specs(count=4, nranks=8):
        trace = build_trace(spec)
        out.append((trace, get_machine(trace.machine)))
    return out


class TestAnalyticDesignSpace:
    def test_grid_matches_replayed_path(self, corpus):
        for trace, machine in corpus:
            replayed = explore_design_space(
                trace, machine, BW_FACTORS, LAT_FACTORS, COMPUTE_FACTORS
            )
            analytic = explore_design_space(
                trace, machine, BW_FACTORS, LAT_FACTORS, COMPUTE_FACTORS,
                analytic=True,
            )
            assert analytic.points == replayed.points
            assert analytic.baseline_index == replayed.baseline_index
            np.testing.assert_allclose(
                analytic.total_time, replayed.total_time, rtol=REL_BAND
            )

    def test_derived_queries_agree(self, corpus):
        trace, machine = corpus[0]
        replayed = explore_design_space(
            trace, machine, BW_FACTORS, LAT_FACTORS, COMPUTE_FACTORS
        )
        analytic = explore_design_space(
            trace, machine, BW_FACTORS, LAT_FACTORS, COMPUTE_FACTORS,
            analytic=True,
        )
        assert analytic.best()[0] == replayed.best()[0]
        assert analytic.cheapest_meeting(2.0) == replayed.cheapest_meeting(2.0)
        assert analytic.baseline_time == pytest.approx(
            replayed.baseline_time, rel=REL_BAND
        )

    def test_analytic_rejects_gridless_baseline(self, corpus):
        trace, machine = corpus[0]
        with pytest.raises(ValueError, match="baseline"):
            explore_design_space(
                trace, machine, (2.0,), (1.0,), (1.0,), analytic=True
            )


class TestCurveFidelity:
    def test_latency_curve_matches_per_point_replays(self, corpus):
        for trace, machine in corpus:
            graph, _ = record_graph(trace, machine)
            for factor, total in latency_curve(graph, machine, (1.0, 4.0, 64.0)):
                grid = ConfigGrid(
                    [machine.latency * factor],
                    [machine.bandwidth],
                    [machine.compute_scale],
                )
                replayed = float(
                    LogicalClockReplay(trace, machine, grid).run().total_time[0]
                )
                assert total == pytest.approx(replayed, rel=REL_BAND)

    def test_bandwidth_curve_matches_per_point_replays(self, corpus):
        trace, machine = corpus[0]
        graph, _ = record_graph(trace, machine)
        for factor, total in bandwidth_curve(graph, machine, (0.125, 1.0, 8.0)):
            grid = ConfigGrid(
                [machine.latency],
                [machine.bandwidth * factor],
                [machine.compute_scale],
            )
            replayed = float(
                LogicalClockReplay(trace, machine, grid).run().total_time[0]
            )
            assert total == pytest.approx(replayed, rel=REL_BAND)


class TestFeatureStability:
    def test_features_identical_across_engines_and_sim_modes(self, corpus):
        """The sensitivity features come from MFACT's modeling replay
        alone, so engine choice and scalar/vectorized sim mode must not
        move them by a single bit."""
        trace, _ = corpus[0]
        variants = [
            measure_trace(trace, engines=SIM_MODELS, sim_vectorized=True),
            measure_trace(trace, engines=SIM_MODELS, sim_vectorized=False),
            measure_trace(trace, engines=["packet-flow"], sim_vectorized=True),
            measure_trace(trace, engines=["flow"], sim_vectorized=False),
        ]
        reference = {
            name: variants[0].features[name] for name in SENSITIVITY_FEATURE_NAMES
        }
        for record in variants[1:]:
            for name in SENSITIVITY_FEATURE_NAMES:
                assert record.features[name] == reference[name]
