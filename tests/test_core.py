"""Core-contribution tests: DIFFtotal, study records, enhanced MFACT."""

import numpy as np
import pytest

from repro.core import (
    DIFF_THRESHOLD,
    EnhancedMFACT,
    StudyRecord,
    diff_total,
    measure_trace,
    naive_heuristic_success,
    requires_simulation,
)
from repro.core.enhanced_mfact import CANDIDATE_NAMES, design_matrix, labels
from repro.core.pipeline import ToolRun
from repro.machines import CIELITO
from repro.trace.features import NUMERIC_FEATURE_NAMES, SENSITIVITY_FEATURE_NAMES
from repro.util.rng import substream
from repro.workloads import generate_npb, synthesize_ground_truth


class TestDiffTotal:
    def test_identity(self):
        assert diff_total(1.0, 1.0) == 0.0

    def test_symmetric_magnitude(self):
        assert diff_total(1.1, 1.0) == pytest.approx(0.1)
        assert diff_total(0.9, 1.0) == pytest.approx(0.1)

    def test_threshold_default(self):
        assert DIFF_THRESHOLD == 0.02
        assert not requires_simulation(1.019, 1.0)
        assert requires_simulation(1.021, 1.0)

    def test_custom_threshold(self):
        assert requires_simulation(1.04, 1.0, threshold=0.03)

    def test_invalid(self):
        with pytest.raises(ValueError):
            diff_total(1.0, 0.0)
        with pytest.raises(ValueError):
            diff_total(-1.0, 1.0)


def synthetic_record(index, diff, cs, rng):
    """A StudyRecord with controllable DIFFtotal and features."""
    features = {name: float(rng.normal()) for name in NUMERIC_FEATURE_NAMES}
    # PoC correlates with cs but noisily, so CL{ncs} stays the cleanest signal.
    features["PoC"] = (40.0 if cs else 10.0) + float(rng.normal(0, 15))
    mfact_total = 1.0
    record = StudyRecord(
        name=f"r{index}",
        app="X",
        suite="NPB",
        machine="cielito",
        nranks=64,
        spec_index=index,
        measured_total=1.2,
        measured_comm=0.2,
        comm_fraction=0.2,
        features=features,
    )
    record.mfact = ToolRun(True, total_time=mfact_total, comm_time=0.1, walltime=0.01)
    record.mfact_cs = cs
    record.mfact_class = "bandwidth-bound" if cs else "computation-bound"
    record.sims["packet-flow"] = ToolRun(
        True, total_time=mfact_total * (1 + diff), comm_time=0.1, walltime=0.1
    )
    return record


def synthetic_corpus(n=120, flip=0.05, seed=0):
    """cs records have large DIFF, ncs small, with a few label flips."""
    rng = substream(seed, "core-test")
    records = []
    for i in range(n):
        cs = i % 2 == 0
        noisy = rng.random() < flip
        big = cs != noisy
        diff = rng.uniform(0.05, 0.2) if big else rng.uniform(0.0, 0.015)
        records.append(synthetic_record(i, diff, cs, rng))
    return records


class TestStudyRecord:
    def test_diff_total(self):
        rng = substream(1, "x")
        record = synthetic_record(0, 0.10, True, rng)
        assert record.diff_total() == pytest.approx(0.10)
        assert record.requires_simulation() is True

    def test_missing_sim_gives_none(self):
        rng = substream(1, "x")
        record = synthetic_record(0, 0.10, True, rng)
        record.sims.clear()
        assert record.diff_total() is None
        assert record.requires_simulation() is None

    def test_failed_sim_gives_none(self):
        rng = substream(1, "x")
        record = synthetic_record(0, 0.10, True, rng)
        record.sims["packet-flow"] = ToolRun(False, error="nope")
        assert record.diff_total() is None

    def test_json_roundtrip(self):
        rng = substream(1, "x")
        record = synthetic_record(3, 0.04, False, rng)
        again = StudyRecord.from_json(record.to_json())
        assert again.name == record.name
        assert again.diff_total() == pytest.approx(record.diff_total())
        assert again.mfact.walltime == record.mfact.walltime


class TestDesignMatrix:
    def test_shape_and_names(self):
        records = synthetic_corpus(20)
        X = design_matrix(records)
        assert X.shape == (20, len(CANDIDATE_NAMES))
        assert CANDIDATE_NAMES[-1] == "CL{ncs}"

    def test_cl_indicator(self):
        records = synthetic_corpus(4)
        X = design_matrix(records)
        for row, record in zip(X, records):
            assert row[-1] == (0.0 if record.mfact_cs else 1.0)

    def test_labels(self):
        records = synthetic_corpus(20)
        y = labels(records)
        assert set(np.unique(y)) <= {0, 1}

    def test_labels_missing_sim_raises(self):
        records = synthetic_corpus(5)
        records[2].sims.clear()
        with pytest.raises(ValueError):
            labels(records)


class TestNaiveHeuristic:
    def test_high_success_when_cs_aligned(self):
        rate, counts = naive_heuristic_success(synthetic_corpus(flip=0.0))
        assert rate == 1.0

    def test_flips_reduce_success(self):
        rate, _ = naive_heuristic_success(synthetic_corpus(flip=0.25, seed=3))
        assert 0.5 < rate < 0.95


class TestEnhancedMFACT:
    def test_beats_naive_on_feature_rich_corpus(self):
        records = synthetic_corpus(n=160, flip=0.15, seed=5)
        # Make a numeric feature explain the flips so the model can win.
        for record in records:
            record.features["PoSYN"] = (
                50.0 if record.requires_simulation() else 5.0
            ) + float(substream(record.spec_index, "n").normal(0, 2))
        enhanced = EnhancedMFACT.train(records, runs=20, seed=1)
        naive_rate, _ = naive_heuristic_success(records)
        assert enhanced.success_rate > naive_rate

    def test_cl_selected_for_aligned_corpus(self):
        records = synthetic_corpus(n=160, flip=0.05, seed=2)
        enhanced = EnhancedMFACT.train(records, runs=10, seed=0)
        assert "CL{ncs}" in enhanced.selected
        idx = enhanced.selected.index("CL{ncs}")
        assert enhanced.model.coef[idx + 1] < 0  # ncs -> no simulation

    def test_predict_record(self):
        records = synthetic_corpus(n=120, flip=0.0, seed=4)
        enhanced = EnhancedMFACT.train(records, runs=5, seed=0)
        preds = [enhanced.predict_record(r) for r in records]
        truth = [r.requires_simulation() for r in records]
        acc = np.mean([p == t for p, t in zip(preds, truth)])
        assert acc > 0.9

    def test_probability_in_range(self):
        records = synthetic_corpus(n=80, seed=6)
        enhanced = EnhancedMFACT.train(records, runs=5, seed=0)
        p = enhanced.probability(records[0])
        assert 0.0 <= p <= 1.0

    def test_evaluate_counts(self):
        records = synthetic_corpus(n=80, seed=7)
        enhanced = EnhancedMFACT.train(records, runs=5, seed=0)
        counts = enhanced.evaluate(records)
        assert counts.total == 80

    def test_success_rate_requires_cv(self):
        records = synthetic_corpus(n=80, seed=8)
        enhanced = EnhancedMFACT.train(records, cross_validate=False)
        with pytest.raises(ValueError):
            _ = enhanced.success_rate

    def test_predict_trace_end_to_end(self):
        trace = generate_npb("EP", 8, CIELITO, seed=2, compute_per_iter=0.01,
                             ranks_per_node=2)
        synthesize_ground_truth(trace, CIELITO, seed=2)
        records = synthetic_corpus(n=100, seed=9)
        enhanced = EnhancedMFACT.train(records, runs=5, seed=0)
        decision = enhanced.predict_trace(trace, CIELITO)
        assert decision in (True, False)


class TestMeasureTrace:
    def test_full_measurement(self):
        trace = generate_npb("CG", 8, CIELITO, seed=3, compute_per_iter=0.002,
                             ranks_per_node=2)
        synthesize_ground_truth(trace, CIELITO, seed=3)
        record = measure_trace(trace)
        assert record.mfact.completed
        assert set(record.sims) == {"packet", "flow", "packet-flow"}
        assert all(run.completed for run in record.sims.values())
        assert record.diff_total() is not None
        # Table III numerics plus the zero-replay sensitivity features.
        assert set(record.features) == set(
            NUMERIC_FEATURE_NAMES + SENSITIVITY_FEATURE_NAMES
        )
        assert all(
            np.isfinite(record.features[n]) for n in SENSITIVITY_FEATURE_NAMES
        )

    def test_engine_failures_recorded(self):
        trace = generate_npb(
            "CG", 8, CIELITO, seed=3, compute_per_iter=0.002,
            ranks_per_node=2, use_threads=True,
        )
        synthesize_ground_truth(trace, CIELITO, seed=3)
        record = measure_trace(trace)
        assert not record.sims["packet"].completed
        assert not record.sims["flow"].completed
        assert record.sims["packet-flow"].completed
        assert "thread" in record.sims["packet"].error
