"""Tests for the extension features: what-if exploration, bottleneck
analysis, multi-job interference, trace compression, trace CLI."""

import numpy as np
import pytest

from repro.machines import CIELITO
from repro.mfact import analyze_bottlenecks, explore_design_space
from repro.mfact.whatif import DesignPoint
from repro.sim import merge_traces, simulate_multijob
from repro.trace import compress_trace, decompress_trace, write_trace
from repro.trace.cli import main as trace_cli
from repro.trace.events import Op, OpKind, make_compute
from repro.trace.trace import TraceSet
from repro.workloads import generate_doe, generate_npb, synthesize_ground_truth


@pytest.fixture(scope="module")
def comm_trace():
    t = generate_doe("Nekbone", 16, CIELITO, seed=91, compute_per_iter=0.00005,
                     ranks_per_node=1)
    return synthesize_ground_truth(t, CIELITO, seed=91)


@pytest.fixture(scope="module")
def comp_trace():
    t = generate_npb("EP", 8, CIELITO, seed=92, compute_per_iter=0.02,
                     ranks_per_node=1, imbalance=0.4)
    return synthesize_ground_truth(t, CIELITO, seed=92)


class TestDesignSpace:
    def test_grid_shape(self, comm_trace):
        result = explore_design_space(comm_trace, CIELITO)
        assert len(result.points) == 3 * 3 * 3
        assert result.total_time.shape == (27,)

    def test_baseline_speedup_is_one(self, comm_trace):
        result = explore_design_space(comm_trace, CIELITO)
        assert result.speedup(DesignPoint(1.0, 1.0, 1.0)) == pytest.approx(1.0)

    def test_all_upgrades_help(self, comm_trace):
        result = explore_design_space(comm_trace, CIELITO)
        best_point, best_speedup = result.best()
        assert best_speedup >= 1.0
        # The all-maxed machine is at least as good as any single upgrade.
        assert best_speedup >= result.speedup(DesignPoint(10.0, 1.0, 1.0)) - 1e-9

    def test_comm_bound_app_prefers_network(self, comm_trace):
        result = explore_design_space(comm_trace, CIELITO)
        net = result.speedup(DesignPoint(10.0, 10.0, 1.0))
        cpu = result.speedup(DesignPoint(1.0, 1.0, 10.0))
        assert net > cpu

    def test_compute_bound_app_prefers_cpu(self, comp_trace):
        result = explore_design_space(comp_trace, CIELITO)
        net = result.speedup(DesignPoint(10.0, 10.0, 1.0))
        cpu = result.speedup(DesignPoint(1.0, 1.0, 10.0))
        assert cpu > net

    def test_cheapest_meeting_target(self, comm_trace):
        result = explore_design_space(comm_trace, CIELITO)
        point = result.cheapest_meeting(1.01)
        assert point is not None
        assert result.speedup(point) >= 1.01

    def test_unreachable_target(self, comm_trace):
        result = explore_design_space(comm_trace, CIELITO)
        assert result.cheapest_meeting(1e6) is None

    def test_amdahl_table_sorted(self, comm_trace):
        rows = explore_design_space(comm_trace, CIELITO).amdahl_table()
        speedups = [s for _, s in rows]
        assert speedups == sorted(speedups, reverse=True)

    def test_requires_baseline_point(self, comm_trace):
        with pytest.raises(ValueError, match="baseline"):
            explore_design_space(comm_trace, CIELITO, bandwidth_factors=(2.0,),
                                 latency_factors=(1.0,), compute_factors=(1.0,))

    def test_rejects_nonpositive_factors(self, comm_trace):
        with pytest.raises(ValueError):
            explore_design_space(comm_trace, CIELITO, bandwidth_factors=(0.0, 1.0))


class TestBottleneckAnalysis:
    def test_decomposition_covers_ranks(self, comm_trace):
        report = analyze_bottlenecks(comm_trace, CIELITO)
        assert len(report.ranks) == comm_trace.nranks
        for r in report.ranks:
            assert r.total >= 0
            assert r.comm == pytest.approx(r.latency + r.bandwidth + r.wait)

    def test_comm_bound_recommends_network(self, comm_trace):
        report = analyze_bottlenecks(comm_trace, CIELITO)
        assert report.bandwidth_headroom > 1.02
        assert "bandwidth" in report.recommendation() or "latency" in report.recommendation()

    def test_imbalanced_app_recommends_balance(self, comp_trace):
        report = analyze_bottlenecks(comp_trace, CIELITO)
        assert report.balance_headroom > report.bandwidth_headroom
        assert "imbalance" in report.recommendation() or "compute-limited" in report.recommendation()

    def test_stragglers_detected(self, comp_trace):
        report = analyze_bottlenecks(comp_trace, CIELITO)
        assert len(report.stragglers) >= 1
        assert len(report.stragglers) < comp_trace.nranks

    def test_dominant_component(self, comp_trace):
        report = analyze_bottlenecks(comp_trace, CIELITO)
        assert report.dominant_component() in ("compute", "wait")

    def test_invalid_upgrade_factor(self, comm_trace):
        with pytest.raises(ValueError):
            analyze_bottlenecks(comm_trace, CIELITO, upgrade_factor=1.0)


def small_job(name_seed, nbytes=1 << 19, n=8, displacement=1):
    # Different displacements give the jobs different route shapes, so
    # co-scheduled jobs genuinely share fabric links (two identical
    # translated patterns would use disjoint, translated link sets).
    ranks = []
    for r in range(n):
        ranks.append([
            make_compute(0.0005),
            Op(OpKind.IRECV, peer=(r - displacement) % n, nbytes=nbytes, tag=1, req=1),
            Op(OpKind.ISEND, peer=(r + displacement) % n, nbytes=nbytes, tag=1, req=2),
            Op(OpKind.WAIT, req=1),
            Op(OpKind.WAIT, req=2),
            Op(OpKind.ALLREDUCE, nbytes=64),
        ])
    return TraceSet(f"job{name_seed}", "JOB", ranks, machine="cielito",
                    ranks_per_node=1)


class TestMultiJob:
    def test_merge_disjoint_spaces(self):
        merged, ranges = merge_traces([small_job(1), small_job(2)])
        assert merged.nranks == 16
        assert ranges == [(0, 8), (8, 8)]
        merged.validate()

    def test_merge_keeps_collectives_job_local(self):
        merged, _ = merge_traces([small_job(1), small_job(2)])
        comm_sizes = {len(m) for m in merged.comms.values()}
        assert 8 in comm_sizes  # per-job world comms
        # No collective op uses comm 0 (the merged world).
        assert all(op.comm != 0 for s in merged.ranks for op in s if op.is_collective)

    def test_interference_slows_jobs(self):
        jobs = [
            small_job(1, nbytes=1 << 21, displacement=1),
            small_job(2, nbytes=1 << 21, displacement=3),
        ]
        result = simulate_multijob(jobs, CIELITO, placement="scattered")
        assert len(result.jobs) == 2
        for job in result.jobs:
            assert job.slowdown >= 0.99
        assert result.worst_slowdown > 1.0

    def test_block_placement_less_interference(self):
        jobs = [
            small_job(1, nbytes=1 << 21, displacement=1),
            small_job(2, nbytes=1 << 21, displacement=3),
        ]
        scattered = simulate_multijob(jobs, CIELITO, placement="scattered")
        block = simulate_multijob(jobs, CIELITO, placement="block")
        assert block.worst_slowdown <= scattered.worst_slowdown + 0.15

    def test_interleaved_on_torus_partitions_planes(self):
        # Id-interleaving + dimension-order routing separates the jobs
        # into disjoint planes: an instructive zero-interference case.
        jobs = [
            small_job(1, nbytes=1 << 21, displacement=1),
            small_job(2, nbytes=1 << 21, displacement=3),
        ]
        result = simulate_multijob(jobs, CIELITO, placement="interleaved")
        assert result.worst_slowdown == pytest.approx(1.0, abs=1e-9)

    def test_unknown_placement(self):
        with pytest.raises(ValueError, match="placement"):
            simulate_multijob([small_job(1)], CIELITO, placement="random")

    def test_empty_jobs(self):
        with pytest.raises(ValueError):
            simulate_multijob([], CIELITO)


class TestCompression:
    @pytest.fixture(scope="class")
    def trace(self):
        # No inserted compute: iterations are structurally identical.
        return generate_doe("MiniFE", 8, CIELITO, seed=93, compute_per_iter=0.0,
                            ranks_per_node=2)

    def test_iterative_trace_compresses(self, trace):
        compressed = compress_trace(trace)
        assert compressed.compression_ratio > 2.0

    def test_lossy_time_mode_compresses_jittered_trace(self):
        jittered = generate_doe("MiniFE", 8, CIELITO, seed=93,
                                compute_per_iter=0.001, ranks_per_node=2)
        exact = compress_trace(jittered)
        lossy = compress_trace(jittered, duration_quantum=0.01)
        assert lossy.compression_ratio > 2.0 > exact.compression_ratio
        decompress_trace(lossy).validate()

    def test_roundtrip_structure(self, trace):
        again = decompress_trace(compress_trace(trace))
        assert again.op_count() == trace.op_count()
        again.validate()
        # Same message multiset per rank (requests renumbered).
        for s1, s2 in zip(trace.ranks, again.ranks):
            m1 = [(op.kind, op.peer, op.nbytes, op.tag) for op in s1 if op.is_p2p]
            m2 = [(op.kind, op.peer, op.nbytes, op.tag) for op in s2 if op.is_p2p]
            assert m1 == m2

    def test_roundtrip_replays_identically(self, trace):
        from repro.mfact import ConfigGrid, model_trace

        t1 = model_trace(trace, CIELITO, ConfigGrid.single(CIELITO)).baseline_total_time
        again = decompress_trace(compress_trace(trace))
        t2 = model_trace(again, CIELITO, ConfigGrid.single(CIELITO)).baseline_total_time
        assert t1 == pytest.approx(t2, rel=1e-12)

    def test_incompressible_stream(self):
        ranks = [[make_compute(0.001 * (i + 1)) for i in range(10)]]
        trace = TraceSet("t", "T", ranks)
        compressed = compress_trace(trace)
        assert compressed.compression_ratio == pytest.approx(1.0)
        assert decompress_trace(compressed).op_count() == 10

    def test_request_spanning_blocks_safe(self):
        # irecv and wait separated by a compute: any folding must keep
        # the wiring intact.
        ops0 = []
        for i in range(4):
            ops0.append(Op(OpKind.IRECV, peer=1, nbytes=64, tag=1, req=i + 1))
            ops0.append(make_compute(0.001))
            ops0.append(Op(OpKind.WAIT, req=i + 1))
        ops1 = [Op(OpKind.SEND, peer=0, nbytes=64, tag=1) for _ in range(4)]
        trace = TraceSet("t", "T", [ops0, ops1])
        again = decompress_trace(compress_trace(trace))
        again.validate()

    def test_invalid_max_block(self):
        with pytest.raises(ValueError):
            compress_trace(TraceSet("t", "T", [[]]), max_block=0)


class TestTraceCLI:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        trace = generate_npb("CG", 8, CIELITO, seed=94, compute_per_iter=0.001,
                             ranks_per_node=2)
        synthesize_ground_truth(trace, CIELITO, seed=94)
        return str(write_trace(trace, tmp_path / "cg.dmp"))

    def test_info(self, trace_file, capsys):
        assert trace_cli(["info", trace_file]) == 0
        out = capsys.readouterr().out
        assert "ranks" in out and "measured total" in out

    def test_validate(self, trace_file, capsys):
        assert trace_cli(["validate", trace_file]) == 0
        assert "valid" in capsys.readouterr().out

    def test_features(self, trace_file, capsys):
        assert trace_cli(["features", trace_file]) == 0
        assert "PoC" in capsys.readouterr().out

    def test_compress_stats(self, trace_file, capsys):
        assert trace_cli(["compress-stats", trace_file]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_sensitivity(self, trace_file, capsys):
        assert trace_cli(["sensitivity", trace_file]) == 0
        out = capsys.readouterr().out
        assert "latency tolerance" in out
        assert "critical path" in out

    def test_sensitivity_json(self, trace_file, capsys):
        import json

        assert trace_cli(["sensitivity", trace_file, "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert set(blob["features"]) == {
            "lat_tolerance", "bw_sensitivity", "critical_path_frac"
        }
        assert blob["graph"]["nodes"] > 0
