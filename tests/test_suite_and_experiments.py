"""Corpus-spec and experiment-module tests (small-scale, no full corpus)."""

from collections import Counter

import numpy as np
import pytest

from repro.core.pipeline import StudyRecord, ToolRun, measure_trace
from repro.experiments import (
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    section5b,
    section6,
    table1,
    table3,
    table4,
)
from repro.experiments.fig5 import group_of
from repro.machines import get_machine
from repro.trace.features import NUMERIC_FEATURE_NAMES
from repro.util.rng import substream
from repro.workloads import RANK_POOL, build_trace, corpus_specs
from repro.workloads.suite import CORPUS_SIZE


class TestCorpusSpecs:
    def test_exactly_235(self):
        assert len(corpus_specs()) == CORPUS_SIZE == 235

    def test_rank_pool_matches_table_1a(self):
        specs = corpus_specs()
        counts = Counter(s.nranks for s in specs)
        assert counts == Counter(RANK_POOL)
        bins = {
            "64": 72,
            "65-128": 18,
            "129-256": 80,
            "257-512": 12,
            "513-1024": 37,
            "1025-1728": 16,
        }
        observed = Counter()
        for s in specs:
            for label, (lo, hi) in zip(
                bins, [(64, 64), (65, 128), (129, 256), (257, 512), (513, 1024), (1025, 1728)]
            ):
                if lo <= s.nranks <= hi:
                    observed[label] += 1
        assert dict(observed) == bins

    def test_engine_failure_quotas(self):
        specs = corpus_specs()
        assert sum(s.use_threads for s in specs) == 19  # packet completes 216
        assert sum(s.use_comm_split for s in specs) == 54  # flow completes 162
        assert not any(s.use_threads and s.use_comm_split for s in specs)

    def test_names_unique(self):
        names = [s.name for s in corpus_specs()]
        assert len(set(names)) == len(names)

    def test_deterministic(self):
        assert corpus_specs(1) == corpus_specs(1)
        assert corpus_specs(1) != corpus_specs(2)

    def test_machines_all_used(self):
        machines = {s.machine for s in corpus_specs()}
        assert machines == {"cielito", "edison", "hopper"}

    def test_all_19_applications_present(self):
        apps = {s.app for s in corpus_specs()}
        assert len(apps) == 19

    def test_comm_targets_span_table_1b(self):
        targets = [s.comm_target for s in corpus_specs()]
        assert min(targets) <= 0.05
        assert max(targets) >= 0.5


class TestBuildTrace:
    @pytest.fixture(scope="class")
    def built(self):
        spec = corpus_specs()[0]
        return spec, build_trace(spec)

    def test_calibrated_near_target(self, built):
        spec, trace = built
        assert trace.has_timestamps()
        # EP targets ~1%; within the first Table Ib bin.
        assert trace.comm_fraction() < 0.08

    def test_metadata(self, built):
        spec, trace = built
        assert trace.metadata["spec_index"] == spec.index
        assert trace.name == spec.name

    def test_rebuild_identical(self, built):
        spec, trace = built
        again = build_trace(spec)
        assert again.measured_total_time() == pytest.approx(trace.measured_total_time())


class TestExperimentModules:
    @pytest.fixture(scope="class")
    def records(self, fabricate):
        return fabricate()

    def test_table1(self, records):
        result = table1.compute(records)
        assert result["total"]["traces"] == len(records)
        assert sum(result["ranks"].values()) == len(records)
        assert sum(result["comm_time_pct"].values()) == len(records)
        assert "Table I" in table1.render(result)

    def test_fig1(self, records):
        result = fig1.compute(records)
        for model in ("packet", "flow", "packet-flow"):
            buckets = result[model]
            assert buckets["<=10x"] <= buckets["<=100x"] <= buckets["<=1000x"]
            assert buckets[">1000x"] == pytest.approx(100 - buckets["<=1000x"])
        assert "Figure 1" in fig1.render(result)

    def test_fig1_filters_failures(self, records):
        records = [r for r in records]
        records[0].sims["flow"] = ToolRun(False, error="x")
        subset = fig1.time_study_subset(records)
        assert all(r.sims["flow"].completed for r in subset)

    def test_fig2(self, records):
        result = fig2.compute(records)
        pf = result["packet-flow"]
        assert 0 <= pf["total_within"][0.02] <= pf["total_within"][0.05] <= 1
        assert "Figure 2" in fig2.render(result)

    def test_fig3(self, records):
        result = fig3.compute(records)
        assert "CG" in result and "EP" in result
        assert result["EP"]["max_total_diff"] < result["IS"]["max_total_diff"]
        assert "_average" in result
        assert "Figure 3" in fig3.render(result)

    def test_fig4(self, records):
        result = fig4.compute(records)
        assert "CR" in result and "LULESH" in result
        assert "Figure 4" in fig4.render(result)

    def test_fig5_grouping(self, records):
        groups = Counter(group_of(r) for r in records)
        assert set(groups) <= {
            "communication-sensitive",
            "computation-bound",
            "load-imbalance-bound",
        }
        result = fig5.compute(records)
        cs = result["communication-sensitive"]
        comp = result["computation-bound"]
        assert comp["within_2pct"] > cs["within_2pct"]
        assert "Figure 5" in fig5.render(result)

    def test_table3(self, records):
        result = table3.compute(records)
        assert set(NUMERIC_FEATURE_NAMES) <= set(result)
        assert "Table III" in table3.render(result)

    def test_table4(self, records):
        result = table4.compute(records, runs=10, seed=0)
        assert len(result["top"]) == 10
        names = [row["name"] for row in result["top"]]
        assert "CL{ncs}" in names[:3]
        assert "Table IV" in table4.render(result)

    def test_section5b(self, records):
        result = section5b.compute(records)
        for place in ("first", "second", "third", "fourth"):
            total = sum(v for k, v in result[place].items())
            assert total == pytest.approx(100.0)
        assert result["first"]["mfact"] > 50.0
        assert "Section V-B" in section5b.render(result)

    def test_section6(self, records):
        result = section6.compute(records, runs=10, seed=0)
        assert result["enhanced_success"] >= result["naive_success"] - 0.05
        assert 0 <= result["within_2pct"] <= 1
        assert "Section VI" in section6.render(result)


class TestRunnerCLI:
    def test_unknown_target_errors(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["bogus"])
