"""Tests for ablation sweeps, corpus auditing, calibration diagnostics."""

import numpy as np
import pytest

from repro.core.pipeline import ToolRun
from repro.experiments.ablations import (
    sweep_chunk_size,
    sweep_diff_threshold,
    sweep_ripple,
    sweep_stepwise_cap,
    sweep_vectorization,
)
from repro.machines import CIELITO
from repro.stats.calibration import brier_score, error_margins, reliability_table
from repro.workloads import generate_doe
from repro.workloads.audit import audit_corpus


@pytest.fixture(scope="module")
def trace():
    return generate_doe("CNS", 16, CIELITO, seed=61, compute_per_iter=0.001,
                        ranks_per_node=2)


class TestAblationSweeps:
    def test_chunk_size_rows(self, trace):
        rows = sweep_chunk_size(trace, CIELITO, sizes=(1024, 8192))
        assert len(rows) == 2
        assert rows[0]["packets"] > rows[1]["packets"]
        for row in rows:
            assert row["predicted_total"] > 0

    def test_ripple_rows(self, trace):
        rows = sweep_ripple(trace, CIELITO)
        assert {row["ripple"] for row in rows} == {0.0, 1.0}
        with_ripple = next(r for r in rows if r["ripple"] == 1.0)
        assert with_ripple["ripple_updates"] > 0

    def test_stepwise_cap_rows(self, fabricate):
        records = fabricate(n=80, seed=3)
        rows = sweep_stepwise_cap(records, caps=(1, 5), runs=6)
        assert [row["max_vars"] for row in rows] == [1.0, 5.0]
        assert all(0 <= row["trimmed_mr"] <= 1 for row in rows)

    def test_diff_threshold_rows(self, fabricate):
        records = fabricate(n=80, seed=3)
        rows = sweep_diff_threshold(records, thresholds=(0.01, 0.10), runs=6)
        assert rows[0]["positive_share"] >= rows[1]["positive_share"]

    def test_vectorization_row(self, trace):
        row = sweep_vectorization(trace, CIELITO)
        assert row["speedup"] > 1.0
        assert row["max_prediction_gap"] < 1e-9


class TestAudit:
    def test_fabricated_corpus_flags_size(self, fabricate):
        findings = audit_corpus(fabricate(n=60, seed=1))
        by_check = {f.check: f for f in findings}
        assert by_check["corpus size"].severity == "fail"

    def test_findings_printable(self, fabricate):
        findings = audit_corpus(fabricate(n=60, seed=1))
        text = "\n".join(str(f) for f in findings)
        assert "corpus size" in text
        assert any(f.severity == "ok" for f in findings)

    def test_quota_checks_react(self, fabricate):
        records = fabricate(n=60, seed=1)
        for r in records[:19]:
            r.sims["packet"] = ToolRun(False, error="threads")
        findings = {f.check: f for f in audit_corpus(records)}
        assert findings["packet completions"].severity == "ok"


class TestCalibration:
    def test_brier_perfect(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0

    def test_brier_worst(self):
        assert brier_score([1, 0], [0.0, 1.0]) == 1.0

    def test_brier_validation(self):
        with pytest.raises(ValueError):
            brier_score([1], [1.5])
        with pytest.raises(ValueError):
            brier_score([], [])
        with pytest.raises(ValueError):
            brier_score([1, 0], [0.5])

    def test_reliability_table_calibrated_model(self):
        rng = np.random.default_rng(0)
        p = rng.uniform(0, 1, 5000)
        y = (rng.uniform(0, 1, 5000) < p).astype(int)
        table = reliability_table(y, p, bins=5)
        assert len(table) == 5
        for row in table:
            assert abs(row.gap) < 0.05

    def test_reliability_bins_partition(self):
        p = np.array([0.05, 0.55, 0.95, 1.0])
        y = np.array([0, 1, 1, 1])
        table = reliability_table(y, p, bins=10)
        assert sum(row.count for row in table) == 4

    def test_error_margins_boundary_errors(self):
        y = [1, 0, 1, 0]
        p = [0.45, 0.55, 0.9, 0.1]  # first two wrong, near the boundary
        margins = error_margins(y, p)
        assert margins.shape == (2,)
        assert np.all(margins <= 0.06)

    def test_error_margins_no_errors(self):
        assert error_margins([1, 0], [0.9, 0.1]).size == 0
