"""Tests for the interprocedural summary layer.

Covers :mod:`repro.analysis.summaries` (per-function summaries,
exception flow, SCC fixpoint), :mod:`repro.analysis.interproc`
(whole-program driver, rule folding, incremental cache) and the
cross-module diagnostics they produce through detlint.
"""

import json

import pytest

from repro.analysis import detlint, interproc, srclint
from repro.analysis.summaries import (
    MODULE_BODY,
    FunctionSummary,
    compute_module_summaries,
    param_symbol,
    parse_symbol,
    summaries_digest,
    _tarjan,
)

import ast


def write_module(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def analyze(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", tmp_path / ".cache")
    return interproc.analyze_paths([tmp_path / "repro"], **kwargs)


def rules(result):
    return [d.rule for d in result.diagnostics]


# ----------------------------------------------------------------------
# Summary computation
# ----------------------------------------------------------------------

class TestSummaries:
    def summarize(self, source, rel="src/repro/core/mod.py",
                  module="repro.core.mod"):
        tree = ast.parse(source)
        return compute_module_summaries(tree, rel, module)

    def test_return_taint_and_origin(self):
        summaries = self.summarize(
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
        )
        summary = summaries["now"]
        assert detlint.WALLCLOCK in summary.return_tags
        assert "wallclock" in summary.nondet
        assert summary.origins["wallclock"][-1].startswith("time.time")

    def test_transitive_return_taint_to_fixpoint(self):
        summaries = self.summarize(
            "import time\n"
            "def c():\n"
            "    return b()\n"
            "def b():\n"
            "    return a()\n"
            "def a():\n"
            "    return time.time()\n"
        )
        # c is defined before a, so only the SCC fixpoint can see the
        # taint flow bottom-up through b.
        assert detlint.WALLCLOCK in summaries["c"].return_tags
        chain = summaries["c"].origins["wallclock"]
        assert chain[0] == "b()"
        assert chain[1] == "a()"

    def test_param_sink_is_symbolic_per_class(self):
        summaries = self.summarize(
            "import json\n"
            "def digest(values):\n"
            "    return json.dumps(sorted(values))\n"
            "def persist(values):\n"
            "    return json.dumps(values)\n"
        )
        # sorted() sanitizes exactly the unordered class; other taint
        # classes (wallclock, pyhash, rng) still reach the sink.
        assert not any(s.cls == "unordered"
                       for s in summaries["digest"].param_sinks)
        sinks = summaries["persist"].param_sinks
        assert any(s.index == 0 and s.cls == "unordered" for s in sinks)

    def test_return_symbols_thread_param_taint(self):
        summaries = self.summarize(
            "def ident(x):\n"
            "    return x\n"
        )
        assert param_symbol(0, "unordered") in summaries["ident"].return_symbols
        idx, cls = parse_symbol(param_symbol(0, "wallclock"))
        assert (idx, cls) == (0, "wallclock")

    def test_escaping_and_swallowed_exceptions(self):
        summaries = self.summarize(
            "def boom():\n"
            "    raise ValueError('x')\n"
            "def swallow():\n"
            "    try:\n"
            "        return boom()\n"
            "    except Exception:\n"
            "        return None\n"
            "def reraise():\n"
            "    try:\n"
            "        return boom()\n"
            "    except Exception:\n"
            "        raise\n"
            "def narrow():\n"
            "    try:\n"
            "        return boom()\n"
            "    except KeyError:\n"
            "        return None\n"
        )
        assert "ValueError" in summaries["boom"].escapes
        assert not summaries["swallow"].escapes
        (sw,) = summaries["swallow"].swallows
        assert "ValueError" in sw.types
        assert not summaries["reraise"].swallows
        # The bare raise re-raises whatever the broad handler caught —
        # conservatively the unknown marker; nothing is swallowed.
        assert summaries["reraise"].escapes
        # A narrow handler does not catch ValueError: it escapes.
        assert "ValueError" in summaries["narrow"].escapes
        assert not summaries["narrow"].swallows

    def test_module_body_summary_present(self):
        summaries = self.summarize("import time\nNOW = time.time()\n")
        assert MODULE_BODY in summaries
        assert "wallclock" in summaries[MODULE_BODY].nondet

    def test_summary_json_roundtrip_and_digest(self):
        summaries = self.summarize(
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
        )
        clone = {
            q: FunctionSummary.from_json(s.to_json())
            for q, s in summaries.items()
        }
        assert clone == summaries
        assert summaries_digest(clone) == summaries_digest(summaries)

    def test_tarjan_orders_dependencies_first(self):
        sccs = _tarjan(
            ["a", "b", "c", "d"],
            {"a": {"b"}, "b": {"c"}, "c": {"b"}, "d": set()},
        )
        flat = [sorted(s) for s in sccs]
        assert ["b", "c"] in flat
        assert flat.index(["b", "c"]) < flat.index(["a"])


# ----------------------------------------------------------------------
# Cross-module diagnostics
# ----------------------------------------------------------------------

class TestCrossModule:
    def test_two_hop_wallclock_chain_is_named(self, tmp_path):
        write_module(
            tmp_path, "repro/core/clock.py",
            "import time\n"
            "def helper():\n"
            "    return time.time()\n"
            "def mid():\n"
            "    return helper()\n",
        )
        write_module(
            tmp_path, "repro/core/writer.py",
            "import json\n"
            "from repro.core.clock import mid\n"
            "def record(payload):\n"
            "    return json.dumps({'at': mid(), 'payload': payload})\n",
        )
        result = analyze(tmp_path, use_cache=False)
        (diag,) = [d for d in result.diagnostics
                   if d.rule == "det/wall-clock"]
        assert "writer.py" in diag.location
        assert "mid() -> helper() -> time.time()" in diag.message

    def test_param_sink_reported_at_call_site(self, tmp_path):
        write_module(
            tmp_path, "repro/util/sink.py",
            "import json\n"
            "def persist(values):\n"
            "    return json.dumps(values)\n",
        )
        write_module(
            tmp_path, "repro/core/caller.py",
            "from repro.util.sink import persist\n"
            "def bad(items):\n"
            "    return persist(set(items))\n"
            "def good(items):\n"
            "    return persist(sorted(items))\n",
        )
        result = analyze(tmp_path, use_cache=False)
        unordered = [d for d in result.diagnostics
                     if d.rule == "det/unordered-iter"]
        assert len(unordered) == 1
        assert "caller.py:3" in unordered[0].location
        assert "persist()" in unordered[0].message

    def test_seed_provenance_through_aliased_helper(self, tmp_path):
        write_module(
            tmp_path, "repro/util/mkrng.py",
            "import numpy.random as nr\n"
            "def fresh():\n"
            "    return nr.default_rng()\n",
        )
        write_module(
            tmp_path, "repro/core/draws.py",
            "from repro.util.mkrng import fresh\n"
            "def draw():\n"
            "    return fresh().integers(0, 10)\n",
        )
        result = analyze(tmp_path, use_cache=False)
        seeded = [d for d in result.diagnostics
                  if d.rule == "det/seed-provenance"]
        assert any("mkrng.py" in d.location for d in seeded)
        # src/unseeded-rng is folded away for covered modules.
        assert "src/unseeded-rng" not in rules(result)

    def test_blessed_substream_path_is_silent(self, tmp_path):
        write_module(
            tmp_path, "repro/core/draws.py",
            "from repro.util.rng import substream\n"
            "def draw(seed):\n"
            "    return substream(seed, 'draws').integers(0, 10)\n",
        )
        result = analyze(tmp_path, use_cache=False)
        assert "det/seed-provenance" not in rules(result)

    def test_exc_escape_fires_only_on_proven_swallow(self, tmp_path):
        write_module(
            tmp_path, "repro/core/deep.py",
            "def boom():\n"
            "    raise ValueError('x')\n",
        )
        write_module(
            tmp_path, "repro/core/handlers.py",
            "from repro.core.deep import boom\n"
            "def swallow():\n"
            "    try:\n"
            "        return boom()\n"
            "    except Exception:\n"
            "        return None\n"
            "def reraise():\n"
            "    try:\n"
            "        return boom()\n"
            "    except Exception:\n"
            "        raise\n",
        )
        result = analyze(tmp_path, use_cache=False)
        escapes = [d for d in result.diagnostics if d.rule == "exc/escape"]
        assert len(escapes) == 1
        assert "swallow" in escapes[0].message
        assert "ValueError" in escapes[0].message
        # The folded srclint rule stays out of covered modules.
        assert "src/error-swallow" not in rules(result)

    def test_srclint_standalone_keeps_folded_rules(self):
        source = "import random\ndef f():\n    return random.random()\n"
        diags = list(srclint.lint_source(source, "repro/core/x.py"))
        assert any(d.rule == "src/unseeded-rng" for d in diags)


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------

class TestCache:
    def tree(self, tmp_path):
        write_module(
            tmp_path, "repro/core/clock.py",
            "import time\n"
            "def helper():\n"
            "    return time.time()\n",
        )
        write_module(
            tmp_path, "repro/core/writer.py",
            "import json\n"
            "from repro.core.clock import helper\n"
            "def record():\n"
            "    return json.dumps({'at': helper()})\n",
        )
        write_module(
            tmp_path, "repro/core/standalone.py",
            "def double(x):\n    return 2 * x\n",
        )

    def test_warm_run_reanalyzes_nothing(self, tmp_path):
        self.tree(tmp_path)
        cold = analyze(tmp_path)
        assert cold.stats()["cache_hits"] == 0
        assert cold.stats()["analyzed"] == cold.stats()["modules"] == 3
        warm = analyze(tmp_path)
        assert warm.stats()["analyzed"] == 0
        assert warm.stats()["cache_hits"] == 3
        assert [d.to_json() for d in warm.diagnostics] == \
               [d.to_json() for d in cold.diagnostics]
        assert {m: {q: s.to_json() for q, s in fs.items()}
                for m, fs in warm.summaries.items()} == \
               {m: {q: s.to_json() for q, s in fs.items()}
                for m, fs in cold.summaries.items()}

    def test_edit_invalidates_module_and_importers(self, tmp_path):
        self.tree(tmp_path)
        analyze(tmp_path)
        path = tmp_path / "repro/core/clock.py"
        path.write_text(path.read_text() + "\ndef extra():\n    return 1\n")
        warm = analyze(tmp_path)
        # clock changed; writer depends on it; standalone is untouched.
        assert warm.analyzed == ["repro.core.clock", "repro.core.writer"]
        assert warm.cache_hits == ["repro.core.standalone"]

    def test_analyzer_version_change_cold_starts(self, tmp_path, monkeypatch):
        self.tree(tmp_path)
        analyze(tmp_path)
        import repro.util.fingerprint as fp

        monkeypatch.setattr(fp, "analysis_code_version", lambda: "different")
        warm = analyze(tmp_path)
        assert warm.stats()["analyzed"] == 3
        assert warm.stats()["cache_hits"] == 0

    def test_no_cache_never_touches_disk(self, tmp_path):
        self.tree(tmp_path)
        cache = tmp_path / ".cache"
        analyze(tmp_path, use_cache=False)
        assert not cache.exists()

    def test_corrupt_entry_falls_back_to_analysis(self, tmp_path):
        self.tree(tmp_path)
        analyze(tmp_path)
        cache = tmp_path / ".cache"
        for entry in cache.glob("*.json"):
            entry.write_text("{not json")
        warm = analyze(tmp_path)
        assert warm.stats()["analyzed"] == 3
        # And the rewritten entries hit again.
        assert analyze(tmp_path).stats()["cache_hits"] == 3

    def test_syntax_error_module_reports_like_standalone(self, tmp_path):
        write_module(tmp_path, "repro/core/broken.py", "def f(:\n")
        result = analyze(tmp_path, use_cache=False)
        assert "src/syntax-error" in rules(result) or any(
            "syntax" in d.rule for d in result.diagnostics
        )


# ----------------------------------------------------------------------
# Whole-repo acceptance
# ----------------------------------------------------------------------

class TestRepoAcceptance:
    def test_repo_summaries_cover_all_modules(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent / "src" / "repro"
        result = interproc.analyze_paths([root], use_cache=False)
        assert result.stats()["modules"] > 50
        assert set(result.summaries) == set(result.modules)
        # The blessed RNG module itself is exempt from seed-provenance.
        assert not any(
            d.rule == "det/seed-provenance" and "util/rng.py" in d.location
            for d in result.diagnostics
        )
