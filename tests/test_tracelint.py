"""Tests for the tracelint static analyzer (repro.analysis.lint)."""

import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import Diagnostic, LintReport, Severity, lint_trace
from repro.analysis.lint import LintGateError
from repro.core.pipeline import measure_trace
from repro.machines.presets import get_machine
from repro.sim.mpi_replay import expand_collectives, simulate_trace
from repro.trace.cli import main as trace_cli
from repro.trace.dumpi import write_trace
from repro.trace.events import Op, OpKind
from repro.trace.trace import TraceSet
from repro.workloads.base import ProgramBuilder
from repro.workloads.doe import DOE_APPS, generate_doe
from repro.workloads.npb import NPB_APPS, generate_npb
from repro.workloads.synthesis import (
    DEFECT_KINDS,
    inject_defect,
    synthesize_ground_truth,
)

MACHINE = get_machine("cielito")

#: Structural defects (injectable pre-synthesis) -> the rule that must fire.
STRUCTURAL_DEFECTS = {
    "deadlock": "trace/deadlock",
    "unmatched-send": "trace/unmatched-p2p",
    "unmatched-recv": "trace/unmatched-p2p",
    "byte-mismatch": "trace/byte-asymmetry",
    "lost-wait": "trace/request-discipline",
    "reordered-collectives": "trace/collective-order",
    "root-divergence": "trace/collective-args",
}


def small_trace(app="CG", nranks=8, seed=3):
    gen = generate_npb if app.upper() in NPB_APPS else generate_doe
    return gen(app, nranks, MACHINE, seed=seed, compute_per_iter=1e-4)


class TestCleanTraces:
    @pytest.mark.parametrize("app", sorted(NPB_APPS) + sorted(DOE_APPS))
    def test_every_generator_is_lint_clean(self, app):
        report = lint_trace(small_trace(app))
        assert report.diagnostics == [], report.render()

    def test_stamped_trace_stays_clean(self):
        trace = synthesize_ground_truth(small_trace(), MACHINE, seed=3)
        report = lint_trace(trace)
        assert report.diagnostics == [], report.render()
        assert report.exit_code() == 0
        assert report.max_severity is None


class TestDefectInjection:
    @pytest.mark.parametrize("kind", sorted(STRUCTURAL_DEFECTS))
    def test_each_defect_trips_its_rule(self, kind):
        bad = inject_defect(small_trace(), kind, seed=11)
        report = lint_trace(bad)
        fired = {d.rule for d in report.diagnostics}
        assert STRUCTURAL_DEFECTS[kind] in fired, report.render()
        assert report.exit_code() == 2
        assert not report.ok

    @pytest.mark.parametrize("kind", sorted(STRUCTURAL_DEFECTS))
    def test_injection_does_not_mutate_input(self, kind):
        trace = small_trace()
        before = trace.op_count()
        bad = inject_defect(trace, kind, seed=11)
        assert bad is not trace
        assert trace.op_count() == before
        assert lint_trace(trace).diagnostics == []
        assert bad.metadata["injected_defect"] == kind

    def test_time_travel_needs_stamps(self):
        with pytest.raises(ValueError, match="stamped"):
            inject_defect(small_trace(), "time-travel", seed=1)

    def test_time_travel_trips_timestamp_rule(self):
        stamped = synthesize_ground_truth(small_trace(), MACHINE, seed=3)
        bad = inject_defect(stamped, "time-travel", seed=5)
        fired = {d.rule for d in lint_trace(bad).diagnostics}
        assert "trace/timestamps" in fired

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown defect kind"):
            inject_defect(small_trace(), "gremlins", seed=0)

    def test_all_kinds_documented(self):
        assert set(STRUCTURAL_DEFECTS) | {"time-travel"} == set(DEFECT_KINDS)


class TestIndividualRules:
    def test_deadlock_reports_wait_for_cycle(self):
        bad = inject_defect(small_trace(), "deadlock", seed=11)
        diags = lint_trace(bad).by_rule("trace/deadlock")
        assert any("cycle" in d.message for d in diags)

    def test_unmatched_tag_mismatch_hint(self):
        # Send on tag 7 answered by a recv posted on tag 8.
        ranks = [
            [Op(OpKind.SEND, peer=1, nbytes=64, tag=7)],
            [Op(OpKind.RECV, peer=0, nbytes=64, tag=8)],
        ]
        trace = TraceSet("t", "T", ranks)
        diags = lint_trace(trace).by_rule("trace/unmatched-p2p")
        assert len(diags) == 2
        assert any("tag/comm mismatch" in d.hint for d in diags)

    def test_invalid_peer(self):
        trace = TraceSet("t", "T", [[Op(OpKind.SEND, peer=5, nbytes=8, tag=1)], []])
        fired = {d.rule for d in lint_trace(trace).diagnostics}
        assert "trace/invalid-peer" in fired

    def test_collective_on_unknown_comm(self):
        trace = TraceSet(
            "t", "T", [[Op(OpKind.BARRIER, comm=9)], [Op(OpKind.BARRIER, comm=9)]]
        )
        diags = lint_trace(trace).by_rule("trace/comm-membership")
        assert diags and all(d.severity == Severity.ERROR for d in diags)

    def test_rooted_collective_root_outside_comm(self):
        comms = {1: (0, 1)}
        ranks = [
            [Op(OpKind.BCAST, peer=2, nbytes=8, comm=1)],
            [Op(OpKind.BCAST, peer=2, nbytes=8, comm=1)],
            [],
        ]
        trace = TraceSet("t", "T", ranks, comms=comms, uses_comm_split=True)
        diags = lint_trace(trace).by_rule("trace/comm-membership")
        assert any("not a member" in d.message for d in diags)

    def test_request_reuse_before_wait(self):
        ranks = [
            [
                Op(OpKind.IRECV, peer=1, nbytes=8, tag=1, req=1),
                Op(OpKind.IRECV, peer=1, nbytes=8, tag=2, req=1),
                Op(OpKind.WAIT, req=1),
                Op(OpKind.WAIT, req=1),
            ],
            [
                Op(OpKind.SEND, peer=0, nbytes=8, tag=1),
                Op(OpKind.SEND, peer=0, nbytes=8, tag=2),
            ],
        ]
        diags = lint_trace(TraceSet("t", "T", ranks)).by_rule("trace/request-discipline")
        assert any("reissued" in d.message for d in diags)

    def test_threads_and_grouping_notes(self):
        trace = small_trace()
        trace.uses_threads = True
        trace.uses_comm_split = True
        report = lint_trace(trace)
        notes = report.by_rule("trace/model-support")
        assert len(notes) == 2
        assert all(d.severity == Severity.NOTE for d in notes)
        assert report.exit_code() == 0  # notes do not fail a lint run

    def test_undeclared_subcommunicator_warns(self):
        trace = small_trace()
        trace.comms[1] = (0, 1)
        trace.uses_comm_split = False
        report = lint_trace(trace)
        warns = report.by_rule("trace/model-support")
        assert warns and warns[0].severity == Severity.WARNING
        assert report.exit_code() == 1

    def test_partial_stamping_detected(self):
        trace = synthesize_ground_truth(small_trace(), MACHINE, seed=3)
        trace.ranks[0][0].t_entry = float("nan")
        fired = {d.rule for d in lint_trace(trace).diagnostics}
        assert "trace/timestamps" in fired


class TestReportFormat:
    def test_json_roundtrip_fields(self):
        bad = inject_defect(small_trace(), "unmatched-send", seed=11)
        payload = lint_trace(bad).to_json()
        assert payload["ok"] is False
        assert payload["max_severity"] == "ERROR"
        diag = payload["diagnostics"][0]
        assert set(diag) == {
            "rule", "severity", "message", "rank", "op_index", "location", "hint"
        }

    def test_render_mentions_rule_and_summary(self):
        bad = inject_defect(small_trace(), "unmatched-send", seed=11)
        text = lint_trace(bad).render()
        assert "trace/unmatched-p2p" in text
        assert "error" in text

    def test_clean_report_renders_clean(self):
        assert "clean" in lint_trace(small_trace()).render()


class TestCliLint:
    def _write(self, tmp_path, trace):
        path = tmp_path / "trace.dmp"
        write_trace(trace, path)
        return str(path)

    def test_clean_trace_exits_zero(self, tmp_path, capsys):
        assert trace_cli(["lint", self._write(tmp_path, small_trace())]) == 0
        assert "clean" in capsys.readouterr().out

    def test_defective_trace_exits_two(self, tmp_path, capsys):
        bad = inject_defect(small_trace(), "deadlock", seed=11)
        assert trace_cli(["lint", self._write(tmp_path, bad)]) == 2
        assert "trace/deadlock" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        import json

        bad = inject_defect(small_trace(), "byte-mismatch", seed=11)
        assert trace_cli(["lint", "--json", self._write(tmp_path, bad)]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_severity"] == "ERROR"

    def test_missing_file_exit_code(self, capsys):
        assert trace_cli(["lint", "/nonexistent/trace.dmp"]) == 1


class TestPipelineGate:
    def test_gate_rejects_defective_trace(self):
        stamped = synthesize_ground_truth(small_trace(), MACHINE, seed=3)
        bad = inject_defect(stamped, "time-travel", seed=5)
        with pytest.raises(LintGateError) as excinfo:
            measure_trace(bad, lint_gate=True)
        assert excinfo.value.report.exit_code() == 2

    def test_gate_passes_clean_trace(self):
        stamped = synthesize_ground_truth(small_trace(), MACHINE, seed=3)
        record = measure_trace(stamped, lint_gate=True)
        assert record.mfact.completed

    def test_gate_off_by_default(self):
        stamped = synthesize_ground_truth(small_trace(), MACHINE, seed=3)
        bad = inject_defect(stamped, "time-travel", seed=5)
        record = measure_trace(bad)  # no gate: tools still run
        assert record.mfact.completed


class TestAuditDiagnostics:
    def test_findings_share_diagnostic_format(self, fabricate):
        from repro.workloads.audit import audit_report

        lint = audit_report(fabricate(n=30))
        assert isinstance(lint, LintReport)
        assert all(d.rule.startswith("corpus/") for d in lint.diagnostics)
        assert all(isinstance(d, Diagnostic) for d in lint.diagnostics)
        # 30 records cannot satisfy the 235-record corpus checks.
        assert lint.exit_code() == 2
        assert "corpus size" in lint.render()


@st.composite
def collective_programs(draw):
    """A ProgramBuilder filled with a random collective sequence."""
    nranks = draw(st.integers(min_value=2, max_value=6))
    b = ProgramBuilder(nranks, "prop", "prop-trace", ranks_per_node=2)
    kinds = st.sampled_from(
        [
            OpKind.BARRIER,
            OpKind.BCAST,
            OpKind.REDUCE,
            OpKind.ALLREDUCE,
            OpKind.ALLGATHER,
            OpKind.ALLTOALL,
            OpKind.GATHER,
            OpKind.SCATTER,
            OpKind.REDUCE_SCATTER,
        ]
    )
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(kinds)
        nbytes = draw(st.integers(min_value=1, max_value=1 << 16))
        root = draw(st.integers(min_value=0, max_value=nranks - 1))
        if kind == OpKind.BARRIER:
            b.barrier()
        elif kind in (OpKind.BCAST, OpKind.REDUCE, OpKind.GATHER, OpKind.SCATTER):
            b._collective(kind, nbytes, 0, root)
        else:
            b._collective(kind, nbytes, 0)
    return b.build()


class TestExpandCollectivesProperty:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(collective_programs())
    def test_expansion_is_always_lint_clean(self, trace):
        expanded = expand_collectives(trace)
        report = lint_trace(expanded)
        assert report.diagnostics == [], report.render()


class TestLintIsCheap:
    def test_64_rank_lint_beats_flow_replay(self):
        trace = generate_npb("CG", 64, MACHINE, seed=9, compute_per_iter=1e-4)
        synthesize_ground_truth(trace, MACHINE, seed=9)
        t0 = time.perf_counter()
        report = lint_trace(trace)
        lint_time = time.perf_counter() - t0
        assert report.diagnostics == []
        result = simulate_trace(trace, MACHINE, "flow")
        # The acceptance bar is "well under" a flow replay; the margin is
        # usually >10x, asserted loosely to stay robust on slow CI.
        assert lint_time < result.walltime, (lint_time, result.walltime)
