"""End-to-end integration tests across modules.

These exercise the full pipeline (generate -> synthesize -> model +
simulate -> features -> train) at a scale that runs in seconds.
"""

import numpy as np
import pytest

from repro import (
    CIELITO,
    EDISON,
    HOPPER,
    EnhancedMFACT,
    diff_total,
    measure_trace,
    model_trace,
    simulate_trace,
    synthesize_ground_truth,
)
from repro.core.pipeline import StudyRecord
from repro.mfact import ConfigGrid
from repro.trace.dumpi import dumps, loads
from repro.workloads import generate_doe, generate_npb


@pytest.fixture(scope="module")
def mini_study():
    """A 12-trace miniature of the study pipeline."""
    cases = [
        (generate_npb, "EP", 0.02, 0.02, CIELITO),
        (generate_npb, "EP", 0.03, 0.30, HOPPER),
        (generate_npb, "CG", 0.001, 0.05, EDISON),
        (generate_npb, "CG", 0.002, 0.05, CIELITO),
        (generate_npb, "FT", 0.003, 0.05, HOPPER),
        (generate_npb, "LU", 0.003, 0.40, EDISON),
        (generate_doe, "CMC", 0.02, 0.35, CIELITO),
        (generate_doe, "CR", 0.002, 0.15, HOPPER),
        (generate_doe, "FB", 0.001, 0.20, EDISON),
        (generate_doe, "LULESH", 0.008, 0.04, CIELITO),
        (generate_doe, "MiniFE", 0.01, 0.04, HOPPER),
        (generate_doe, "Nekbone", 0.001, 0.06, EDISON),
    ]
    records = []
    for i, (gen, app, compute, imbalance, machine) in enumerate(cases):
        trace = gen(
            app, 32, machine, seed=500 + i, compute_per_iter=compute,
            imbalance=imbalance, ranks_per_node=1,
        )
        synthesize_ground_truth(trace, machine, seed=500 + i)
        # Measured on the scalar reference path: the ranking tests below
        # reproduce the paper's tool-execution-cost claims, which are
        # about the tools as modeled — the vectorized engines narrow the
        # sim-vs-MFACT walltime gap on traces this small by design
        # (canonical record content is identical either way).
        records.append(measure_trace(trace, spec_index=i, sim_vectorized=False))
    return records


class TestPipeline:
    def test_all_tools_complete(self, mini_study):
        for record in mini_study:
            assert record.mfact.completed
            assert record.sims["packet-flow"].completed

    def test_diff_labels_exist(self, mini_study):
        labels = [r.requires_simulation() for r in mini_study]
        assert all(label is not None for label in labels)
        assert any(labels) and not all(labels)  # both classes occur

    def test_compute_bound_apps_small_diff(self, mini_study):
        by_app = {}
        for r in mini_study:
            by_app.setdefault(r.app, []).append(r)
        for record in by_app.get("EP", []) + by_app.get("CMC", []):
            assert record.diff_total() < 0.03

    def test_comm_apps_larger_diff_than_ep(self, mini_study):
        diffs = {r.name: r.diff_total() for r in mini_study}
        ep = min(d for name, d in diffs.items() if name.startswith("ep"))
        comm_max = max(
            d for name, d in diffs.items()
            if name.split(".")[0] in ("ft", "cr", "fb", "is", "nekbone", "cg")
        )
        assert comm_max > ep

    def test_mfact_fastest_tool(self, mini_study):
        wins = sum(
            1 for r in mini_study
            if r.mfact.walltime <= min(s.walltime for s in r.sims.values() if s.completed)
        )
        assert wins >= len(mini_study) - 1

    def test_measured_above_predictions_mostly(self, mini_study):
        above = sum(1 for r in mini_study if r.measured_total >= r.mfact.total_time)
        assert above >= len(mini_study) - 1

    def test_train_enhanced_on_mini_study(self, mini_study):
        # 12 records is tiny; just verify the training path end to end.
        enhanced = EnhancedMFACT.train(mini_study, runs=10, seed=0)
        assert 0.0 <= enhanced.success_rate <= 1.0
        preds = [enhanced.predict_record(r) for r in mini_study]
        assert all(p in (True, False) for p in preds)


class TestCrossMachineConsistency:
    def test_faster_network_faster_prediction(self):
        trace = generate_npb("CG", 16, CIELITO, seed=77, compute_per_iter=0.001,
                             ranks_per_node=1)
        synthesize_ground_truth(trace, CIELITO, seed=77)
        slow = model_trace(trace, CIELITO).baseline_total_time  # 10 Gb/s
        fast = model_trace(trace, HOPPER).baseline_total_time  # 35 Gb/s
        assert fast < slow

    def test_simulators_see_machine_difference_too(self):
        trace = generate_npb("CG", 16, CIELITO, seed=78, compute_per_iter=0.001,
                             ranks_per_node=1)
        synthesize_ground_truth(trace, CIELITO, seed=78)
        slow = simulate_trace(trace, CIELITO, "packet-flow").total_time
        fast = simulate_trace(trace, HOPPER, "packet-flow").total_time
        assert fast < slow


class TestSerializationIntegration:
    def test_stamped_trace_roundtrips_and_remodels(self):
        trace = generate_doe("AMG", 16, CIELITO, seed=80, compute_per_iter=0.002,
                             ranks_per_node=2)
        synthesize_ground_truth(trace, CIELITO, seed=80)
        t1 = model_trace(trace, CIELITO, ConfigGrid.single(CIELITO)).baseline_total_time
        again = loads(dumps(trace))
        t2 = model_trace(again, CIELITO, ConfigGrid.single(CIELITO)).baseline_total_time
        assert t1 == pytest.approx(t2, rel=1e-12)

    def test_study_record_json_roundtrip(self, mini_study):
        record = mini_study[0]
        again = StudyRecord.from_json(record.to_json())
        assert again.diff_total() == pytest.approx(record.diff_total())
        assert again.features == record.features
