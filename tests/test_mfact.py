"""MFACT modeling engine tests: Hockney grid, replay semantics,
counters, classification."""

import numpy as np
import pytest

from repro.machines import CIELITO, EDISON, MachineConfig
from repro.mfact import (
    AppClass,
    ConfigGrid,
    CounterSet,
    LogicalClockReplay,
    ReplayDeadlockError,
    model_trace,
)
from repro.mfact.classify import bandwidth_sensitivity, latency_sensitivity
from repro.trace.events import Op, OpKind, make_compute
from repro.trace.trace import TraceSet


class TestConfigGrid:
    def test_single(self):
        grid = ConfigGrid.single(CIELITO)
        assert len(grid) == 1
        assert grid.baseline == 0
        assert grid.bandwidth[0] == CIELITO.bandwidth

    def test_sweep_contains_baseline(self):
        grid = ConfigGrid.sweep(CIELITO)
        assert grid.latency[grid.baseline] == CIELITO.latency
        assert grid.bandwidth[grid.baseline] == CIELITO.bandwidth

    def test_sweep_size(self):
        grid = ConfigGrid.sweep(CIELITO, bw_factors=(0.5, 1, 2), lat_factors=(1,))
        assert len(grid) == 3

    def test_find(self):
        grid = ConfigGrid.sweep(CIELITO)
        idx = grid.find(0.125, 1.0, CIELITO)
        assert grid.bandwidth[idx] == pytest.approx(CIELITO.bandwidth / 8)

    def test_find_missing_raises(self):
        grid = ConfigGrid.single(CIELITO)
        with pytest.raises(KeyError):
            grid.find(0.125, 1.0, CIELITO)

    def test_lat_factor_slows_latency(self):
        grid = ConfigGrid.sweep(CIELITO, bw_factors=(1.0,), lat_factors=(0.125, 1.0))
        idx = grid.find(1.0, 0.125, CIELITO)
        assert grid.latency[idx] == pytest.approx(CIELITO.latency * 8)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ConfigGrid([1e-6], [1e9, 2e9])
        with pytest.raises(ValueError):
            ConfigGrid([-1.0], [1e9])
        with pytest.raises(ValueError):
            ConfigGrid([1e-6], [1e9], baseline=5)


class TestCounterSet:
    def test_shapes(self):
        c = CounterSet(4, 3)
        assert c.compute.shape == (4, 3)
        assert c.communication.shape == (4, 3)

    def test_communication_sum(self):
        c = CounterSet(2, 2)
        c.latency += 1.0
        c.bandwidth += 2.0
        c.wait += 3.0
        assert np.all(c.communication == 6.0)

    def test_mean_over_ranks(self):
        c = CounterSet(2, 1)
        c.compute[0, 0] = 2.0
        assert c.mean_over_ranks(0)["compute"] == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            CounterSet(0, 1)


def simple_trace(nbytes=1 << 20, compute=0.5):
    r0 = [make_compute(compute), Op(OpKind.SEND, peer=1, nbytes=nbytes, tag=0)]
    r1 = [Op(OpKind.RECV, peer=0, nbytes=nbytes, tag=0)]
    return TraceSet("simple", "T", [r0, r1])


class TestReplaySemantics:
    def test_blocking_pair_time(self):
        trace = simple_trace()
        rep = model_trace(trace, CIELITO, ConfigGrid.single(CIELITO))
        # Receiver finishes at compute + overheads + alpha + m/B.
        expected = 0.5 + CIELITO.latency + (1 << 20) / CIELITO.bandwidth
        assert rep.baseline_total_time == pytest.approx(expected, rel=0.01)

    def test_receiver_wait_counter(self):
        rep = model_trace(simple_trace(), CIELITO, ConfigGrid.single(CIELITO))
        # Rank 1 waits ~0.5 s for rank 0's compute.
        assert rep.baseline_counters["wait"] == pytest.approx(0.25, rel=0.05)

    def test_compute_scales(self):
        machine = CIELITO
        grid = ConfigGrid(
            [machine.latency] * 2,
            [machine.bandwidth] * 2,
            compute_scale=[1.0, 2.0],
        )
        rep = model_trace(simple_trace(), machine, grid)
        assert rep.total_time[1] > rep.total_time[0]

    def test_bandwidth_config_changes_time(self):
        grid = ConfigGrid.sweep(CIELITO, bw_factors=(0.125, 1.0), lat_factors=(1.0,))
        rep = model_trace(simple_trace(nbytes=8 << 20, compute=0.0), CIELITO, grid)
        slow = rep.time_at(0.125, 1.0, CIELITO)
        base = rep.baseline_total_time
        assert slow > 5 * base  # 8x less bandwidth on a bw-bound trace

    def test_isend_overlaps_compute(self):
        # Sender posts isend then computes; receiver should not wait for
        # the sender's compute.
        r0 = [
            Op(OpKind.ISEND, peer=1, nbytes=1024, tag=0, req=1),
            make_compute(1.0),
            Op(OpKind.WAIT, req=1),
        ]
        r1 = [Op(OpKind.RECV, peer=0, nbytes=1024, tag=0)]
        rep = model_trace(TraceSet("t", "T", [r0, r1]), CIELITO, ConfigGrid.single(CIELITO))
        assert rep.per_rank_total[1] < 0.01

    def test_irecv_wait_order_any(self):
        # Waits posted out of arrival order still complete.
        r0 = [
            Op(OpKind.ISEND, peer=1, nbytes=512, tag=1, req=1),
            Op(OpKind.ISEND, peer=1, nbytes=512, tag=2, req=2),
            Op(OpKind.WAIT, req=2),
            Op(OpKind.WAIT, req=1),
        ]
        r1 = [
            Op(OpKind.IRECV, peer=0, nbytes=512, tag=2, req=1),
            Op(OpKind.IRECV, peer=0, nbytes=512, tag=1, req=2),
            Op(OpKind.WAIT, req=1),
            Op(OpKind.WAIT, req=2),
        ]
        rep = model_trace(TraceSet("t", "T", [r0, r1]), CIELITO)
        assert rep.baseline_total_time > 0

    def test_sender_nic_serializes_isends(self):
        machine = CIELITO
        nbytes = 4 << 20
        r0 = [
            Op(OpKind.ISEND, peer=1, nbytes=nbytes, tag=1, req=1),
            Op(OpKind.ISEND, peer=1, nbytes=nbytes, tag=2, req=2),
            Op(OpKind.WAIT, req=1),
            Op(OpKind.WAIT, req=2),
        ]
        r1 = [
            Op(OpKind.IRECV, peer=0, nbytes=nbytes, tag=1, req=1),
            Op(OpKind.IRECV, peer=0, nbytes=nbytes, tag=2, req=2),
            Op(OpKind.WAIT, req=1),
            Op(OpKind.WAIT, req=2),
        ]
        rep = model_trace(TraceSet("t", "T", [r0, r1]), machine, ConfigGrid.single(machine))
        two_transfers = 2 * nbytes / machine.bandwidth
        assert rep.baseline_total_time >= two_transfers

    def test_receiver_nic_serializes_incast(self):
        machine = CIELITO
        nbytes = 4 << 20
        senders = [[Op(OpKind.SEND, peer=0, nbytes=nbytes, tag=1)] for _ in range(3)]
        recvs = [Op(OpKind.RECV, peer=s, nbytes=nbytes, tag=1) for s in (1, 2, 3)]
        trace = TraceSet("t", "T", [recvs] + senders)
        rep = model_trace(trace, machine, ConfigGrid.single(machine))
        assert rep.baseline_total_time >= 3 * nbytes / machine.bandwidth

    def test_collective_synchronizes(self):
        ranks = [
            [make_compute(1.0), Op(OpKind.BARRIER)],
            [Op(OpKind.BARRIER)],
        ]
        rep = model_trace(TraceSet("t", "T", ranks), CIELITO, ConfigGrid.single(CIELITO))
        assert rep.per_rank_total[1] >= 1.0

    def test_bcast_root_does_not_wait_for_members(self):
        ranks = [
            [Op(OpKind.BCAST, peer=0, nbytes=64)],
            [make_compute(1.0), Op(OpKind.BCAST, peer=0, nbytes=64)],
        ]
        rep = model_trace(TraceSet("t", "T", ranks), CIELITO, ConfigGrid.single(CIELITO))
        assert rep.per_rank_total[0] < 0.1

    def test_reduce_root_waits_for_members(self):
        ranks = [
            [Op(OpKind.REDUCE, peer=0, nbytes=64)],
            [make_compute(1.0), Op(OpKind.REDUCE, peer=0, nbytes=64)],
        ]
        rep = model_trace(TraceSet("t", "T", ranks), CIELITO, ConfigGrid.single(CIELITO))
        assert rep.per_rank_total[0] >= 1.0

    def test_subcommunicator_collective(self):
        ranks = [
            [Op(OpKind.ALLREDUCE, nbytes=64, comm=1)],
            [Op(OpKind.ALLREDUCE, nbytes=64, comm=1)],
            [make_compute(0.2)],
        ]
        trace = TraceSet("t", "T", ranks, comms={1: (0, 1)})
        rep = model_trace(trace, CIELITO, ConfigGrid.single(CIELITO))
        # Rank 2 is independent of the subcomm collective.
        assert rep.per_rank_total[0] < 0.1

    def test_deadlock_detected(self):
        ranks = [
            [Op(OpKind.RECV, peer=1, nbytes=8, tag=0)],
            [Op(OpKind.RECV, peer=0, nbytes=8, tag=0)],
        ]
        with pytest.raises(ReplayDeadlockError):
            model_trace(TraceSet("t", "T", ranks), CIELITO)

    def test_wait_unknown_request(self):
        ranks = [[Op(OpKind.WAIT, req=9)], []]
        with pytest.raises(ReplayDeadlockError, match="unknown request"):
            model_trace(TraceSet("t", "T", ranks), CIELITO)

    def test_clock_monotone_per_rank(self):
        trace = simple_trace()
        replay = LogicalClockReplay(trace, CIELITO)
        replay.run()
        assert np.all(replay.clk >= 0)

    def test_counters_roughly_decompose_total(self):
        trace = simple_trace()
        replay = LogicalClockReplay(trace, CIELITO, ConfigGrid.single(CIELITO))
        replay.run()
        c = replay.counters
        decomposed = (c.compute + c.communication)[:, 0]
        assert np.all(decomposed <= replay.clk[:, 0] * 1.05 + 1e-6)


class TestClassification:
    def test_compute_bound(self):
        ranks = [[make_compute(1.0), Op(OpKind.BARRIER)] for _ in range(4)]
        rep = model_trace(TraceSet("t", "T", ranks), CIELITO)
        assert rep.classification == AppClass.COMPUTATION_BOUND
        assert not rep.communication_sensitive

    def test_load_imbalance_bound(self):
        ranks = [
            [make_compute(1.0 + 0.6 * r), Op(OpKind.BARRIER)] for r in range(4)
        ]
        rep = model_trace(TraceSet("t", "T", ranks), CIELITO)
        assert rep.classification == AppClass.LOAD_IMBALANCE_BOUND

    def test_bandwidth_bound(self):
        n = 4
        ranks = []
        for r in range(n):
            ranks.append([
                Op(OpKind.IRECV, peer=(r - 1) % n, nbytes=8 << 20, tag=1, req=1),
                Op(OpKind.ISEND, peer=(r + 1) % n, nbytes=8 << 20, tag=1, req=2),
                Op(OpKind.WAIT, req=1),
                Op(OpKind.WAIT, req=2),
            ])
        rep = model_trace(TraceSet("t", "T", ranks), CIELITO)
        assert rep.classification in (AppClass.BANDWIDTH_BOUND, AppClass.COMMUNICATION_BOUND)
        assert rep.communication_sensitive

    def test_latency_bound(self):
        n = 2
        ranks = [[], []]
        for _ in range(200):
            ranks[0].append(Op(OpKind.SEND, peer=1, nbytes=8, tag=1))
            ranks[0].append(Op(OpKind.RECV, peer=1, nbytes=8, tag=2))
            ranks[1].append(Op(OpKind.RECV, peer=0, nbytes=8, tag=1))
            ranks[1].append(Op(OpKind.SEND, peer=0, nbytes=8, tag=2))
        rep = model_trace(TraceSet("t", "T", ranks), CIELITO)
        assert rep.classification in (AppClass.LATENCY_BOUND, AppClass.COMMUNICATION_BOUND)

    def test_sensitivity_values(self):
        ranks = [[make_compute(1.0), Op(OpKind.BARRIER)] for _ in range(4)]
        trace = TraceSet("t", "T", ranks)
        replay = LogicalClockReplay(trace, CIELITO)
        rep = replay.run()
        s_bw = bandwidth_sensitivity(CIELITO, rep.grid, rep.total_time)
        s_lat = latency_sensitivity(CIELITO, rep.grid, rep.total_time)
        assert abs(s_bw) < 0.01
        assert abs(s_lat) < 0.01

    def test_network_sensitive_property(self):
        assert AppClass.BANDWIDTH_BOUND.network_sensitive
        assert not AppClass.COMPUTATION_BOUND.network_sensitive


class TestReport:
    def test_walltime_recorded(self):
        rep = model_trace(simple_trace(), CIELITO)
        assert rep.walltime > 0

    def test_machine_identity(self):
        rep = model_trace(simple_trace(), EDISON)
        assert rep.machine == "edison"

    def test_comm_plus_compute_close_to_total(self):
        rep = model_trace(simple_trace(), CIELITO)
        approx_total = rep.baseline_counters["compute"] + rep.baseline_comm_time
        assert approx_total <= rep.baseline_total_time * 1.6
