"""Determinism and equivalence tests for the parallel study executor."""

import json
import pickle

import pytest

from repro.core.executor import (
    MANIFEST_NAME,
    RecordCache,
    execute_study,
    execute_traces,
    trace_cache_key,
)
from repro.core.pipeline import StudyRecord, load_or_run_study, run_study
from repro.machines.presets import get_machine
from repro.sim.engine import EventEngine
from repro.sim.mpi_replay import simulate_trace
from repro.trace.dumpi import write_trace
from repro.util.manifest import RunManifest
from repro.workloads.npb import generate_npb
from repro.workloads.suite import build_trace, mini_corpus_specs

SEED = 11


@pytest.fixture(scope="module")
def specs():
    return mini_corpus_specs(12, seed=SEED)


def canonical(records):
    return [r.to_json(canonical=True) for r in records]


class TestSerialParallelEquivalence:
    def test_serial_vs_parallel_records_identical(self, specs):
        serial = execute_study(specs, jobs=1, cache_root=None, seed=SEED)
        parallel = execute_study(specs, jobs=4, cache_root=None, seed=SEED)
        assert len(serial.records) == len(parallel.records) == 12
        assert canonical(serial.records) == canonical(parallel.records)

    def test_parallel_records_come_back_in_spec_order(self, specs):
        run = execute_study(specs, jobs=4, cache_root=None, seed=SEED)
        assert [r.spec_index for r in run.records] == [s.index for s in specs]
        assert [e.spec_index for e in run.manifest.entries] == [s.index for s in specs]

    def test_parallel_workers_actually_fan_out(self, specs):
        run = execute_study(specs[:6], jobs=3, cache_root=None, seed=SEED)
        workers = {e.worker for e in run.manifest.entries}
        assert len(workers) > 1, "expected records from more than one worker pid"

    def test_run_study_jobs_parameter_is_equivalent(self):
        serial = run_study(seed=SEED, limit=2, jobs=1)
        parallel = run_study(seed=SEED, limit=2, jobs=2)
        assert canonical(serial) == canonical(parallel)


class TestRecordCache:
    def test_cold_then_warm_run_identical_with_full_hits(self, specs, tmp_path):
        root = tmp_path / "records"
        cold = execute_study(specs, jobs=1, cache_root=root, seed=SEED)
        assert cold.manifest.misses == 12 and cold.manifest.hits == 0
        warm = execute_study(specs, jobs=1, cache_root=root, seed=SEED)
        assert warm.manifest.hits == 12 and warm.manifest.misses == 0
        assert warm.manifest.hit_rate() == 1.0
        # Warm records are byte-identical, walltimes included: they are
        # the cached payloads themselves.
        assert [r.to_json() for r in cold.records] == [r.to_json() for r in warm.records]

    def test_warm_parallel_equals_cold_serial(self, specs, tmp_path):
        root = tmp_path / "records"
        cold = execute_study(specs, jobs=1, cache_root=root, seed=SEED)
        warm = execute_study(specs, jobs=4, cache_root=root, seed=SEED)
        assert warm.manifest.hits == 12
        assert [r.to_json() for r in cold.records] == [r.to_json() for r in warm.records]

    def test_manifest_written_into_cache_root(self, specs, tmp_path):
        root = tmp_path / "records"
        execute_study(specs[:2], jobs=1, cache_root=root, seed=SEED)
        manifest = RunManifest.read(root / MANIFEST_NAME)
        assert len(manifest.entries) == 2
        assert manifest.seed == SEED
        assert manifest.jobs == 1
        assert not manifest.interrupted
        assert all(e.walltime > 0 for e in manifest.entries)

    def test_cache_entries_are_readable_records(self, specs, tmp_path):
        root = tmp_path / "records"
        run = execute_study(specs[:3], jobs=1, cache_root=root, seed=SEED)
        cache = RecordCache(root)
        assert len(cache) == 3
        for entry, record in zip(run.manifest.entries, run.records):
            cached = cache.get(entry.key)
            assert cached is not None
            assert cached.to_json() == record.to_json()

    def test_corrupt_cache_entry_is_a_miss(self, specs, tmp_path):
        root = tmp_path / "records"
        run = execute_study(specs[:1], jobs=1, cache_root=root, seed=SEED)
        key = run.manifest.entries[0].key
        cache = RecordCache(root)
        cache.path(key).write_text("{not json")
        assert cache.get(key) is None
        # get() deletes the unparseable file rather than leave it rotting.
        assert not cache.path(key).exists()
        rerun = execute_study(specs[:1], jobs=1, cache_root=root, seed=SEED)
        assert rerun.manifest.misses == 1
        assert cache.get(key) is not None

    def test_corrupt_cache_entry_is_counted_in_manifest(self, specs, tmp_path):
        root = tmp_path / "records"
        run = execute_study(specs[:1], jobs=1, cache_root=root, seed=SEED)
        key = run.manifest.entries[0].key
        cache = RecordCache(root)
        # Flip bytes inside the stored envelope so the checksum breaks.
        blob = bytearray(cache.path(key).read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        cache.path(key).write_bytes(bytes(blob))
        rerun = execute_study(specs[:1], jobs=1, cache_root=root, seed=SEED)
        assert rerun.manifest.misses == 1
        assert rerun.manifest.cache_corrupt == 1
        entry = rerun.manifest.entries[0]
        assert entry.cache_corrupt and entry.status == "ok"
        # The recomputed record is identical to the original.
        assert (
            rerun.records[0].to_json(canonical=True)
            == run.records[0].to_json(canonical=True)
        )

    def test_clear_empties_the_cache(self, specs, tmp_path):
        root = tmp_path / "records"
        execute_study(specs[:2], jobs=1, cache_root=root, seed=SEED)
        cache = RecordCache(root)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestLoadOrRunStudy:
    def test_no_cache_bypasses_snapshot_and_records(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        records = load_or_run_study(seed=SEED, limit=1, use_cache=False)
        assert len(records) == 1
        assert not (tmp_path / ".cache").exists()

    def test_record_cache_populated_under_cache_root(self, tmp_path):
        load_or_run_study(seed=SEED, limit=2, cache_root=tmp_path)
        assert len(RecordCache(tmp_path / "records")) == 2
        # Second limited run hits the per-record layer (no snapshot is
        # written for limited runs).
        load_or_run_study(seed=SEED, limit=2, cache_root=tmp_path)
        manifest = RunManifest.read(tmp_path / "records" / MANIFEST_NAME)
        assert manifest.hits == 2 and manifest.misses == 0


class TestExecuteTraces:
    def test_measures_trace_files_and_caches(self, tmp_path):
        machine = get_machine("cielito")
        paths = []
        for i in range(3):
            trace = build_trace(mini_corpus_specs(3, seed=SEED)[i])
            path = tmp_path / f"t{i}.dmp"
            write_trace(trace, path)
            paths.append(path)
        root = tmp_path / "records"
        cold = execute_traces(paths, jobs=1, cache_root=root)
        assert len(cold.records) == 3 and not cold.failures
        warm = execute_traces(paths, jobs=2, cache_root=root)
        assert warm.manifest.hits == 3
        assert [r.to_json() for r in cold.records] == [r.to_json() for r in warm.records]

    def test_unreadable_file_is_isolated(self, tmp_path):
        good = build_trace(mini_corpus_specs(1, seed=SEED)[0])
        good_path = tmp_path / "good.dmp"
        write_trace(good, good_path)
        run = execute_traces([tmp_path / "missing.dmp", good_path], jobs=1, cache_root=None)
        assert len(run.records) == 1
        assert len(run.failures) == 1
        assert "missing.dmp" in run.failures[0].name


class TestPicklability:
    """Everything crossing the pool boundary must pickle; live engines must not."""

    def test_specs_records_and_configs_pickle(self):
        spec = mini_corpus_specs(1, seed=SEED)[0]
        trace = build_trace(spec)
        machine = get_machine(spec.machine)
        result = simulate_trace(trace, machine, "packet-flow")
        for obj in (spec, trace, machine, result):
            clone = pickle.loads(pickle.dumps(obj))
            assert type(clone) is type(obj)
        record = execute_study([spec], jobs=1, cache_root=None).records[0]
        clone = pickle.loads(pickle.dumps(record))
        assert clone.to_json() == record.to_json()

    def test_event_engine_refuses_to_pickle(self):
        with pytest.raises(TypeError, match="not picklable"):
            pickle.dumps(EventEngine())

    def test_study_record_json_round_trip(self):
        record = execute_study(mini_corpus_specs(1, seed=SEED), jobs=1, cache_root=None).records[0]
        restored = StudyRecord.from_json(json.loads(json.dumps(record.to_json())))
        assert restored.to_json() == record.to_json()
        assert restored.to_json(canonical=True) == record.to_json(canonical=True)
        assert "walltime" not in restored.to_json(canonical=True)["mfact"]


class TestValidation:
    def test_jobs_must_be_positive(self, specs):
        with pytest.raises(ValueError, match="jobs"):
            execute_study(specs[:1], jobs=0)
        with pytest.raises(ValueError, match="jobs"):
            execute_traces(["x.dmp"], jobs=-1)

    def test_trace_cache_key_is_stable(self):
        machine = get_machine("cielito")
        trace = generate_npb("CG", 4, machine, seed=1, compute_per_iter=1e-4)
        assert trace_cache_key(trace) == trace_cache_key(trace)
        assert len(trace_cache_key(trace)) == 64
