"""Schema-version tolerance for the run manifest (v1 through v4).

A manifest written by any historical code version must load through the
current (v4) loader: absent fields take their dataclass defaults, and
fields from a *future* schema warn (naming them) instead of crashing —
the forward-compatibility contract an older worker deployment depends
on when it reads manifests written by a newer coordinator.
"""

import json
import warnings

import pytest

from repro.util.manifest import (
    MANIFEST_VERSION,
    ManifestEntry,
    ManifestError,
    ManifestFieldWarning,
    RunManifest,
)


def entry_v1(index=0):
    """The minimal per-record image schema v1 wrote."""
    return {
        "name": f"rec-{index}",
        "spec_index": index,
        "key": f"k{index:02d}" * 8,
        "status": "ok",
        "cache_hit": False,
        "walltime": 0.25,
        "worker": 4242,
        "error": "",
    }


def entry_v2(index=0):
    """v1 plus the resilience surface."""
    out = entry_v1(index)
    out.update(
        attempts=2,
        backoffs=[0.05],
        ladder_step=1,
        degraded_from="event",
        failure_kind="transient",
        cache_corrupt=False,
        quarantined=False,
    )
    return out


def entry_v3(index=0):
    """v2 plus the telemetry surface."""
    out = entry_v2(index)
    out["compute_walltime"] = 0.2
    return out


def entry_v4(index=0):
    """v3 plus the distributed-service surface."""
    out = entry_v3(index)
    out.update(worker_id="w1", lease=1)
    return out


def manifest_doc(version, entries):
    doc = {
        "version": version,
        "seed": 11,
        "jobs": 2,
        "engines": ["analytic"],
        "code_version": "abc123",
        "interrupted": False,
        "entries": entries,
    }
    if version >= 2:
        doc["retry_policy"] = {"max_attempts": 3}
        doc["record_timeout"] = 5.0
        doc["event_budget"] = 1000
    if version >= 3:
        doc["metrics"] = None
    if version >= 4:
        doc["quarantine_pruned"] = 3
    return doc


VERSION_TABLE = [
    (1, entry_v1),
    (2, entry_v2),
    (3, entry_v3),
    (4, entry_v4),
]


class TestVersionTolerance:
    @pytest.mark.parametrize("version,make_entry", VERSION_TABLE)
    def test_every_readable_version_loads(self, version, make_entry):
        doc = manifest_doc(version, [make_entry(0), make_entry(1)])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no warning for known schemas
            loaded = RunManifest.from_json(doc)
        assert len(loaded.entries) == 2
        assert loaded.seed == 11
        assert loaded.entries[0].status == "ok"

    @pytest.mark.parametrize("version,make_entry", VERSION_TABLE)
    def test_pre_v4_fields_default(self, version, make_entry):
        loaded = RunManifest.from_json(manifest_doc(version, [make_entry(0)]))
        entry = loaded.entries[0]
        if version < 4:
            assert entry.worker_id == ""
            assert entry.lease == 0
            assert loaded.quarantine_pruned == 0
        else:
            assert entry.worker_id == "w1"
            assert entry.lease == 1
            assert loaded.quarantine_pruned == 3
        if version < 3:
            assert entry.compute_walltime == 0.0
        if version < 2:
            assert entry.attempts == 1
            assert entry.backoffs == []

    @pytest.mark.parametrize("version,make_entry", VERSION_TABLE)
    def test_round_trip_through_write_read(self, version, make_entry, tmp_path):
        loaded = RunManifest.from_json(manifest_doc(version, [make_entry(0)]))
        path = loaded.write(tmp_path / "manifest.json")
        again = RunManifest.read(path)
        assert again.entries[0] == loaded.entries[0]
        assert json.loads(path.read_text())["version"] == MANIFEST_VERSION

    def test_unsupported_version_is_typed_error(self):
        doc = manifest_doc(4, [entry_v4()])
        doc["version"] = MANIFEST_VERSION + 1
        with pytest.raises(ManifestError):
            RunManifest.from_json(doc)


class TestUnknownFieldTolerance:
    def test_future_run_field_warns_not_crashes(self):
        doc = manifest_doc(4, [entry_v4()])
        doc["shard_map"] = {"k": "w9"}  # hypothetical v5 field
        with pytest.warns(ManifestFieldWarning, match="shard_map"):
            loaded = RunManifest.from_json(doc)
        assert len(loaded.entries) == 1

    def test_future_entry_field_warns_not_crashes(self):
        entry = entry_v4()
        entry["gpu_id"] = 7  # hypothetical v5 entry field
        doc = manifest_doc(4, [entry])
        with pytest.warns(ManifestFieldWarning, match="gpu_id"):
            loaded = RunManifest.from_json(doc)
        assert loaded.entries[0].worker_id == "w1"

    def test_single_warning_names_all_unknown_fields(self):
        entry = entry_v4()
        entry["gpu_id"] = 7
        doc = manifest_doc(4, [entry])
        doc["shard_map"] = {}
        with pytest.warns(ManifestFieldWarning) as caught:
            RunManifest.from_json(doc)
        assert len(caught) == 1
        message = str(caught[0].message)
        assert "gpu_id" in message and "shard_map" in message

    def test_standalone_entry_load_warns_immediately(self):
        entry = entry_v4()
        entry["gpu_id"] = 7
        with pytest.warns(ManifestFieldWarning, match="gpu_id"):
            loaded = ManifestEntry.from_json(entry)
        assert loaded.lease == 1

    def test_entry_collector_suppresses_immediate_warning(self):
        entry = entry_v4()
        entry["gpu_id"] = 7
        unknown = {}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ManifestEntry.from_json(entry, unknown=unknown)
        assert list(unknown) == ["gpu_id"]


class TestV4Summary:
    def test_summary_lists_workers_and_reclaims(self):
        manifest = RunManifest(
            entries=[
                ManifestEntry(**{**entry_v4(0), "worker_id": "w1", "lease": 0}),
                ManifestEntry(**{**entry_v4(1), "worker_id": "w0", "lease": 2}),
                ManifestEntry(**{**entry_v4(2), "worker_id": "", "lease": 0}),
            ]
        )
        summary = manifest.to_json()["summary"]
        assert summary["workers"] == ["w0", "w1"]
        assert summary["leases_reclaimed"] == 2
