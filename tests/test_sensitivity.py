"""Sensitivity package tests: recorder fidelity, tolerance analytics,
degenerate traces (Hypothesis), deadlock diagnostics and the
``cheapest_meeting`` boundary regression."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import CIELITO, EDISON
from repro.mfact import ConfigGrid, ReplayDeadlockError, model_trace
from repro.mfact.logical_clock import LogicalClockReplay
from repro.mfact.whatif import DesignPoint, DesignSpaceResult
from repro.sensitivity import (
    LAT_TOLERANCE_CAP,
    analyze_graph,
    analyze_trace,
    bandwidth_curve,
    latency_curve,
    latency_tolerance,
    record_graph,
)
from repro.trace.events import Op, OpKind, make_compute
from repro.trace.features import SENSITIVITY_FEATURE_NAMES
from repro.trace.trace import TraceSet
from repro.workloads import generate_npb, synthesize_ground_truth
from repro.workloads.synthesis import inject_defect


def pingpong_trace(rounds=3, nbytes=4096):
    ranks = [[], []]
    for _ in range(rounds):
        ranks[0].append(make_compute(0.002))
        ranks[0].append(Op(OpKind.SEND, peer=1, nbytes=nbytes, tag=0))
        ranks[0].append(Op(OpKind.RECV, peer=1, nbytes=nbytes, tag=1))
        ranks[1].append(make_compute(0.001))
        ranks[1].append(Op(OpKind.RECV, peer=0, nbytes=nbytes, tag=0))
        ranks[1].append(Op(OpKind.SEND, peer=0, nbytes=nbytes, tag=1))
    return TraceSet("pingpong", "PP", ranks)


def npb_trace(app="CG", seed=3):
    trace = generate_npb(app, 8, CIELITO, seed=seed, compute_per_iter=0.002,
                         ranks_per_node=2)
    synthesize_ground_truth(trace, CIELITO, seed=seed)
    return trace


class TestGraphFidelity:
    def test_baseline_matches_replay(self):
        trace = pingpong_trace()
        graph, report = record_graph(trace, CIELITO)
        tape = float(graph.evaluate(
            CIELITO.latency, CIELITO.bandwidth, CIELITO.compute_scale)[0])
        assert tape == pytest.approx(float(report.total_time[0]), rel=1e-9)

    def test_offbaseline_matches_fresh_replay(self):
        trace = npb_trace()
        graph, _ = record_graph(trace, CIELITO)
        for lat_f, bw_f in ((4.0, 1.0), (1.0, 0.25), (8.0, 0.5)):
            lat = CIELITO.latency * lat_f
            bw = CIELITO.bandwidth * bw_f
            grid = ConfigGrid([lat], [bw], [CIELITO.compute_scale])
            replayed = float(
                LogicalClockReplay(trace, CIELITO, grid).run().total_time[0]
            )
            tape = float(graph.evaluate(lat, bw, CIELITO.compute_scale)[0])
            assert tape == pytest.approx(replayed, rel=1e-9)

    def test_batch_evaluation_shape_and_consistency(self):
        graph, _ = record_graph(pingpong_trace(), CIELITO)
        lats = CIELITO.latency * np.array([1.0, 2.0, 4.0])
        totals = graph.evaluate(lats, CIELITO.bandwidth, CIELITO.compute_scale)
        assert totals.shape == (3,)
        singles = [
            float(graph.evaluate(l, CIELITO.bandwidth, CIELITO.compute_scale)[0])
            for l in lats
        ]
        assert np.allclose(totals, singles, rtol=0, atol=0)
        # Total time is nondecreasing in latency.
        assert totals[0] <= totals[1] <= totals[2]

    def test_critical_path_decomposition_covers_total(self):
        graph, report = record_graph(npb_trace(), CIELITO)
        cp = graph.critical_path()
        assert cp.total == pytest.approx(float(report.total_time[0]), rel=1e-9)
        parts = cp.compute_time + cp.latency_time + cp.bandwidth_time + cp.overhead_time
        assert parts == pytest.approx(cp.total, rel=1e-9)
        assert cp.n_edges > 0

    def test_recorder_works_on_collective_apps(self):
        # MG mixes collectives with p2p; IS is alltoall-heavy.
        for app, machine in (("MG", CIELITO), ("IS", EDISON)):
            trace = generate_npb(app, 8, machine, seed=5, compute_per_iter=0.001,
                                 ranks_per_node=2)
            synthesize_ground_truth(trace, machine, seed=5)
            graph, report = record_graph(trace, machine)
            tape = float(graph.evaluate(
                machine.latency, machine.bandwidth, machine.compute_scale)[0])
            assert tape == pytest.approx(float(report.total_time[0]), rel=1e-9)


class TestToleranceAnalytics:
    def test_latency_curve_anchored_at_baseline(self):
        graph, report = record_graph(npb_trace(), CIELITO)
        curve = latency_curve(graph, CIELITO)
        assert curve[0][0] == 1.0
        assert curve[0][1] == pytest.approx(float(report.total_time[0]), rel=1e-9)
        totals = [t for _, t in curve]
        assert totals == sorted(totals)

    def test_bandwidth_curve_monotone_decreasing_in_bw(self):
        graph, _ = record_graph(npb_trace(), CIELITO)
        curve = bandwidth_curve(graph, CIELITO)
        totals = [t for _, t in curve]  # factors ascend: times descend
        assert totals == sorted(totals, reverse=True)

    def test_tolerance_threshold_brackets_budget(self):
        trace = pingpong_trace(rounds=5, nbytes=64)  # latency-sensitive
        graph, _ = record_graph(trace, CIELITO)
        tol = latency_tolerance(graph, CIELITO, tolerance=0.05)
        assert math.isfinite(tol) and tol >= 1.0
        t0 = float(graph.evaluate(
            CIELITO.latency, CIELITO.bandwidth, CIELITO.compute_scale)[0])
        at = float(graph.evaluate(
            CIELITO.latency * tol * 0.99, CIELITO.bandwidth, CIELITO.compute_scale)[0])
        above = float(graph.evaluate(
            CIELITO.latency * tol * 1.01, CIELITO.bandwidth, CIELITO.compute_scale)[0])
        assert at <= 1.05 * t0 * (1 + 1e-6)
        assert above >= 1.05 * t0 * (1 - 5e-3)

    def test_report_features_match_names(self):
        report = analyze_trace(npb_trace(), CIELITO)
        features = report.features()
        assert set(features) == set(SENSITIVITY_FEATURE_NAMES)
        assert all(math.isfinite(v) for v in features.values())
        assert 0.0 <= features["lat_tolerance"] <= math.log10(LAT_TOLERANCE_CAP)
        assert features["bw_sensitivity"] >= 0.0
        assert 0.0 <= features["critical_path_frac"] <= 1.0

    def test_report_json_roundtrips(self):
        import json

        report = analyze_trace(pingpong_trace(), CIELITO)
        blob = json.loads(json.dumps(report.to_json()))
        assert blob["trace"] == "pingpong"
        assert blob["graph"]["nodes"] == report.n_nodes
        assert len(blob["lat_curve"]) == len(report.lat_curve)


class TestDegenerateTraces:
    def test_pure_compute_unbounded_tolerance(self):
        ranks = [[make_compute(0.5)], [make_compute(0.3)]]
        trace = TraceSet("compute-only", "X", ranks)
        graph, _ = record_graph(trace, CIELITO)
        assert latency_tolerance(graph, CIELITO) == math.inf
        report = analyze_graph(graph, CIELITO, trace_name="compute-only")
        assert report.bw_sensitivity == 0.0
        assert report.critical_path_frac == pytest.approx(0.0, abs=1e-12)
        assert report.features()["lat_tolerance"] == math.log10(LAT_TOLERANCE_CAP)
        assert report.to_json()["lat_tolerance"] is None

    def test_empty_trace(self):
        trace = TraceSet("empty", "X", [[], []])
        report = analyze_trace(trace, CIELITO)
        assert math.isinf(report.lat_tolerance)
        assert all(math.isfinite(v) for v in report.features().values())

    # Satellite: no division by zero or NaN ever reaches the design
    # matrix, for any zero-communication trace shape.
    @settings(max_examples=25, deadline=None)
    @given(
        durations=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
                max_size=4,
            ),
            min_size=1,
            max_size=3,
        )
    )
    def test_pure_compute_features_always_finite(self, durations):
        ranks = [[make_compute(d) for d in rank] for rank in durations]
        trace = TraceSet("hyp", "X", ranks)
        report = analyze_trace(trace, CIELITO)
        features = report.features()
        assert set(features) == set(SENSITIVITY_FEATURE_NAMES)
        for value in features.values():
            assert math.isfinite(value)
        assert math.isinf(report.lat_tolerance)
        assert report.bw_sensitivity == 0.0


class TestDeadlockDiagnostics:
    def test_manual_cycle_names_blocked_channels(self):
        ranks = [
            [Op(OpKind.RECV, peer=1, nbytes=8, tag=7)],
            [Op(OpKind.RECV, peer=0, nbytes=8, tag=9)],
        ]
        with pytest.raises(ReplayDeadlockError) as err:
            model_trace(TraceSet("cycle", "T", ranks), CIELITO)
        message = str(err.value)
        assert "rank 0 in blocking recv on channel (src=1, dst=0, tag=7)" in message
        assert "rank 1 in blocking recv on channel (src=0, dst=1, tag=9)" in message
        assert "oldest unmatched channel" in message
        assert "posted receive(s)" in message

    def test_injected_deadlock_reports_ranks_and_channel(self):
        trace = generate_npb("CG", 4, CIELITO, seed=11, compute_per_iter=0.001,
                             ranks_per_node=2)
        bad = inject_defect(trace, "deadlock", seed=11)
        with pytest.raises(ReplayDeadlockError) as err:
            model_trace(bad, CIELITO)
        message = str(err.value)
        assert "deadlocked with ranks" in message
        assert "blocking recv on channel (src=" in message
        assert "oldest unmatched channel (src=" in message

    def test_injected_unmatched_recv_counts_posted_slots(self):
        trace = generate_npb("EP", 2, CIELITO, seed=4, compute_per_iter=0.001,
                             ranks_per_node=2)
        bad = inject_defect(trace, "unmatched-recv", seed=4)
        with pytest.raises(ReplayDeadlockError) as err:
            model_trace(bad, CIELITO)
        message = str(err.value)
        assert "0 queued send(s), 1 posted receive(s)" in message


class TestCheapestMeetingBoundary:
    """Regression: ties and float-equality at the target used to pick
    an arbitrary (dict-order dependent) point or drop exact hits."""

    @staticmethod
    def result(points, totals):
        return DesignSpaceResult(
            machine=CIELITO,
            points=points,
            total_time=np.asarray(totals, dtype=float),
            baseline_index=0,
        )

    def test_cost_tie_keeps_first_in_grid_order(self):
        baseline = DesignPoint(1.0, 1.0, 1.0)
        a = DesignPoint(2.0, 1.0, 1.0)  # cost 2, meets target
        b = DesignPoint(1.0, 2.0, 1.0)  # cost 2, also meets target
        res = self.result([baseline, a, b], [2.0, 1.0, 0.9])
        assert res.cheapest_meeting(2.0) == a

    def test_float_noise_equal_speedup_qualifies(self):
        baseline = DesignPoint(1.0, 1.0, 1.0)
        # Speedup = 2.0 / 1.0000000000000002 < 2.0 by one ulp.
        point = DesignPoint(2.0, 1.0, 1.0)
        res = self.result([baseline, point], [2.0, 1.0000000000000002])
        assert res.cheapest_meeting(2.0) == point

    def test_float_noise_cheaper_cost_does_not_steal_the_tie(self):
        baseline = DesignPoint(1.0, 1.0, 1.0)
        first = DesignPoint(2.0, 1.0, 1.0)  # cost 2.0
        # Cost differs only by float noise: 1.9999999999999998.
        second = DesignPoint(0.9999999999999999, 2.0, 1.0)
        res = self.result([baseline, first, second], [2.0, 0.5, 0.5])
        assert res.cheapest_meeting(2.0) == first

    def test_genuinely_cheaper_point_still_wins(self):
        baseline = DesignPoint(1.0, 1.0, 1.0)
        expensive = DesignPoint(4.0, 2.0, 1.0)
        cheap = DesignPoint(2.0, 1.0, 1.0)
        res = self.result([baseline, expensive, cheap], [2.0, 0.8, 0.9])
        assert res.cheapest_meeting(2.0) == cheap

    def test_no_point_meets_target(self):
        baseline = DesignPoint(1.0, 1.0, 1.0)
        res = self.result([baseline, DesignPoint(2.0, 1.0, 1.0)], [2.0, 1.5])
        assert res.cheapest_meeting(10.0) is None
