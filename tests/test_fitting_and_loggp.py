"""Tests for Hockney parameter fitting and the LogGP baseline model."""

import numpy as np
import pytest

from repro.machines import CIELITO, EDISON, HOPPER
from repro.machines.fitting import DEFAULT_SIZES, HockneyFit, fit_hockney, measure_pingpong
from repro.mfact.loggp import (
    LogGPParameters,
    compare_models,
    loggp_from_machine,
    p2p_time_loggp,
)
from repro.workloads import generate_npb


class TestFitHockney:
    def test_exact_recovery_on_clean_data(self):
        sizes = np.array(DEFAULT_SIZES, dtype=float)
        alpha, bw = 2.5e-6, 1.25e9
        times = alpha + sizes / bw
        fit = fit_hockney(sizes, times)
        assert fit.latency == pytest.approx(alpha, rel=1e-6)
        assert fit.bandwidth == pytest.approx(bw, rel=1e-6)
        assert fit.residual_rms < 1e-12

    def test_noisy_data_close(self):
        rng = np.random.default_rng(5)
        sizes = np.array(DEFAULT_SIZES, dtype=float)
        times = (2.5e-6 + sizes / 1.25e9) * rng.normal(1.0, 0.03, sizes.size)
        fit = fit_hockney(sizes, times)
        assert fit.latency == pytest.approx(2.5e-6, rel=0.3)
        assert fit.bandwidth == pytest.approx(1.25e9, rel=0.15)

    def test_predict(self):
        fit = HockneyFit(latency=1e-6, bandwidth=1e9, residual_rms=0.0, n_points=2)
        assert fit.predict(1000) == pytest.approx(2e-6)

    def test_as_machine(self):
        fit = HockneyFit(latency=9e-7, bandwidth=2e9, residual_rms=0.0, n_points=2)
        machine = fit.as_machine(CIELITO)
        assert machine.latency == 9e-7
        assert machine.bandwidth == 2e9

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_hockney([1], [1e-6])
        with pytest.raises(ValueError):
            fit_hockney([1, 2], [1e-6])
        with pytest.raises(ValueError):
            fit_hockney([1, 2], [1e-6, -1e-6])

    def test_degenerate_constant_times(self):
        fit = fit_hockney([64, 128, 256], [1e-6, 1e-6, 1e-6])
        assert fit.latency >= 0
        assert fit.bandwidth > 0


class TestPingpongClosure:
    @pytest.mark.parametrize("machine", [CIELITO, HOPPER, EDISON])
    def test_fit_recovers_machine_parameters(self, machine):
        """Simulate ping-pong on a machine, fit Hockney, get it back."""
        sizes, times = measure_pingpong(machine, sizes=DEFAULT_SIZES[:13])
        fit = fit_hockney(sizes, times)
        # The simulator adds per-hop switch latency and software
        # overheads on top of alpha, so the fit lands near but above.
        assert fit.bandwidth == pytest.approx(machine.bandwidth, rel=0.25)
        assert machine.latency * 0.8 < fit.latency < machine.latency * 3.5

    def test_times_monotone_in_size(self):
        sizes, times = measure_pingpong(CIELITO, sizes=(64, 4096, 262144))
        assert times[0] < times[1] < times[2]

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            measure_pingpong(CIELITO, repeats=0)


class TestLogGP:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogGPParameters(L=-1, o=0, g=0, G=0)

    def test_one_way_formula(self):
        p = LogGPParameters(L=1e-6, o=1e-7, g=1e-7, G=1e-9)
        assert p.one_way(1) == pytest.approx(1e-6 + 2e-7)
        assert p.one_way(1001) == pytest.approx(1e-6 + 2e-7 + 1000 * 1e-9)

    def test_sender_occupancy_less_than_one_way(self):
        p = loggp_from_machine(CIELITO)
        assert p.sender_occupancy(4096) < p.one_way(4096)

    def test_from_machine_bandwidth_term(self):
        p = loggp_from_machine(CIELITO)
        assert p.G == pytest.approx(1.0 / CIELITO.bandwidth)
        assert p.L < CIELITO.latency

    def test_vectorized(self):
        p = loggp_from_machine(EDISON)
        out = p2p_time_loggp([64, 128, 256], p)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_models_agree_for_large_messages(self):
        """For bandwidth-dominated messages both models converge."""
        p = loggp_from_machine(CIELITO)
        m = 64 * 1024 * 1024
        hockney = CIELITO.latency + m / CIELITO.bandwidth
        assert p.one_way(m) == pytest.approx(hockney, rel=0.01)

    def test_compare_models_on_trace(self):
        trace = generate_npb("CG", 16, CIELITO, seed=7, compute_per_iter=0.001,
                             ranks_per_node=2)
        result = compare_models(trace, CIELITO)
        assert result["messages"] > 0
        assert result["relative_gap"] < 0.2  # same B term, differing alpha split

    def test_compare_models_empty_trace(self):
        trace = generate_npb("EP", 8, CIELITO, seed=7, compute_per_iter=0.01)
        result = compare_models(trace, CIELITO)
        assert result["messages"] == 0.0
        assert result["relative_gap"] == 0.0
