"""Fault-injection tests for the executor's failure isolation.

A poisoned trace (via :func:`repro.workloads.synthesis.inject_defect`)
must degrade to a ``failed`` manifest entry carrying the diagnostic
while every healthy record completes, and an interrupt mid-study must
leave a cache that the next run resumes from — including an interrupt
delivered during a retry backoff wait.  Quarantine decisions must
survive across executor invocations (they live on disk, not in the
process).
"""

import pytest

from repro.core.executor import MANIFEST_NAME, RecordCache, execute_study
from repro.core.resilience import QuarantineRegistry, RetryPolicy
from repro.util.faults import FaultPlan, FaultSpec, fault_plan_env
from repro.util.manifest import RunManifest
from repro.workloads.suite import mini_corpus_specs

SEED = 23
N = 6


@pytest.fixture()
def specs():
    return mini_corpus_specs(N, seed=SEED)


class TestFailureIsolation:
    def test_poisoned_trace_fails_alone(self, specs, tmp_path):
        root = tmp_path / "records"
        run = execute_study(
            specs,
            jobs=1,
            cache_root=root,
            lint_gate=True,
            defects={2: "deadlock"},
            seed=SEED,
        )
        assert len(run.records) == N - 1
        assert [r.spec_index for r in run.records] == [0, 1, 3, 4, 5]
        assert len(run.failures) == 1
        failure = run.failures[0]
        assert failure.spec_index == 2
        assert failure.status == "failed"
        assert "LintGateError" in failure.error
        # The failure is a diagnostic, not a cached result.
        assert len(RecordCache(root)) == N - 1

    def test_poisoned_trace_fails_alone_in_parallel(self, specs):
        run = execute_study(
            specs,
            jobs=2,
            cache_root=None,
            lint_gate=True,
            defects={0: "unmatched-send", 4: "byte-mismatch"},
            seed=SEED,
        )
        assert [r.spec_index for r in run.records] == [1, 2, 3, 5]
        assert {f.spec_index for f in run.failures} == {0, 4}
        for failure in run.failures:
            assert failure.error, "failed entries must carry a diagnostic"

    def test_manifest_records_failures(self, specs, tmp_path):
        root = tmp_path / "records"
        execute_study(
            specs, jobs=1, cache_root=root, lint_gate=True,
            defects={1: "deadlock"}, seed=SEED,
        )
        manifest = RunManifest.read(root / MANIFEST_NAME)
        statuses = {e.spec_index: e.status for e in manifest.entries}
        assert statuses[1] == "failed"
        assert sum(1 for s in statuses.values() if s == "ok") == N - 1
        assert manifest.to_json()["summary"]["failed"] == 1

    def test_healthy_rerun_after_failure_only_recomputes_the_failure(self, specs, tmp_path):
        root = tmp_path / "records"
        execute_study(
            specs, jobs=1, cache_root=root, lint_gate=True,
            defects={3: "deadlock"}, seed=SEED,
        )
        healthy = execute_study(specs, jobs=1, cache_root=root, lint_gate=True, seed=SEED)
        assert not healthy.failures
        assert healthy.manifest.hits == N - 1
        assert healthy.manifest.misses == 1
        assert len(healthy.records) == N


class TestInterruptResumability:
    def test_ctrl_c_mid_study_leaves_a_resumable_cache(self, specs, tmp_path):
        root = tmp_path / "records"
        done = []

        def interrupt_after_three(index, outcome):
            done.append(index)
            if len(done) == 3:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            execute_study(
                specs, jobs=1, cache_root=root,
                progress=interrupt_after_three, seed=SEED,
            )
        # Completed records are already on disk; the manifest says so.
        assert len(RecordCache(root)) == 3
        manifest = RunManifest.read(root / MANIFEST_NAME)
        assert manifest.interrupted
        assert len(manifest.entries) == 3

        resumed = execute_study(specs, jobs=1, cache_root=root, seed=SEED)
        assert resumed.manifest.hits == 3
        assert resumed.manifest.misses == N - 3
        assert len(resumed.records) == N
        assert not resumed.manifest.interrupted

    def test_ctrl_c_during_retry_backoff_wait(self, specs, tmp_path, monkeypatch):
        """An interrupt delivered while the executor sleeps between
        retry attempts must still write the (interrupted) manifest and
        leave the completed records cached."""
        root = tmp_path / "records"

        def interrupted_sleep(_delay):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.core.executor._sleep", interrupted_sleep)
        plan = FaultPlan(seed=SEED, faults=(FaultSpec(index=1, kind="flaky"),))
        with fault_plan_env(plan, tmp_path):
            with pytest.raises(KeyboardInterrupt):
                execute_study(specs, jobs=1, cache_root=root, seed=SEED)
        manifest = RunManifest.read(root / MANIFEST_NAME)
        assert manifest.interrupted
        # Spec 0 finished before the flaky record's backoff began.
        assert [e.spec_index for e in manifest.entries] == [0]
        assert len(RecordCache(root)) == 1
        # The next run resumes: one hit, the rest recomputed.
        monkeypatch.undo()
        resumed = execute_study(specs, jobs=1, cache_root=root, seed=SEED)
        assert len(resumed.records) == N
        assert resumed.manifest.hits == 1


class TestQuarantinePersistence:
    def test_quarantine_survives_across_invocations(self, specs, tmp_path):
        """A record that exhausts every ladder step is quarantined on
        disk; a later cold invocation (even parallel) skips it without
        dispatching, and clearing the registry releases it."""
        root = tmp_path / "records"
        policy = RetryPolicy(max_attempts=1, base_delay=0.001, max_delay=0.002)
        plan = FaultPlan(
            seed=SEED, faults=(FaultSpec(index=4, kind="flaky", fail_attempts=999),)
        )
        with fault_plan_env(plan, tmp_path):
            first = execute_study(
                specs, jobs=1, cache_root=root, seed=SEED, retry=policy
            )
        assert {f.spec_index for f in first.failures} == {4}
        assert first.failures[0].quarantined
        registry = QuarantineRegistry(tmp_path / "quarantine")
        entries = registry.entries()
        assert len(entries) == 1 and entries[0].reason
        # Second invocation: no fault plan, parallel — still skipped.
        second = execute_study(specs, jobs=2, cache_root=root, seed=SEED, retry=policy)
        skipped = [e for e in second.manifest.entries if e.status == "quarantined"]
        assert [e.spec_index for e in skipped] == [4]
        assert skipped[0].attempts == 0
        assert entries[0].reason in skipped[0].error
        assert len(second.records) == N - 1
        # Clearing the registry restores the record on the third run.
        registry.clear()
        third = execute_study(specs, jobs=1, cache_root=root, seed=SEED)
        assert len(third.records) == N and not third.failures


class TestQuarantinePruning:
    def test_stale_entries_pruned_at_open_and_counted(self, specs, tmp_path):
        """Quarantine keys embed the measurement code version, so an
        entry written under another version can never match again —
        opening the registry drops it and the manifest counts it."""
        from repro.core.resilience import QuarantineEntry
        from repro.util.fingerprint import code_version

        root = tmp_path / "records"
        registry = QuarantineRegistry(tmp_path / "quarantine")
        registry.add(QuarantineEntry(
            key="stale-key", name="old-trace", reason="older build",
            code_version="deadbeef",
        ))
        registry.add(QuarantineEntry(
            key="fresh-key", name="new-trace", reason="current build",
            code_version=code_version(),
        ))
        run = execute_study(specs, jobs=1, cache_root=root, seed=SEED)
        assert run.manifest.quarantine_pruned == 1
        assert registry.get("stale-key") is None
        assert registry.get("fresh-key") is not None
        # The prune count survives the manifest round-trip.
        reread = RunManifest.read(root / MANIFEST_NAME)
        assert reread.quarantine_pruned == 1

    def test_live_quarantine_entries_still_block(self, specs, tmp_path):
        """Pruning only touches other-version entries: a quarantine
        written by this code version keeps skipping its record."""
        root = tmp_path / "records"
        policy = RetryPolicy(max_attempts=1, base_delay=0.001, max_delay=0.002)
        plan = FaultPlan(
            seed=SEED, faults=(FaultSpec(index=2, kind="flaky", fail_attempts=999),)
        )
        with fault_plan_env(plan, tmp_path):
            execute_study(specs, jobs=1, cache_root=root, seed=SEED, retry=policy)
        second = execute_study(specs, jobs=1, cache_root=root, seed=SEED)
        assert second.manifest.quarantine_pruned == 0
        skipped = [e for e in second.manifest.entries if e.status == "quarantined"]
        assert [e.spec_index for e in skipped] == [2]


class TestDeadlineAccounting:
    """Record deadlines measure attempt compute only (the structural
    invariant: per-attempt budgets are armed inside the measurement,
    after any retry backoff sleep has already finished)."""

    def _policy(self):
        # Backoffs 0.6s + 1.2s = 1.8s — more than the whole record
        # budget.  If sleeps counted against the deadline, attempt 3
        # could never start.
        return RetryPolicy(
            max_attempts=4, base_delay=0.6, max_delay=2.0,
            multiplier=2.0, jitter=0.0,
        )

    def _assert_survived(self, run, record_timeout):
        entry = {e.spec_index: e for e in run.manifest.entries}[1]
        assert entry.status == "ok"
        assert entry.attempts == 3
        assert len(entry.backoffs) == 2
        assert sum(entry.backoffs) > record_timeout
        assert entry.ladder_step == 0, "no engine degradation either"
        assert entry.compute_walltime < record_timeout
        # walltime totals all attempts but still excludes the sleeps.
        assert entry.walltime < record_timeout

    def test_two_backoffs_exceeding_budget_still_complete_serial(
        self, specs, tmp_path
    ):
        plan = FaultPlan(
            seed=SEED, faults=(FaultSpec(index=1, kind="flaky", fail_attempts=2),)
        )
        with fault_plan_env(plan, tmp_path):
            run = execute_study(
                specs, jobs=1, cache_root=tmp_path / "records", seed=SEED,
                record_timeout=1.0, retry=self._policy(),
            )
        assert not run.failures
        self._assert_survived(run, 1.0)

    def test_two_backoffs_exceeding_budget_still_complete_parallel(
        self, specs, tmp_path
    ):
        plan = FaultPlan(
            seed=SEED, faults=(FaultSpec(index=1, kind="flaky", fail_attempts=2),)
        )
        with fault_plan_env(plan, tmp_path):
            run = execute_study(
                specs, jobs=2, cache_root=tmp_path / "records", seed=SEED,
                record_timeout=1.0, retry=self._policy(),
            )
        assert not run.failures
        self._assert_survived(run, 1.0)

    def test_watchdog_kill_contribution_capped_at_record_timeout(
        self, specs, tmp_path
    ):
        """A hung attempt is killed ~1.5x+1s past its budget (watchdog,
        pool path); the entry charges compute_walltime at most
        record_timeout per attempt — the watchdog slack is kill
        latency, not measurement time."""
        policy = RetryPolicy(max_attempts=1, base_delay=0.001, max_delay=0.002)
        plan = FaultPlan(
            seed=SEED, faults=(FaultSpec(index=0, kind="hang", fail_attempts=999),)
        )
        with fault_plan_env(plan, tmp_path):
            run = execute_study(
                specs, jobs=2, cache_root=tmp_path / "records", seed=SEED,
                record_timeout=0.3, retry=policy, engines=("analytic",),
            )
        entry = {e.spec_index: e for e in run.manifest.entries}[0]
        assert entry.status == "failed"
        assert entry.failure_kind == "timeout"
        assert entry.compute_walltime <= entry.attempts * 0.3 + 1e-6
        # The raw walltime shows the kill really took longer than that.
        assert entry.walltime > entry.compute_walltime
