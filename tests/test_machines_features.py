"""Machine preset and Table III feature extraction tests."""

import pytest

from repro.machines import CIELITO, EDISON, HOPPER, MachineConfig, get_machine, machine_names
from repro.trace.features import NUMERIC_FEATURE_NAMES, extract_features
from repro.trace.stats import comm_histogram, rank_histogram, summarize_corpus
from repro.machines.config import MachineConfig as MC
from repro.util.units import gbps_to_bytes_per_s, ns_to_s
from repro.workloads import generate_npb, synthesize_ground_truth


class TestPresets:
    def test_paper_network_parameters(self):
        assert CIELITO.bandwidth == pytest.approx(gbps_to_bytes_per_s(10))
        assert CIELITO.latency == pytest.approx(ns_to_s(2500))
        assert HOPPER.bandwidth == pytest.approx(gbps_to_bytes_per_s(35))
        assert HOPPER.latency == pytest.approx(ns_to_s(2575))
        assert EDISON.bandwidth == pytest.approx(gbps_to_bytes_per_s(24))
        assert EDISON.latency == pytest.approx(ns_to_s(1300))

    def test_topology_families(self):
        assert CIELITO.topology == "torus3d"
        assert HOPPER.topology == "torus3d"
        assert EDISON.topology == "dragonfly"

    def test_lookup(self):
        assert get_machine("Cielito") is CIELITO
        with pytest.raises(KeyError):
            get_machine("summit")

    def test_names(self):
        assert machine_names() == ["cielito", "edison", "hopper"]


class TestMachineConfig:
    def test_defaults(self):
        m = MachineConfig(name="x", bandwidth=1e9, latency=1e-6)
        assert m.effective_injection_bandwidth == 1e9

    def test_with_network_scales(self):
        m = CIELITO.with_network(bandwidth=CIELITO.bandwidth * 2)
        assert m.bandwidth == 2 * CIELITO.bandwidth
        assert m.latency == CIELITO.latency
        assert m.name == CIELITO.name

    def test_with_network_noop(self):
        assert CIELITO.with_network() is CIELITO

    def test_validation(self):
        with pytest.raises(ValueError):
            MC(name="x", bandwidth=0, latency=1e-6)
        with pytest.raises(ValueError):
            MC(name="x", bandwidth=1e9, latency=1e-6, topology="mesh")
        with pytest.raises(ValueError):
            MC(name="x", bandwidth=1e9, latency=1e-6, software_overhead=-1)


@pytest.fixture(scope="module")
def stamped_trace():
    trace = generate_npb("CG", 16, CIELITO, seed=8, compute_per_iter=0.002,
                         ranks_per_node=4)
    return synthesize_ground_truth(trace, CIELITO, seed=8)


class TestFeatureExtraction:
    def test_all_numeric_features_present(self, stamped_trace):
        features = extract_features(stamped_trace)
        assert set(features) == set(NUMERIC_FEATURE_NAMES)

    def test_application_features(self, stamped_trace):
        features = extract_features(stamped_trace)
        assert features["R"] == 16
        assert features["RN"] == 4
        assert features["N"] == 4

    def test_percentages_bounded(self, stamped_trace):
        features = extract_features(stamped_trace)
        for name in ("PoCP", "PoC", "PoBR", "PoCOLL", "PoTp2p", "PoSYN", "PoASYN"):
            assert 0.0 <= features[name] <= 100.0 + 1e-9

    def test_times_consistent(self, stamped_trace):
        features = extract_features(stamped_trace)
        assert features["T"] == pytest.approx(stamped_trace.measured_total_time())
        assert features["Tc"] <= features["T"]
        assert features["Tsyn"] + features["Tasyn"] == pytest.approx(
            features["Tp2p"], rel=1e-6
        )
        assert features["Tbr"] <= features["Tcoll"] + 1e-12

    def test_counts_consistent(self, stamped_trace):
        features = extract_features(stamped_trace)
        assert features["NoIS"] == features["NoIR"]  # symmetric halo
        assert features["NoM"] == features["NoIS"] + features["NoS"]
        assert features["NoCALL"] >= features["NoM"]
        assert features["NoC"] >= features["NoB"]

    def test_bytes_consistent(self, stamped_trace):
        features = extract_features(stamped_trace)
        assert features["TBp2p"] <= features["TB"]
        assert features["TBp2p"] == stamped_trace.total_send_bytes()

    def test_cr_plausible(self, stamped_trace):
        features = extract_features(stamped_trace)
        # CG on a 2-D grid talks to 4 neighbors.
        assert 1 <= features["CR"] <= 8
        assert features["CRComm"] > 0


class TestTableIBinning:
    def _trace(self, n):
        t = generate_npb("EP", n, CIELITO, seed=1, compute_per_iter=0.005,
                         ranks_per_node=4)
        return synthesize_ground_truth(t, CIELITO, seed=1)

    def test_rank_histogram(self):
        traces = [self._trace(n) for n in (64, 128, 256)]
        hist = rank_histogram(traces)
        assert hist["64"] == 1
        assert hist["65-128"] == 1
        assert hist["129-256"] == 1

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            rank_histogram([self._trace(32)])

    def test_comm_histogram_covers(self):
        traces = [self._trace(64)]
        hist = comm_histogram(traces)
        assert sum(hist.values()) == 1

    def test_summarize(self):
        traces = [self._trace(64)]
        summary = summarize_corpus(traces)
        assert summary["total"]["traces"] == 1
