"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives import collective_cost, schedule_collective
from repro.machines import CIELITO
from repro.mfact import ConfigGrid, model_trace
from repro.sim import simulate_trace
from repro.trace.dumpi import dumps, loads
from repro.trace.events import Op, OpKind, make_compute
from repro.trace.trace import TraceSet
from repro.topology import Dragonfly, FatTree, Torus3D
from repro.util.stats import fraction_within, trimmed_mean
from repro.util.units import format_time

COLLECTIVES = [
    OpKind.BARRIER,
    OpKind.BCAST,
    OpKind.REDUCE,
    OpKind.ALLREDUCE,
    OpKind.ALLGATHER,
    OpKind.ALLTOALL,
    OpKind.GATHER,
    OpKind.SCATTER,
    OpKind.REDUCE_SCATTER,
]

slow = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestCollectiveProperties:
    @given(
        kind=st.sampled_from(COLLECTIVES),
        p=st.integers(min_value=1, max_value=40),
        nbytes=st.integers(min_value=0, max_value=1 << 20),
        root_idx=st.integers(min_value=0, max_value=39),
    )
    @slow
    def test_schedule_always_matches(self, kind, p, nbytes, root_idx):
        ranks = tuple(range(100, 100 + p))
        root = ranks[root_idx % p]
        sched = schedule_collective(kind, ranks, nbytes, root=root)
        sends = {}
        recvs = {}
        for rank, phases in sched.items():
            for phase in phases:
                for peer, size in phase.sends:
                    sends[(rank, peer, size)] = sends.get((rank, peer, size), 0) + 1
                for peer, size in phase.recvs:
                    recvs[(peer, rank, size)] = recvs.get((peer, rank, size), 0) + 1
        assert sends == recvs

    @given(
        kind=st.sampled_from(COLLECTIVES),
        p=st.integers(min_value=2, max_value=64),
        nbytes=st.integers(min_value=1, max_value=1 << 22),
    )
    @slow
    def test_cost_monotone_in_bytes(self, kind, p, nbytes):
        from repro.collectives import ALLTOALL_BRUCK_MAX_BYTES

        if kind == OpKind.ALLTOALL:
            # Crossing the Bruck/pairwise threshold switches algorithms
            # (implementations switch precisely because the other one is
            # cheaper), so monotonicity only holds within one algorithm.
            crosses = nbytes <= ALLTOALL_BRUCK_MAX_BYTES < nbytes * 2
            if crosses:
                return
        small = collective_cost(kind, p, nbytes)
        large = collective_cost(kind, p, nbytes * 2)
        assert large.bytes_on_wire >= small.bytes_on_wire
        assert large.alpha_count == small.alpha_count

    @given(p=st.integers(min_value=2, max_value=128))
    @slow
    def test_barrier_cost_grows_with_p(self, p):
        assert (
            collective_cost(OpKind.BARRIER, 2 * p, 0).alpha_count
            >= collective_cost(OpKind.BARRIER, p, 0).alpha_count
        )


class TestTopologyProperties:
    @given(
        dims=st.tuples(
            st.integers(min_value=1, max_value=6),
            st.integers(min_value=1, max_value=6),
            st.integers(min_value=1, max_value=6),
        ),
        data=st.data(),
    )
    @slow
    def test_torus_routes_reach_destination(self, dims, data):
        topo = Torus3D(dims)
        src = data.draw(st.integers(min_value=0, max_value=topo.nnodes - 1))
        dst = data.draw(st.integers(min_value=0, max_value=topo.nnodes - 1))
        by_link = {link: (u, v) for u, v, link in topo._edges()}
        here = src
        for link in topo.route(src, dst):
            u, v = by_link[link]
            assert u == here
            here = v
        assert here == dst

    @given(
        dims=st.tuples(
            st.integers(min_value=1, max_value=5),
            st.integers(min_value=1, max_value=5),
            st.integers(min_value=1, max_value=5),
        ),
        data=st.data(),
    )
    @slow
    def test_torus_hop_count_within_diameter(self, dims, data):
        topo = Torus3D(dims)
        src = data.draw(st.integers(min_value=0, max_value=topo.nnodes - 1))
        dst = data.draw(st.integers(min_value=0, max_value=topo.nnodes - 1))
        diameter = sum(d // 2 for d in dims)
        assert topo.hop_count(src, dst) <= diameter

    @given(
        p=st.integers(min_value=1, max_value=3),
        a_half=st.integers(min_value=1, max_value=3),
        g=st.integers(min_value=2, max_value=7),
        data=st.data(),
    )
    @slow
    def test_dragonfly_routes_valid(self, p, a_half, g, data):
        a, h = 2 * a_half, a_half
        if g > a * h + 1:
            g = a * h + 1
        topo = Dragonfly(p, a, h, g)
        src = data.draw(st.integers(min_value=0, max_value=topo.nnodes - 1))
        dst = data.draw(st.integers(min_value=0, max_value=topo.nnodes - 1))
        by_link = {link: (u, v) for u, v, link in topo._edges()}
        sg, sr = topo.locate(src)
        dg, dr = topo.locate(dst)
        here = ("r", sg, sr)
        route = topo.route(src, dst)
        assert len(route) <= 3
        for link in route:
            u, v = by_link[link]
            assert u == here
            here = v
        assert here == ("r", dg, dr)

    @given(
        m=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=1, max_value=6),
        r=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    @slow
    def test_fattree_routes_valid(self, m, n, r, data):
        topo = FatTree(m, n, r)
        src = data.draw(st.integers(min_value=0, max_value=topo.nnodes - 1))
        dst = data.draw(st.integers(min_value=0, max_value=topo.nnodes - 1))
        if src == dst:
            assert topo.route(src, dst) == ()
            return
        by_link = {link: (u, v) for u, v, link in topo._edges()}
        here = ("node", src)
        for link in topo.route(src, dst):
            u, v = by_link[link]
            assert u == here
            here = v
        assert here == ("node", dst)


def ring_trace_strategy():
    return st.builds(
        lambda n, nbytes, comp: _ring_trace(n, nbytes, comp),
        n=st.integers(min_value=2, max_value=10),
        nbytes=st.integers(min_value=1, max_value=1 << 18),
        comp=st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
    )


def _ring_trace(n, nbytes, comp):
    ranks = []
    for r in range(n):
        ops = [make_compute(comp * (1 + r / n))] if comp > 0 else []
        ops += [
            Op(OpKind.IRECV, peer=(r - 1) % n, nbytes=nbytes, tag=1, req=1),
            Op(OpKind.ISEND, peer=(r + 1) % n, nbytes=nbytes, tag=1, req=2),
            Op(OpKind.WAIT, req=1),
            Op(OpKind.WAIT, req=2),
            Op(OpKind.BARRIER),
        ]
        ranks.append(ops)
    return TraceSet("ring", "R", ranks, machine="cielito", ranks_per_node=2)


class TestReplayProperties:
    @given(trace=ring_trace_strategy())
    @settings(max_examples=15, deadline=None)
    def test_mfact_total_bounds(self, trace):
        """Total time is at least the compute of the slowest rank and at
        least any single message's Hockney time."""
        rep = model_trace(trace, CIELITO, ConfigGrid.single(CIELITO))
        slowest_compute = max(
            sum(op.duration for op in ops if op.kind == OpKind.COMPUTE)
            for ops in trace.ranks
        )
        assert rep.baseline_total_time >= slowest_compute
        assert rep.baseline_total_time > 0

    @given(trace=ring_trace_strategy())
    @settings(max_examples=10, deadline=None)
    def test_mfact_monotone_in_bandwidth(self, trace):
        grid = ConfigGrid.sweep(CIELITO, bw_factors=(0.5, 1.0, 2.0), lat_factors=(1.0,))
        rep = model_trace(trace, CIELITO, grid)
        t_slow = rep.time_at(0.5, 1.0, CIELITO)
        t_base = rep.baseline_total_time
        t_fast = rep.time_at(2.0, 1.0, CIELITO)
        assert t_slow >= t_base - 1e-12
        assert t_base >= t_fast - 1e-12

    @given(trace=ring_trace_strategy())
    @settings(max_examples=6, deadline=None)
    def test_sim_and_model_agree_on_ring(self, trace):
        """Uncontended rings: modeling and simulation agree within 35%
        plus a small absolute allowance (microsecond-scale traces are
        dominated by per-hop latencies only the simulator models; the
        35us floor covers two-rank boundary traces where those fixed
        hop costs are the entire runtime)."""
        mfact = model_trace(trace, CIELITO, ConfigGrid.single(CIELITO)).baseline_total_time
        sim = simulate_trace(trace, CIELITO, "packet-flow").total_time
        assert sim == pytest.approx(mfact, rel=0.35, abs=35e-6)


class TestTraceSerializationProperties:
    @given(
        n=st.integers(min_value=1, max_value=5),
        seeds=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @slow
    def test_roundtrip_arbitrary_compute_traces(self, n, seeds):
        rng = np.random.default_rng(seeds)
        ranks = [
            [make_compute(float(rng.random())) for _ in range(int(rng.integers(0, 5)))]
            for _ in range(n)
        ]
        trace = TraceSet("t", "A", ranks, metadata={"s": int(seeds)})
        again = loads(dumps(trace))
        assert again.op_count() == trace.op_count()
        for s1, s2 in zip(trace.ranks, again.ranks):
            assert s1 == s2


class TestUtilProperties:
    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    @slow
    def test_trimmed_mean_within_range(self, values):
        t = trimmed_mean(values)
        assert min(values) - 1e-9 <= t <= max(values) + 1e-9

    @given(
        values=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50),
        threshold=st.floats(min_value=0, max_value=100),
    )
    @slow
    def test_fraction_within_monotone(self, values, threshold):
        assert fraction_within(values, threshold) <= fraction_within(values, threshold + 1.0)

    @given(x=st.floats(min_value=1e-12, max_value=1e6))
    @slow
    def test_format_time_parses_back_roughly(self, x):
        text = format_time(x)
        assert any(text.endswith(u) for u in ("s", "ms", "us", "ns"))
