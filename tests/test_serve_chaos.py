"""Multi-process chaos suite for the distributed study service.

Each scenario runs a real coordinator and two real worker processes
(via ``python -m repro.serve.cli``), injects one network/process fault
through a :class:`~repro.util.faults.FaultPlan`, and asserts the two
invariants the service exists to provide:

* the distributed study's canonical records are **byte-identical** to
  a ``jobs=1`` serial run of the same specs, and
* every spec completed **exactly once** per the fetched manifest — no
  spec lost to a dead worker, none double-recorded by a resend.

Fault coverage: worker SIGKILL mid-record (lease reclaim), connection
drop on result delivery (outbox resend + dedup), partition at connect
time (seeded reconnect backoff), slow sockets (timeouts hold), and a
coordinator SIGKILL + restart (journal replay).  ``make chaos-serve``
runs exactly this file.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.executor import execute_study
from repro.serve.client import ServeClient
from repro.serve.protocol import parse_address
from repro.util.faults import FaultPlan, FaultSpec
from repro.workloads.suite import mini_corpus_specs

SEED = 47
N = 4
REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def specs():
    return mini_corpus_specs(N, seed=SEED, nranks=4)


@pytest.fixture(scope="module")
def serial_canonical(specs, tmp_path_factory):
    root = tmp_path_factory.mktemp("serial") / "records"
    run = execute_study(specs, jobs=1, seed=SEED, cache_root=root)
    return json.dumps(
        [r.to_json(canonical=True) for r in run.records], sort_keys=True
    )


def base_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_PLAN", None)
    env.pop("REPRO_SERVE_WORKER", None)
    return env


def spawn_coordinator(tmp_path, *, port=0, grace=60.0, lease_timeout=1.0):
    endpoint_file = tmp_path / "endpoint"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve.cli", "serve",
            "--port", str(port),
            "--cache-root", str(tmp_path / "coord-cache"),
            "--journal", str(tmp_path / "journal.jsonl"),
            "--lease-timeout", str(lease_timeout),
            "--grace", str(grace),
            "--endpoint-file", str(endpoint_file),
        ],
        env=base_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if endpoint_file.is_file():
            text = endpoint_file.read_text().strip()
            if text:
                return proc, parse_address(text)
        if proc.poll() is not None:
            raise AssertionError(
                f"coordinator died at startup: {proc.stderr.read().decode()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("coordinator never wrote its endpoint file")


def spawn_worker(tmp_path, address, index, plan_path=None, reconnect_attempts=40):
    env = base_env()
    if plan_path is not None:
        env["REPRO_FAULT_PLAN"] = str(plan_path)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve.cli", "worker",
            "--connect", f"{address[0]}:{address[1]}",
            "--id", f"w{index}",
            "--index", str(index),
            "--cache-root", str(tmp_path / f"worker-cache-{index}"),
            "--seed", str(SEED),
            "--reconnect-attempts", str(reconnect_attempts),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def reap(*procs, timeout=30.0):
    for proc in procs:
        if proc.poll() is None:
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)


def kill_hard(*procs):
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)


def assert_exactly_once_and_identical(result, serial_canonical):
    got = json.dumps(
        [r.to_json(canonical=True) for r in result.records], sort_keys=True
    )
    assert got == serial_canonical, "distributed records differ from serial"
    indices = [e.spec_index for e in result.manifest.entries]
    assert sorted(indices) == list(range(N)), (
        f"specs lost or duplicated: {indices}"
    )
    assert all(e.status == "ok" for e in result.manifest.entries)


def run_scenario(tmp_path, serial_canonical, specs, plan=None, wait=120.0):
    """One coordinator + two workers (fault plan applied to workers)."""
    plan_path = plan.write(tmp_path / "fault_plan.json") if plan else None
    coordinator, address = spawn_coordinator(tmp_path)
    workers = [
        spawn_worker(tmp_path, address, 0, plan_path),
        spawn_worker(tmp_path, address, 1, plan_path),
    ]
    try:
        client = ServeClient(address)
        study_id = client.submit(specs, seed=SEED)
        client.wait(study_id, timeout=wait)
        result = client.result(study_id)
        assert_exactly_once_and_identical(result, serial_canonical)
        client.drain()
        reap(*workers)
        reap(coordinator)
        return result
    finally:
        kill_hard(coordinator, *workers)


class TestWorkerSigkill:
    def test_killed_worker_lease_is_reclaimed(
        self, specs, serial_canonical, tmp_path
    ):
        # Whichever worker leases spec 2 first is SIGKILLed mid-record;
        # the survivor picks the spec back up at lease generation 1.
        plan = FaultPlan(
            seed=SEED,
            faults=(FaultSpec(index=2, kind="kill-worker", fail_attempts=1),),
        )
        result = run_scenario(tmp_path, serial_canonical, specs, plan)
        entries = {e.spec_index: e for e in result.manifest.entries}
        assert entries[2].lease >= 1, "reclaim did not bump the lease"
        summary = result.manifest.to_json()["summary"]
        assert summary["leases_reclaimed"] >= 1


class TestConnectionDrop:
    def test_dropped_result_is_resent_not_lost(
        self, specs, serial_canonical, tmp_path
    ):
        # Worker 1's first two connection generations drop every
        # result send; the outbox resends after reconnecting.
        plan = FaultPlan(
            seed=SEED,
            faults=(
                FaultSpec(
                    index=1, kind="conn-drop", engine="result", fail_attempts=2
                ),
            ),
        )
        run_scenario(tmp_path, serial_canonical, specs, plan)


class TestPartition:
    def test_partitioned_worker_backs_off_then_joins(
        self, specs, serial_canonical, tmp_path
    ):
        # Worker 0's first two connect attempts are refused (seeded
        # backoff between them); worker 1 carries the early load.
        plan = FaultPlan(
            seed=SEED,
            faults=(FaultSpec(index=0, kind="partition", fail_attempts=3),),
        )
        run_scenario(tmp_path, serial_canonical, specs, plan)


class TestSlowSocket:
    def test_slow_sends_complete_within_timeouts(
        self, specs, serial_canonical, tmp_path
    ):
        plan = FaultPlan(
            seed=SEED,
            faults=(
                FaultSpec(
                    index=1, kind="slow-socket", fail_attempts=999, delay=0.05
                ),
            ),
        )
        run_scenario(tmp_path, serial_canonical, specs, plan)


class TestCoordinatorRestart:
    def test_sigkill_and_restart_resumes_from_journal(
        self, specs, serial_canonical, tmp_path
    ):
        coordinator, address = spawn_coordinator(tmp_path)
        workers = [
            spawn_worker(tmp_path, address, 0),
            spawn_worker(tmp_path, address, 1),
        ]
        replacement = None
        try:
            client = ServeClient(address)
            study_id = client.submit(specs, seed=SEED)

            # Let at least one spec finish, then SIGKILL the
            # coordinator mid-study (journal has study + some entries).
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                try:
                    if client.poll(study_id)["done"] >= 1:
                        break
                except (ConnectionError, TimeoutError, OSError):
                    pass
                time.sleep(0.05)
            else:
                raise AssertionError("no spec completed before the kill")
            os.kill(coordinator.pid, signal.SIGKILL)
            coordinator.wait(timeout=10.0)

            # Restart on the same port with the same journal; workers
            # reconnect with their seeded backoff, the journal replay
            # restores the study.
            (tmp_path / "endpoint").unlink()
            replacement, readdress = spawn_coordinator(tmp_path, port=address[1])
            assert readdress[1] == address[1]
            client.wait(study_id, timeout=120.0)
            result = client.result(study_id)
            assert_exactly_once_and_identical(result, serial_canonical)
            client.drain()
            reap(*workers)
            reap(replacement)
        finally:
            kill_hard(coordinator, *workers)
            if replacement is not None:
                kill_hard(replacement)
