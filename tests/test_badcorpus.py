"""Tests for the seeded known-bad corpus (repro.analysis.badcorpus)."""

import ast

from repro.analysis.badcorpus import (
    DEFECT_KINDS,
    corpus_cases,
    evaluate_corpus,
)
from repro.analysis.detlint import DETLINT_RULES


class TestCorpusShape:
    def test_every_rule_is_planted_at_least_once(self):
        assert {c.rule for c in corpus_cases()} == set(DETLINT_RULES)

    def test_kinds_are_unique_and_stable(self):
        cases = corpus_cases()
        kinds = [c.kind for c in cases]
        assert len(kinds) == len(set(kinds))
        assert tuple(kinds) == DEFECT_KINDS

    def test_both_sides_parse(self):
        for case in corpus_cases():
            ast.parse(case.bad)
            ast.parse(case.clean)

    def test_bad_and_clean_differ(self):
        for case in corpus_cases():
            assert case.bad != case.clean, case.kind

    def test_every_case_is_annotated(self):
        for case in corpus_cases():
            assert case.note
            assert case.rel.endswith(".py")

    def test_same_seed_same_corpus(self):
        first = corpus_cases(seed=123)
        second = corpus_cases(seed=123)
        assert [(c.kind, c.bad, c.clean) for c in first] == [
            (c.kind, c.bad, c.clean) for c in second
        ]

    def test_different_seed_same_kinds(self):
        # The defect set is stable; only identifier names vary.
        assert [c.kind for c in corpus_cases(seed=1)] == list(DEFECT_KINDS)


class TestEvaluation:
    def test_every_planted_defect_fires(self):
        outcome = evaluate_corpus()
        assert all(k["fired"] for k in outcome["kinds"]), outcome["kinds"]

    def test_clean_variants_stay_silent(self):
        outcome = evaluate_corpus()
        for kind in outcome["kinds"]:
            assert kind["clean_findings"] == [], kind

    def test_perfect_precision_and_recall(self):
        outcome = evaluate_corpus()
        assert set(outcome["rules"]) == set(DETLINT_RULES)
        for rule, stats in outcome["rules"].items():
            assert stats["recall"] == 1.0, (rule, stats)
            assert stats["precision"] == 1.0, (rule, stats)
            assert stats["false_positives"] == 0

    def test_alternate_seed_still_perfect(self):
        # Rules must key on structure, not on the default names.
        outcome = evaluate_corpus(seed=987654)
        for rule, stats in outcome["rules"].items():
            assert stats["recall"] == 1.0, (rule, stats)
            assert stats["precision"] == 1.0, (rule, stats)
