"""Edge-case tests for SimResult, engine state and replay internals."""

import pytest

from repro.machines import CIELITO
from repro.sim import SimReplay, SimResult, simulate_trace
from repro.sim.flow import FlowModel, RIPPLE_COALESCE
from repro.trace.events import Op, OpKind, make_compute
from repro.trace.trace import TraceSet


class TestSimResult:
    def test_frozen(self):
        result = SimResult(
            trace_name="t", app="A", machine="m", model="packet",
            total_time=1.0, comm_time=0.5, compute_time=0.5,
            walltime=0.1, events=10, messages=2, bytes_sent=100,
        )
        with pytest.raises(Exception):
            result.total_time = 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimResult(
                trace_name="t", app="A", machine="m", model="packet",
                total_time=-1.0, comm_time=0.0, compute_time=0.0,
                walltime=0.0, events=0, messages=0, bytes_sent=0,
            )


class TestReplayEdgeCases:
    def test_compute_only_trace(self):
        trace = TraceSet("t", "T", [[make_compute(0.5)], [make_compute(0.25)]])
        res = simulate_trace(trace, CIELITO, "packet-flow")
        assert res.total_time == pytest.approx(0.5)
        assert res.comm_time == 0.0

    def test_empty_rank_stream(self):
        trace = TraceSet("t", "T", [[make_compute(0.1)], []])
        res = simulate_trace(trace, CIELITO, "packet-flow")
        assert res.total_time == pytest.approx(0.1)

    def test_zero_byte_message(self):
        ranks = [
            [Op(OpKind.SEND, peer=1, nbytes=0, tag=1)],
            [Op(OpKind.RECV, peer=0, nbytes=0, tag=1)],
        ]
        trace = TraceSet("t", "T", ranks, machine="cielito", ranks_per_node=1)
        for model in ("packet", "flow", "packet-flow"):
            res = simulate_trace(trace, CIELITO, model)
            assert res.total_time < 0.001

    def test_same_node_message_fast(self):
        ranks = [
            [Op(OpKind.SEND, peer=1, nbytes=1 << 20, tag=1)],
            [Op(OpKind.RECV, peer=0, nbytes=1 << 20, tag=1)],
        ]
        same = TraceSet("t", "T", ranks, machine="cielito", ranks_per_node=2)
        apart = TraceSet("t", "T", ranks, machine="cielito", ranks_per_node=1)
        t_same = simulate_trace(same, CIELITO, "packet-flow").total_time
        t_apart = simulate_trace(apart, CIELITO, "packet-flow").total_time
        assert t_same < t_apart

    def test_out_of_order_waits(self):
        ranks = [
            [
                Op(OpKind.ISEND, peer=1, nbytes=4096, tag=1, req=1),
                Op(OpKind.ISEND, peer=1, nbytes=4096, tag=2, req=2),
                Op(OpKind.WAIT, req=2),
                Op(OpKind.WAIT, req=1),
            ],
            [
                Op(OpKind.IRECV, peer=0, nbytes=4096, tag=2, req=1),
                Op(OpKind.IRECV, peer=0, nbytes=4096, tag=1, req=2),
                Op(OpKind.WAIT, req=1),
                Op(OpKind.WAIT, req=2),
            ],
        ]
        trace = TraceSet("t", "T", ranks, machine="cielito", ranks_per_node=1)
        res = simulate_trace(trace, CIELITO, "packet-flow")
        assert res.total_time > 0

    def test_wait_on_unknown_request_fails(self):
        trace = TraceSet("t", "T", [[Op(OpKind.WAIT, req=9)], []])
        with pytest.raises(RuntimeError, match="unknown request"):
            simulate_trace(trace, CIELITO, "packet-flow")

    def test_deadlocked_trace_detected(self):
        ranks = [
            [Op(OpKind.RECV, peer=1, nbytes=8, tag=0)],
            [Op(OpKind.RECV, peer=0, nbytes=8, tag=0)],
        ]
        trace = TraceSet("t", "T", ranks)
        with pytest.raises(RuntimeError, match="deadlock"):
            simulate_trace(trace, CIELITO, "packet-flow")


class TestFlowBatching:
    def test_coalesce_window_small(self):
        assert RIPPLE_COALESCE <= 1e-5

    def test_many_simultaneous_flows_few_ripples(self):
        n = 32
        ranks = []
        for r in range(n // 2):
            ranks.append([Op(OpKind.SEND, peer=r + n // 2, nbytes=1 << 18, tag=1)])
        for r in range(n // 2):
            ranks.append([Op(OpKind.RECV, peer=r, nbytes=1 << 18, tag=1)])
        trace = TraceSet("t", "T", ranks, machine="cielito", ranks_per_node=1)
        replay = SimReplay(trace, CIELITO, "flow")
        replay.run()
        # 16 simultaneous flows must not cause 16 arrival ripples.
        assert replay.model.ripple_updates < 10
