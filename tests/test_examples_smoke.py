"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; each must execute in a
subprocess without error.  The corpus-driven example is exercised with
a tiny ``--limit`` so the suite does not depend on the study cache.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "classify_applications.py",
    "network_design_sweep.py",
    "bottleneck_and_whatif.py",
    "multijob_interference.py",
    "trace_tools.py",
    "scaling_projection.py",
]


def run_example(name, *args, timeout=600):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_example_list_is_complete():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(FAST_EXAMPLES) <= on_disk
    # predict_simulation_need needs study records; covered separately.
    assert "predict_simulation_need.py" in on_disk


@pytest.mark.slow
def test_predict_simulation_need_limited():
    result = run_example("predict_simulation_need.py", "--limit", "24", timeout=1800)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "enhanced MFACT success" in result.stdout
