"""Source-level invariant linting, run as a tier-1 check.

The repo-wide test makes ``python -m pytest`` enforce the invariants on
every commit; the unit tests pin each rule's behavior on synthetic
sources.  Standalone use: ``python -m repro.analysis.srclint``.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.diagnostics import Severity
from repro.analysis.srclint import lint_paths, lint_source, main

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


class TestRepoIsClean:
    def test_whole_package_passes_srclint(self):
        report = lint_paths([SRC_ROOT])
        assert report.diagnostics == [], report.render()


class TestUnseededRngRule:
    def test_stdlib_random_call_flagged(self):
        diags = lint_source("import random\nx = random.random()\n", "m.py")
        assert [d.rule for d in diags] == ["src/unseeded-rng"]
        assert diags[0].location == "m.py:2"

    def test_stdlib_random_alias_flagged(self):
        diags = lint_source("import random as rnd\nx = rnd.choice([1])\n", "m.py")
        assert [d.rule for d in diags] == ["src/unseeded-rng"]

    def test_from_random_import_flagged(self):
        diags = lint_source("from random import shuffle\n", "m.py")
        assert [d.rule for d in diags] == ["src/unseeded-rng"]

    def test_np_random_call_flagged(self):
        diags = lint_source(
            "import numpy as np\nrng = np.random.default_rng()\n", "m.py"
        )
        assert [d.rule for d in diags] == ["src/unseeded-rng"]

    def test_generator_annotation_allowed(self):
        src = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> None:\n"
            "    rng.normal()\n"
        )
        assert lint_source(src, "m.py") == []

    def test_rng_module_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert lint_source(src, "src/repro/util/rng.py") == []
        assert lint_source(src, "other.py") != []


class TestFloatTimeEqRule:
    def test_time_attribute_equality_flagged(self):
        diags = lint_source("def f(op, t):\n    return op.t_exit == t\n", "m.py")
        assert [d.rule for d in diags] == ["src/float-time-eq"]

    def test_total_time_name_flagged(self):
        diags = lint_source("def f(total_time):\n    return total_time != 1.0\n", "m.py")
        assert [d.rule for d in diags] == ["src/float-time-eq"]

    def test_nan_idiom_exempt(self):
        assert lint_source("def f(t_exit):\n    return t_exit != t_exit\n", "m.py") == []

    def test_ordering_comparisons_allowed(self):
        assert lint_source("def f(t_exit, t):\n    return t_exit <= t\n", "m.py") == []

    def test_non_time_names_allowed(self):
        assert lint_source("def f(count):\n    return count == 3\n", "m.py") == []


class TestOpKindTableRule:
    def test_partial_collective_table_flagged(self):
        src = (
            "from repro.trace.events import OpKind\n"
            "TABLE = {\n"
            "    OpKind.BARRIER: 1,\n"
            "    OpKind.BCAST: 2,\n"
            "    OpKind.ALLREDUCE: 3,\n"
            "}\n"
        )
        diags = lint_source(src, "m.py")
        assert [d.rule for d in diags] == ["src/opkind-exhaustive"]
        assert "REDUCE_SCATTER" in diags[0].message

    def test_full_p2p_table_allowed(self):
        src = (
            "from repro.trace.events import OpKind\n"
            "TABLE = {\n"
            "    OpKind.SEND: 1,\n"
            "    OpKind.ISEND: 2,\n"
            "    OpKind.RECV: 3,\n"
            "    OpKind.IRECV: 4,\n"
            "}\n"
        )
        assert lint_source(src, "m.py") == []

    def test_small_or_non_opkind_dicts_ignored(self):
        src = (
            "from repro.trace.events import OpKind\n"
            "A = {OpKind.SEND: 1, OpKind.RECV: 2}\n"  # < 3 keys: intent unclear
            "B = {'MPI_Send': OpKind.SEND, 'MPI_Recv': OpKind.RECV, 'x': 1}\n"
        )
        assert lint_source(src, "m.py") == []


class TestOpKindTableFlow:
    """Tables assembled through module-level flow, not one literal."""

    def test_dict_copy_plus_additions_judged_on_final_keys(self):
        src = (
            "from repro.trace.events import OpKind\n"
            "BASE = {OpKind.SEND: 1, OpKind.ISEND: 2}\n"   # < 3 keys: ignored
            "TABLE = dict(BASE)\n"
            "TABLE[OpKind.RECV] = 3\n"                     # copy now has 3 p2p keys
        )
        diags = lint_source(src, "m.py")
        assert [d.rule for d in diags] == ["src/opkind-exhaustive"]
        assert "IRECV" in diags[0].message

    def test_subscript_additions_complete_a_table(self):
        src = (
            "from repro.trace.events import OpKind\n"
            "TABLE = {OpKind.SEND: 1, OpKind.ISEND: 2, OpKind.RECV: 3}\n"
            "TABLE[OpKind.IRECV] = 4\n"
        )
        assert lint_source(src, "m.py") == []

    def test_spread_merge_completes_a_table(self):
        src = (
            "from repro.trace.events import OpKind\n"
            "BASE = {OpKind.SEND: 1, OpKind.ISEND: 2}\n"
            "TABLE = {**BASE, OpKind.RECV: 3, OpKind.IRECV: 4}\n"
        )
        assert lint_source(src, "m.py") == []

    def test_update_through_alias_completes_a_table(self):
        src = (
            "from repro.trace.events import OpKind\n"
            "TABLE = {OpKind.SEND: 1, OpKind.ISEND: 2, OpKind.RECV: 3}\n"
            "ALIAS = TABLE\n"
            "ALIAS.update({OpKind.IRECV: 4})\n"
        )
        assert lint_source(src, "m.py") == []

    def test_aliased_incomplete_table_reported_once(self):
        src = (
            "from repro.trace.events import OpKind\n"
            "TABLE = {OpKind.SEND: 1, OpKind.ISEND: 2, OpKind.RECV: 3}\n"
            "ALIAS = TABLE\n"
        )
        diags = lint_source(src, "m.py")
        assert [d.rule for d in diags] == ["src/opkind-exhaustive"]


class TestErrorSwallowRule:
    SCOPED = "src/repro/core/executor.py"

    def test_silent_broad_handler_flagged(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        diags = lint_source(src, self.SCOPED)
        assert [d.rule for d in diags] == ["src/error-swallow"]
        assert diags[0].location == f"{self.SCOPED}:4"

    def test_bare_except_flagged(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        log('oops')\n"
        )
        diags = lint_source(src, self.SCOPED)
        assert [d.rule for d in diags] == ["src/error-swallow"]
        assert "bare except" in diags[0].message

    def test_reraise_allowed(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        cleanup()\n"
            "        raise\n"
        )
        assert lint_source(src, self.SCOPED) == []

    def test_structured_record_allowed(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        return _failure_outcome(exc)\n"
        )
        assert lint_source(src, self.SCOPED) == []

    def test_narrow_handler_allowed(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (OSError, ValueError):\n"
            "        pass\n"
        )
        assert lint_source(src, self.SCOPED) == []

    def test_out_of_scope_packages_ignored(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert lint_source(src, "src/repro/analysis/tables.py") == []
        assert lint_source(src, self.SCOPED) != []


class TestSyntaxAndEntryPoint:
    def test_syntax_error_becomes_diagnostic(self):
        diags = lint_source("def broken(:\n", "m.py")
        assert [d.rule for d in diags] == ["src/syntax"]
        assert diags[0].severity == Severity.ERROR

    def test_main_clean_run_exits_zero(self, capsys):
        assert main([str(SRC_ROOT / "util" / "rng.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_main_json_on_dirty_file(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("import random\nrandom.seed(1)\n")
        assert main([str(path), "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["ERROR"] == 1

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.srclint"],
            capture_output=True,
            text=True,
            cwd=str(SRC_ROOT.parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
