"""Tests for the CFG builder and dataflow substrate behind detlint."""

import ast
import textwrap

from repro.analysis.cfg import BIND, EXPR, STMT, build_cfg
from repro.analysis.dataflow import (
    FUNCTION,
    HANDLE,
    IMPORT,
    MUTABLE,
    OTHER,
    RNG,
    dotted_name,
    join_envs,
    module_bindings,
    resolve_dict_tables,
    solve_forward,
    worker_functions,
)


def cfg_of(src):
    return build_cfg(ast.parse(textwrap.dedent(src)).body)


def reachable(cfg, start=None):
    seen = set()
    frontier = [cfg.entry if start is None else start]
    while frontier:
        bid = frontier.pop()
        if bid in seen:
            continue
        seen.add(bid)
        frontier.extend(cfg.blocks[bid].succs)
    return seen


def block_of_line(cfg, lineno):
    """The block holding the statement that starts on ``lineno``."""
    for block in cfg.blocks:
        for action in block.actions:
            if action[0] == STMT and action[1].lineno == lineno:
                return block
    raise AssertionError(f"no block holds line {lineno}")


class TestCfgShapes:
    def test_linear_body_single_path(self):
        cfg = cfg_of("x = 1\ny = 2\n")
        assert cfg.exit in reachable(cfg)
        block = block_of_line(cfg, 1)
        assert [a[1].lineno for a in block.actions if a[0] == STMT] == [1, 2]

    def test_if_else_branches_rejoin(self):
        cfg = cfg_of(
            """
            if cond:
                a = 1
            else:
                a = 2
            b = 3
            """
        )
        join = block_of_line(cfg, 6)
        preds = cfg.preds(join.bid)
        assert block_of_line(cfg, 3).bid in preds
        assert block_of_line(cfg, 5).bid in preds

    def test_if_without_else_falls_through(self):
        cfg = cfg_of("if cond:\n    a = 1\nb = 2\n")
        join = block_of_line(cfg, 3)
        # Both the then-branch and the test block reach the join.
        assert len(cfg.preds(join.bid)) == 2

    def test_return_makes_following_code_dead(self):
        cfg = cfg_of("return 1\nx = 2\n")
        all_lines = [
            a[1].lineno
            for b in cfg.blocks
            for a in b.actions
            if a[0] == STMT
        ]
        assert all_lines == [1]  # x = 2 is unreachable and never lowered

    def test_return_diverts_to_exit(self):
        cfg = cfg_of("x = 1\nreturn x\n")
        block = block_of_line(cfg, 2)
        assert cfg.exit in block.succs

    def test_while_header_branches_and_loops(self):
        cfg = cfg_of(
            """
            while cond:
                body = 1
            after = 2
            """
        )
        header = next(
            b for b in cfg.blocks
            if any(a[0] == EXPR for a in b.actions)
        )
        assert len(header.succs) == 2
        body = block_of_line(cfg, 3)
        assert header.bid in body.succs  # back edge

    def test_break_exits_loop(self):
        cfg = cfg_of(
            """
            while cond:
                break
            after = 1
            """
        )
        after = block_of_line(cfg, 4)
        assert after.bid in reachable(cfg)
        assert cfg.exit in reachable(cfg, after.bid)

    def test_for_emits_bind_action(self):
        cfg = cfg_of("for x in items:\n    y = x\n")
        binds = [
            a for b in cfg.blocks for a in b.actions
            if a[0] == BIND and a[3] == "for"
        ]
        assert len(binds) == 1
        assert binds[0][1].id == "x"

    def test_with_emits_bind_action(self):
        cfg = cfg_of("with open(p) as fh:\n    data = fh.read()\n")
        binds = [
            a for b in cfg.blocks for a in b.actions
            if a[0] == BIND and a[3] == "with"
        ]
        assert len(binds) == 1

    def test_handler_sees_every_body_block(self):
        cfg = cfg_of(
            """
            try:
                a = 1
                if cond:
                    b = 2
            except ValueError:
                c = 3
            """
        )
        handler = block_of_line(cfg, 7)
        preds = set(cfg.preds(handler.bid))
        assert block_of_line(cfg, 3).bid in preds
        assert block_of_line(cfg, 5).bid in preds

    def test_finally_runs_on_return_path(self):
        cfg = cfg_of(
            """
            fh = acquire()
            try:
                return fh.read()
            finally:
                fh.close()
            """
        )
        ret = block_of_line(cfg, 4)
        fin = block_of_line(cfg, 6)
        # return diverts into the finally suite, which reaches the exit.
        assert fin.bid in ret.succs
        assert cfg.exit in reachable(cfg, fin.bid)


class TestSolver:
    @staticmethod
    def _taint_transfer(cfg):
        def transfer(bid, env):
            env = dict(env)
            for action in cfg.blocks[bid].actions:
                if action[0] != STMT:
                    continue
                stmt = action[1]
                if not (isinstance(stmt, ast.Assign)
                        and isinstance(stmt.targets[0], ast.Name)):
                    continue
                value = stmt.value
                if isinstance(value, ast.Call):
                    env[stmt.targets[0].id] = frozenset({"T"})
                elif isinstance(value, ast.Name):
                    env[stmt.targets[0].id] = env.get(value.id, frozenset())
                else:
                    env[stmt.targets[0].id] = frozenset()
            return env
        return transfer

    def test_branch_join_unions_tags(self):
        cfg = cfg_of(
            """
            if cond:
                x = taint()
            else:
                x = 1
            y = x
            """
        )
        envs = solve_forward(cfg, self._taint_transfer(cfg))
        assert envs[cfg.exit]["y"] == frozenset({"T"})

    def test_loop_reaches_fixpoint(self):
        cfg = cfg_of(
            """
            x = taint()
            y = 0
            while cond:
                y = x
            z = y
            """
        )
        envs = solve_forward(cfg, self._taint_transfer(cfg))
        assert envs[cfg.exit]["z"] == frozenset({"T"})

    def test_initial_env_seeds_entry(self):
        cfg = cfg_of("y = x\n")
        envs = solve_forward(
            cfg, self._taint_transfer(cfg), {"x": frozenset({"S"})}
        )
        assert envs[cfg.exit]["y"] == frozenset({"S"})

    def test_join_envs_unions_keywise(self):
        a = {"x": frozenset({"A"})}
        b = {"x": frozenset({"B"}), "y": frozenset({"C"})}
        joined = join_envs(a, b)
        assert joined["x"] == frozenset({"A", "B"})
        assert joined["y"] == frozenset({"C"})

    def test_dotted_name(self):
        node = ast.parse("np.random.default_rng()").body[0].value.func
        assert dotted_name(node) == "np.random.default_rng"
        call = ast.parse("f()[0].method()").body[0].value.func
        assert dotted_name(call) is None


class TestModuleBindings:
    def test_classification(self):
        tree = ast.parse(textwrap.dedent(
            """
            import os
            from repro.util.rng import substream

            def helper():
                pass

            TABLE = {}
            ITEMS = []
            RNG = substream(0, "x")
            LOG = open("log.txt", "a")
            LIMIT = 3
            """
        ))
        bindings = module_bindings(tree)
        assert bindings["os"] == IMPORT
        assert bindings["substream"] == IMPORT
        assert bindings["helper"] == FUNCTION
        assert bindings["TABLE"] == MUTABLE
        assert bindings["ITEMS"] == MUTABLE
        assert bindings["RNG"] == RNG
        assert bindings["LOG"] == HANDLE
        assert bindings["LIMIT"] == OTHER


class TestWorkerFunctions:
    def test_process_target_and_transitive_callee(self):
        tree = ast.parse(textwrap.dedent(
            """
            from multiprocessing import Process

            def task(x):
                return helper(x)

            def helper(x):
                return x + 1

            def outside(x):
                return x

            def run(jobs):
                return [Process(target=task) for _ in jobs]
            """
        ))
        assert worker_functions(tree) == {"task", "helper"}

    def test_drive_style_dispatch(self):
        tree = ast.parse(textwrap.dedent(
            """
            def _run_one(spec):
                return spec

            def run(states, jobs):
                return _drive(states, _run_one, jobs)
            """
        ))
        assert worker_functions(tree) == {"_run_one"}

    def test_pool_submit(self):
        tree = ast.parse(textwrap.dedent(
            """
            def work(x):
                return x

            def run(pool, xs):
                return [pool.submit(work, x) for x in xs]
            """
        ))
        assert worker_functions(tree) == {"work"}

    def test_plain_call_is_not_dispatch(self):
        tree = ast.parse(
            "def work(x):\n    return x\n\ndef run(x):\n    return work(x)\n"
        )
        assert worker_functions(tree) == set()


def _key_of(node):
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "K"):
        return node.attr
    return None


def tables_of(src):
    return resolve_dict_tables(ast.parse(textwrap.dedent(src)), _key_of)


class TestResolveDictTables:
    def test_plain_literal(self):
        (table,) = tables_of("T = {K.A: 1, K.B: 2}\n")
        assert table.valid and table.keys == {"A", "B"}

    def test_foreign_key_invalidates(self):
        (table,) = tables_of("T = {K.A: 1, 'x': 2}\n")
        assert not table.valid

    def test_alias_shares_one_table(self):
        tables = tables_of("T = {K.A: 1}\nU = T\nU[K.B] = 2\n")
        assert len(tables) == 1
        assert tables[0].keys == {"A", "B"}

    def test_dict_copy_is_independent(self):
        tables = tables_of("B = {K.A: 1}\nT = dict(B)\nT[K.B] = 2\n")
        keysets = sorted(tuple(sorted(t.keys)) for t in tables)
        assert keysets == [("A",), ("A", "B")]

    def test_spread_merges_keys(self):
        tables = tables_of("B = {K.A: 1}\nT = {**B, K.B: 2}\n")
        keysets = sorted(tuple(sorted(t.keys)) for t in tables)
        assert keysets == [("A",), ("A", "B")]
        assert all(t.valid for t in tables)

    def test_unresolvable_spread_invalidates(self):
        tables = tables_of("T = {**unknown, K.A: 1}\n")
        assert any(not t.valid for t in tables)

    def test_update_call_merges(self):
        tables = tables_of("T = {K.A: 1}\nT.update({K.B: 2})\n")
        assert len(tables) == 1
        assert tables[0].keys == {"A", "B"}

    def test_function_level_literal_standalone(self):
        (table,) = tables_of("def f():\n    return {K.A: 1}\n")
        assert table.keys == {"A"}
