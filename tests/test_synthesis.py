"""Ground-truth synthesis tests."""

import math

import numpy as np
import pytest

from repro.machines import CIELITO
from repro.mfact import ConfigGrid, model_trace
from repro.sim import simulate_trace
from repro.trace.events import OpKind
from repro.workloads import generate_doe, generate_npb, synthesize_ground_truth


def stamped(app="CG", n=16, seed=4, compute=0.002, gen=generate_npb, **kw):
    # Spread ranks over nodes: single-node runs short-circuit the network
    # entirely (shared-memory transfers), which is not what these tests probe.
    kw.setdefault("ranks_per_node", 2)
    trace = gen(app, n, CIELITO, seed=seed, compute_per_iter=compute, **kw)
    return synthesize_ground_truth(trace, CIELITO, seed=seed)


class TestStamping:
    def test_every_op_stamped(self):
        trace = stamped()
        assert trace.has_timestamps()

    def test_timestamps_monotone_per_rank(self):
        trace = stamped()
        for stream in trace.ranks:
            last = 0.0
            for op in stream:
                assert op.t_entry >= last - 1e-12
                assert op.t_exit >= op.t_entry - 1e-12
                last = op.t_exit

    def test_total_time_positive(self):
        assert stamped().measured_total_time() > 0

    def test_compute_durations_rewritten(self):
        trace = generate_npb("EP", 8, CIELITO, seed=4, compute_per_iter=0.01, ranks_per_node=2)
        before = [
            op.duration for ops in trace.ranks for op in ops if op.kind == OpKind.COMPUTE
        ]
        synthesize_ground_truth(trace, CIELITO, seed=4)
        after = [
            op.duration for ops in trace.ranks for op in ops if op.kind == OpKind.COMPUTE
        ]
        # OS noise inflates measured compute slightly.
        assert all(a >= b for a, b in zip(after, before))
        assert sum(after) > sum(before)

    def test_compute_matches_stamps(self):
        trace = stamped()
        for stream in trace.ranks:
            for op in stream:
                if op.kind == OpKind.COMPUTE:
                    assert op.measured_duration == pytest.approx(op.duration, rel=1e-9)

    def test_deterministic(self):
        a = stamped(seed=11)
        b = stamped(seed=11)
        assert a.measured_total_time() == b.measured_total_time()

    def test_seed_matters(self):
        assert stamped(seed=11).measured_total_time() != stamped(seed=12).measured_total_time()


class TestRealSystemEffects:
    def test_tools_underpredict_measured(self):
        """The headline Section V-C relation: both tools predict below
        the measured time (the per-trace sim-vs-model ordering is a
        corpus-level property checked by the Figure 3/4 benchmarks)."""
        trace = stamped("CG", 16, compute=0.001)
        measured = trace.measured_total_time()
        mfact = model_trace(trace, CIELITO).baseline_total_time
        sst = simulate_trace(trace, CIELITO, "packet-flow").total_time
        assert mfact < measured
        assert sst < measured
        assert abs(sst / mfact - 1.0) < 0.4

    def test_underprediction_band(self):
        """Tools land below measured but within a plausible band."""
        trace = stamped("CG", 16, compute=0.001)
        measured = trace.measured_total_time()
        mfact = model_trace(trace, CIELITO).baseline_total_time
        assert 0.5 < mfact / measured < 1.0

    def test_compute_bound_trace_predicted_well(self):
        trace = stamped("EP", 8, compute=0.02)
        measured = trace.measured_total_time()
        mfact = model_trace(trace, CIELITO).baseline_total_time
        assert mfact / measured > 0.9

    def test_kappa_in_plausible_range(self):
        from repro.workloads.synthesis import GroundTruthSynthesizer

        trace = generate_npb("CG", 8, CIELITO, seed=1, compute_per_iter=0.001)
        synth = GroundTruthSynthesizer(trace, CIELITO, seed=1)
        assert 1.0 < synth.kappa < 2.0

    def test_irregular_app_synthesizes(self):
        trace = stamped("FB", 16, gen=generate_doe, compute=0.001)
        assert trace.measured_total_time() > 0

    def test_alltoall_app_synthesizes(self):
        trace = stamped("FT", 16, compute=0.001)
        assert trace.measured_total_time() > 0

    def test_comm_fraction_sane(self):
        trace = stamped("CG", 16, compute=0.005)
        assert 0.0 < trace.comm_fraction() < 1.0
