"""Tests for the binary trace format, the dumpi2ascii importer, and
scaling projection."""

import math

import numpy as np
import pytest

from repro.machines import CIELITO
from repro.mfact.scaling import ScalingFit, fit_scaling, project_scaling
from repro.trace.binary import (
    dumps_binary,
    loads_binary,
    read_trace_binary,
    write_trace_binary,
)
from repro.trace.dumpi import dumps as dumps_ascii
from repro.trace.dumpi_import import DATATYPE_SIZES, import_dumpi_ascii, parse_rank_stream
from repro.trace.events import Op, OpKind
from repro.workloads import generate_doe, generate_npb, synthesize_ground_truth


@pytest.fixture(scope="module")
def stamped():
    trace = generate_doe("AMG", 16, CIELITO, seed=55, compute_per_iter=0.001,
                         ranks_per_node=2, use_comm_split=True)
    return synthesize_ground_truth(trace, CIELITO, seed=55)


class TestBinaryFormat:
    def test_roundtrip_ops(self, stamped):
        again = loads_binary(dumps_binary(stamped))
        assert again.op_count() == stamped.op_count()
        for s1, s2 in zip(stamped.ranks, again.ranks):
            assert s1 == s2

    def test_roundtrip_timestamps_exact(self, stamped):
        again = loads_binary(dumps_binary(stamped))
        op1 = stamped.ranks[0][0]
        op2 = again.ranks[0][0]
        assert op1.t_entry == op2.t_entry
        assert op1.t_exit == op2.t_exit

    def test_roundtrip_header(self, stamped):
        again = loads_binary(dumps_binary(stamped))
        assert again.name == stamped.name
        assert again.uses_comm_split
        assert again.comms == stamped.comms
        assert again.metadata == stamped.metadata

    def test_nan_timestamps_survive(self):
        trace = generate_npb("CG", 4, CIELITO, seed=1, compute_per_iter=0.001)
        again = loads_binary(dumps_binary(trace))
        assert math.isnan(again.ranks[0][0].t_entry)

    def test_smaller_than_ascii(self, stamped):
        binary = dumps_binary(stamped)
        ascii_ = dumps_ascii(stamped).encode()
        assert len(binary) < 0.8 * len(ascii_)

    def test_file_roundtrip(self, stamped, tmp_path):
        path = write_trace_binary(stamped, tmp_path / "t.bin")
        again = read_trace_binary(path)
        assert again.op_count() == stamped.op_count()

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="REPROTR1"):
            loads_binary(b"NOTATRACE" + b"\x00" * 100)


SAMPLE_RANK0 = """\
MPI_Init entering at walltime 100.000000, cputime 0.01
MPI_Init returning at walltime 100.001000, cputime 0.01
MPI_Isend entering at walltime 100.101000, cputime 0.02
int count=1024
int datatype=1 (MPI_DOUBLE)
int dest=1
int tag=7
MPI_Isend returning at walltime 100.101100, cputime 0.02
MPI_Wait entering at walltime 100.102000, cputime 0.02
MPI_Wait returning at walltime 100.103000, cputime 0.02
MPI_Allreduce entering at walltime 100.200000, cputime 0.03
int count=2
int datatype=1 (MPI_DOUBLE)
MPI_Allreduce returning at walltime 100.200500, cputime 0.03
MPI_Finalize entering at walltime 100.300000, cputime 0.04
MPI_Finalize returning at walltime 100.300100, cputime 0.04
"""

SAMPLE_RANK1 = """\
MPI_Init entering at walltime 100.000000, cputime 0.01
MPI_Init returning at walltime 100.001000, cputime 0.01
MPI_Recv entering at walltime 100.050000, cputime 0.02
int count=1024
int datatype=1 (MPI_DOUBLE)
int source=0
int tag=7
MPI_Recv returning at walltime 100.104000, cputime 0.02
MPI_Allreduce entering at walltime 100.199000, cputime 0.03
int count=2
int datatype=1 (MPI_DOUBLE)
MPI_Allreduce returning at walltime 100.200500, cputime 0.03
MPI_Finalize entering at walltime 100.300000, cputime 0.04
MPI_Finalize returning at walltime 100.300100, cputime 0.04
"""


class TestDumpiImport:
    def test_parse_single_rank(self):
        ops = parse_rank_stream(SAMPLE_RANK0)
        kinds = [op.kind for op in ops]
        assert OpKind.ISEND in kinds
        assert OpKind.WAIT in kinds
        assert OpKind.ALLREDUCE in kinds
        assert OpKind.COMPUTE in kinds

    def test_payload_uses_datatype(self):
        ops = parse_rank_stream(SAMPLE_RANK0)
        isend = next(op for op in ops if op.kind == OpKind.ISEND)
        assert isend.nbytes == 1024 * DATATYPE_SIZES["MPI_DOUBLE"]
        assert isend.peer == 1
        assert isend.tag == 7

    def test_gaps_become_compute(self):
        ops = parse_rank_stream(SAMPLE_RANK0)
        compute = [op for op in ops if op.kind == OpKind.COMPUTE]
        assert compute
        assert all(op.duration > 0 for op in compute)

    def test_timestamps_relative_to_start(self):
        ops = parse_rank_stream(SAMPLE_RANK0)
        assert ops[0].t_entry >= 0.0
        assert ops[-1].t_exit <= 0.31

    def test_full_trace_validates_and_replays(self):
        trace = import_dumpi_ascii(
            [SAMPLE_RANK0, SAMPLE_RANK1], name="imported.2", app="SAMPLE",
            machine="cielito", ranks_per_node=1,
        )
        assert trace.nranks == 2
        assert trace.message_count() == 1
        from repro.mfact import ConfigGrid, model_trace

        report = model_trace(trace, CIELITO, ConfigGrid.single(CIELITO))
        assert report.baseline_total_time > 0

    def test_unknown_calls_preserved_as_compute(self):
        text = (
            "MPI_Cart_create entering at walltime 5.0, cputime 0\n"
            "MPI_Cart_create returning at walltime 5.5, cputime 0\n"
        )
        ops = parse_rank_stream(text)
        assert len(ops) == 1
        assert ops[0].kind == OpKind.COMPUTE
        assert ops[0].duration == pytest.approx(0.5)

    def test_waitall_consumes_requests(self):
        text = (
            "MPI_Irecv entering at walltime 1.0, cputime 0\n"
            "int count=8\n"
            "int source=0\n"
            "int tag=1\n"
            "MPI_Irecv returning at walltime 1.1, cputime 0\n"
            "MPI_Irecv entering at walltime 1.2, cputime 0\n"
            "int count=8\n"
            "int source=0\n"
            "int tag=2\n"
            "MPI_Irecv returning at walltime 1.3, cputime 0\n"
            "MPI_Waitall entering at walltime 1.4, cputime 0\n"
            "int count=2\n"
            "MPI_Waitall returning at walltime 1.5, cputime 0\n"
        )
        ops = parse_rank_stream(text)
        waits = [op for op in ops if op.kind == OpKind.WAIT]
        assert len(waits) == 2
        assert {w.req for w in waits} == {1, 2}

    def test_file_paths_accepted(self, tmp_path):
        p0 = tmp_path / "rank0.txt"
        p1 = tmp_path / "rank1.txt"
        p0.write_text(SAMPLE_RANK0)
        p1.write_text(SAMPLE_RANK1)
        trace = import_dumpi_ascii([p0, p1], ranks_per_node=1)
        assert trace.nranks == 2


class TestScaling:
    @pytest.fixture(scope="class")
    def family(self):
        traces = []
        for n in (16, 32, 64, 128):
            traces.append(
                generate_doe(
                    "MiniFE", n, CIELITO, seed=88, compute_per_iter=0.64 / n,
                    ranks_per_node=1, iters=4,
                )
            )
        return traces

    def test_fit_shapes(self, family):
        fit = fit_scaling(family, CIELITO)
        assert fit.parallel > 0
        assert fit.ranks == (16, 32, 64, 128)

    def test_prediction_interpolates(self, family):
        fit = fit_scaling(family, CIELITO)
        # Interpolated sizes land between the bracketing fitted sizes.
        t32, t64 = fit.predict(32), fit.predict(64)
        t48 = fit.predict(48)
        assert min(t32, t64) * 0.8 <= t48 <= max(t32, t64) * 1.2

    def test_strong_scaling_decreases_then_flattens(self, family):
        fit = fit_scaling(family, CIELITO)
        t = fit.predict([16, 64, 256, 4096])
        assert t[1] < t[0]  # more ranks help at first
        # Gains shrink: the last doublings buy less than the first.
        assert (t[0] - t[1]) > (t[2] - t[3])

    def test_efficiency_declines(self, family):
        fit = fit_scaling(family, CIELITO)
        eff = fit.efficiency([16, 128, 1024])
        assert eff[0] == pytest.approx(1.0)
        assert eff[2] < eff[0] + 1e-9

    def test_sweet_spot_among_candidates(self, family):
        fit = fit_scaling(family, CIELITO)
        spot = fit.sweet_spot([16, 64, 1024, 16384])
        assert spot in (16, 64, 1024)

    def test_project_helper(self, family):
        projection = project_scaling(family, CIELITO, targets=[256, 512])
        assert set(projection) == {256, 512}
        assert all(v > 0 for v in projection.values())

    def test_needs_three_sizes(self, family):
        with pytest.raises(ValueError):
            fit_scaling(family[:2], CIELITO)

    def test_distinct_sizes_required(self, family):
        with pytest.raises(ValueError):
            fit_scaling([family[0], family[0], family[1]], CIELITO)
