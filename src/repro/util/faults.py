"""Deterministic chaos harness for the resilient study executor.

A :class:`FaultPlan` is a seeded, serializable list of faults keyed by
record index; the executor's worker entrypoints call
:func:`maybe_inject` at fixed hook points (record start, per-engine,
cache read), and the plan decides — purely from ``(index, attempt,
engine)`` — whether a fault fires.  Because nothing is sampled at
injection time, the same plan produces the same failures in serial and
parallel runs, which is what lets ``tests/test_resilience.py`` prove
every recovery path deterministically.

Fault kinds
-----------

``crash``
    Simulated worker crash.  Inside a pool worker process the process
    exits hard (the parent sees the pipe close and retries the record
    on a replacement worker); in-process it raises a *transient*
    :class:`FaultInjected`.  Fires while ``attempt < fail_attempts``.
``flaky``
    Transient in-process failure while ``attempt < fail_attempts`` —
    the flaky-then-ok pattern for exercising retry with backoff.
``slow``
    Sleeps ``delay`` seconds, then proceeds normally (latency, not
    failure — the record must still complete within its budget).
``hang``
    Hard worker hang: sleeps until the parent watchdog kills the
    process (capped at ``HANG_CAP`` seconds as a CI backstop).  Scope
    it with ``engine`` so the degraded retry no longer hangs.
``engine-hang``
    Cooperative engine hang: spins inside the named engine until the
    record's wall budget is exhausted, then raises
    :class:`~repro.util.budget.WallClockExceeded` — exactly what the
    engine's own deadline check produces for a genuinely stuck replay.
``corrupt-cache``
    Scribbles garbage over the record's cache file (if present) before
    the cache read, exercising corruption detection and recompute.

Network fault kinds (the :mod:`repro.serve` chaos surface)
----------------------------------------------------------

For the kinds below, ``index`` selects a *worker*, not a record: the
serve worker agent calls the ``"net"`` hook before every frame it
sends (``attempt`` = its connection generation, ``engine`` = the
message type) and the ``"net-connect"`` hook before every connection
attempt (``attempt`` = its connect counter).

``conn-drop``
    Severs the worker's established connection (raises
    :class:`ConnectionResetError` at the send) while
    ``attempt < fail_attempts``.  Scope with ``engine`` (a message
    type such as ``"result"``) to drop at a precise protocol point —
    e.g. after computing a record but before delivering it, which
    exercises the reconnect-and-resend outbox path.
``partition``
    The coordinator is unreachable: connection attempts raise
    :class:`ConnectionRefusedError` while ``attempt < fail_attempts``,
    forcing the agent through its seeded reconnect backoff.
``slow-socket``
    Sleeps ``delay`` seconds before each send while armed (latency,
    not failure — heartbeats and results still arrive, late).
``kill-worker``
    SIGKILLs the serve worker process at the ``"record"`` hook while
    ``lease < fail_attempts`` — the worker dies mid-record without
    unwinding, its heartbeats stop, and the coordinator must reclaim
    the lease and reassign the spec.  Keyed by record ``index``; only
    fires inside a serve worker process (``REPRO_SERVE_WORKER=1``),
    so the reassigned attempt (a later lease generation) and any
    local-fallback execution survive.

Activation: point the ``REPRO_FAULT_PLAN`` environment variable at a
plan JSON file (worker processes inherit it), or use the
:func:`fault_plan_env` context manager in tests.
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Sequence, Tuple, Union

from repro.util.budget import WallClockExceeded

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjected",
    "active_plan",
    "maybe_inject",
    "fault_plan_env",
]

#: Environment variable naming the active fault-plan file.
ENV_VAR = "REPRO_FAULT_PLAN"

#: Recognized fault kinds.
FAULT_KINDS = (
    "crash",
    "flaky",
    "slow",
    "hang",
    "engine-hang",
    "corrupt-cache",
    "conn-drop",
    "partition",
    "slow-socket",
    "kill-worker",
)

#: Hard cap on how long a ``hang`` fault sleeps before giving up and
#: raising, so a missing watchdog cannot deadlock a test run.
HANG_CAP = 60.0

#: Cap on how long an ``engine-hang`` fault spins past its wall budget.
_ENGINE_HANG_CAP = 5.0


class FaultInjected(RuntimeError):
    """An injected fault fired (``transient`` steers the retry policy)."""

    def __init__(self, message: str, transient: bool = True, kind: str = ""):
        super().__init__(message)
        self.transient = transient
        self.kind = kind


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``index`` selects the record; ``engine`` (optional) scopes the
    fault — record-level faults fire only while that engine is still in
    the attempt's engine set (so the degradation ladder escapes them),
    and ``engine-hang`` fires only in that engine.  ``fail_attempts``
    is how many attempts *at each ladder step* the fault survives
    (a large value makes the fault permanent-until-quarantine).
    """

    index: int
    kind: str
    engine: str = ""
    fail_attempts: int = 1
    delay: float = 0.05

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (known: {FAULT_KINDS})")

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "engine": self.engine,
            "fail_attempts": self.fail_attempts,
            "delay": self.delay,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpec":
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of planned faults."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def for_index(self, index: int) -> Tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.index == index)

    def to_json(self) -> dict:
        return {"seed": self.seed, "faults": [f.to_json() for f in self.faults]}

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            faults=tuple(FaultSpec.from_json(f) for f in data.get("faults", [])),
        )

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True))
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_json(json.loads(Path(path).read_text()))


def active_plan() -> Optional[FaultPlan]:
    """The plan named by ``REPRO_FAULT_PLAN``, or None.

    Read on every call (plans are tiny) so worker processes and tests
    never see a stale cache.
    """
    path = os.environ.get(ENV_VAR)
    if not path:
        return None
    return FaultPlan.read(path)


def _in_worker_process() -> bool:
    return os.environ.get("REPRO_IN_WORKER") == "1"


def _in_serve_worker() -> bool:
    return os.environ.get("REPRO_SERVE_WORKER") == "1"


def maybe_inject(
    stage: str,
    index: int,
    attempt: int = 0,
    engine: str = "",
    engines: Sequence[str] = (),
    wall_remaining: Optional[float] = None,
    cache_path: Optional[Union[str, Path]] = None,
    lease: int = 0,
) -> None:
    """Fire any planned fault matching this hook point.

    ``stage`` is ``"record"`` (worker entry, with the attempt's engine
    set), ``"engine"`` (inside the measurement loop, per engine),
    ``"cache"`` (just before a cache read, with the file path),
    ``"net"`` (serve worker, before sending a frame; ``engine`` is the
    message type) or ``"net-connect"`` (serve worker, before a connect
    attempt).  ``lease`` is the serve lease generation the attempt runs
    under (0 for local runs).  Does nothing when no plan is active.
    """
    plan = active_plan()
    if plan is None:
        return
    for fault in plan.for_index(index):
        _fire(fault, stage, attempt, engine, engines, wall_remaining, cache_path, lease)


def _fire(
    fault: FaultSpec,
    stage: str,
    attempt: int,
    engine: str,
    engines: Sequence[str],
    wall_remaining: Optional[float],
    cache_path: Optional[Union[str, Path]],
    lease: int = 0,
) -> None:
    armed = attempt < fault.fail_attempts
    if stage == "record":
        if fault.kind == "kill-worker":
            # SIGKILL: no unwinding, no goodbye — heartbeats just stop.
            if lease < fault.fail_attempts and _in_serve_worker():
                os.kill(os.getpid(), signal.SIGKILL)
            return
        if fault.engine and fault.engine not in engines:
            return  # the ladder degraded past this fault's engine
        if fault.kind == "crash" and armed:
            if _in_worker_process():
                os._exit(43)
            raise FaultInjected(
                f"injected worker crash (attempt {attempt})", transient=True, kind="crash"
            )
        if fault.kind == "flaky" and armed:
            raise FaultInjected(
                f"injected flaky failure (attempt {attempt})", transient=True, kind="flaky"
            )
        if fault.kind == "slow":
            time.sleep(fault.delay)
        if fault.kind == "hang" and armed:
            deadline = time.monotonic() + HANG_CAP
            while time.monotonic() < deadline:
                time.sleep(0.05)
            raise RuntimeError(
                f"hang fault survived {HANG_CAP}s without a watchdog kill"
            )  # pragma: no cover - only reached if the watchdog is broken
    elif stage == "engine":
        if fault.kind == "engine-hang" and armed and fault.engine == engine:
            budget = wall_remaining if wall_remaining is not None else 0.0
            spin_until = time.monotonic() + min(max(budget, 0.0), _ENGINE_HANG_CAP)
            while time.monotonic() < spin_until:
                time.sleep(0.01)
            raise WallClockExceeded(
                elapsed=max(budget, 0.0), budget=max(budget, 0.0), sim_time_reached=0.0
            )
    elif stage == "net":
        if fault.engine and fault.engine != engine:
            return  # scoped to a different message type
        if fault.kind == "conn-drop" and armed:
            raise ConnectionResetError(
                f"injected connection drop (generation {attempt})"
            )
        if fault.kind == "slow-socket" and armed:
            time.sleep(fault.delay)
    elif stage == "net-connect":
        if fault.kind == "partition" and armed:
            raise ConnectionRefusedError(
                f"injected partition (connect attempt {attempt})"
            )
    elif stage == "cache":
        if fault.kind == "corrupt-cache" and armed and cache_path is not None:
            path = Path(cache_path)
            if path.is_file():
                payload = bytearray(path.read_bytes())
                # Deterministic scribble: truncate and flip the tail.
                garbage = bytes(b ^ 0xFF for b in payload[: max(8, len(payload) // 2)])
                path.write_bytes(garbage)


@contextmanager
def fault_plan_env(plan: FaultPlan, directory: Union[str, Path]) -> Iterator[Path]:
    """Write ``plan`` under ``directory`` and activate it via the env var.

    Worker processes started inside the ``with`` block inherit the
    variable; the previous value is restored on exit.
    """
    path = plan.write(Path(directory) / "fault_plan.json")
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = str(path)
    try:
        yield path
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
