"""Content-addressed identities for the per-record result cache.

The executor (:mod:`repro.core.executor`) memoizes one measurement
record per (trace, machine, engine suite, code version) combination.
Each component gets a stable hexadecimal digest here:

* :func:`trace_fingerprint` — SHA-256 of the trace's canonical binary
  serialization.  Both trace formats round-trip losslessly (hex floats
  in ASCII, fixed-width records in binary), so the fingerprint is
  invariant under save/load cycles and changes whenever any event
  field, communicator, flag or metadata entry changes.
* :func:`machine_config_hash` — SHA-256 of the machine dataclass's
  sorted JSON image; any network or node parameter change invalidates
  cached records for that machine.
* :func:`code_version` — SHA-256 over the *measurement stack* sources
  (modeling, simulation, collectives, topologies, machines, feature
  extraction and the pipeline itself).  Workload generators are
  deliberately excluded: editing one generator changes the fingerprints
  of the traces it produces, so only those records recompute, while a
  change to any replay engine invalidates everything it measured.
* :func:`record_cache_key` — the composite digest naming the cache
  file for one study record.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace -> util)
    from repro.machines.config import MachineConfig
    from repro.trace.trace import TraceSet

__all__ = [
    "trace_fingerprint",
    "machine_config_hash",
    "code_version",
    "workloads_code_version",
    "analysis_code_version",
    "record_cache_key",
]

#: Subtrees / modules of ``repro`` whose source participates in
#: :func:`code_version`.  Everything that can change a measurement —
#: and nothing that only changes which traces get generated.
MEASUREMENT_STACK = (
    "core/difftotal.py",
    "core/pipeline.py",
    "collectives",
    "machines",
    "mfact",
    "sensitivity",
    "sim",
    "topology",
    "trace/events.py",
    "trace/features.py",
    "trace/trace.py",
)

#: Sources whose edits change what the static analyzers compute: the
#: whole :mod:`repro.analysis` package.  Hashed by
#: :func:`analysis_code_version` into the incremental lint cache key
#: (:mod:`repro.analysis.interproc`), so touching any rule, the CFG
#: builder or the summary machinery cold-starts ``.cache/lint/``.
ANALYSIS_STACK = ("analysis",)

#: Sources that determine what trace a :class:`TraceSpec` builds into —
#: the generators plus the seeded RNG machinery they draw from.  Hashed
#: by :func:`workloads_code_version` for the executor's spec-level
#: cache index: editing any of these invalidates the index (forcing a
#: rebuild-and-fingerprint pass), while records of traces that come
#: out unchanged still hit the fingerprint-keyed layer.
WORKLOADS_STACK = ("workloads", "util/rng.py")


def _hash_sources(entries) -> str:
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for entry in entries:
        path = package_root / entry
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            digest.update(str(file.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(file.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()


def trace_fingerprint(trace: "TraceSet") -> str:
    """Content hash of a trace (hex digest).

    Computed over the canonical binary serialization
    (:func:`repro.trace.binary.dumps_binary`), which covers every op
    field including measured timestamps, the communicator table, flags
    and metadata.  Round-tripping through either trace format preserves
    the fingerprint bit-for-bit.
    """
    from repro.trace.binary import dumps_binary

    return hashlib.sha256(dumps_binary(trace)).hexdigest()


def machine_config_hash(machine: "MachineConfig") -> str:
    """Content hash of a machine configuration (hex digest)."""
    image = json.dumps(asdict(machine), sort_keys=True)
    return hashlib.sha256(image.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hash of the measurement-stack sources (hex digest, cached).

    Editing any replay engine, cost model, topology, machine preset or
    the pipeline itself yields a new version and therefore a cold
    cache; editing workload generators does not (their effect is
    already captured by the trace fingerprint).
    """
    return _hash_sources(MEASUREMENT_STACK)


@lru_cache(maxsize=1)
def workloads_code_version() -> str:
    """Hash of the workload-generation sources (hex digest, cached)."""
    return _hash_sources(WORKLOADS_STACK)


@lru_cache(maxsize=1)
def analysis_code_version() -> str:
    """Hash of the static-analysis sources (hex digest, cached)."""
    return _hash_sources(ANALYSIS_STACK)


def record_cache_key(
    fingerprint: str,
    machine_hash: str,
    engines: Sequence[str],
    version: str,
) -> str:
    """Composite cache key for one study record (hex digest).

    ``engines`` is the ordered tuple of simulation engine names the
    record covers (MFACT always runs and is implied by ``version``).
    """
    digest = hashlib.sha256()
    for part in (fingerprint, machine_hash, "+".join(engines), version):
        digest.update(part.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()
