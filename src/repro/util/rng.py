"""Deterministic random-stream management.

Every stochastic component in the reproduction (workload generators,
ground-truth synthesis, Monte Carlo cross-validation) draws from a named
substream derived from a single experiment seed, so that the full corpus
and every experiment are bit-reproducible while independent components
remain statistically independent.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["DEFAULT_SEED", "substream", "spawn"]

#: Seed used by the published experiment pipeline unless overridden.
DEFAULT_SEED = 20180521  # IPPS 2018 conference date.


def _mix(seed: int, *names: object) -> int:
    """Hash a root seed with a label path into a 64-bit stream seed."""
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest()[:8], "little")


def substream(seed: int, *names: object) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for a label path.

    ``substream(seed, "corpus", 17)`` always yields the same stream, and
    differs from any other label path with overwhelming probability.
    """
    return np.random.default_rng(_mix(seed, *names))


def spawn(rng_or_seed, *names: object) -> np.random.Generator:
    """Derive a child stream from either a seed or a parent description.

    Accepts an ``int`` seed (delegates to :func:`substream`) so call sites
    can thread plain seeds through their APIs without constructing
    generators eagerly.
    """
    if isinstance(rng_or_seed, (int, np.integer)):
        return substream(int(rng_or_seed), *names)
    raise TypeError(
        "spawn() expects an integer seed; pass named substreams explicitly "
        "instead of sharing Generator objects between components"
    )
