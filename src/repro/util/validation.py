"""Argument-validation helpers used at public API boundaries."""

from __future__ import annotations

__all__ = ["require", "check_positive", "check_nonnegative", "check_rank"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive; return it."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0; return it."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_rank(rank: int, nranks: int, name: str = "rank") -> int:
    """Validate that ``rank`` is a valid process id for ``nranks`` processes."""
    if not isinstance(rank, (int,)) or isinstance(rank, bool):
        raise TypeError(f"{name} must be an int, got {type(rank).__name__}")
    if not 0 <= rank < nranks:
        raise ValueError(f"{name} must be in [0, {nranks}), got {rank}")
    return rank
