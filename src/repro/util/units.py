"""Unit parsing and conversion helpers.

All internal quantities in :mod:`repro` use SI base units:

* time in **seconds**,
* data sizes in **bytes**,
* bandwidth in **bytes per second**.

The paper quotes network parameters in mixed engineering units
(``10Gbps``, ``2,500ns``); this module converts between those
spellings and the internal representation.
"""

from __future__ import annotations

import re

__all__ = [
    "GBPS",
    "MBPS",
    "KIB",
    "MIB",
    "NS",
    "US",
    "MS",
    "gbps_to_bytes_per_s",
    "bytes_per_s_to_gbps",
    "ns_to_s",
    "s_to_ns",
    "parse_bandwidth",
    "parse_latency",
    "parse_size",
    "format_time",
]

#: One gigabit per second, in bytes per second.
GBPS = 1e9 / 8.0
#: One megabit per second, in bytes per second.
MBPS = 1e6 / 8.0
#: One kibibyte, in bytes.
KIB = 1024
#: One mebibyte, in bytes.
MIB = 1024 * 1024
#: One nanosecond, in seconds.
NS = 1e-9
#: One microsecond, in seconds.
US = 1e-6
#: One millisecond, in seconds.
MS = 1e-3

_BANDWIDTH_UNITS = {
    "bps": 1.0 / 8.0,
    "kbps": 1e3 / 8.0,
    "mbps": 1e6 / 8.0,
    "gbps": 1e9 / 8.0,
    "tbps": 1e12 / 8.0,
    "b/s": 1.0,
    "kb/s": 1e3,
    "mb/s": 1e6,
    "gb/s": 1e9,
}

_TIME_UNITS = {
    "s": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "ns": 1e-9,
}

_SIZE_UNITS = {
    "b": 1,
    "kb": 1000,
    "kib": 1024,
    "mb": 1000**2,
    "mib": 1024**2,
    "gb": 1000**3,
    "gib": 1024**3,
}

_QUANTITY_RE = re.compile(r"^\s*([0-9][0-9,]*\.?[0-9]*(?:[eE][+-]?[0-9]+)?)\s*([a-zA-Z/]+)\s*$")


def _parse(text: str, units: dict, kind: str) -> float:
    match = _QUANTITY_RE.match(text)
    if not match:
        raise ValueError(f"cannot parse {kind} quantity {text!r}")
    value = float(match.group(1).replace(",", ""))
    unit = match.group(2).lower()
    if unit not in units:
        known = ", ".join(sorted(units))
        raise ValueError(f"unknown {kind} unit {unit!r} in {text!r} (known: {known})")
    return value * units[unit]


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert gigabits per second to bytes per second."""
    return gbps * GBPS


def bytes_per_s_to_gbps(bps: float) -> float:
    """Convert bytes per second to gigabits per second."""
    return bps / GBPS


def ns_to_s(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns * NS


def s_to_ns(s: float) -> float:
    """Convert seconds to nanoseconds."""
    return s / NS


def parse_bandwidth(text: str) -> float:
    """Parse a bandwidth string such as ``"10Gbps"`` or ``"24 GB/s"``.

    Lower-case ``b`` means bits, upper-case handled case-insensitively by
    unit name: ``bps`` suffixes are bits per second, ``B/s`` suffixes are
    bytes per second.  Returns bytes per second.
    """
    return _parse(text, _BANDWIDTH_UNITS, "bandwidth")


def parse_latency(text: str) -> float:
    """Parse a latency string such as ``"2,500ns"`` or ``"1.3us"`` to seconds."""
    return _parse(text, _TIME_UNITS, "latency")


def parse_size(text: str) -> int:
    """Parse a data-size string such as ``"4KiB"`` or ``"1MB"`` to bytes."""
    return int(round(_parse(text, _SIZE_UNITS, "size")))


def format_time(seconds: float) -> str:
    """Render a duration with an appropriate engineering unit."""
    if seconds != seconds:  # NaN
        return "nan"
    magnitude = abs(seconds)
    if magnitude >= 1.0 or magnitude == 0.0:
        return f"{seconds:.3f}s"
    if magnitude >= 1e-3:
        return f"{seconds / 1e-3:.3f}ms"
    if magnitude >= 1e-6:
        return f"{seconds / 1e-6:.3f}us"
    return f"{seconds / 1e-9:.1f}ns"
