"""Run-manifest schema for the parallel study executor.

Every executor run emits one :class:`RunManifest`: a JSON document with
one :class:`ManifestEntry` per attempted record, capturing what the run
actually did — cache hit or miss, wall-clock cost, which worker
processed it, and a diagnostic for every failure.  The manifest is the
observability surface of the study pipeline: a warm-cache re-run shows
100% hits, a crashed replay shows up as a ``failed`` entry instead of
killing the study, and an interrupted run's manifest lists exactly the
records that still completed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Union

__all__ = ["MANIFEST_VERSION", "ManifestEntry", "RunManifest"]

#: Schema version stamped into every manifest file.
MANIFEST_VERSION = 1

#: Allowed per-record statuses.
_STATUSES = ("ok", "failed")


@dataclass
class ManifestEntry:
    """Outcome of one record's measurement attempt.

    ``status`` is ``"ok"`` (a record was produced, freshly computed or
    from cache) or ``"failed"`` (the replay raised; ``error`` holds the
    diagnostic).  ``cache_hit`` distinguishes the two ``ok`` paths.
    ``worker`` is the operating-system pid of the process that handled
    the record (the parent pid on the serial path).
    """

    name: str
    spec_index: int
    key: str
    status: str
    cache_hit: bool
    walltime: float
    worker: int
    error: str = ""

    def __post_init__(self):
        if self.status not in _STATUSES:
            raise ValueError(f"status must be one of {_STATUSES}, got {self.status!r}")


@dataclass
class RunManifest:
    """Everything one executor run did, record by record."""

    seed: Optional[int] = None
    jobs: int = 1
    engines: List[str] = field(default_factory=list)
    code_version: str = ""
    interrupted: bool = False
    entries: List[ManifestEntry] = field(default_factory=list)

    # -- aggregates --------------------------------------------------------

    @property
    def hits(self) -> int:
        """Records served from the cache."""
        return sum(1 for e in self.entries if e.status == "ok" and e.cache_hit)

    @property
    def misses(self) -> int:
        """Records computed fresh."""
        return sum(1 for e in self.entries if e.status == "ok" and not e.cache_hit)

    @property
    def failures(self) -> List[ManifestEntry]:
        """Entries whose measurement raised."""
        return [e for e in self.entries if e.status == "failed"]

    @property
    def total_walltime(self) -> float:
        """Summed per-record wall-clock time (CPU-seconds across workers)."""
        return sum(e.walltime for e in self.entries)

    def hit_rate(self) -> float:
        """Fraction of successful records served from cache (0 when empty)."""
        ok = self.hits + self.misses
        return self.hits / ok if ok else 0.0

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        out = asdict(self)
        out["version"] = MANIFEST_VERSION
        out["summary"] = {
            "records": len(self.entries),
            "hits": self.hits,
            "misses": self.misses,
            "failed": len(self.failures),
            "total_walltime": self.total_walltime,
        }
        return out

    @classmethod
    def from_json(cls, data: dict) -> "RunManifest":
        version = data.get("version", MANIFEST_VERSION)
        if version != MANIFEST_VERSION:
            raise ValueError(f"unsupported manifest version {version}")
        return cls(
            seed=data.get("seed"),
            jobs=data.get("jobs", 1),
            engines=list(data.get("engines", [])),
            code_version=data.get("code_version", ""),
            interrupted=bool(data.get("interrupted", False)),
            entries=[ManifestEntry(**e) for e in data.get("entries", [])],
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Write the manifest as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True))
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "RunManifest":
        """Load a manifest written by :meth:`write`."""
        return cls.from_json(json.loads(Path(path).read_text()))
