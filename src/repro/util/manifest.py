"""Run-manifest schema for the parallel study executor.

Every executor run emits one :class:`RunManifest`: a JSON document with
one :class:`ManifestEntry` per attempted record, capturing what the run
actually did — cache hit or miss, wall-clock cost, which worker
processed it, and a diagnostic for every failure.  The manifest is the
observability surface of the study pipeline: a warm-cache re-run shows
100% hits, a crashed replay shows up as a ``failed`` entry instead of
killing the study, and an interrupted run's manifest lists exactly the
records that still completed.

Schema v2 adds the resilience surface: per-entry attempt counts, the
backoff delays actually waited, the engine-degradation ladder step and
``degraded_from`` annotation, corrupt-cache detection
(``cache_corrupt``), quarantine status, and — at the run level — the
serialized :class:`~repro.core.resilience.RetryPolicy` plus the record
wall/event budgets the run enforced.

Schema v3 adds the telemetry surface: a run-level ``metrics`` block
(the merged :class:`~repro.obs.MetricsSnapshot` JSON image when the run
collected metrics) and per-entry ``compute_walltime`` — wall seconds
spent actually measuring, cache-hit attempts excluded — alongside the
all-attempts ``walltime`` total.

Schema v4 adds the distributed-service surface: per-entry ``worker_id``
(the logical id of the :mod:`repro.serve` worker that produced the
record; empty for local runs) and ``lease`` (the lease generation under
which the record completed — 0 on the first assignment, higher when a
dead worker's lease had to be reclaimed and reassigned), plus the
run-level ``quarantine_pruned`` count of stale quarantine entries
dropped when the registry was opened.

Older manifests still load: any field absent from the file gets its
dataclass default, unknown (newer) fields are ignored with a
:class:`ManifestFieldWarning` naming them, and a truncated or garbled
file raises the typed :class:`ManifestError` rather than leaking a raw
:class:`json.JSONDecodeError`.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "MANIFEST_VERSION",
    "ManifestError",
    "ManifestFieldWarning",
    "ManifestEntry",
    "RunManifest",
]

#: Schema version stamped into every manifest file.
MANIFEST_VERSION = 4

#: Versions :meth:`RunManifest.from_json` accepts (older fields default).
_READABLE_VERSIONS = (1, 2, 3, 4)

#: Allowed per-record statuses.
_STATUSES = ("ok", "failed", "quarantined")


class ManifestError(ValueError):
    """A manifest file or document could not be loaded.

    Raised for unreadable files, truncated/garbled JSON, unsupported
    schema versions and structurally invalid documents — one typed
    error for callers to catch, whatever the underlying cause.
    """


class ManifestFieldWarning(UserWarning):
    """A readable manifest carried fields this code version doesn't know.

    Emitted (once per load, naming the fields) instead of crashing, so
    an older deployment can still read manifests written by a newer
    coordinator — the forward-compatibility contract of the schema.
    """


@dataclass
class ManifestEntry:
    """Outcome of one record's measurement, across all its attempts.

    ``status`` is ``"ok"`` (a record was produced, freshly computed or
    from cache), ``"failed"`` (every recovery path was exhausted or the
    failure was permanent; ``error`` holds the diagnostic) or
    ``"quarantined"`` (skipped because a previous run quarantined the
    trace; ``error`` holds the reason).  ``cache_hit`` distinguishes
    the two ``ok`` paths and ``cache_corrupt`` marks entries whose
    cached file failed checksum verification and was recomputed.
    ``attempts`` counts measurement attempts (1 = first try succeeded),
    ``backoffs`` the retry delays waited, ``ladder_step``/
    ``degraded_from`` the engine-degradation state of the final
    attempt, and ``failure_kind`` the classification of the last
    failure (``"transient"``, ``"budget"``, ``"timeout"`` or
    ``"permanent"``).  ``worker`` is the operating-system pid of the
    process that handled the record (the parent pid on the serial
    path); ``walltime`` sums all attempts, while ``compute_walltime``
    sums only non-cache-hit attempts — the number warm-vs-cold speedup
    comparisons must use (v1/v2 manifests default it to 0).
    ``worker_id`` is the logical :mod:`repro.serve` worker that produced
    the record (empty for local runs) and ``lease`` the lease generation
    it completed under (> 0 means at least one dead worker's lease was
    reclaimed for this spec); both default for pre-v4 manifests.
    """

    name: str
    spec_index: int
    key: str
    status: str
    cache_hit: bool
    walltime: float
    worker: int
    error: str = ""
    attempts: int = 1
    backoffs: List[float] = field(default_factory=list)
    ladder_step: int = 0
    degraded_from: str = ""
    failure_kind: str = ""
    cache_corrupt: bool = False
    quarantined: bool = False
    compute_walltime: float = 0.0
    worker_id: str = ""
    lease: int = 0

    def __post_init__(self):
        if self.status not in _STATUSES:
            raise ValueError(f"status must be one of {_STATUSES}, got {self.status!r}")

    @classmethod
    def from_json(cls, data: dict, unknown: Optional[Dict[str, bool]] = None) -> "ManifestEntry":
        """Build an entry from its JSON image, version-tolerantly.

        Fields an older manifest lacks take their defaults; fields a
        *newer* schema added are dropped instead of crashing the load —
        collected into ``unknown`` (a dict used as an ordered set) when
        the caller passes one (so :meth:`RunManifest.from_json` warns
        once for the whole file), warned about immediately otherwise.
        Missing required fields raise :class:`ManifestError`.
        """
        if not isinstance(data, dict):
            raise ManifestError(f"manifest entry must be an object, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        extra = sorted(set(data) - known)
        if extra:
            if unknown is not None:
                unknown.update(dict.fromkeys(extra, True))
            else:
                warnings.warn(
                    "ignoring unknown manifest entry field(s): " + ", ".join(extra),
                    ManifestFieldWarning,
                    stacklevel=2,
                )
        try:
            return cls(**{k: v for k, v in data.items() if k in known})
        except (TypeError, ValueError) as exc:
            raise ManifestError(f"invalid manifest entry: {exc}") from exc


@dataclass
class RunManifest:
    """Everything one executor run did, record by record."""

    seed: Optional[int] = None
    jobs: int = 1
    engines: List[str] = field(default_factory=list)
    code_version: str = ""
    interrupted: bool = False
    retry_policy: Optional[dict] = None
    record_timeout: Optional[float] = None
    event_budget: Optional[int] = None
    entries: List[ManifestEntry] = field(default_factory=list)
    #: Merged :class:`~repro.obs.MetricsSnapshot` JSON image when the
    #: run collected metrics; None otherwise (and for v1/v2 files).
    metrics: Optional[dict] = None
    #: Stale quarantine entries (written by an older code version)
    #: dropped when the registry was opened for this run (v4).
    quarantine_pruned: int = 0

    # -- aggregates --------------------------------------------------------

    @property
    def hits(self) -> int:
        """Records served from the cache."""
        return sum(1 for e in self.entries if e.status == "ok" and e.cache_hit)

    @property
    def misses(self) -> int:
        """Records computed fresh."""
        return sum(1 for e in self.entries if e.status == "ok" and not e.cache_hit)

    @property
    def failures(self) -> List[ManifestEntry]:
        """Entries whose measurement failed past every recovery path."""
        return [e for e in self.entries if e.status == "failed"]

    @property
    def quarantined(self) -> List[ManifestEntry]:
        """Entries skipped (or newly excluded) by the quarantine registry."""
        return [e for e in self.entries if e.quarantined]

    @property
    def degraded(self) -> List[ManifestEntry]:
        """Successful entries measured below ladder step 0."""
        return [e for e in self.entries if e.status == "ok" and e.degraded_from]

    @property
    def cache_corrupt(self) -> int:
        """Cache entries that failed verification and were recomputed."""
        return sum(1 for e in self.entries if e.cache_corrupt)

    @property
    def retries(self) -> int:
        """Total extra attempts beyond each record's first."""
        return sum(max(0, e.attempts - 1) for e in self.entries)

    @property
    def total_walltime(self) -> float:
        """Summed per-record wall-clock time (CPU-seconds across workers)."""
        return sum(e.walltime for e in self.entries)

    @property
    def compute_walltime(self) -> float:
        """Summed wall-clock spent actually measuring (cache hits excluded)."""
        return sum(e.compute_walltime for e in self.entries)

    def hit_rate(self) -> float:
        """Fraction of successful records served from cache (0 when empty)."""
        ok = self.hits + self.misses
        return self.hits / ok if ok else 0.0

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        out = asdict(self)
        out["version"] = MANIFEST_VERSION
        out["summary"] = {
            "records": len(self.entries),
            "hits": self.hits,
            "misses": self.misses,
            "failed": len(self.failures),
            "quarantined": len(self.quarantined),
            "degraded": len(self.degraded),
            "cache_corrupt": self.cache_corrupt,
            "retries": self.retries,
            "total_walltime": self.total_walltime,
            "compute_walltime": self.compute_walltime,
            "workers": sorted({e.worker_id for e in self.entries if e.worker_id}),
            "leases_reclaimed": sum(e.lease for e in self.entries),
        }
        return out

    @classmethod
    def from_json(cls, data: dict) -> "RunManifest":
        if not isinstance(data, dict):
            raise ManifestError(f"manifest must be a JSON object, got {type(data).__name__}")
        version = data.get("version", MANIFEST_VERSION)
        if version not in _READABLE_VERSIONS:
            raise ManifestError(f"unsupported manifest version {version!r}")
        entries = data.get("entries", [])
        if not isinstance(entries, list):
            raise ManifestError("manifest 'entries' must be a list")
        metrics = data.get("metrics")
        if metrics is not None and not isinstance(metrics, dict):
            raise ManifestError("manifest 'metrics' must be an object or null")
        known = {f.name for f in fields(cls)} | {"version", "summary"}
        unknown: Dict[str, bool] = dict.fromkeys(sorted(set(data) - known), True)
        loaded = cls(
            seed=data.get("seed"),
            jobs=data.get("jobs", 1),
            engines=list(data.get("engines", [])),
            code_version=data.get("code_version", ""),
            interrupted=bool(data.get("interrupted", False)),
            retry_policy=data.get("retry_policy"),
            record_timeout=data.get("record_timeout"),
            event_budget=data.get("event_budget"),
            entries=[ManifestEntry.from_json(e, unknown=unknown) for e in entries],
            metrics=metrics,
            quarantine_pruned=int(data.get("quarantine_pruned", 0)),
        )
        if unknown:
            warnings.warn(
                f"manifest (version {version}) carries unknown field(s) this "
                "code version ignores: " + ", ".join(sorted(unknown)),
                ManifestFieldWarning,
                stacklevel=2,
            )
        return loaded

    def write(self, path: Union[str, Path]) -> Path:
        """Write the manifest as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True))
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "RunManifest":
        """Load a manifest written by :meth:`write`.

        Unreadable files and truncated/garbled JSON raise
        :class:`ManifestError` (never a raw ``json.JSONDecodeError``).
        """
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ManifestError(f"cannot read manifest {path}: {exc}") from exc
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ManifestError(f"manifest {path} is not valid JSON: {exc}") from exc
        return cls.from_json(data)
