"""Resource budgets for bounded record measurement.

A :class:`Budget` caps what one measurement attempt may consume: wall
clock seconds and simulator events.  The discrete-event engine enforces
both cooperatively (:meth:`repro.sim.engine.EventEngine.run` checks the
event count on every event and the wall clock periodically), raising a
structured :class:`BudgetExceeded` subclass that the study executor
turns into an engine-degradation step instead of a lost record.

These types live in :mod:`repro.util` (not :mod:`repro.core.resilience`,
which re-exports them) so the simulation layer can raise them without
importing the study pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Budget",
    "BudgetExceeded",
    "EventBudgetExceeded",
    "WallClockExceeded",
]


@dataclass(frozen=True)
class Budget:
    """Per-attempt resource caps (``None`` means unbounded).

    ``wall_seconds`` bounds one measurement attempt's wall-clock time;
    ``events`` bounds the number of simulator events a single engine run
    may process.
    """

    wall_seconds: Optional[float] = None
    events: Optional[int] = None

    def bounded(self) -> bool:
        """Whether any cap is active."""
        return self.wall_seconds is not None or self.events is not None

    def to_json(self) -> dict:
        return {"wall_seconds": self.wall_seconds, "events": self.events}

    @classmethod
    def from_json(cls, data: Optional[dict]) -> "Budget":
        data = data or {}
        return cls(wall_seconds=data.get("wall_seconds"), events=data.get("events"))


class BudgetExceeded(RuntimeError):
    """A measurement attempt blew one of its resource budgets.

    Subclasses carry which budget tripped; remains a ``RuntimeError``
    so pre-budget callers catching runaway replays keep working.
    """


class EventBudgetExceeded(BudgetExceeded):
    """The engine processed more events than the budget allows.

    Carries the number of events executed and the virtual time reached
    when the budget tripped, so diagnostics (and the degradation ladder)
    can tell a runaway replay from one that was merely close to done.
    """

    def __init__(self, events_executed: int, sim_time_reached: float, budget: int):
        super().__init__(
            f"event budget of {budget} exceeded at t={sim_time_reached} "
            f"({events_executed} events executed)"
        )
        self.events_executed = events_executed
        self.sim_time_reached = sim_time_reached
        self.budget = budget


class WallClockExceeded(BudgetExceeded):
    """The engine ran past its wall-clock deadline.

    Raised by the engine's periodic cooperative check (and by model
    checkpoints inside long scheduling loops), carrying the elapsed
    seconds and the deadline that was missed.
    """

    def __init__(self, elapsed: float, budget: float, sim_time_reached: float = 0.0):
        super().__init__(
            f"wall-clock budget of {budget:.3f}s exceeded after {elapsed:.3f}s "
            f"(virtual time {sim_time_reached})"
        )
        self.elapsed = elapsed
        self.budget = budget
        self.sim_time_reached = sim_time_reached
