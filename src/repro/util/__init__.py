"""Shared utilities: units, deterministic RNG streams, statistics, validation."""

from repro.util.rng import DEFAULT_SEED, substream
from repro.util.stats import ecdf, fraction_within, percentile_of, trimmed_mean
from repro.util.units import (
    GBPS,
    KIB,
    MIB,
    NS,
    US,
    format_time,
    gbps_to_bytes_per_s,
    ns_to_s,
    parse_bandwidth,
    parse_latency,
    parse_size,
)
from repro.util.validation import check_nonnegative, check_positive, check_rank, require

__all__ = [
    "DEFAULT_SEED",
    "substream",
    "ecdf",
    "fraction_within",
    "percentile_of",
    "trimmed_mean",
    "GBPS",
    "KIB",
    "MIB",
    "NS",
    "US",
    "format_time",
    "gbps_to_bytes_per_s",
    "ns_to_s",
    "parse_bandwidth",
    "parse_latency",
    "parse_size",
    "check_nonnegative",
    "check_positive",
    "check_rank",
    "require",
]
