"""Shared utilities: units, RNG streams, statistics, validation,
content hashing and the executor run-manifest schema."""

from repro.util.fingerprint import (
    code_version,
    machine_config_hash,
    record_cache_key,
    trace_fingerprint,
)
from repro.util.manifest import MANIFEST_VERSION, ManifestEntry, RunManifest
from repro.util.rng import DEFAULT_SEED, substream
from repro.util.stats import ecdf, fraction_within, percentile_of, trimmed_mean
from repro.util.units import (
    GBPS,
    KIB,
    MIB,
    NS,
    US,
    format_time,
    gbps_to_bytes_per_s,
    ns_to_s,
    parse_bandwidth,
    parse_latency,
    parse_size,
)
from repro.util.validation import check_nonnegative, check_positive, check_rank, require

__all__ = [
    "DEFAULT_SEED",
    "substream",
    "code_version",
    "machine_config_hash",
    "record_cache_key",
    "trace_fingerprint",
    "MANIFEST_VERSION",
    "ManifestEntry",
    "RunManifest",
    "ecdf",
    "fraction_within",
    "percentile_of",
    "trimmed_mean",
    "GBPS",
    "KIB",
    "MIB",
    "NS",
    "US",
    "format_time",
    "gbps_to_bytes_per_s",
    "ns_to_s",
    "parse_bandwidth",
    "parse_latency",
    "parse_size",
    "check_nonnegative",
    "check_positive",
    "check_rank",
    "require",
]
