"""Small statistics helpers shared across the library.

These implement exactly the summaries the paper reports: trimmed means
(Section VI-B3 discards the top and bottom 2% of 100 cross-validation
runs), empirical CDFs (Figures 2 and 5), and "fraction within x" readings
off those CDFs.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["trimmed_mean", "ecdf", "fraction_within", "percentile_of"]


def trimmed_mean(values: Sequence[float], trim: float = 0.02) -> float:
    """Mean after discarding the top and bottom ``trim`` fraction of values.

    The paper reports "the trimmed mean that discards the top and bottom
    2% of the 100 test results"; with 100 values and ``trim=0.02`` this
    removes the 2 smallest and 2 largest observations.
    """
    if not 0.0 <= trim < 0.5:
        raise ValueError(f"trim must be in [0, 0.5), got {trim}")
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("trimmed_mean of empty sequence")
    cut = int(np.floor(trim * arr.size))
    trimmed = arr[cut : arr.size - cut] if cut else arr
    return float(trimmed.mean())


def ecdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative probabilities in (0, 1]."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("ecdf of empty sequence")
    probs = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, probs


def fraction_within(values: Sequence[float], threshold: float) -> float:
    """Fraction of values with ``value <= threshold`` (a CDF reading)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("fraction_within of empty sequence")
    return float(np.count_nonzero(arr <= threshold) / arr.size)


def percentile_of(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile_of of empty sequence")
    return float(np.percentile(arr, q))
