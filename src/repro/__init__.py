"""repro — reproduction of "Performance and Accuracy Trade-offs of HPC
Application Modeling and Simulation" (IPPS 2018).

The package provides:

* :mod:`repro.mfact` — MFACT-style trace-driven modeling (logical
  clocks, Hockney p2p, Thakur–Gropp collectives, multi-configuration
  replay, application classification);
* :mod:`repro.sim` — SST/Macro-style discrete-event simulation with
  packet, flow and packet-flow network models over torus / dragonfly /
  fat-tree topologies;
* :mod:`repro.workloads` — synthetic NPB + DOE trace generators, the
  235-trace study corpus, and ground-truth timestamp synthesis;
* :mod:`repro.core` — DIFFtotal, the study pipeline and the enhanced
  MFACT need-for-simulation predictor;
* :mod:`repro.analysis` — ``tracelint`` static trace analysis (no
  simulation needed) and ``srclint`` source-invariant linting;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import CIELITO, generate_npb, model_trace, simulate_trace
    trace = generate_npb("CG", 64, CIELITO, seed=1, compute_per_iter=0.01)
    report = model_trace(trace, CIELITO)          # MFACT modeling
    result = simulate_trace(trace, CIELITO)       # packet-flow simulation
    print(report.baseline_total_time, result.total_time)
"""

from repro.analysis import Diagnostic, LintReport, Severity, lint_trace
from repro.core import (
    DIFF_THRESHOLD,
    EnhancedMFACT,
    StudyRecord,
    diff_total,
    load_or_run_study,
    measure_trace,
    naive_heuristic_success,
    requires_simulation,
)
from repro.machines import CIELITO, EDISON, HOPPER, MachineConfig, get_machine
from repro.mfact import AppClass, ConfigGrid, MFACTReport, model_trace
from repro.sim import SimResult, simulate_trace
from repro.trace import Op, OpKind, TraceSet, read_trace, write_trace
from repro.workloads import (
    ProgramBuilder,
    build_corpus,
    build_trace,
    corpus_specs,
    generate_doe,
    generate_npb,
    synthesize_ground_truth,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DIFF_THRESHOLD",
    "EnhancedMFACT",
    "StudyRecord",
    "diff_total",
    "requires_simulation",
    "load_or_run_study",
    "measure_trace",
    "naive_heuristic_success",
    "MachineConfig",
    "CIELITO",
    "EDISON",
    "HOPPER",
    "get_machine",
    "AppClass",
    "ConfigGrid",
    "MFACTReport",
    "model_trace",
    "SimResult",
    "simulate_trace",
    "Op",
    "OpKind",
    "TraceSet",
    "read_trace",
    "write_trace",
    "ProgramBuilder",
    "build_corpus",
    "build_trace",
    "corpus_specs",
    "generate_npb",
    "generate_doe",
    "synthesize_ground_truth",
    "Diagnostic",
    "LintReport",
    "Severity",
    "lint_trace",
]
