"""DOE DesignForward / co-design workload generators.

Covers the extracted kernels (Big FFT, Crystal Router), mini-apps (AMG,
MiniFE, LULESH, CNS, CMC, Nekbone) and full applications (MultiGrid,
FillBoundary) used in the study, with the communication structures
their papers and trace analyses describe: halo exchanges, staged
hypercube routing, irregular AMR ghost exchange, spectral-element
gather/scatter, and large FFT transposes.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.machines.config import MachineConfig
from repro.util.rng import substream
from repro.workloads.base import ProgramBuilder
from repro.workloads.npb import _App, _imbalance_multipliers, _scaled
from repro.workloads.patterns import (
    butterfly_exchange,
    grid_dims,
    halo_exchange,
    irregular_exchange,
)

__all__ = ["DOE_APPS", "generate_doe"]


def _bigfft_round(b, machine, rng, nranks, scale, it):
    # 1-D decomposed 3-D FFT: one giant transpose each direction.
    per_pair = _scaled(40 * 1024, nranks, scale, 1.0)
    b.alltoall(per_pair)
    b.alltoall(per_pair)


def _cr_round(b, machine, rng, nranks, scale, it):
    # Crystal router: log p staged hypercube exchange with highly
    # variable per-stage payloads (routed aggregates).
    base = _scaled(224 * 1024, nranks, scale, 0.8)

    def stage_size(k):
        return max(1024, int(base * float(rng.lognormal(0.0, 0.55))) >> max(0, k - 2))

    butterfly_exchange(b, stage_size)


def _amg_round(b, machine, rng, nranks, scale, it):
    # Algebraic multigrid V-cycle: fine levels exchange moderate halos,
    # coarse levels send many small messages to wider neighbor sets.
    dims = grid_dims(nranks, 3)
    base = _scaled(96 * 1024, nranks, scale)
    halo_exchange(b, dims, base)
    halo_exchange(b, dims, max(256, base >> 3))
    irregular_exchange(
        b,
        rng,
        messages_per_rank=3.0,
        size_sampler=lambda r: int(r.lognormal(np.log(2048), 0.7)),
        locality=0.7,
    )
    b.allreduce(8)
    b.allreduce(8)


def _minife_round(b, machine, rng, nranks, scale, it):
    dims = grid_dims(nranks, 3)
    size = _scaled(64 * 1024, nranks, scale)
    halo_exchange(b, dims, size)
    b.allreduce(8)
    b.allreduce(8)


def _mgprod_round(b, machine, rng, nranks, scale, it):
    # Production MultiGrid: deeper cycle than NPB MG, residual checks.
    dims = grid_dims(nranks, 3)
    base = _scaled(160 * 1024, nranks, scale)
    for level in range(5):
        halo_exchange(b, dims, max(256, base >> (2 * level)))
    b.allreduce(16)


def _fb_round(b, machine, rng, nranks, scale, it):
    # AMR FillBoundary: bursty, irregular ghost-zone exchange.
    irregular_exchange(
        b,
        rng,
        messages_per_rank=14.0,
        size_sampler=lambda r: int(r.lognormal(np.log(_scaled(24 * 1024, b.nranks, scale)), 1.0)),
        locality=0.8,
    )
    if it % 2 == 0:
        b.allreduce(64)


def _lulesh_round(b, machine, rng, nranks, scale, it):
    dims = grid_dims(nranks, 3)
    size = _scaled(96 * 1024, nranks, scale)
    halo_exchange(b, dims, size)
    b.allreduce(8)  # dt computation
    b.allreduce(8)


def _cns_round(b, machine, rng, nranks, scale, it):
    dims = grid_dims(nranks, 3)
    size = _scaled(224 * 1024, nranks, scale)
    halo_exchange(b, dims, size)
    halo_exchange(b, dims, max(1024, size // 2))


def _cmc_round(b, machine, rng, nranks, scale, it):
    # Monte Carlo: nearly no communication inside a step.
    if it % 3 == 2:
        b.allreduce(128)


def _cmc_final(b, machine, rng, nranks, scale):
    b.reduce(4096, root=0)
    b.barrier()


def _nekbone_round(b, machine, rng, nranks, scale, it):
    # Spectral-element CG: gather/scatter halo plus dot products.
    dims = grid_dims(nranks, 3)
    size = _scaled(20 * 1024, nranks, scale, 0.4)
    halo_exchange(b, dims, size)
    b.allreduce(8)
    halo_exchange(b, dims, size)
    b.allreduce(8)


DOE_APPS: Dict[str, _App] = {
    "BIGFFT": _App("BigFFT", iters=2, emit_round=_bigfft_round),
    "CR": _App("CR", iters=4, emit_round=_cr_round),
    "AMG": _App("AMG", iters=4, emit_round=_amg_round),
    "MINIFE": _App("MiniFE", iters=8, emit_round=_minife_round),
    "MGPROD": _App("MultiGrid", iters=4, emit_round=_mgprod_round),
    "FB": _App("FillBoundary", iters=5, emit_round=_fb_round),
    "LULESH": _App("LULESH", iters=8, emit_round=_lulesh_round),
    "CNS": _App("CNS", iters=5, emit_round=_cns_round),
    "CMC": _App("CMC", iters=9, emit_round=_cmc_round, finalize=_cmc_final),
    "NEKBONE": _App("Nekbone", iters=10, emit_round=_nekbone_round),
}


def generate_doe(
    app: str,
    nranks: int,
    machine: MachineConfig,
    seed: int,
    scale: float = 1.0,
    compute_per_iter: float = 0.0,
    imbalance: float = 0.0,
    ranks_per_node: int = 16,
    use_threads: bool = False,
    use_comm_split: bool = False,
    name: str = None,
    iters: int = None,
):
    """Build one DOE application trace (same contract as ``generate_npb``)."""
    key = app.upper().replace("-", "")
    try:
        spec = DOE_APPS[key]
    except KeyError:
        known = ", ".join(sorted(DOE_APPS))
        raise ValueError(f"unknown DOE app {app!r} (known: {known})") from None
    rng = substream(seed, "doe", key, nranks)
    trace_name = name or f"{spec.name.lower()}.{nranks}.{machine.name}.s{seed % 1000}"
    b = ProgramBuilder(nranks, spec.name, trace_name, ranks_per_node=ranks_per_node)
    b.uses_threads = use_threads
    if use_comm_split:
        half = max(1, nranks // 2)
        b.add_comm(tuple(range(half)))
        b.add_comm(tuple(range(half, nranks)))
    mult = _imbalance_multipliers(nranks, imbalance, rng)
    if spec.setup:
        spec.setup(b, machine, rng, nranks, scale)
    niters = iters if iters is not None else spec.iters
    for it in range(niters):
        # Jitter is drawn unconditionally so the RNG stream (and hence
        # the traffic) is identical across calibration passes that only
        # change the compute budget.
        jitter = rng.normal(1.0, 0.02, size=nranks).clip(0.8, 1.2)
        if compute_per_iter > 0:
            for rank in range(nranks):
                b.compute(rank, compute_per_iter * mult[rank] * jitter[rank])
        spec.emit_round(b, machine, rng, nranks, scale, it)
    if spec.finalize:
        spec.finalize(b, machine, rng, nranks, scale)
    b.barrier()
    b.metadata.update(
        app=spec.name,
        suite="DOE",
        scale=scale,
        imbalance=imbalance,
        iters=niters,
        seed=seed,
    )
    return b.build(machine=machine.name)
