"""The 235-trace study corpus (Section V-A, Table I).

Builds the full trace set used by every experiment: 101 NPB runs and
134 DOE runs across the three machines, with rank counts drawn from an
exact Table Ia multiset (72 runs at 64 ranks, ..., 16 runs above 1024)
and per-instance communication-intensity targets spread over Table Ib's
bins.  Exactly 19 traces are multi-threaded (SST/Macro 3.0's packet
engine fails on them → 216 packet completions) and a further 54 use
complex communicator grouping (flow engine fails on both → 162 flow
completions); the packet-flow engine handles all 235.

Each trace is produced by a two-pass calibration: the generator first
emits communication only, a single-configuration MFACT replay prices
it, and the computation budget needed to hit the instance's
communication-fraction target is inserted on the second pass.  The
ground-truth synthesizer then stamps measured timestamps.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.machines.presets import get_machine
from repro.mfact.hockney import ConfigGrid
from repro.mfact.logical_clock import LogicalClockReplay
from repro.trace.trace import TraceSet
from repro.util.rng import DEFAULT_SEED, substream
from repro.workloads.doe import DOE_APPS, generate_doe
from repro.workloads.npb import NPB_APPS, generate_npb
from repro.workloads.synthesis import synthesize_ground_truth

__all__ = [
    "TraceSpec",
    "corpus_specs",
    "mini_corpus_specs",
    "build_trace",
    "build_corpus",
    "CORPUS_SIZE",
]

CORPUS_SIZE = 235

#: Exact Table Ia rank-count multiset (value -> number of traces).
RANK_POOL: Dict[int, int] = {
    64: 72,
    96: 9,
    128: 9,
    192: 30,
    256: 50,
    384: 6,
    512: 6,
    768: 18,
    1024: 19,
    1152: 6,
    1296: 5,
    1728: 5,
}

_MACHINE_CYCLE = ("cielito", "edison", "hopper")


@dataclass(frozen=True)
class TraceSpec:
    """Everything needed to deterministically rebuild one corpus trace."""

    index: int
    app: str
    suite: str  # "NPB" | "DOE"
    nranks: int
    machine: str
    seed: int
    scale: float
    comm_target: float  # target fraction of time in MPI
    imbalance: float
    ranks_per_node: int
    iters: Optional[int] = None
    use_threads: bool = False
    use_comm_split: bool = False
    mapping: str = "block"

    @property
    def name(self) -> str:
        return f"{self.app.lower()}.{self.nranks}.{self.machine}.i{self.index:03d}"


@dataclass
class _AppPlan:
    app: str
    suite: str
    count: int
    # Rank values in preference order (allocator falls back to any left).
    prefer: Tuple[int, ...]
    # Cycled per instance: (comm_target, imbalance).
    profiles: Tuple[Tuple[float, float], ...]
    # Scale shrinks as ranks grow beyond this knee (keeps event counts sane).
    scale: float = 1.0
    big_rank_scale: float = 1.0
    iters_small: Optional[int] = None
    iters_big: Optional[int] = None
    threads_quota: int = 0
    split_quota: int = 0
    rpn: Optional[int] = None  # override ranks-per-node (alltoall apps spread out)
    mapping: str = "block"  # rank placement ("scatter" for alltoall apps)


_SMALL = (64, 96, 128, 192, 256)
_ANY = (64, 192, 256, 96, 128, 768, 1024, 384, 512, 1152, 1296, 1728)
_BIGOK = (768, 1024, 1152, 1296, 1728, 256, 192, 64)

_PLANS: List[_AppPlan] = [
    # -- NPB ---------------------------------------------------------------
    _AppPlan("EP", "NPB", 11, _ANY, ((0.01, 0.02), (0.02, 0.03), (0.03, 0.02))),
    _AppPlan("DT", "NPB", 6, _SMALL, ((0.07, 0.05), (0.09, 0.05))),
    _AppPlan(
        "IS", "NPB", 12, _SMALL + (512, 1024),
        ((0.45, 0.10), (0.55, 0.15), (0.35, 0.30), (0.50, 0.10)),
        big_rank_scale=0.02, split_quota=4, rpn=1, mapping="scatter",
    ),
    _AppPlan(
        "FT", "NPB", 12, _SMALL + (512, 768, 1024),
        ((0.40, 0.05), (0.50, 0.06), (0.30, 0.25), (0.55, 0.05)),
        big_rank_scale=0.03, split_quota=6, rpn=1, mapping="scatter",
    ),
    _AppPlan(
        "CG", "NPB", 14, _ANY,
        ((0.25, 0.05), (0.35, 0.06), (0.45, 0.05), (0.30, 0.08)),
        split_quota=6,
    ),
    _AppPlan(
        "MG", "NPB", 14, _ANY,
        ((0.15, 0.35), (0.25, 0.40), (0.22, 0.06), (0.35, 0.05)),
        split_quota=6,
    ),
    _AppPlan(
        "LU", "NPB", 12, _ANY,
        ((0.14, 0.35), (0.20, 0.45), (0.28, 0.30), (0.10, 0.40)),
    ),
    _AppPlan("BT", "NPB", 10, _ANY, ((0.08, 0.04), (0.13, 0.05), (0.18, 0.06))),
    _AppPlan("SP", "NPB", 10, _ANY, ((0.12, 0.30), (0.18, 0.05), (0.24, 0.35))),
    # -- DOE ---------------------------------------------------------------
    _AppPlan(
        "BIGFFT", "DOE", 8, _SMALL,
        ((0.45, 0.05), (0.55, 0.05), (0.38, 0.06)),
        split_quota=4, rpn=1, mapping="scatter",
    ),
    _AppPlan(
        "CR", "DOE", 12, _SMALL + (384,),
        ((0.50, 0.15), (0.65, 0.20), (0.75, 0.15), (0.42, 0.20)),
        split_quota=6,
    ),
    _AppPlan(
        "AMG", "DOE", 15, _ANY,
        ((0.25, 0.08), (0.35, 0.06), (0.18, 0.35), (0.30, 0.08), (0.15, 0.40)),
        threads_quota=3, split_quota=6,
    ),
    _AppPlan(
        "MINIFE", "DOE", 15, _ANY,
        ((0.06, 0.03), (0.10, 0.04), (0.14, 0.05), (0.08, 0.03)),
    ),
    _AppPlan(
        "MGPROD", "DOE", 12, _ANY,
        ((0.15, 0.35), (0.22, 0.40), (0.18, 0.06), (0.26, 0.35)),
        split_quota=6,
    ),
    _AppPlan(
        "FB", "DOE", 12, _SMALL + (384,),
        ((0.35, 0.15), (0.50, 0.20), (0.60, 0.15), (0.42, 0.25)),
        split_quota=4,
    ),
    _AppPlan(
        "LULESH", "DOE", 16, _ANY,
        ((0.05, 0.03), (0.08, 0.04), (0.12, 0.35), (0.16, 0.40)),
        threads_quota=6,
    ),
    _AppPlan(
        "CNS", "DOE", 12, _ANY,
        ((0.09, 0.04), (0.14, 0.05), (0.20, 0.06)),
        threads_quota=5,
    ),
    _AppPlan(
        "CMC", "DOE", 16, _ANY,
        ((0.02, 0.03), (0.04, 0.04), (0.06, 0.35), (0.09, 0.40)),
        threads_quota=5,
    ),
    _AppPlan(
        "NEKBONE", "DOE", 16, _ANY,
        ((0.25, 0.06), (0.35, 0.08), (0.45, 0.06), (0.55, 0.08)),
        split_quota=6,
    ),
]

#: Rank count past which a plan's ``big_rank_scale`` and reduced
#: iteration counts kick in (keeps simulation event counts tractable).
_BIG_RANKS = 384


def _ranks_per_node(nranks: int) -> int:
    """Placement density: bigger jobs pack nodes more tightly,
    mirroring fixed-size machines like the 64-node Cielito."""
    return max(1, min(16, nranks // 64))


def corpus_specs(seed: int = DEFAULT_SEED) -> List[TraceSpec]:
    """The deterministic list of 235 trace specifications."""
    pool = Counter(RANK_POOL)
    specs: List[TraceSpec] = []
    index = 0
    for plan in _PLANS:
        for j in range(plan.count):
            # Rotate the preference list per instance so each app gets a
            # spread of job sizes instead of draining one pool.
            k = len(plan.prefer)
            rotation = [plan.prefer[(j + i) % k] for i in range(k)]
            nranks = None
            for candidate in rotation:
                if pool[candidate] > 0:
                    nranks = candidate
                    break
            if nranks is None:  # preference exhausted: take largest stock
                nranks = max(pool, key=lambda v: (pool[v], -v))
                if pool[nranks] == 0:
                    raise RuntimeError("rank pool exhausted before 235 traces")
            pool[nranks] -= 1
            comm_target, imbalance = plan.profiles[j % len(plan.profiles)]
            big = nranks >= _BIG_RANKS
            scale = plan.scale * (plan.big_rank_scale if big else 1.0)
            iters = plan.iters_big if big else plan.iters_small
            if big and iters is None:
                base_iters = (NPB_APPS if plan.suite == "NPB" else DOE_APPS)[
                    plan.app
                ].iters
                iters = max(2, base_iters // 2)
            specs.append(
                TraceSpec(
                    index=index,
                    app=plan.app,
                    suite=plan.suite,
                    nranks=nranks,
                    machine=_MACHINE_CYCLE[index % len(_MACHINE_CYCLE)],
                    seed=seed + index,
                    scale=scale,
                    comm_target=comm_target,
                    imbalance=imbalance,
                    ranks_per_node=plan.rpn or _ranks_per_node(nranks),
                    iters=iters,
                    use_threads=j < plan.threads_quota,
                    use_comm_split=plan.threads_quota <= j < plan.threads_quota + plan.split_quota,
                    mapping=plan.mapping,
                )
            )
            index += 1
    assert len(specs) == CORPUS_SIZE, f"corpus has {len(specs)} specs, expected {CORPUS_SIZE}"
    assert sum(pool.values()) == 0, f"rank pool not exhausted: {dict(pool)}"
    assert sum(s.use_threads for s in specs) == 19
    assert sum(s.use_comm_split for s in specs) == 54
    return specs


#: Apps cycled by :func:`mini_corpus_specs` (a mix of both suites and
#: communication profiles, all cheap at single-digit rank counts).
_MINI_APPS: Tuple[Tuple[str, str, float], ...] = (
    ("CG", "NPB", 0.30),
    ("EP", "NPB", 0.02),
    ("IS", "NPB", 0.45),
    ("MG", "NPB", 0.20),
    ("LULESH", "DOE", 0.08),
    ("CR", "DOE", 0.50),
    ("MINIFE", "DOE", 0.10),
    ("NEKBONE", "DOE", 0.35),
)


def mini_corpus_specs(
    count: int = 12, seed: int = DEFAULT_SEED, nranks: int = 8
) -> List[TraceSpec]:
    """A scaled-down corpus: ``count`` cheap traces at ``nranks`` ranks.

    Same spec/build machinery as the real corpus but sized for executor
    scaling experiments and fast tests — each trace builds and measures
    in well under a second.
    """
    specs = []
    for i in range(count):
        app, suite, comm_target = _MINI_APPS[i % len(_MINI_APPS)]
        specs.append(
            TraceSpec(
                index=i,
                app=app,
                suite=suite,
                nranks=nranks,
                machine=_MACHINE_CYCLE[i % len(_MACHINE_CYCLE)],
                seed=seed + i,
                scale=0.05,
                comm_target=comm_target,
                imbalance=0.05,
                ranks_per_node=max(1, nranks // 2),
            )
        )
    return specs


def _generate(spec: TraceSpec, compute_per_iter: float) -> TraceSet:
    machine = get_machine(spec.machine)
    gen = generate_npb if spec.suite == "NPB" else generate_doe
    return gen(
        spec.app,
        spec.nranks,
        machine,
        seed=spec.seed,
        scale=spec.scale,
        compute_per_iter=compute_per_iter,
        imbalance=spec.imbalance,
        ranks_per_node=spec.ranks_per_node,
        use_threads=spec.use_threads,
        use_comm_split=spec.use_comm_split,
        name=spec.name,
        iters=spec.iters,
    )


def build_trace(spec: TraceSpec, max_retries: int = 2) -> TraceSet:
    """Generate, calibrate and stamp one corpus trace.

    Pass 1 prices the communication-only program with a
    single-configuration MFACT replay; the computation budget that puts
    the instance at its communication-fraction target is inserted on
    pass 2.  After ground-truth synthesis the measured fraction is
    checked and the budget re-adjusted up to ``max_retries`` times.
    """
    machine = get_machine(spec.machine)
    bare = _generate(spec, 0.0)
    bare.metadata["mapping"] = spec.mapping
    bare.metadata["mapping_seed"] = spec.seed
    niters = bare.metadata["iters"]
    report = LogicalClockReplay(bare, machine, ConfigGrid.single(machine)).run()
    comm_time = max(report.baseline_total_time, 1e-9)
    f = min(0.97, max(0.005, spec.comm_target))
    compute_per_iter = comm_time * (1.0 - f) / f / niters
    trace = None
    for attempt in range(max_retries + 1):
        trace = _generate(spec, compute_per_iter)
        trace.metadata["mapping"] = spec.mapping
        trace.metadata["mapping_seed"] = spec.seed
        synthesize_ground_truth(trace, machine, spec.seed)
        measured = trace.comm_fraction()
        if measured <= 0 or abs(measured - f) <= 0.18 * f or compute_per_iter <= 0:
            break
        # One multiplicative correction per retry: scale the compute
        # budget by the ratio of odds (compute share implied by target
        # vs. observed).
        odds_target = (1.0 - f) / f
        odds_measured = max(1e-3, (1.0 - measured) / measured)
        compute_per_iter *= odds_target / odds_measured
    trace.metadata["comm_target"] = f
    trace.metadata["spec_index"] = spec.index
    return trace


def build_corpus(
    seed: int = DEFAULT_SEED,
    limit: Optional[int] = None,
    progress: Optional[Callable[[int, TraceSpec], None]] = None,
) -> List[TraceSet]:
    """Build the full corpus (or its first ``limit`` traces)."""
    specs = corpus_specs(seed)
    if limit is not None:
        specs = specs[:limit]
    traces = []
    for spec in specs:
        if progress:
            progress(spec.index, spec)
        traces.append(build_trace(spec))
    return traces
