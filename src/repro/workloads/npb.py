"""NAS Parallel Benchmark workload generators.

Each generator reproduces the communication *structure* of its NPB
program — the pattern, message-size scaling and collective mix that
drive modeling-vs-simulation divergence — parameterized by rank count
and a problem-scale factor.  Computation is inserted by the caller
through ``compute_per_iter`` (see :mod:`repro.workloads.suite`'s
calibration loop), distributed with per-rank imbalance multipliers.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.machines.config import MachineConfig
from repro.util.rng import substream
from repro.workloads.base import ProgramBuilder
from repro.workloads.patterns import (
    butterfly_exchange,
    grid_dims,
    halo_exchange,
    ring_shift,
    sweep_pipeline,
)

__all__ = ["NPB_APPS", "generate_npb"]


def _imbalance_multipliers(nranks: int, imbalance: float, rng: np.random.Generator):
    """Per-rank compute multipliers with mean ~1 and spread ``imbalance``.

    Uses a lognormal spread plus a structured block skew (half the ranks
    slightly heavier), which is how real load imbalance tends to look.
    """
    if imbalance <= 0:
        return np.ones(nranks)
    noise = rng.lognormal(mean=0.0, sigma=imbalance * 0.6, size=nranks)
    block = 1.0 + imbalance * (np.arange(nranks) >= nranks // 2)
    mult = noise * block
    return mult / mult.mean()


class _App:
    """One generator: emits per-iteration communication rounds."""

    def __init__(self, name, iters, emit_round, setup=None, finalize=None, ranks_cap=None):
        self.name = name
        self.iters = iters
        self.emit_round = emit_round
        self.setup = setup
        self.finalize = finalize
        self.ranks_cap = ranks_cap


def _scaled(base: int, nranks: int, scale: float, per_rank_decay: float = 0.5) -> int:
    """Message size scaling: weak-scaling problems shrink per-rank
    surface area as ranks grow (``per_rank_decay`` is the exponent)."""
    size = base * scale / max(1.0, (nranks / 64.0) ** per_rank_decay)
    return max(64, int(size))


# -- per-benchmark round emitters -------------------------------------------


def _ep_round(b, machine, rng, nranks, scale, it):
    if it == 0:
        b.bcast(512)
    # Embarrassingly parallel: only terminal reductions.


def _ep_final(b, machine, rng, nranks, scale):
    for _ in range(3):
        b.allreduce(64)


def _dt_round(b, machine, rng, nranks, scale, it):
    # Data-traffic graph: sources feed a shuffle layer feeding sinks.
    tag = b.fresh_tag()
    size = _scaled(96 * 1024, nranks, scale, 0.8)
    third = max(1, nranks // 3)
    for src in range(third):
        dst = third + (src % third)
        b.send(src, dst, size, tag)
        b.recv(dst, src, size, tag)
    for mid in range(third, 2 * third):
        dst = 2 * third + (mid % max(1, nranks - 2 * third))
        if dst < nranks:
            b.send(mid, dst, size, tag)
            b.recv(dst, mid, size, tag)


def _is_round(b, machine, rng, nranks, scale, it):
    # Bucket sort: small count exchange, then heavy key redistribution.
    b.allreduce(1024)
    b.alltoall(64)  # bucket sizes
    b.alltoall(_scaled(20 * 1024, nranks, scale, 1.0))  # keys


def _ft_round(b, machine, rng, nranks, scale, it):
    # 3-D FFT: two transposes per inverse/forward step.
    per_pair = _scaled(28 * 1024, nranks, scale, 1.0)
    b.alltoall(per_pair)
    b.alltoall(per_pair)
    b.allreduce(16)


def _cg_round(b, machine, rng, nranks, scale, it):
    dims = grid_dims(nranks, 2)
    size = _scaled(48 * 1024, nranks, scale)
    halo_exchange(b, dims, size)
    b.allreduce(8)
    halo_exchange(b, dims, size)
    b.allreduce(8)
    b.allreduce(8)


def _mg_round(b, machine, rng, nranks, scale, it):
    dims = grid_dims(nranks, 3)
    base = _scaled(128 * 1024, nranks, scale)
    for level in range(4):
        halo_exchange(b, dims, max(256, base >> (2 * level)))
    b.allreduce(8)


def _lu_round(b, machine, rng, nranks, scale, it):
    dims = grid_dims(nranks, 2)
    size = _scaled(24 * 1024, nranks, scale, 0.7)
    sweep_pipeline(b, (dims[0], dims[1]), size)
    sweep_pipeline(b, (dims[0], dims[1]), size, reverse=True)
    if it % 4 == 0:
        b.allreduce(40)


def _bt_round(b, machine, rng, nranks, scale, it):
    dims = grid_dims(nranks, 2)
    size = _scaled(160 * 1024, nranks, scale)
    for _ in range(3):  # three sweep directions exchange faces
        halo_exchange(b, dims, size)
    b.allreduce(40)


def _sp_round(b, machine, rng, nranks, scale, it):
    dims = grid_dims(nranks, 2)
    size = _scaled(96 * 1024, nranks, scale)
    for _ in range(3):
        halo_exchange(b, dims, size)
    b.allreduce(40)


NPB_APPS: Dict[str, _App] = {
    "EP": _App("EP", iters=6, emit_round=_ep_round, finalize=_ep_final),
    "DT": _App("DT", iters=2, emit_round=_dt_round),
    "IS": _App("IS", iters=4, emit_round=_is_round),
    "FT": _App("FT", iters=3, emit_round=_ft_round),
    "CG": _App("CG", iters=8, emit_round=_cg_round),
    "MG": _App("MG", iters=5, emit_round=_mg_round),
    "LU": _App("LU", iters=6, emit_round=_lu_round),
    "BT": _App("BT", iters=5, emit_round=_bt_round),
    "SP": _App("SP", iters=5, emit_round=_sp_round),
}


def generate_npb(
    app: str,
    nranks: int,
    machine: MachineConfig,
    seed: int,
    scale: float = 1.0,
    compute_per_iter: float = 0.0,
    imbalance: float = 0.0,
    ranks_per_node: int = 16,
    use_threads: bool = False,
    use_comm_split: bool = False,
    name: str = None,
    iters: int = None,
):
    """Build one NPB trace.

    ``compute_per_iter`` is the mean per-rank computation inserted each
    iteration (seconds); ``imbalance`` spreads it across ranks.  The
    communication structure depends only on (app, nranks, scale, seed),
    so the calibration loop can regenerate with different compute
    budgets without perturbing traffic.
    """
    try:
        spec = NPB_APPS[app.upper()]
    except KeyError:
        known = ", ".join(sorted(NPB_APPS))
        raise ValueError(f"unknown NPB app {app!r} (known: {known})") from None
    rng = substream(seed, "npb", app.upper(), nranks)
    trace_name = name or f"{app.lower()}.{nranks}.{machine.name}.s{seed % 1000}"
    b = ProgramBuilder(nranks, spec.name, trace_name, ranks_per_node=ranks_per_node)
    b.uses_threads = use_threads
    if use_comm_split:
        # Mirror NPB codes that split row/column communicators.
        half = max(1, nranks // 2)
        b.add_comm(tuple(range(half)))
        b.add_comm(tuple(range(half, nranks)))
    mult = _imbalance_multipliers(nranks, imbalance, rng)
    if spec.setup:
        spec.setup(b, machine, rng, nranks, scale)
    niters = iters if iters is not None else spec.iters
    for it in range(niters):
        # Jitter is drawn unconditionally so the RNG stream (and hence
        # the traffic) is identical across calibration passes that only
        # change the compute budget.
        jitter = rng.normal(1.0, 0.02, size=nranks).clip(0.8, 1.2)
        if compute_per_iter > 0:
            for rank in range(nranks):
                b.compute(rank, compute_per_iter * mult[rank] * jitter[rank])
        spec.emit_round(b, machine, rng, nranks, scale, it)
    if spec.finalize:
        spec.finalize(b, machine, rng, nranks, scale)
    b.barrier()
    b.metadata.update(
        app=spec.name,
        suite="NPB",
        scale=scale,
        imbalance=imbalance,
        iters=niters,
        seed=seed,
    )
    return b.build(machine=machine.name)
