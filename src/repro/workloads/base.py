"""Program builder for synthetic application traces.

A :class:`ProgramBuilder` accumulates per-rank op streams with managed
request ids and tags, then emits a validated :class:`TraceSet`.  All
application generators are written against this API.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.events import Op, OpKind
from repro.trace.trace import TraceSet
from repro.util.validation import check_rank, require

__all__ = ["ProgramBuilder"]


class ProgramBuilder:
    """Accumulates a multi-rank MPI program and produces a trace."""

    def __init__(self, nranks: int, app: str, name: str, ranks_per_node: int = 16):
        require(nranks >= 1, "nranks must be >= 1")
        self.nranks = int(nranks)
        self.app = app
        self.name = name
        self.ranks_per_node = int(ranks_per_node)
        self.ops: List[List[Op]] = [[] for _ in range(self.nranks)]
        self._next_req = [1] * self.nranks
        self._next_tag = 1
        self._site_tags: Dict[tuple, int] = {}
        self._comms: Dict[int, Tuple[int, ...]] = {0: tuple(range(self.nranks))}
        self._next_comm = 1
        self.uses_threads = False
        self.uses_comm_split = False
        self.metadata: dict = {}

    # -- structure ---------------------------------------------------------

    def fresh_tag(self) -> int:
        """A tag no other call site of this program has used."""
        tag = self._next_tag
        self._next_tag += 1
        return tag

    def site_tag(self, *key) -> int:
        """A stable tag for a communication call site.

        Real MPI codes reuse one tag per exchange site across
        iterations; FIFO channel matching keeps this safe as long as
        each rank completes a site's requests before reissuing it (all
        pattern emitters do).  Stable tags also make iterative traces
        compressible (:mod:`repro.trace.compress`).
        """
        tag = self._site_tags.get(key)
        if tag is None:
            tag = self._site_tags[key] = self.fresh_tag()
        return tag

    def add_comm(self, members: Sequence[int]) -> int:
        """Register a sub-communicator; marks the trace as using grouping."""
        members = tuple(members)
        require(len(members) >= 1, "communicator needs at least one member")
        for m in members:
            check_rank(m, self.nranks, "communicator member")
        comm = self._next_comm
        self._next_comm += 1
        self._comms[comm] = members
        self.uses_comm_split = True
        return comm

    # -- per-rank ops -------------------------------------------------------

    def compute(self, rank: int, seconds: float) -> None:
        """Local computation on ``rank``."""
        if seconds > 0:
            self.ops[rank].append(Op(OpKind.COMPUTE, duration=seconds))

    def send(self, rank: int, peer: int, nbytes: int, tag: int) -> None:
        """Blocking send."""
        self.ops[rank].append(Op(OpKind.SEND, peer=peer, nbytes=nbytes, tag=tag))

    def recv(self, rank: int, peer: int, nbytes: int, tag: int) -> None:
        """Blocking receive."""
        self.ops[rank].append(Op(OpKind.RECV, peer=peer, nbytes=nbytes, tag=tag))

    def isend(self, rank: int, peer: int, nbytes: int, tag: int) -> int:
        """Non-blocking send; returns the request id."""
        req = self._next_req[rank]
        self._next_req[rank] += 1
        self.ops[rank].append(Op(OpKind.ISEND, peer=peer, nbytes=nbytes, tag=tag, req=req))
        return req

    def irecv(self, rank: int, peer: int, nbytes: int, tag: int) -> int:
        """Non-blocking receive; returns the request id."""
        req = self._next_req[rank]
        self._next_req[rank] += 1
        self.ops[rank].append(Op(OpKind.IRECV, peer=peer, nbytes=nbytes, tag=tag, req=req))
        return req

    def wait(self, rank: int, req: int) -> None:
        """Complete one request."""
        self.ops[rank].append(Op(OpKind.WAIT, req=req))

    def waitall(self, rank: int, reqs: Sequence[int]) -> None:
        """Complete several requests in order."""
        for req in reqs:
            self.wait(rank, req)

    # -- collectives (all ranks of a communicator) ---------------------------

    def _collective(self, kind: OpKind, nbytes: int, comm: int, root: int = -1) -> None:
        for rank in self._comms[comm]:
            self.ops[rank].append(Op(kind, peer=root, nbytes=nbytes, comm=comm))

    def barrier(self, comm: int = 0) -> None:
        self._collective(OpKind.BARRIER, 0, comm)

    def bcast(self, nbytes: int, root: int = 0, comm: int = 0) -> None:
        self._collective(OpKind.BCAST, nbytes, comm, root)

    def reduce(self, nbytes: int, root: int = 0, comm: int = 0) -> None:
        self._collective(OpKind.REDUCE, nbytes, comm, root)

    def allreduce(self, nbytes: int, comm: int = 0) -> None:
        self._collective(OpKind.ALLREDUCE, nbytes, comm)

    def allgather(self, nbytes: int, comm: int = 0) -> None:
        self._collective(OpKind.ALLGATHER, nbytes, comm)

    def alltoall(self, nbytes_per_pair: int, comm: int = 0) -> None:
        self._collective(OpKind.ALLTOALL, nbytes_per_pair, comm)

    def gather(self, nbytes: int, root: int = 0, comm: int = 0) -> None:
        self._collective(OpKind.GATHER, nbytes, comm, root)

    def scatter(self, nbytes: int, root: int = 0, comm: int = 0) -> None:
        self._collective(OpKind.SCATTER, nbytes, comm, root)

    def reduce_scatter(self, nbytes: int, comm: int = 0) -> None:
        self._collective(OpKind.REDUCE_SCATTER, nbytes, comm)

    # -- finish --------------------------------------------------------------

    def build(self, machine: str = "unknown", validate: bool = True) -> TraceSet:
        """Emit the trace (validated by default)."""
        trace = TraceSet(
            name=self.name,
            app=self.app,
            ranks=self.ops,
            machine=machine,
            ranks_per_node=self.ranks_per_node,
            comms=dict(self._comms),
            uses_comm_split=self.uses_comm_split,
            uses_threads=self.uses_threads,
            metadata=dict(self.metadata),
        )
        if validate:
            trace.validate()
        return trace
