"""Ground-truth timestamp synthesis.

The paper's traces carry *measured* timestamps from real machines; we
do not have those machines, so this module plays the role of the real
system: it replays a generated program once on the target machine with
effects **neither tool fully models** and stamps every op's
``t_entry``/``t_exit``:

* per-MPI-call software cost several times the tools' modeled overhead
  (real MPI stacks do protocol work, tag matching, memory registration);
* an MPI transfer-time inflation factor ``kappa`` (real latency and
  effective bandwidth are worse than the published Hockney parameters);
* message-granularity queueing on the actual route (link reservation),
  which the simulators partially capture and the modeling tool not at
  all;
* OS noise on computation segments (written back into the trace as the
  measured compute durations, exactly as DUMPI would record them).

The net effect reproduces Section V-C's observation: both tools predict
*below* the measured time, with the simulator closer (it models the
contention part) and MFACT lower still.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.collectives.cost_models import collective_cost
from repro.machines.config import MachineConfig
from repro.sim.network import Fabric
from repro.trace.events import Op, OpKind
from repro.trace.trace import TraceSet
from repro.util.rng import substream

__all__ = [
    "GroundTruthSynthesizer",
    "synthesize_ground_truth",
    "inject_defect",
    "DEFECT_KINDS",
]

_SYNC_COLLECTIVES = frozenset(
    {
        OpKind.BARRIER,
        OpKind.ALLREDUCE,
        OpKind.ALLGATHER,
        OpKind.ALLTOALL,
        OpKind.REDUCE_SCATTER,
    }
)


class GroundTruthSynthesizer:
    """Stamps measured timestamps onto a generated trace, in place."""

    #: Multiplier on the machine's modeled per-call software overhead.
    OVERHEAD_FACTOR = 4.0
    #: Weight of route-queueing delays added on top of the Hockney time.
    QUEUE_WEIGHT = 0.45
    #: Mean / spread of the per-trace MPI transfer inflation ``kappa``.
    KAPPA_MEAN = 1.35
    KAPPA_SIGMA = 0.08
    #: OS-noise fraction on computation segments.
    COMPUTE_NOISE = 0.02

    def __init__(self, trace: TraceSet, machine: MachineConfig, seed: int):
        self.trace = trace
        self.machine = machine
        rng = substream(seed, "ground-truth", trace.name)
        self.rng = rng
        self.kappa = float(rng.lognormal(np.log(self.KAPPA_MEAN), self.KAPPA_SIGMA))
        n = trace.nranks
        self.fabric = Fabric(trace, machine)
        self.clk = [0.0] * n
        self._inj = [0.0] * n
        self._ej = [0.0] * n
        self._free = np.zeros(self.fabric.nresources)
        self._ip = [0] * n
        self._channels: Dict[Tuple[int, int, int], "_Chan"] = {}
        self._requests: List[Dict[int, Tuple[Optional[float], int, object]]] = [
            {} for _ in range(n)
        ]
        self._blocked: List[Optional[Tuple]] = [None] * n
        self._block_entry: List[float] = [0.0] * n
        self._coll_counts: Dict[Tuple[int, int], Dict[int, float]] = {}
        self._coll_ops: Dict[Tuple[int, int], Dict[int, object]] = {}
        self._coll_instance: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._runnable: List[Tuple[float, int]] = []
        self._queued = [False] * n
        self._overhead = machine.software_overhead * self.OVERHEAD_FACTOR
        self._inv_bw = self.kappa / machine.bandwidth
        self._lat = self.kappa * machine.latency

    # -- network cost with queueing ------------------------------------------

    def _transfer_avail(self, src: int, dst: int, nbytes: int, start: float) -> float:
        """Fully-injected + queued header time for one message."""
        inj_start = max(self._inj[src], start)
        bw_term = nbytes * self._inv_bw
        self._inj[src] = inj_start + bw_term
        route = self.fabric.route(src, dst)
        t = inj_start
        queue_delay = 0.0
        free = self._free
        for resource in route:
            if free[resource] > t:
                queue_delay += free[resource] - t
                t = free[resource]
            free[resource] = t + bw_term
            t += 0.0
        return inj_start + self.QUEUE_WEIGHT * queue_delay + self._lat

    def _recv_done(self, rank: int, avail: float, nbytes: int, ready: float) -> float:
        arrived = max(avail, self._ej[rank]) + nbytes * self._inv_bw
        self._ej[rank] = arrived
        return max(ready, arrived)

    # -- cooperative scheduler (mirrors the MFACT engine, scalar) -------------

    def _chan(self, src, dst, tag):
        key = (src, dst, tag)
        c = self._channels.get(key)
        if c is None:
            c = self._channels[key] = _Chan()
        return c

    def _wake(self, rank):
        # Ranks are scheduled lowest-clock-first so shared resource state
        # (link free times) is touched in near-virtual-time order; a FIFO
        # here would let one rank race ahead and see messages from its
        # own future, inflating queue delays unboundedly.
        if not self._queued[rank]:
            self._queued[rank] = True
            heapq.heappush(self._runnable, (self.clk[rank], rank))

    def _deliver(self, src, dst, tag, avail, nbytes):
        chan = self._chan(src, dst, tag)
        if chan.slots:
            kind, ident = chan.slots.popleft()
            if kind == "recv":
                done = self._recv_done(dst, avail, nbytes, self.clk[dst] + self._overhead)
                op = self._blocked[dst][2]
                op.t_exit = done
                self.clk[dst] = done
                self._blocked[dst] = None
                self._ip[dst] += 1
                self._wake(dst)
            else:
                entry = self._requests[dst][ident]
                self._requests[dst][ident] = (avail, nbytes, entry[2])
                blocked = self._blocked[dst]
                if blocked is not None and blocked[0] == "wait" and blocked[1] == ident:
                    done = self._recv_done(dst, avail, nbytes, self.clk[dst] + self._overhead)
                    op = blocked[2]
                    op.t_exit = done
                    self.clk[dst] = done
                    del self._requests[dst][ident]
                    self._blocked[dst] = None
                    self._ip[dst] += 1
                    self._wake(dst)
        else:
            chan.messages.append((avail, nbytes))

    def _collective_ready(self, rank, op) -> bool:
        members = self.trace.comm_ranks(op.comm)
        inst = self._coll_instance[rank].get(op.comm, 0)
        key = (op.comm, inst)
        arrived = self._coll_counts.setdefault(key, {})
        ops = self._coll_ops.setdefault(key, {})
        arrived[rank] = self.clk[rank]
        ops[rank] = op
        if len(arrived) < len(members):
            self._blocked[rank] = ("coll", key, op)
            return False
        self._fire_collective(op, members, arrived, ops)
        del self._coll_counts[key]
        del self._coll_ops[key]
        for r in members:
            self._coll_instance[r][op.comm] = inst + 1
            self._blocked[r] = None
            self._ip[r] += 1
            if r != rank:
                self._wake(r)
        return True

    def _fire_collective(self, op, members, arrived, ops) -> None:
        p = len(members)
        cost = collective_cost(op.kind, p, op.nbytes)
        total = self.kappa * cost.time(self.machine.latency, self.machine.bandwidth)
        total += self._overhead
        # Real collectives suffer mildly superlinear congestion at scale.
        total *= 1.0 + 0.02 * np.log2(max(2, p))
        if op.kind in _SYNC_COLLECTIVES:
            peak = max(arrived.values())
            done = peak + total
            for r in members:
                ops[r].t_exit = done
                self.clk[r] = done
            return
        root = op.peer
        if op.kind in (OpKind.BCAST, OpKind.SCATTER):
            root_done = arrived[root] + total
            for r in members:
                done = root_done if r == root else max(arrived[r] + self._overhead, root_done)
                ops[r].t_exit = done
                self.clk[r] = done
            return
        peak = max(arrived.values())
        own = self._lat + op.nbytes * self._inv_bw + self._overhead
        for r in members:
            done = peak + total if r == root else arrived[r] + own
            ops[r].t_exit = done
            self.clk[r] = done

    def _step(self, rank: int) -> bool:
        op = self.trace.ranks[rank][self._ip[rank]]
        kind = op.kind
        o = self._overhead
        op.t_entry = self.clk[rank]
        if kind == OpKind.COMPUTE:
            noise = 1.0 + abs(self.rng.normal(0.0, self.COMPUTE_NOISE))
            measured = op.duration * self.machine.compute_scale * noise
            op.duration = measured
            self.clk[rank] += measured
            op.t_exit = self.clk[rank]
        elif kind == OpKind.SEND:
            start = self.clk[rank] + o
            avail = self._transfer_avail(rank, op.peer, op.nbytes, start)
            self.clk[rank] = self._inj[rank]
            op.t_exit = self.clk[rank]
            self._deliver(rank, op.peer, op.tag, avail, op.nbytes)
        elif kind == OpKind.ISEND:
            start = self.clk[rank] + o
            avail = self._transfer_avail(rank, op.peer, op.nbytes, start)
            self.clk[rank] = start
            op.t_exit = start
            self._requests[rank][op.req] = (None, 0, "isend")
            self._deliver(rank, op.peer, op.tag, avail, op.nbytes)
        elif kind == OpKind.RECV:
            chan = self._chan(op.peer, rank, op.tag)
            if chan.messages:
                avail, nbytes = chan.messages.popleft()
                done = self._recv_done(rank, avail, nbytes, self.clk[rank] + o)
                self.clk[rank] = done
                op.t_exit = done
            else:
                chan.slots.append(("recv", rank))
                self._blocked[rank] = ("recv", None, op)
                return False
        elif kind == OpKind.IRECV:
            self.clk[rank] += o
            op.t_exit = self.clk[rank]
            chan = self._chan(op.peer, rank, op.tag)
            if chan.messages:
                avail, nbytes = chan.messages.popleft()
                self._requests[rank][op.req] = (avail, nbytes, "irecv")
            else:
                chan.slots.append(("irecv", op.req))
                self._requests[rank][op.req] = (None, op.nbytes, "irecv")
        elif kind == OpKind.WAIT:
            entry = self._requests[rank].get(op.req)
            if entry is None:
                raise RuntimeError(f"rank {rank} waits on unknown request {op.req}")
            avail, nbytes, state = entry
            if state == "isend":
                self.clk[rank] += o
                op.t_exit = self.clk[rank]
                del self._requests[rank][op.req]
            elif avail is not None:
                done = self._recv_done(rank, avail, nbytes, self.clk[rank] + o)
                self.clk[rank] = done
                op.t_exit = done
                del self._requests[rank][op.req]
            else:
                self._blocked[rank] = ("wait", op.req, op)
                return False
        elif op.is_collective:
            return self._collective_ready(rank, op)
        else:  # pragma: no cover
            raise ValueError(f"unhandled op kind {kind!r}")
        self._ip[rank] += 1
        return True

    def run(self) -> TraceSet:
        """Stamp the trace; returns it for chaining."""
        n = self.trace.nranks
        lengths = [len(ops) for ops in self.trace.ranks]
        for rank in range(n):
            self._wake(rank)
        done = [False] * n
        remaining = n
        runnable = self._runnable
        while runnable:
            _, rank = heapq.heappop(runnable)
            self._queued[rank] = False
            if done[rank] or self._blocked[rank] is not None:
                continue
            # Execute until this rank blocks, finishes, or overtakes the
            # next-lowest clock in the ready queue.
            while self._ip[rank] < lengths[rank]:
                if not self._step(rank):
                    break
                if runnable and self.clk[rank] > runnable[0][0]:
                    self._wake(rank)
                    break
            else:
                if not done[rank]:
                    done[rank] = True
                    remaining -= 1
        if remaining:
            stuck = [r for r in range(n) if not done[r]]
            raise RuntimeError(f"synthesis of {self.trace.name} deadlocked at ranks {stuck[:8]}")
        return self.trace


class _Chan:
    __slots__ = ("messages", "slots")

    def __init__(self):
        self.messages: Deque[Tuple[float, int]] = deque()
        self.slots: Deque[Tuple[str, int]] = deque()


def synthesize_ground_truth(trace: TraceSet, machine: MachineConfig, seed: int) -> TraceSet:
    """Stamp measured timestamps onto ``trace`` (mutates and returns it)."""
    return GroundTruthSynthesizer(trace, machine, seed).run()


# -- fault injection ----------------------------------------------------------

#: Defect kinds :func:`inject_defect` can plant (each targets one
#: tracelint rule; see ``repro.analysis.lint`` for the rule catalogue).
DEFECT_KINDS = (
    "deadlock",  # send/recv wait-for cycle between two ranks
    "unmatched-send",  # a send no rank ever receives
    "unmatched-recv",  # a recv no rank ever satisfies
    "byte-mismatch",  # matched pair disagreeing on payload size
    "lost-wait",  # an IRECV request that is never waited
    "reordered-collectives",  # one rank swaps two collective calls
    "root-divergence",  # one rank disagrees on a collective's arguments
    "time-travel",  # a measured timestamp goes backwards
)

#: Tag space for injected p2p traffic (above generator tags, below the
#: collective-expansion tag base of ``1 << 20``).
_DEFECT_TAG_BASE = 1 << 19


def _clone_trace(trace: TraceSet) -> TraceSet:
    """Deep copy: fresh Op objects so injection never mutates the input."""
    ranks = [
        [
            Op(
                op.kind,
                peer=op.peer,
                nbytes=op.nbytes,
                tag=op.tag,
                comm=op.comm,
                req=op.req,
                duration=op.duration,
                t_entry=op.t_entry,
                t_exit=op.t_exit,
            )
            for op in stream
        ]
        for stream in trace.ranks
    ]
    return TraceSet(
        name=trace.name,
        app=trace.app,
        ranks=ranks,
        machine=trace.machine,
        ranks_per_node=trace.ranks_per_node,
        comms=dict(trace.comms),
        uses_comm_split=trace.uses_comm_split,
        uses_threads=trace.uses_threads,
        metadata=dict(trace.metadata),
    )


def inject_defect(trace: TraceSet, kind: str, seed: int = 0) -> TraceSet:
    """Return a copy of ``trace`` with one known structural defect.

    ``kind`` is one of :data:`DEFECT_KINDS`.  The defect site is chosen
    deterministically from ``seed``, and the copy's metadata records the
    injection (``injected_defect``) so downstream tooling can assert a
    linter flags exactly what was planted.  Structural kinds add
    *unstamped* ops, so injecting into a stamped trace additionally
    trips the timestamp-consistency rule; inject before ground-truth
    synthesis when that matters.  ``time-travel`` requires a stamped
    trace.  Used by the tracelint test-suite and intended for future
    fault-injection studies.
    """
    if kind not in DEFECT_KINDS:
        known = ", ".join(DEFECT_KINDS)
        raise ValueError(f"unknown defect kind {kind!r} (known: {known})")
    if trace.nranks < 2:
        raise ValueError("defect injection needs at least two ranks")
    out = _clone_trace(trace)
    rng = substream(seed, "defect", kind, trace.name)
    a, b = (int(r) for r in rng.choice(out.nranks, size=2, replace=False))
    tag = _DEFECT_TAG_BASE + int(rng.integers(0, 1024))
    if kind == "deadlock":
        # Both ranks first receive from each other, and only send after:
        # counts match on every channel, yet neither recv can ever be
        # satisfied — a two-rank wait-for cycle.
        out.ranks[a].insert(0, Op(OpKind.RECV, peer=b, nbytes=64, tag=tag))
        out.ranks[b].insert(0, Op(OpKind.RECV, peer=a, nbytes=64, tag=tag + 1))
        out.ranks[a].append(Op(OpKind.SEND, peer=b, nbytes=64, tag=tag + 1))
        out.ranks[b].append(Op(OpKind.SEND, peer=a, nbytes=64, tag=tag))
    elif kind == "unmatched-send":
        out.ranks[a].append(Op(OpKind.SEND, peer=b, nbytes=256, tag=tag))
    elif kind == "unmatched-recv":
        out.ranks[a].append(Op(OpKind.RECV, peer=b, nbytes=256, tag=tag))
    elif kind == "byte-mismatch":
        out.ranks[a].append(Op(OpKind.SEND, peer=b, nbytes=1024, tag=tag))
        out.ranks[b].append(Op(OpKind.RECV, peer=a, nbytes=512, tag=tag))
    elif kind == "lost-wait":
        req = 1 + max(
            (op.req for op in out.ranks[b] if op.req >= 0), default=0
        )
        out.ranks[b].append(Op(OpKind.IRECV, peer=a, nbytes=128, tag=tag, req=req))
        out.ranks[a].append(Op(OpKind.SEND, peer=b, nbytes=128, tag=tag))
    elif kind == "reordered-collectives":
        idx = [i for i, op in enumerate(out.ranks[a]) if op.is_collective]
        swap = None
        for i in idx:
            for j in idx:
                if j <= i:
                    continue
                x, y = out.ranks[a][i], out.ranks[a][j]
                if (x.kind, x.peer, x.nbytes) != (y.kind, y.peer, y.nbytes):
                    swap = (i, j)
                    break
            if swap:
                break
        if swap is None:
            raise ValueError(
                f"trace {trace.name!r} has no two distinct collectives to reorder"
            )
        i, j = swap
        out.ranks[a][i], out.ranks[a][j] = out.ranks[a][j], out.ranks[a][i]
    elif kind == "root-divergence":
        for op in out.ranks[a]:
            if op.is_collective and len(out.comms.get(op.comm, ())) > 1:
                op.nbytes += 8  # one rank now disagrees on the payload
                break
        else:
            raise ValueError(f"trace {trace.name!r} has no collective to perturb")
    elif kind == "time-travel":
        if not trace.has_timestamps():
            raise ValueError("time-travel injection needs a stamped trace")
        stream = out.ranks[a]
        i = int(rng.integers(0, len(stream)))
        op = stream[i]
        op.t_entry, op.t_exit = op.t_exit, op.t_entry - 1.0
    out.metadata["injected_defect"] = kind
    out.metadata["defect_seed"] = int(seed)
    return out
