"""Reusable communication patterns.

Each pattern emits one communication round for every participating rank
into a :class:`ProgramBuilder`.  Patterns are deadlock-free by
construction: receives are posted non-blocking before sends wherever a
cycle could otherwise form.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.workloads.base import ProgramBuilder

__all__ = [
    "grid_dims",
    "halo_exchange",
    "sweep_pipeline",
    "butterfly_exchange",
    "irregular_exchange",
    "ring_shift",
    "neighbor_lists_grid",
]


def grid_dims(nranks: int, ndim: int) -> Tuple[int, ...]:
    """Near-balanced process-grid factorization of ``nranks``.

    Greedy: repeatedly assign the largest prime factor to the smallest
    dimension, mirroring ``MPI_Dims_create``.
    """
    if nranks < 1 or ndim < 1:
        raise ValueError("nranks and ndim must be >= 1")
    dims = [1] * ndim
    remaining = nranks
    factors: List[int] = []
    f = 2
    while f * f <= remaining:
        while remaining % f == 0:
            factors.append(f)
            remaining //= f
        f += 1
    if remaining > 1:
        factors.append(remaining)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    return tuple(sorted(dims, reverse=True))


def _coords(rank: int, dims: Sequence[int]) -> List[int]:
    out = []
    for d in dims:
        out.append(rank % d)
        rank //= d
    return out


def _rank_at(coords: Sequence[int], dims: Sequence[int]) -> int:
    rank = 0
    stride = 1
    for c, d in zip(coords, dims):
        rank += (c % d) * stride
        stride *= d
    return rank


def neighbor_lists_grid(nranks: int, dims: Sequence[int], periodic: bool = True):
    """Per-rank neighbor list on a process grid: (axis, direction, peer)."""
    out: List[List[Tuple[int, int, int]]] = []
    for rank in range(nranks):
        coords = _coords(rank, dims)
        neighbors = []
        for axis, d in enumerate(dims):
            if d == 1:
                continue
            for step in (+1, -1):
                c = list(coords)
                if not periodic and not 0 <= c[axis] + step < d:
                    continue
                c[axis] = (c[axis] + step) % d
                neighbors.append((axis, step, _rank_at(c, dims)))
        out.append(neighbors)
    return out


def halo_exchange(
    builder: ProgramBuilder,
    dims: Sequence[int],
    nbytes: int,
    periodic: bool = True,
    size_jitter: Callable[[int], int] = None,
) -> None:
    """One ghost-cell exchange round on an n-D process grid.

    Every rank posts irecvs from all grid neighbors, isends to all of
    them, then waits.  ``size_jitter(rank)`` may perturb the per-rank
    message size (the same size is used for all of a rank's sends, and
    receives are sized to match the *sender's* size).
    """
    n = builder.nranks
    tag = builder.site_tag("halo", tuple(dims), nbytes, periodic)
    sizes = [size_jitter(r) if size_jitter else nbytes for r in range(n)]
    neighbor_lists = neighbor_lists_grid(n, dims, periodic)
    for rank in range(n):
        reqs = []
        for _, _, peer in neighbor_lists[rank]:
            reqs.append(builder.irecv(rank, peer, sizes[peer], tag))
        for _, _, peer in neighbor_lists[rank]:
            reqs.append(builder.isend(rank, peer, sizes[rank], tag))
        builder.waitall(rank, reqs)


def sweep_pipeline(
    builder: ProgramBuilder,
    dims2d: Tuple[int, int],
    nbytes: int,
    compute_per_cell: float = 0.0,
    reverse: bool = False,
) -> None:
    """A 2-D wavefront sweep (LU-style): blocking recvs from the
    upstream neighbors, local work, blocking sends downstream.

    The dependency chain from corner to corner makes the pattern
    latency-sensitive and pipeline-imbalanced, like NPB LU.
    """
    px, py = dims2d
    n = builder.nranks
    if px * py != n:
        raise ValueError(f"dims {dims2d} do not cover {n} ranks")
    tag = builder.site_tag("sweep", dims2d, nbytes, reverse)
    step = -1 if reverse else +1
    for rank in range(n):
        x, y = rank % px, rank // px
        ups = []
        downs = []
        for dx, dy in ((step, 0), (0, step)):
            ux, uy = x - dx, y - dy
            if 0 <= ux < px and 0 <= uy < py:
                ups.append(ux + uy * px)
            wx, wy = x + dx, y + dy
            if 0 <= wx < px and 0 <= wy < py:
                downs.append(wx + wy * px)
        for peer in ups:
            builder.recv(rank, peer, nbytes, tag)
        if compute_per_cell > 0:
            builder.compute(rank, compute_per_cell)
        for peer in downs:
            builder.send(rank, peer, nbytes, tag)


def butterfly_exchange(
    builder: ProgramBuilder,
    nbytes_per_stage: Callable[[int], int],
    ranks: Sequence[int] = None,
) -> None:
    """Hypercube (butterfly) staged exchange, Crystal-Router style.

    ``ceil(log2 p)`` stages; stage ``k`` pairs rank ``i`` with
    ``i XOR 2^k`` (partners beyond the rank count are skipped).
    ``nbytes_per_stage(k)`` sizes stage ``k``'s messages.
    """
    members = list(ranks) if ranks is not None else list(range(builder.nranks))
    p = len(members)
    stages = max(1, (p - 1).bit_length())
    for k in range(stages):
        tag = builder.site_tag("butterfly", k, tuple(members[:2]))
        size = nbytes_per_stage(k)
        for i, rank in enumerate(members):
            j = i ^ (1 << k)
            if j >= p:
                continue
            peer = members[j]
            req_r = builder.irecv(rank, peer, size, tag)
            req_s = builder.isend(rank, peer, size, tag)
            builder.waitall(rank, (req_r, req_s))


def irregular_exchange(
    builder: ProgramBuilder,
    rng: np.random.Generator,
    messages_per_rank: float,
    size_sampler: Callable[[np.random.Generator], int],
    locality: float = 0.0,
) -> None:
    """One round of irregular point-to-point traffic (AMR FillBoundary
    style): each rank messages a random set of peers with random sizes.

    ``locality`` in [0, 1) biases destinations toward nearby ranks.
    Receives are posted (irecv) before any sends, then everything is
    waited, so arbitrary traffic patterns cannot deadlock.
    """
    n = builder.nranks
    tag = builder.fresh_tag()
    traffic: List[Tuple[int, int, int]] = []  # (src, dst, nbytes)
    for src in range(n):
        count = rng.poisson(messages_per_rank)
        for _ in range(count):
            if locality > 0 and rng.random() < locality:
                dst = (src + int(rng.integers(1, max(2, n // 8)))) % n
            else:
                dst = int(rng.integers(0, n))
            if dst == src:
                dst = (dst + 1) % n
            traffic.append((src, dst, int(size_sampler(rng))))
    by_src: Dict[int, List[Tuple[int, int]]] = {r: [] for r in range(n)}
    by_dst: Dict[int, List[Tuple[int, int]]] = {r: [] for r in range(n)}
    for src, dst, size in traffic:
        by_src[src].append((dst, size))
        by_dst[dst].append((src, size))
    for rank in range(n):
        reqs = []
        for src, size in by_dst[rank]:
            reqs.append(builder.irecv(rank, src, size, tag))
        for dst, size in by_src[rank]:
            reqs.append(builder.isend(rank, dst, size, tag))
        builder.waitall(rank, reqs)


def ring_shift(builder: ProgramBuilder, nbytes: int, displacement: int = 1) -> None:
    """Every rank passes a block to ``(rank + displacement) mod p``."""
    n = builder.nranks
    tag = builder.site_tag("ring", displacement, nbytes)
    for rank in range(n):
        src = (rank - displacement) % n
        dst = (rank + displacement) % n
        req_r = builder.irecv(rank, src, nbytes, tag)
        req_s = builder.isend(rank, dst, nbytes, tag)
        builder.waitall(rank, (req_r, req_s))
