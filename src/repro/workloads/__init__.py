"""Synthetic workload generation: patterns, NPB + DOE apps, corpus, ground truth."""

# NOTE: repro.workloads.audit is intentionally not re-exported here; it
# depends on repro.core and importing it at package init would be circular.
from repro.workloads.base import ProgramBuilder
from repro.workloads.doe import DOE_APPS, generate_doe
from repro.workloads.npb import NPB_APPS, generate_npb
from repro.workloads.patterns import (
    butterfly_exchange,
    grid_dims,
    halo_exchange,
    irregular_exchange,
    neighbor_lists_grid,
    ring_shift,
    sweep_pipeline,
)
from repro.workloads.suite import (
    CORPUS_SIZE,
    RANK_POOL,
    TraceSpec,
    build_corpus,
    build_trace,
    corpus_specs,
)
from repro.workloads.synthesis import (
    DEFECT_KINDS,
    GroundTruthSynthesizer,
    inject_defect,
    synthesize_ground_truth,
)

__all__ = [
    "ProgramBuilder",
    "NPB_APPS",
    "DOE_APPS",
    "generate_npb",
    "generate_doe",
    "grid_dims",
    "halo_exchange",
    "sweep_pipeline",
    "butterfly_exchange",
    "irregular_exchange",
    "ring_shift",
    "neighbor_lists_grid",
    "TraceSpec",
    "corpus_specs",
    "build_trace",
    "build_corpus",
    "CORPUS_SIZE",
    "RANK_POOL",
    "GroundTruthSynthesizer",
    "synthesize_ground_truth",
    "DEFECT_KINDS",
    "inject_defect",
]
