"""Corpus health auditing.

The synthetic corpus must hold several structural properties for the
experiments to be meaningful; :func:`audit_corpus` checks them over
study records and returns human-readable findings instead of failing
fast, so a drifting calibration is visible in one place:

* Table Ia rank bins exact, Table Ib communication bins populated;
* exactly 19 multi-threaded and 54 grouped traces (engine-failure
  emulation quotas);
* per-class DIFFtotal shape (computation-bound tight, tail only in the
  communication-sensitive group);
* modeling faster than every simulation on (nearly) every trace;
* both tools predicting at or below the measured time on average.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.core.pipeline import StudyRecord
from repro.experiments.fig5 import group_of
from repro.experiments.table1 import PAPER_RANKS
from repro.trace.stats import RANK_BINS

__all__ = ["Finding", "audit_corpus", "audit_report"]

#: Audit severity -> shared diagnostic severity.
_SEVERITY_MAP = {"ok": Severity.NOTE, "warn": Severity.WARNING, "fail": Severity.ERROR}


@dataclass(frozen=True)
class Finding:
    """One audit observation."""

    severity: str  # "ok" | "warn" | "fail"
    check: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.severity.upper():4s}] {self.check}: {self.detail}"

    def to_diagnostic(self) -> Diagnostic:
        """Re-express this finding in the shared diagnostic format, so
        corpus health and trace health reports can be merged."""
        return Diagnostic(
            rule=f"corpus/{self.check.replace(' ', '-')}",
            severity=_SEVERITY_MAP[self.severity],
            message=self.detail,
            location=self.check,
        )


def _check(findings, ok: bool, check: str, detail: str, warn_only: bool = False):
    severity = "ok" if ok else ("warn" if warn_only else "fail")
    findings.append(Finding(severity, check, detail))


def audit_corpus(records: Sequence[StudyRecord]) -> List[Finding]:
    """Run every corpus health check; returns findings (never raises)."""
    findings: List[Finding] = []
    n = len(records)
    _check(findings, n == 235, "corpus size", f"{n} records (expected 235)")

    # Table Ia bins.
    observed = Counter()
    for record in records:
        for (lo, hi), label in zip(RANK_BINS, PAPER_RANKS):
            if lo <= record.nranks <= hi:
                observed[label] += 1
                break
    _check(
        findings,
        dict(observed) == PAPER_RANKS,
        "rank bins",
        f"observed {dict(observed)}",
    )

    # Engine-failure quotas.
    pkt_fail = sum(1 for r in records if not r.sims.get("packet").completed)
    flow_fail = sum(1 for r in records if not r.sims.get("flow").completed)
    pflow_fail = sum(1 for r in records if not r.sims.get("packet-flow").completed)
    _check(findings, pkt_fail == 19, "packet completions", f"{n - pkt_fail} (expected 216)")
    _check(findings, flow_fail == 73, "flow completions", f"{n - flow_fail} (expected 162)")
    _check(findings, pflow_fail == 0, "packet-flow completions", f"{n - pflow_fail} (expected 235)")

    # DIFF shape by group.
    diffs = {g: [] for g in ("computation-bound", "load-imbalance-bound",
                             "communication-sensitive")}
    for record in records:
        d = record.diff_total()
        if d is not None:
            diffs[group_of(record)].append(d)
    comp = np.array(diffs["computation-bound"]) if diffs["computation-bound"] else np.array([0.0])
    cs = np.array(diffs["communication-sensitive"]) if diffs["communication-sensitive"] else np.array([0.0])
    _check(
        findings,
        float(np.mean(comp <= 0.02)) >= 0.9,
        "computation-bound DIFF",
        f"{100 * float(np.mean(comp <= 0.02)):.1f}% within 2%",
        warn_only=True,
    )
    _check(
        findings,
        cs.max() >= 0.05,
        "communication-sensitive tail",
        f"max DIFF {100 * cs.max():.1f}% (paper ~27%)",
        warn_only=True,
    )
    _check(
        findings,
        cs.max() <= 0.7,
        "tail bounded",
        f"max DIFF {100 * cs.max():.1f}% stays below 70%",
        warn_only=True,
    )

    # Modeling fastest.
    wins = sum(
        1
        for r in records
        if r.mfact.walltime
        <= min(s.walltime for s in r.sims.values() if s.completed)
    )
    _check(
        findings,
        wins >= 0.9 * n,
        "modeling fastest tool",
        f"MFACT fastest on {wins}/{n} traces",
        warn_only=True,
    )

    # Under-prediction direction.
    mfact_ratio = np.mean([r.mfact.total_time / r.measured_total for r in records])
    sst_ratio = np.mean(
        [
            r.sims["packet-flow"].total_time / r.measured_total
            for r in records
            if r.sims["packet-flow"].completed
        ]
    )
    _check(
        findings,
        mfact_ratio <= 1.0 and sst_ratio <= 1.0,
        "tools below measured",
        f"MFACT/meas {mfact_ratio:.3f}, SST/meas {sst_ratio:.3f}",
        warn_only=True,
    )
    _check(
        findings,
        sst_ratio >= mfact_ratio - 0.01,
        "simulator closer to measured",
        f"SST {sst_ratio:.3f} vs MFACT {mfact_ratio:.3f}",
        warn_only=True,
    )
    return findings


def audit_report(records: Sequence[StudyRecord]) -> LintReport:
    """Corpus health as a :class:`LintReport` of typed diagnostics.

    Passing checks become NOTE diagnostics, soft checks WARNINGs and
    hard checks ERRORs — the same vocabulary ``tracelint`` uses, so one
    renderer and one exit-code convention cover both layers.
    """
    report = LintReport(subject=f"corpus[{len(records)} records]")
    report.extend(f.to_diagnostic() for f in audit_corpus(records))
    return report
