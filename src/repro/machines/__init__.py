"""Machine configurations: the study's three supercomputers plus a generic model."""

from repro.machines.config import MachineConfig
from repro.machines.fitting import (
    DEFAULT_SIZES,
    HockneyFit,
    fit_hockney,
    measure_pingpong,
)
from repro.machines.presets import (
    CIELITO,
    EDISON,
    HOPPER,
    MACHINES,
    get_machine,
    machine_names,
)

__all__ = [
    "MachineConfig",
    "HockneyFit",
    "fit_hockney",
    "measure_pingpong",
    "DEFAULT_SIZES",
    "CIELITO",
    "HOPPER",
    "EDISON",
    "MACHINES",
    "get_machine",
    "machine_names",
]
