"""Machine configuration model.

A :class:`MachineConfig` carries exactly what the paper's tools consume:
the Hockney parameters (link bandwidth and end-to-end latency) used by
MFACT, plus the structural description (topology family, nodes, cores
per node, injection bandwidth, per-hop switch latency, software
overhead) used by the SST/Macro-style simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.util.validation import check_positive

__all__ = ["MachineConfig"]


@dataclass(frozen=True)
class MachineConfig:
    """Static description of a target machine.

    Parameters
    ----------
    name:
        Machine name, e.g. ``"cielito"``.
    bandwidth:
        Network link bandwidth in bytes/s (the Hockney ``1/beta``).
    latency:
        End-to-end small-message latency in seconds (the Hockney
        ``alpha``).
    topology:
        Topology family: ``"torus3d"``, ``"dragonfly"`` or ``"fattree"``.
    cores_per_node:
        Cores (max ranks) per node.
    injection_bandwidth:
        NIC injection bandwidth in bytes/s; defaults to the link
        bandwidth.
    hop_latency:
        Per-switch-hop latency in seconds used by the simulator.  The
        modeling tool sees only the end-to-end ``latency``.
    software_overhead:
        Per-MPI-call CPU overhead in seconds (send/recv posting cost).
    compute_scale:
        Multiplier applied to traced computation durations when
        replaying on this machine (1.0 = same node speed as the tracing
        machine).
    """

    name: str
    bandwidth: float
    latency: float
    topology: str = "torus3d"
    cores_per_node: int = 16
    injection_bandwidth: Optional[float] = None
    hop_latency: float = 100e-9
    software_overhead: float = 1e-6
    compute_scale: float = 1.0

    def __post_init__(self):
        check_positive(self.bandwidth, "bandwidth")
        check_positive(self.latency, "latency")
        check_positive(self.cores_per_node, "cores_per_node")
        check_positive(self.hop_latency, "hop_latency")
        check_positive(self.compute_scale, "compute_scale")
        if self.software_overhead < 0:
            raise ValueError("software_overhead must be >= 0")
        if self.injection_bandwidth is not None:
            check_positive(self.injection_bandwidth, "injection_bandwidth")
        if self.topology not in ("torus3d", "dragonfly", "fattree"):
            raise ValueError(f"unknown topology family {self.topology!r}")

    @property
    def effective_injection_bandwidth(self) -> float:
        """Injection bandwidth, defaulting to the link bandwidth."""
        return self.injection_bandwidth if self.injection_bandwidth is not None else self.bandwidth

    def with_network(
        self, bandwidth: Optional[float] = None, latency: Optional[float] = None
    ) -> "MachineConfig":
        """A copy with scaled/overridden network parameters.

        This is how MFACT explores "what if the network were k× faster"
        configurations without touching the rest of the machine.
        """
        changes = {}
        if bandwidth is not None:
            changes["bandwidth"] = bandwidth
            if self.injection_bandwidth is not None:
                changes["injection_bandwidth"] = self.injection_bandwidth * (
                    bandwidth / self.bandwidth
                )
        if latency is not None:
            changes["latency"] = latency
        return replace(self, **changes) if changes else self
