"""Fitting Hockney parameters from ping-pong measurements.

The study takes each machine's latency/bandwidth "from publicly
available data"; when such data is not published, the standard practice
is to fit Hockney's ``T(m) = alpha + m/B`` to ping-pong measurements.
This module does the fit (weighted least squares on the two-parameter
affine model) and can generate synthetic ping-pong data from any of our
network models, closing the loop: simulate a machine, fit it, get its
parameters back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.machines.config import MachineConfig
from repro.trace.events import Op, OpKind
from repro.trace.trace import TraceSet

__all__ = ["HockneyFit", "fit_hockney", "measure_pingpong", "DEFAULT_SIZES"]

#: Default ping-pong message sizes (bytes): log-spaced 64 B .. 4 MiB.
DEFAULT_SIZES = tuple(int(64 * 2 ** k) for k in range(17))


@dataclass(frozen=True)
class HockneyFit:
    """Fitted ``T(m) = latency + m / bandwidth``."""

    latency: float
    bandwidth: float
    residual_rms: float
    n_points: int

    def predict(self, nbytes) -> np.ndarray:
        """Predicted one-way time for message size(s)."""
        return self.latency + np.asarray(nbytes, dtype=float) / self.bandwidth

    def as_machine(self, template: MachineConfig) -> MachineConfig:
        """A machine config with the fitted network parameters."""
        return template.with_network(bandwidth=self.bandwidth, latency=self.latency)


def fit_hockney(
    sizes: Sequence[int], times: Sequence[float], weights: Optional[Sequence[float]] = None
) -> HockneyFit:
    """Weighted least-squares fit of the Hockney model.

    By default points are weighted by ``1 / T`` so the small-message
    (latency) regime is not drowned out by the large transfers.
    """
    m = np.asarray(sizes, dtype=float)
    t = np.asarray(times, dtype=float)
    if m.shape != t.shape:
        raise ValueError("sizes and times must have the same length")
    if m.size < 2:
        raise ValueError("need at least two points to fit two parameters")
    if np.any(t <= 0) or np.any(m < 0):
        raise ValueError("times must be positive and sizes non-negative")
    w = np.asarray(weights, dtype=float) if weights is not None else 1.0 / t
    if w.shape != t.shape:
        raise ValueError("weights must match the data length")
    # Design: T = a + b*m with a = latency, b = 1/bandwidth.
    A = np.column_stack([np.ones_like(m), m])
    Aw = A * w[:, None]
    tw = t * w
    coef, *_ = np.linalg.lstsq(Aw, tw, rcond=None)
    a, b = float(coef[0]), float(coef[1])
    if b <= 0:
        # Degenerate data (e.g., constant times): fall back to latency-only.
        b = 1e-15
    residuals = t - (a + b * m)
    return HockneyFit(
        latency=max(a, 0.0),
        bandwidth=1.0 / b,
        residual_rms=float(np.sqrt(np.mean(residuals**2))),
        n_points=int(m.size),
    )


def measure_pingpong(
    machine: MachineConfig,
    model: str = "packet-flow",
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 3,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic ping-pong benchmark against a simulated machine.

    Two ranks on distinct nodes bounce each message size ``repeats``
    times; returns (sizes, mean one-way times), ready for
    :func:`fit_hockney`.
    """
    from repro.sim.mpi_replay import simulate_trace

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    times: List[float] = []
    for size in sizes:
        ops0: List[Op] = []
        ops1: List[Op] = []
        for i in range(repeats):
            ops0.append(Op(OpKind.SEND, peer=1, nbytes=size, tag=i))
            ops0.append(Op(OpKind.RECV, peer=1, nbytes=size, tag=repeats + i))
            ops1.append(Op(OpKind.RECV, peer=0, nbytes=size, tag=i))
            ops1.append(Op(OpKind.SEND, peer=0, nbytes=size, tag=repeats + i))
        trace = TraceSet(
            f"pingpong.{size}", "PingPong", [ops0, ops1],
            machine=machine.name, ranks_per_node=1,
        )
        result = simulate_trace(trace, machine, model)
        # total time = repeats round trips = 2 * repeats one-way times.
        times.append(result.total_time / (2 * repeats))
    return np.asarray(sizes, dtype=float), np.asarray(times)
