"""The three machines of the study (Section V-A).

Network bandwidth/latency values are the paper's published settings:

* Cielito — 64-node Cray XE6 (Gemini 3-D torus): 10 Gb/s, 2,500 ns
* Hopper  — Cray XE6 (Gemini 3-D torus): 35 Gb/s, 2,575 ns
* Edison  — Cray XC30 (Aries dragonfly): 24 Gb/s, 1,300 ns
"""

from __future__ import annotations

from typing import Dict, List

from repro.machines.config import MachineConfig
from repro.util.units import gbps_to_bytes_per_s, ns_to_s

__all__ = ["CIELITO", "HOPPER", "EDISON", "MACHINES", "get_machine", "machine_names"]

CIELITO = MachineConfig(
    name="cielito",
    bandwidth=gbps_to_bytes_per_s(10.0),
    latency=ns_to_s(2500.0),
    topology="torus3d",
    cores_per_node=16,
    hop_latency=ns_to_s(105.0),
    software_overhead=1.2e-6,
)

HOPPER = MachineConfig(
    name="hopper",
    bandwidth=gbps_to_bytes_per_s(35.0),
    latency=ns_to_s(2575.0),
    topology="torus3d",
    cores_per_node=24,
    hop_latency=ns_to_s(105.0),
    software_overhead=1.2e-6,
)

EDISON = MachineConfig(
    name="edison",
    bandwidth=gbps_to_bytes_per_s(24.0),
    latency=ns_to_s(1300.0),
    topology="dragonfly",
    cores_per_node=24,
    hop_latency=ns_to_s(60.0),
    software_overhead=0.9e-6,
)

MACHINES: Dict[str, MachineConfig] = {m.name: m for m in (CIELITO, HOPPER, EDISON)}


def get_machine(name: str) -> MachineConfig:
    """Look up a preset machine by name (case-insensitive)."""
    try:
        return MACHINES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(MACHINES))
        raise KeyError(f"unknown machine {name!r} (known: {known})") from None


def machine_names() -> List[str]:
    """Names of the three study machines."""
    return sorted(MACHINES)
