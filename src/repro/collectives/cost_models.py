"""Closed-form Thakur–Gropp collective cost models (MFACT side).

MFACT prices a collective as ``T = a * alpha + b / B`` where ``alpha``
is the network latency, ``B`` the bandwidth, ``a`` the number of
latency-bound steps on the critical path, and ``b`` the bytes moved on
the critical path.  The coefficients below are the standard Thakur–Gropp
expressions for the algorithms :mod:`repro.collectives.algorithms`
actually issues, so the model and the contention-free simulation agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.collectives.algorithms import ALLTOALL_BRUCK_MAX_BYTES, _CONTROL_BYTES
from repro.trace.events import OpKind

__all__ = ["CollectiveCost", "collective_cost"]


@dataclass(frozen=True)
class CollectiveCost:
    """Critical-path coefficients of a collective.

    ``time = alpha_count * latency + bytes_on_wire / bandwidth``
    """

    alpha_count: float
    bytes_on_wire: float

    def time(self, latency: float, bandwidth: float) -> float:
        """Evaluate the Hockney-style cost for one network configuration."""
        return self.alpha_count * latency + self.bytes_on_wire / bandwidth


def _ceil_log2(p: int) -> int:
    return max(0, (p - 1).bit_length())


def collective_cost(kind: OpKind, p: int, nbytes: int) -> CollectiveCost:
    """Critical-path cost coefficients for one collective call.

    Parameters mirror :func:`repro.collectives.algorithms.schedule_collective`:
    ``p`` is the communicator size and ``nbytes`` the per-rank (per-pair
    for ALLTOALL) payload.
    """
    if p < 1:
        raise ValueError(f"communicator size must be >= 1, got {p}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if p == 1:
        return CollectiveCost(0.0, 0.0)
    lg = _ceil_log2(p)
    if kind == OpKind.BARRIER:
        return CollectiveCost(lg, lg * _CONTROL_BYTES)
    if kind in (OpKind.BCAST, OpKind.REDUCE):
        return CollectiveCost(lg, lg * nbytes)
    if kind == OpKind.ALLREDUCE:
        # Recursive doubling; non-power-of-two adds a fold + unfold step.
        extra = 0 if p & (p - 1) == 0 else 2
        steps = lg if p & (p - 1) == 0 else int(math.floor(math.log2(p)))
        return CollectiveCost(steps + extra, (steps + extra) * nbytes)
    if kind == OpKind.ALLGATHER:
        # Bruck: log p steps moving (p-1)*m bytes total on the critical path.
        return CollectiveCost(lg, (p - 1) * nbytes)
    if kind == OpKind.ALLTOALL:
        if nbytes <= ALLTOALL_BRUCK_MAX_BYTES:
            # Bruck: each of the lg rounds carries about p/2 blocks.
            return CollectiveCost(lg, lg * (p / 2.0) * nbytes)
        return CollectiveCost(p - 1, (p - 1) * nbytes)
    if kind in (OpKind.GATHER, OpKind.SCATTER):
        return CollectiveCost(lg, (p - 1) * nbytes)
    if kind == OpKind.REDUCE_SCATTER:
        # Binomial reduce of the full p*m vector, then binomial scatter.
        return CollectiveCost(2 * lg, lg * p * nbytes + (p - 1) * nbytes)
    raise ValueError(f"{kind!r} is not a collective op kind")
