"""Thakur–Gropp collective algorithm decompositions.

The simulator replays collectives as the point-to-point message schedule
a Thakur–Gropp MPICH implementation would issue: binomial trees for
rooted collectives, recursive doubling / dissemination for allreduce and
barrier, Bruck for allgather and small alltoall, pairwise exchange for
large alltoall.

A schedule maps each participating *world* rank to a list of
:class:`Phase` objects.  Within one phase a rank posts all its receives,
issues all its sends, and proceeds once every message of the phase has
completed; phases of different ranks need not be aligned globally (tree
leaves have fewer phases than the root).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.trace.events import OpKind

__all__ = ["Phase", "Schedule", "ALLTOALL_BRUCK_MAX_BYTES", "schedule_collective"]

#: Per-pair payload threshold below which alltoall uses the Bruck
#: algorithm (log p rounds) instead of pairwise exchange (p-1 rounds).
#: Real MPICH switches around a few hundred bytes; we keep Bruck for
#: larger payloads because at the corpus's communicator sizes pairwise
#: exchange generates O(p^2) messages per call, which is what made the
#: paper's packet simulations take a thousand times MFACT's runtime.
ALLTOALL_BRUCK_MAX_BYTES = 32 * 1024

#: Payload carried by barrier/synchronization control messages.
_CONTROL_BYTES = 8


@dataclass(frozen=True)
class Phase:
    """One communication step of a rank inside a collective."""

    sends: Tuple[Tuple[int, int], ...] = ()  # (peer world rank, nbytes)
    recvs: Tuple[Tuple[int, int], ...] = ()


#: One collective's full schedule: world rank -> ordered phases.
Schedule = Dict[int, List[Phase]]


def _ceil_log2(p: int) -> int:
    return max(0, (p - 1).bit_length())


def _empty(ranks: Sequence[int]) -> Schedule:
    return {r: [] for r in ranks}


def _dissemination(ranks: Sequence[int], nbytes: int) -> Schedule:
    """Dissemination pattern: round k exchanges with offset 2^k peers."""
    p = len(ranks)
    sched = _empty(ranks)
    k = 1
    while k < p:
        for i, world in enumerate(ranks):
            to = ranks[(i + k) % p]
            frm = ranks[(i - k) % p]
            sched[world].append(Phase(sends=((to, nbytes),), recvs=((frm, nbytes),)))
        k *= 2
    return sched


def _binomial_bcast(ranks: Sequence[int], root_idx: int, nbytes: int) -> Schedule:
    """Binomial-tree broadcast over comm indices, rotated so root is 0."""
    p = len(ranks)
    sched = _empty(ranks)
    rounds = _ceil_log2(p)
    # Virtual index v = (i - root_idx) mod p; root has v = 0.
    for k in range(rounds):
        stride = 1 << (rounds - 1 - k)
        for v in range(0, p, 2 * stride):
            u = v + stride
            if u >= p:
                continue
            src = ranks[(v + root_idx) % p]
            dst = ranks[(u + root_idx) % p]
            sched[src].append(Phase(sends=((dst, nbytes),)))
            sched[dst].append(Phase(recvs=((src, nbytes),)))
    return sched


def _binomial_reduce(ranks: Sequence[int], root_idx: int, nbytes: int) -> Schedule:
    """Binomial-tree reduction: the broadcast tree with edges reversed."""
    bcast = _binomial_bcast(ranks, root_idx, nbytes)
    sched = _empty(ranks)
    for world, phases in bcast.items():
        for phase in reversed(phases):
            sends = tuple((peer, n) for peer, n in phase.recvs)
            recvs = tuple((peer, n) for peer, n in phase.sends)
            sched[world].append(Phase(sends=sends, recvs=recvs))
    return sched


def _recursive_doubling_allreduce(ranks: Sequence[int], nbytes: int) -> Schedule:
    """Recursive doubling with the standard non-power-of-two fold."""
    p = len(ranks)
    sched = _empty(ranks)
    pow2 = 1 << (p.bit_length() - 1)
    if pow2 > p:
        pow2 //= 2
    rem = p - pow2
    # Fold: ranks[pow2 + j] sends its data to ranks[j], which joins the core.
    for j in range(rem):
        extra, core = ranks[pow2 + j], ranks[j]
        sched[extra].append(Phase(sends=((core, nbytes),)))
        sched[core].append(Phase(recvs=((extra, nbytes),)))
    k = 1
    while k < pow2:
        for i in range(pow2):
            partner = ranks[i ^ k]
            sched[ranks[i]].append(
                Phase(sends=((partner, nbytes),), recvs=((partner, nbytes),))
            )
        k *= 2
    # Unfold: results go back to the extra ranks.
    for j in range(rem):
        extra, core = ranks[pow2 + j], ranks[j]
        sched[core].append(Phase(sends=((extra, nbytes),)))
        sched[extra].append(Phase(recvs=((core, nbytes),)))
    return sched


def _bruck_allgather(ranks: Sequence[int], nbytes: int) -> Schedule:
    """Bruck allgather: log p rounds with doubling block sizes."""
    p = len(ranks)
    sched = _empty(ranks)
    k = 1
    while k < p:
        size = nbytes * min(k, p - k)
        for i, world in enumerate(ranks):
            to = ranks[(i - k) % p]
            frm = ranks[(i + k) % p]
            sched[world].append(Phase(sends=((to, size),), recvs=((frm, size),)))
        k *= 2
    return sched


def _bruck_alltoall(ranks: Sequence[int], nbytes: int) -> Schedule:
    """Bruck alltoall: round k moves all blocks whose index has bit k set."""
    p = len(ranks)
    sched = _empty(ranks)
    k = 1
    while k < p:
        blocks = sum(1 for i in range(1, p) if i & k)
        size = nbytes * blocks
        for i, world in enumerate(ranks):
            to = ranks[(i + k) % p]
            frm = ranks[(i - k) % p]
            sched[world].append(Phase(sends=((to, size),), recvs=((frm, size),)))
        k *= 2
    return sched


def _pairwise_alltoall(ranks: Sequence[int], nbytes: int) -> Schedule:
    """Pairwise exchange: p-1 rounds, round j pairs i with i+j / i-j."""
    p = len(ranks)
    sched = _empty(ranks)
    for j in range(1, p):
        for i, world in enumerate(ranks):
            to = ranks[(i + j) % p]
            frm = ranks[(i - j) % p]
            sched[world].append(Phase(sends=((to, nbytes),), recvs=((frm, nbytes),)))
    return sched


def _binomial_gather(ranks: Sequence[int], root_idx: int, nbytes: int) -> Schedule:
    """Binomial gather: reduce tree with subtree-sized payloads."""
    p = len(ranks)
    sched = _empty(ranks)
    rounds = _ceil_log2(p)
    # Work on virtual indices (root = 0); child u sends its whole subtree.
    subtree = [1] * p
    steps: List[Tuple[int, int, int]] = []  # (child v, parent v, payload blocks)
    for k in range(rounds):
        stride = 1 << k
        for v in range(0, p, 2 * stride):
            u = v + stride
            if u >= p:
                continue
            steps.append((u, v, subtree[u]))
            subtree[v] += subtree[u]
    for child, parent, blocks in steps:
        src = ranks[(child + root_idx) % p]
        dst = ranks[(parent + root_idx) % p]
        size = nbytes * blocks
        sched[src].append(Phase(sends=((dst, size),)))
        sched[dst].append(Phase(recvs=((src, size),)))
    return sched


def _binomial_scatter(ranks: Sequence[int], root_idx: int, nbytes: int) -> Schedule:
    """Binomial scatter: the gather tree reversed."""
    gather = _binomial_gather(ranks, root_idx, nbytes)
    sched = _empty(ranks)
    for world, phases in gather.items():
        for phase in reversed(phases):
            sends = tuple((peer, n) for peer, n in phase.recvs)
            recvs = tuple((peer, n) for peer, n in phase.sends)
            sched[world].append(Phase(sends=sends, recvs=recvs))
    return sched


def _reduce_scatter(ranks: Sequence[int], nbytes: int) -> Schedule:
    """Reduce-scatter as binomial reduce of the full vector then scatter."""
    p = len(ranks)
    sched = _binomial_reduce(ranks, 0, nbytes * p)
    scatter = _binomial_scatter(ranks, 0, nbytes)
    for world, phases in scatter.items():
        sched[world].extend(phases)
    return sched


def schedule_collective(
    kind: OpKind, ranks: Sequence[int], nbytes: int, root: int = -1
) -> Schedule:
    """Decompose one collective into its Thakur–Gropp p2p schedule.

    Parameters
    ----------
    kind:
        A collective :class:`OpKind`.
    ranks:
        World ranks of the communicator, in comm-rank order.
    nbytes:
        Per-rank payload (per-pair payload for ALLTOALL).
    root:
        World rank of the root for rooted collectives.
    """
    ranks = tuple(ranks)
    p = len(ranks)
    if p == 0:
        raise ValueError("collective over empty communicator")
    if p == 1:
        return _empty(ranks)
    if kind in (OpKind.BCAST, OpKind.REDUCE, OpKind.GATHER, OpKind.SCATTER):
        try:
            root_idx = ranks.index(root)
        except ValueError:
            raise ValueError(f"root {root} not in communicator {ranks[:8]}...") from None
    if kind == OpKind.BARRIER:
        return _dissemination(ranks, _CONTROL_BYTES)
    if kind == OpKind.BCAST:
        return _binomial_bcast(ranks, root_idx, nbytes)
    if kind == OpKind.REDUCE:
        return _binomial_reduce(ranks, root_idx, nbytes)
    if kind == OpKind.ALLREDUCE:
        return _recursive_doubling_allreduce(ranks, nbytes)
    if kind == OpKind.ALLGATHER:
        return _bruck_allgather(ranks, nbytes)
    if kind == OpKind.ALLTOALL:
        if nbytes <= ALLTOALL_BRUCK_MAX_BYTES:
            return _bruck_alltoall(ranks, nbytes)
        return _pairwise_alltoall(ranks, nbytes)
    if kind == OpKind.GATHER:
        return _binomial_gather(ranks, root_idx, nbytes)
    if kind == OpKind.SCATTER:
        return _binomial_scatter(ranks, root_idx, nbytes)
    if kind == OpKind.REDUCE_SCATTER:
        return _reduce_scatter(ranks, nbytes)
    raise ValueError(f"{kind!r} is not a collective op kind")
