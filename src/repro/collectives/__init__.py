"""Collective communication: Thakur–Gropp schedules and cost models."""

from repro.collectives.algorithms import (
    ALLTOALL_BRUCK_MAX_BYTES,
    Phase,
    Schedule,
    schedule_collective,
)
from repro.collectives.cost_models import CollectiveCost, collective_cost

__all__ = [
    "Phase",
    "Schedule",
    "schedule_collective",
    "ALLTOALL_BRUCK_MAX_BYTES",
    "CollectiveCost",
    "collective_cost",
]
