"""Study coordinator: lease-based sharding with heartbeats and a journal.

One :class:`Coordinator` owns the authoritative state of every
submitted study.  Specs are sharded across registered workers by
**rendezvous hashing on the spec cache key** (the same key the record
cache uses), so the shard map is stable under worker churn and a
re-submitted study lands on the same hosts' warm caches.  Work is
pull-based: a worker's ``ready`` request leases it one spec — its
preferred shard when one is pending, any pending spec otherwise (work
stealing keeps a dead shard from stalling the study).

Robustness invariants:

* **Leases, not locks.**  An assignment is a lease ``(worker_id,
  deadline, generation)``; heartbeats extend it.  When a worker's
  heartbeats stop past ``heartbeat_timeout`` (SIGKILL, partition) or a
  lease deadline passes, the tick loop reclaims the spec — back to
  pending at the next lease generation, ready for reassignment.
* **Exactly-once completion, at-least-once delivery.**  The first
  result for a spec wins and is journaled; duplicates (a worker
  resending after a connection drop, or a reclaimed lease whose
  original worker was merely slow) are acknowledged and counted, never
  double-recorded.  Records are idempotent by cache key, so the wasted
  work is a cache hit.
* **Crash-consistent restart.**  Every completion is fsync'd to the
  :class:`~repro.serve.journal.Journal` before it is acknowledged; a
  restarted coordinator replays the journal and resumes each study
  from its finished entries rather than restarting it.
* **Graceful degradation.**  A study whose pending specs see no live
  worker for ``fallback_grace`` seconds is driven locally, in-process,
  through the identical :func:`~repro.core.executor.drive_spec` path —
  a coordinator with zero workers is just a slow serial executor.

Lease deadlines, heartbeat ages and tick timers are monotonic-clock
state kept in memory only; nothing time-derived is serialized into
protocol replies or journal events (walltimes inside manifest entries
are measured by the executor and arrive as plain data).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import socket
import threading
from pathlib import Path
from time import monotonic as _now
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.executor import drive_spec, spec_cache_key, study_options
from repro.core.pipeline import SIM_MODELS
from repro.core.resilience import QuarantineRegistry, RetryPolicy
from repro.serve import protocol
from repro.serve.journal import Journal
from repro.util.fingerprint import code_version
from repro.util.manifest import ManifestEntry, RunManifest

__all__ = ["Coordinator", "spec_from_json", "spec_to_json"]

#: Suggested delay (seconds) a worker should wait before re-asking for
#: work when nothing is pending.
_WAIT_BACKOFF = 0.1

#: Accept timeout doubling as the tick cadence for lease/heartbeat
#: expiry and the local-fallback check.
_ACCEPT_TICK = 0.05

#: Cap on memoized cheap-query replies (each is a small JSON dict).
_QUERY_CACHE_MAX = 128


def spec_to_json(spec) -> dict:
    """A :class:`~repro.workloads.suite.TraceSpec` as a wire object."""
    return dataclasses.asdict(spec)


def spec_from_json(data: dict):
    """Rebuild a spec from :func:`spec_to_json` output (tolerant of
    unknown future fields, like the manifest loader)."""
    from repro.workloads.suite import TraceSpec

    known = {f.name for f in dataclasses.fields(TraceSpec)}
    return TraceSpec(**{k: v for k, v in data.items() if k in known})


@dataclasses.dataclass
class _Slot:
    """One spec's scheduling state inside a study."""

    index: int
    spec: object
    key: str  # spec cache key — the shard key
    state: str = "pending"  # pending | leased | done
    lease_worker: str = ""
    lease_gen: int = 0  # bumped every reclaim; stamped on the entry
    lease_deadline: float = 0.0  # monotonic; in-memory only
    entry: Optional[dict] = None
    record: Optional[dict] = None


@dataclasses.dataclass
class _Study:
    study_id: str
    specs: List[object]
    options: dict
    seed: Optional[int]
    retry: dict
    slots: Dict[int, _Slot]
    metrics: Optional[obs.MetricsRegistry] = None
    local_running: bool = False

    @property
    def done(self) -> int:
        return sum(1 for s in self.slots.values() if s.state == "done")

    @property
    def complete(self) -> bool:
        return all(s.state == "done" for s in self.slots.values())


@dataclasses.dataclass
class _WorkerSeat:
    worker_id: str
    last_seen: float  # monotonic; in-memory only
    connected: bool = True


class Coordinator:
    """Shards studies across workers; survives their deaths (and its own)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_root: Optional[Union[str, "object"]] = None,
        quarantine_root: Optional[Union[str, "object"]] = None,
        journal_path: Optional[Union[str, "object"]] = None,
        lease_timeout: float = 10.0,
        heartbeat_timeout: Optional[float] = None,
        fallback_grace: float = 2.0,
        retry: Optional[RetryPolicy] = None,
        collect_metrics: bool = False,
        conn_timeout: float = protocol.DEFAULT_TIMEOUT,
    ):
        self._host = host
        self._port = port
        self.cache_root = str(cache_root) if cache_root is not None else None
        self.lease_timeout = float(lease_timeout)
        self.heartbeat_timeout = float(
            heartbeat_timeout if heartbeat_timeout is not None else lease_timeout
        )
        self.fallback_grace = float(fallback_grace)
        self.retry = retry if retry is not None else RetryPolicy()
        self.collect_metrics = bool(collect_metrics)
        self.conn_timeout = float(conn_timeout)
        self.address: Optional[Tuple[str, int]] = None

        self._lock = threading.RLock()
        self._studies: Dict[str, _Study] = {}
        self._workers: Dict[str, _WorkerSeat] = {}
        # Memoized cheap-query replies keyed by spec cache key
        # (insertion-ordered; oldest entry evicted past the cap).
        self._query_cache: Dict[str, dict] = {}
        self._draining = False
        self._running = False
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._seen_any_worker = False
        self._started_at = 0.0
        #: Set once draining has finished every submitted study.
        self.drained = threading.Event()

        self.metrics = obs.MetricsRegistry() if self.collect_metrics else None
        self.quarantine: Optional[QuarantineRegistry] = None
        self.quarantine_pruned = 0
        if quarantine_root is not None or self.cache_root is not None:
            root = (
                quarantine_root
                if quarantine_root is not None
                else Path(self.cache_root).parent / "quarantine"
            )
            self.quarantine = QuarantineRegistry(root)
            self.quarantine_pruned = self.quarantine.prune_stale(code_version())

        self.journal: Optional[Journal] = None
        if journal_path is not None:
            self.journal = Journal(journal_path)
            self._replay(self.journal.replay())

    # -- journal replay ----------------------------------------------------

    def _replay(self, events: Sequence[dict]) -> None:
        """Rebuild study state from journal events (crash recovery)."""
        for event in events:
            kind = event.get("event")
            if kind == "study":
                try:
                    specs = [spec_from_json(s) for s in event["specs"]]
                    self._register_study(
                        event["study_id"],
                        specs,
                        dict(event["options"]),
                        event.get("seed"),
                        dict(event.get("retry") or {}),
                        journal=False,
                    )
                except (KeyError, TypeError, ValueError):
                    continue  # torn or legacy event: skip, the study can resubmit
            elif kind == "entry":
                study = self._studies.get(event.get("study_id", ""))
                if study is None:
                    continue
                slot = study.slots.get(event.get("index", -1))
                if slot is None or slot.state == "done":
                    continue
                slot.state = "done"
                slot.entry = event.get("entry")
                slot.record = event.get("record")
                slot.lease_gen = int(event.get("lease", slot.lease_gen))

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and run the accept/tick loop in a thread."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.settimeout(_ACCEPT_TICK)
        sock.bind((self._host, self._port))
        sock.listen(64)
        self._sock = sock
        self.address = sock.getsockname()[:2]
        self._running = True
        self._started_at = _now()
        self._thread = threading.Thread(
            target=self._serve_loop, name="repro-serve-coordinator", daemon=True
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        if self.journal is not None:
            self.journal.close()

    def _serve_loop(self) -> None:
        while self._running:
            try:
                conn, addr = self._sock.accept()
            except TimeoutError:
                self._tick()
                continue
            except OSError:
                break
            conn.settimeout(self.conn_timeout)
            handler = threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            )
            handler.start()

    # -- connection handling -----------------------------------------------

    def _handle(self, conn: socket.socket) -> None:
        worker_id = ""
        try:
            while self._running:
                try:
                    message = protocol.recv_frame(conn)
                except TimeoutError:
                    # Idle connection: keep waiting while its worker is
                    # still considered alive, drop it otherwise.
                    if worker_id and not self._worker_live(worker_id):
                        break
                    continue
                if message is None:
                    break
                if message.get("worker_id"):
                    worker_id = str(message["worker_id"])
                reply = self._dispatch(message)
                if reply is not None:
                    protocol.send_frame(conn, reply)
        except (protocol.ProtocolError, OSError):
            pass
        finally:
            if worker_id:
                with self._lock:
                    seat = self._workers.get(worker_id)
                    if seat is not None:
                        seat.connected = False
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, message: dict) -> Optional[dict]:
        kind = message.get("type")
        if kind == "hello":
            return self._on_hello(message)
        if kind == "heartbeat":
            self._touch(str(message.get("worker_id", "")))
            return None  # fire-and-forget
        if kind == "ready":
            return self._on_ready(message)
        if kind == "result":
            return self._on_result(message)
        if kind == "goodbye":
            return self._on_goodbye(message)
        if kind == "submit":
            return self._on_submit(message)
        if kind == "poll":
            return self._on_poll(message)
        if kind == "fetch":
            return self._on_fetch(message)
        if kind == "status":
            return self._on_status(message)
        if kind == "query":
            return self._on_query(message)
        if kind == "drain":
            with self._lock:
                self._draining = True
                self._check_drained()
            return {"type": "ack", "draining": True}
        return {"type": "error", "error": f"unknown message type {kind!r}"}

    # -- worker registry ---------------------------------------------------

    def _touch(self, worker_id: str) -> None:
        if not worker_id:
            return
        with self._lock:
            seat = self._workers.get(worker_id)
            if seat is None:
                seat = _WorkerSeat(worker_id=worker_id, last_seen=_now())
                self._workers[worker_id] = seat
            else:
                seat.last_seen = _now()
                seat.connected = True
            self._seen_any_worker = True
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_serve_heartbeats_total", worker=worker_id
                ).inc()
            # A live heartbeat extends every lease the worker holds.
            deadline = _now() + self.lease_timeout
            for study in self._studies.values():
                for slot in study.slots.values():
                    if slot.state == "leased" and slot.lease_worker == worker_id:
                        slot.lease_deadline = deadline

    def _worker_live(self, worker_id: str) -> bool:
        with self._lock:
            seat = self._workers.get(worker_id)
            if seat is None:
                return False
            return (_now() - seat.last_seen) <= self.heartbeat_timeout

    def _live_workers(self) -> List[str]:
        cutoff = _now() - self.heartbeat_timeout
        return sorted(
            wid
            for wid, seat in self._workers.items()
            if seat.connected and seat.last_seen >= cutoff
        )

    def _on_hello(self, message: dict) -> dict:
        worker_id = str(message.get("worker_id", ""))
        self._touch(worker_id)
        return {
            "type": "welcome",
            "heartbeat_interval": max(0.05, self.lease_timeout / 5.0),
            "lease_timeout": self.lease_timeout,
        }

    def _on_goodbye(self, message: dict) -> dict:
        worker_id = str(message.get("worker_id", ""))
        with self._lock:
            seat = self._workers.get(worker_id)
            if seat is not None:
                seat.connected = False
            # Graceful exit: the worker will not finish these — reclaim
            # immediately instead of waiting out the heartbeat timeout.
            for study in self._studies.values():
                for slot in study.slots.values():
                    if slot.state == "leased" and slot.lease_worker == worker_id:
                        self._reclaim(slot)
        return {"type": "ack"}

    # -- scheduling --------------------------------------------------------

    def _shard_owner(self, key: str, live: Sequence[str]) -> str:
        """Rendezvous hash: the live worker with the highest score for
        ``key``.  Stable under churn — removing one worker only moves
        that worker's specs."""
        best, best_score = "", b""
        for wid in live:
            score = hashlib.sha256(f"{key}\0{wid}".encode("utf-8")).digest()
            if score > best_score:
                best, best_score = wid, score
        return best

    def _expire_leases(self) -> None:
        now = _now()
        dead_cutoff = now - self.heartbeat_timeout
        for study in self._studies.values():
            for slot in study.slots.values():
                if slot.state != "leased" or slot.lease_worker == "local":
                    continue
                seat = self._workers.get(slot.lease_worker)
                worker_dead = seat is None or (
                    not seat.connected and seat.last_seen < dead_cutoff
                )
                if slot.lease_deadline < now or worker_dead:
                    self._reclaim(slot)

    def _reclaim(self, slot: _Slot) -> None:
        slot.state = "pending"
        slot.lease_worker = ""
        slot.lease_deadline = 0.0
        slot.lease_gen += 1
        if self.metrics is not None:
            self.metrics.counter("repro_serve_leases_reclaimed_total").inc()

    def _on_ready(self, message: dict) -> dict:
        worker_id = str(message.get("worker_id", ""))
        self._touch(worker_id)
        with self._lock:
            self._expire_leases()
            live = self._live_workers()
            assignment = self._next_slot(worker_id, live)
            if assignment is None:
                if self._draining and all(
                    s.complete for s in self._studies.values()
                ):
                    return {"type": "drain"}
                return {"type": "wait", "backoff": _WAIT_BACKOFF}
            study, slot = assignment
            slot.state = "leased"
            slot.lease_worker = worker_id
            slot.lease_deadline = _now() + self.lease_timeout
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_serve_assignments_total", worker=worker_id
                ).inc()
            return {
                "type": "assign",
                "study_id": study.study_id,
                "index": slot.index,
                "lease": slot.lease_gen,
                "spec": spec_to_json(slot.spec),
                "options": study.options,
                "seed": study.seed,
                "retry": study.retry,
            }

    def _next_slot(
        self, worker_id: str, live: Sequence[str]
    ) -> Optional[Tuple[_Study, _Slot]]:
        """Preferred shard first, then any pending spec (work stealing)."""
        fallback: Optional[Tuple[_Study, _Slot]] = None
        for study in self._studies.values():
            for index in sorted(study.slots):
                slot = study.slots[index]
                if slot.state != "pending":
                    continue
                if self._shard_owner(slot.key, live) == worker_id:
                    return study, slot
                if fallback is None:
                    fallback = (study, slot)
        return fallback

    # -- completion --------------------------------------------------------

    def _on_result(self, message: dict) -> dict:
        worker_id = str(message.get("worker_id", ""))
        self._touch(worker_id)
        study_id = str(message.get("study_id", ""))
        with self._lock:
            study = self._studies.get(study_id)
            if study is None:
                # Journal lost or study never submitted here (e.g. the
                # coordinator restarted without its journal): tell the
                # worker to drop the buffered result.
                return {"type": "ack", "unknown": True}
            slot = study.slots.get(int(message.get("index", -1)))
            if slot is None:
                return {"type": "ack", "unknown": True}
            if slot.state == "done":
                if self.metrics is not None:
                    self.metrics.counter("repro_serve_duplicates_total").inc()
                return {"type": "ack", "duplicate": True}
            entry = message.get("entry")
            if not isinstance(entry, dict):
                return {"type": "error", "error": "result without an entry"}
            self._complete(
                study,
                slot,
                worker_id,
                entry,
                message.get("record"),
                message.get("metrics"),
                lease=int(message.get("lease", slot.lease_gen)),
            )
            return {"type": "ack"}

    def _complete(
        self,
        study: _Study,
        slot: _Slot,
        worker_id: str,
        entry: dict,
        record: Optional[dict],
        metrics: Optional[dict],
        lease: Optional[int] = None,
    ) -> None:
        entry = dict(entry)
        entry["worker_id"] = worker_id
        entry["lease"] = slot.lease_gen if lease is None else lease
        slot.state = "done"
        slot.lease_worker = ""
        slot.lease_deadline = 0.0
        slot.entry = entry
        slot.record = record
        if self.journal is not None:
            self.journal.append(
                {
                    "event": "entry",
                    "study_id": study.study_id,
                    "index": slot.index,
                    "lease": entry["lease"],
                    "worker_id": worker_id,
                    "entry": entry,
                    "record": record,
                }
            )
        if study.metrics is not None:
            study.metrics.merge_snapshot(metrics)
            study.metrics.counter(
                "repro_serve_records_total", worker=worker_id
            ).inc()
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_results_total", worker=worker_id
            ).inc()
        self._check_drained()

    def _check_drained(self) -> None:
        if self._draining and all(s.complete for s in self._studies.values()):
            self.drained.set()

    # -- client API --------------------------------------------------------

    @staticmethod
    def study_id_for(specs: Sequence, options: dict, seed, retry: dict) -> str:
        """Content-derived study id: resubmitting the same study is a
        no-op join, which is what makes client retry after a
        coordinator restart safe."""
        image = json.dumps(
            {
                "specs": [spec_to_json(s) for s in specs],
                "engines": list(options.get("engines", ())),
                "record_timeout": options.get("record_timeout"),
                "event_budget": options.get("event_budget"),
                "lint_gate": options.get("lint_gate", False),
                "seed": seed,
                "retry": retry,
            },
            sort_keys=True,
        )
        return "study-" + hashlib.sha256(image.encode("utf-8")).hexdigest()[:16]

    def _register_study(
        self,
        study_id: str,
        specs: Sequence,
        options: dict,
        seed,
        retry: dict,
        journal: bool = True,
    ) -> _Study:
        engines = tuple(options.get("engines", SIM_MODELS))
        slots = {
            spec.index: _Slot(
                index=spec.index, spec=spec, key=spec_cache_key(spec, engines)
            )
            for spec in specs
        }
        study = _Study(
            study_id=study_id,
            specs=list(specs),
            options=dict(options),
            seed=seed,
            retry=dict(retry),
            slots=slots,
            metrics=obs.MetricsRegistry() if self.collect_metrics else None,
        )
        self._studies[study_id] = study
        if journal and self.journal is not None:
            self.journal.append(
                {
                    "event": "study",
                    "study_id": study_id,
                    "specs": [spec_to_json(s) for s in specs],
                    "options": dict(options),
                    "seed": seed,
                    "retry": dict(retry),
                }
            )
        return study

    def _on_submit(self, message: dict) -> dict:
        if self._draining:
            return {"type": "error", "error": "coordinator is draining"}
        try:
            specs = [spec_from_json(s) for s in message.get("specs", [])]
        except (TypeError, ValueError) as exc:
            return {"type": "error", "error": f"bad spec: {exc}"}
        if not specs:
            return {"type": "error", "error": "submit carries no specs"}
        seed = message.get("seed")
        retry = dict(message.get("retry") or self.retry.to_json())
        options = study_options(
            cache_root=self.cache_root,
            lint_gate=bool(message.get("lint_gate", False)),
            engines=tuple(message.get("engines") or SIM_MODELS),
            record_timeout=message.get("record_timeout"),
            event_budget=message.get("event_budget"),
            metrics=self.collect_metrics,
        )
        study_id = self.study_id_for(specs, options, seed, retry)
        with self._lock:
            study = self._studies.get(study_id)
            if study is None:
                study = self._register_study(study_id, specs, options, seed, retry)
            return {
                "type": "submitted",
                "study_id": study_id,
                "total": len(study.slots),
                "done": study.done,
            }

    def _on_poll(self, message: dict) -> dict:
        study_id = str(message.get("study_id", ""))
        with self._lock:
            study = self._studies.get(study_id)
            if study is None:
                return {"type": "error", "error": f"unknown study {study_id!r}"}
            failed = sum(
                1
                for s in study.slots.values()
                if s.state == "done" and (s.entry or {}).get("status") != "ok"
            )
            return {
                "type": "study-status",
                "study_id": study_id,
                "state": "done" if study.complete else "running",
                "done": study.done,
                "total": len(study.slots),
                "failed": failed,
                "workers": self._live_workers(),
            }

    def _on_fetch(self, message: dict) -> dict:
        study_id = str(message.get("study_id", ""))
        with self._lock:
            study = self._studies.get(study_id)
            if study is None:
                return {"type": "error", "error": f"unknown study {study_id!r}"}
            entries = [
                study.slots[i].entry
                for i in sorted(study.slots)
                if study.slots[i].entry is not None
            ]
            records = [
                study.slots[i].record
                for i in sorted(study.slots)
                if study.slots[i].record is not None
            ]
            manifest = RunManifest(
                seed=study.seed,
                jobs=max(1, len({e.get("worker_id", "") for e in entries})),
                engines=list(study.options.get("engines", ())),
                code_version=code_version(),
                retry_policy=dict(study.retry),
                record_timeout=study.options.get("record_timeout"),
                event_budget=study.options.get("event_budget"),
                entries=[ManifestEntry.from_json(e) for e in entries],
                quarantine_pruned=self.quarantine_pruned,
            )
            if study.metrics is not None:
                snap = study.metrics.snapshot()
                if not snap.is_empty():
                    manifest.metrics = snap.to_json()
            return {
                "type": "study-result",
                "study_id": study_id,
                "complete": study.complete,
                "records": records,
                "manifest": manifest.to_json(),
            }

    def _on_status(self, message: dict) -> dict:
        with self._lock:
            live = set(self._live_workers())
            workers = {
                wid: {"connected": seat.connected, "live": wid in live}
                for wid, seat in sorted(self._workers.items())
            }
            studies = {
                sid: {
                    "done": study.done,
                    "total": len(study.slots),
                    "complete": study.complete,
                    "leased": sum(
                        1 for s in study.slots.values() if s.state == "leased"
                    ),
                }
                for sid, study in sorted(self._studies.items())
            }
            return {
                "type": "status-report",
                "workers": workers,
                "studies": studies,
                "draining": self._draining,
                "quarantine_pruned": self.quarantine_pruned,
            }

    def _on_query(self, message: dict) -> dict:
        """Answer a zero-replay analytics query without scheduling work.

        ``{"type": "query", "kind": "sensitivity", "spec": {...}}``
        builds the spec's trace in-process, records the max-plus
        dependency graph once (:mod:`repro.sensitivity`) and replies
        with the full sensitivity report.  No study, no lease, no
        worker round-trip — the whole answer costs one modeling replay,
        and repeat queries for the same spec (dashboards, polling
        clients) are memoized by spec cache key.
        """
        what = message.get("kind", "sensitivity")
        if what != "sensitivity":
            return {"type": "error", "error": f"unknown query kind {what!r}"}
        try:
            spec = spec_from_json(dict(message.get("spec") or {}))
            key = spec_cache_key(spec)  # resolves the machine: bad names raise
        except (KeyError, TypeError, ValueError) as exc:
            return {"type": "error", "error": f"bad spec: {exc}"}
        with self._lock:
            report = self._query_cache.get(key)
        if report is not None:
            if obs.enabled():
                obs.counter("repro_serve_query_cache_hits_total").inc()
            return {"type": "sensitivity-report", "cached": True, "report": report}
        # Imported here: the sensitivity stack rides on mfact's replay
        # and is only needed by this one message type.
        from repro.machines.presets import get_machine
        from repro.sensitivity.analysis import analyze_trace
        from repro.workloads.suite import build_trace

        try:
            trace = build_trace(spec)
            report = analyze_trace(trace, get_machine(spec.machine)).to_json()
        except (KeyError, TypeError, ValueError) as exc:
            return {"type": "error", "error": f"query failed: {exc}"}
        with self._lock:
            while len(self._query_cache) >= _QUERY_CACHE_MAX:
                self._query_cache.pop(next(iter(self._query_cache)))
            self._query_cache[key] = report
        if obs.enabled():
            obs.counter("repro_serve_queries_total", kind=what).inc()
        return {"type": "sensitivity-report", "cached": False, "report": report}

    # -- tick: expiry + local fallback --------------------------------------

    def _tick(self) -> None:
        with self._lock:
            self._expire_leases()
            self._check_drained()
            fallback_study: Optional[_Study] = None
            if not self._live_workers():
                if (_now() - self._started_at) >= self.fallback_grace:
                    for study in self._studies.values():
                        if study.local_running:
                            continue
                        if any(
                            s.state == "pending" for s in study.slots.values()
                        ):
                            study.local_running = True
                            fallback_study = study
                            break
        if fallback_study is not None:
            runner = threading.Thread(
                target=self._run_local_fallback,
                args=(fallback_study,),
                name=f"repro-serve-local-{fallback_study.study_id}",
                daemon=True,
            )
            runner.start()

    def _run_local_fallback(self, study: _Study) -> None:
        """Drive pending specs in-process while no worker is live.

        Uses the same :func:`drive_spec` path a worker would, so the
        entries and records are indistinguishable from distributed ones
        apart from ``worker_id == "local"``."""
        slot: Optional[_Slot] = None
        try:
            while True:
                with self._lock:
                    if self._live_workers():
                        return  # a worker came back; let it take over
                    slot = next(
                        (
                            study.slots[i]
                            for i in sorted(study.slots)
                            if study.slots[i].state == "pending"
                        ),
                        None,
                    )
                    if slot is None:
                        return
                    slot.state = "leased"
                    slot.lease_worker = "local"
                    slot.lease_deadline = _now() + 86400.0
                    if self.metrics is not None:
                        self.metrics.counter(
                            "repro_serve_local_fallback_total"
                        ).inc()
                entry, record, snap = drive_spec(
                    slot.spec,
                    study.options,
                    seed=study.seed,
                    retry=RetryPolicy.from_json(study.retry),
                    quarantine=self.quarantine,
                    lease=slot.lease_gen,
                )
                entry.worker_id = "local"
                with self._lock:
                    if slot.state == "done":
                        continue  # a worker raced us; theirs won
                    self._complete(
                        study,
                        slot,
                        "local",
                        dataclasses.asdict(entry),
                        record.to_json() if record is not None else None,
                        snap,
                    )
        finally:
            with self._lock:
                study.local_running = False
                if (
                    slot is not None
                    and slot.state == "leased"
                    and slot.lease_worker == "local"
                ):
                    self._reclaim(slot)
