"""Client API for the distributed study service.

:class:`ServeClient` speaks the same framed protocol as the workers
but opens a fresh connection per call — submit/poll/fetch are cheap,
stateless request/response exchanges, and a per-call connection means
a coordinator restart between calls is invisible to the caller.
:meth:`ServeClient.wait` additionally retries through
:class:`ConnectionError` while polling, so a study survives its
coordinator being SIGKILLed and restarted from the journal mid-wait.

Submission is idempotent: the coordinator derives the study id from
the study's content, so resubmitting after an ambiguous failure joins
the existing study instead of duplicating work.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence, Tuple

from repro.core.pipeline import StudyRecord
from repro.serve import protocol
from repro.util.manifest import RunManifest

__all__ = ["ServeClient", "ServeError", "StudyResult"]


class ServeError(RuntimeError):
    """The coordinator rejected a request (its ``error`` reply)."""


class StudyResult:
    """Fetched study output: records plus the distributed manifest."""

    def __init__(self, records: List[StudyRecord], manifest: RunManifest):
        self.records = records
        self.manifest = manifest


class ServeClient:
    """Submit/poll/fetch client for a :class:`Coordinator`."""

    def __init__(
        self,
        address: Tuple[str, int],
        timeout: float = protocol.DEFAULT_TIMEOUT,
    ):
        self.address = address
        self.timeout = float(timeout)

    def _rpc(self, message: dict) -> dict:
        sock = protocol.connect(*self.address, timeout=self.timeout)
        try:
            protocol.send_frame(sock, message)
            reply = protocol.recv_frame(sock)
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if reply is None:
            raise protocol.ProtocolError("coordinator closed the connection")
        if reply.get("type") == "error":
            raise ServeError(str(reply.get("error", "unknown error")))
        return reply

    # -- study lifecycle ---------------------------------------------------

    def submit(
        self,
        specs: Sequence,
        *,
        seed: Optional[int] = None,
        engines: Optional[Sequence[str]] = None,
        record_timeout: Optional[float] = None,
        event_budget: Optional[int] = None,
        lint_gate: bool = False,
        retry: Optional[dict] = None,
    ) -> str:
        """Submit a study; returns its (content-derived) study id."""
        reply = self._rpc(
            {
                "type": "submit",
                "specs": [dataclasses.asdict(s) for s in specs],
                "seed": seed,
                "engines": list(engines) if engines is not None else None,
                "record_timeout": record_timeout,
                "event_budget": event_budget,
                "lint_gate": lint_gate,
                "retry": retry,
            }
        )
        return str(reply["study_id"])

    def poll(self, study_id: str) -> dict:
        """Study progress: ``{"state", "done", "total", "failed", ...}``."""
        return self._rpc({"type": "poll", "study_id": study_id})

    def wait(
        self,
        study_id: str,
        timeout: float = 120.0,
        interval: float = 0.1,
    ) -> dict:
        """Poll until the study completes (retrying through coordinator
        restarts) or ``timeout`` elapses."""
        deadline = time.monotonic() + timeout
        last: Optional[dict] = None
        while time.monotonic() < deadline:
            try:
                last = self.poll(study_id)
            except (ConnectionError, TimeoutError, OSError):
                time.sleep(interval)
                continue
            if last.get("state") == "done":
                return last
            time.sleep(interval)
        raise TimeoutError(
            f"study {study_id} not done after {timeout}s (last: {last})"
        )

    def result(self, study_id: str) -> StudyResult:
        """The study's records (sorted by index) and its manifest."""
        reply = self._rpc({"type": "fetch", "study_id": study_id})
        records = [
            StudyRecord.from_json(r)
            for r in reply.get("records", [])
            if r is not None
        ]
        manifest = RunManifest.from_json(reply["manifest"])
        return StudyResult(records, manifest)

    # -- cheap queries -----------------------------------------------------

    def query_sensitivity(self, spec) -> dict:
        """Zero-replay sensitivity analytics for one trace spec.

        Unlike :meth:`submit`, this is answered inline by the
        coordinator (no study, no workers): it builds the spec's trace,
        records the max-plus dependency graph once and returns the
        :class:`repro.sensitivity.SensitivityReport` JSON under
        ``"report"``, with ``"cached"`` flagging a memoized answer.
        """
        return self._rpc(
            {
                "type": "query",
                "kind": "sensitivity",
                "spec": dataclasses.asdict(spec),
            }
        )

    # -- service control ---------------------------------------------------

    def status(self) -> dict:
        """Global coordinator status (workers, studies, draining)."""
        return self._rpc({"type": "status"})

    def drain(self) -> dict:
        """Ask the coordinator to wind down once current studies finish."""
        return self._rpc({"type": "drain"})
