"""Length-prefixed JSON framing for the serve wire protocol.

Every message is one frame: a 4-byte big-endian payload length followed
by that many bytes of UTF-8 JSON encoding a single object.  Frames are
self-delimiting, so a reader can always tell a cleanly closed
connection (EOF at a frame boundary, :func:`recv_frame` returns None)
from a torn one (EOF mid-frame raises :class:`ProtocolError`) — the
distinction the worker agent's resend logic depends on.

Messages must be deterministic data: walltime fields ride in manifest
entries, but no message may embed a raw clock reading taken on the
sending side (lease deadlines, heartbeat ages and reconnect timers are
in-memory state, never serialized).

Every socket this module creates carries a timeout — a blocking socket
with no deadline turns a lost peer into a hung service, which is
exactly the failure mode the coordinator exists to survive (enforced
by the ``conc/socket-no-timeout`` detlint rule over this package).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional, Tuple

__all__ = [
    "DEFAULT_TIMEOUT",
    "MAX_FRAME",
    "ProtocolError",
    "connect",
    "format_address",
    "parse_address",
    "recv_frame",
    "send_frame",
]

#: Default socket timeout (seconds) for connects, sends and receives.
DEFAULT_TIMEOUT = 10.0

#: Upper bound on one frame's payload — a corrupted length prefix must
#: not make the reader try to allocate gigabytes.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(ConnectionError):
    """A frame could not be read or written (torn, oversized, not JSON)."""


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialize ``message`` and send it as one frame."""
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; None on clean EOF at a frame boundary.

    A connection that closes mid-frame, an oversized length prefix or
    a payload that is not a JSON object raises :class:`ProtocolError`;
    an idle socket raises its configured :class:`TimeoutError`.
    """
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
    payload = _recv_exact(sock, length, eof_ok=False)
    try:
        message = json.loads(payload)
    except ValueError as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def _recv_exact(sock: socket.socket, count: int, eof_ok: bool) -> Optional[bytes]:
    buf = bytearray()
    while len(buf) < count:
        chunk = sock.recv(count - len(buf))
        if not chunk:
            if eof_ok and not buf:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({len(buf)}/{count} bytes)"
            )
        buf.extend(chunk)
    return bytes(buf)


def connect(
    host: str, port: int, timeout: float = DEFAULT_TIMEOUT
) -> socket.socket:
    """TCP connection to ``(host, port)`` with ``timeout`` on every op."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(timeout)
    return sock


def parse_address(text: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"address must look like host:port, got {text!r}")
    return (host or "127.0.0.1", int(port))


def format_address(address: Tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"
