"""Fault-tolerant distributed study service.

The local executor (:mod:`repro.core.executor`) already fans a study
over a process pool with a content-addressed record cache, retries,
an engine-degradation ladder and quarantine.  This package promotes
that machinery to a multi-host service:

* :class:`~repro.serve.coordinator.Coordinator` — accepts studies over
  a length-prefixed JSON socket protocol, shards specs by cache key
  across registered workers under **leases** (a spec leased to a dead
  worker is reclaimed after its heartbeats stop and reassigned at the
  next lease generation), journals every completion for
  crash-consistent restart, and falls back to pure-local execution
  when no workers register.
* :class:`~repro.serve.worker.WorkerAgent` — connects with
  deterministic seeded-jitter backoff
  (:class:`~repro.core.resilience.RetryPolicy`), drives each assigned
  spec through the executor's retry/degrade/quarantine state machine
  (:func:`~repro.core.executor.drive_spec`) and streams manifest
  entries and records back, resending unacknowledged results after a
  reconnect.
* :class:`~repro.serve.client.ServeClient` — async ``submit`` /
  ``poll`` / ``result`` API, surfaced as the ``repro-serve`` CLI.

Because every record is idempotent by cache key and canonical
:class:`~repro.core.pipeline.StudyRecord` JSON is byte-identical
regardless of which process measured it, replays after worker loss,
connection drops, partitions or a coordinator restart are free — the
chaos suite (``tests/test_serve_chaos.py``) proves distributed runs
equal ``-j 1`` serial execution byte-for-byte under every fault plan
in :mod:`repro.util.faults`.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.coordinator import Coordinator
from repro.serve.protocol import ProtocolError
from repro.serve.worker import WorkerAgent

__all__ = [
    "Coordinator",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "WorkerAgent",
]
