"""``repro-serve`` — CLI surface of the distributed study service.

Subcommands:

* ``serve``  — run a coordinator (binds, prints/records its endpoint,
  serves until drained or interrupted).
* ``worker`` — run a worker agent against a coordinator.  Marks the
  process with ``REPRO_SERVE_WORKER=1`` so ``kill-worker`` fault plans
  can SIGKILL it (the chaos suite's crash lever).
* ``submit`` — submit a mini-corpus study, optionally wait for it and
  print the records/manifest as JSON.
* ``query``  — cheap zero-replay sensitivity query for one mini-corpus
  spec, answered inline by the coordinator (no study, no workers).
* ``status`` — global coordinator status.
* ``drain``  — wind the service down once in-flight studies finish.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.serve import protocol

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Fault-tolerant distributed study service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a coordinator")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--cache-root", default=None)
    serve.add_argument("--journal", default=None, help="journal JSONL path")
    serve.add_argument("--lease-timeout", type=float, default=10.0)
    serve.add_argument(
        "--grace",
        type=float,
        default=2.0,
        help="seconds without live workers before local fallback",
    )
    serve.add_argument(
        "--endpoint-file",
        default=None,
        help="write the bound host:port here once listening",
    )
    serve.add_argument("--metrics", action="store_true")

    worker = sub.add_parser("worker", help="run a worker agent")
    worker.add_argument("--connect", required=True, help="coordinator host:port")
    worker.add_argument("--id", dest="worker_id", required=True)
    worker.add_argument(
        "--index",
        type=int,
        default=-1,
        help="fault-plan target index for this worker",
    )
    worker.add_argument("--cache-root", default=None)
    worker.add_argument("--seed", type=int, default=None)
    worker.add_argument("--reconnect-attempts", type=int, default=8)

    submit = sub.add_parser("submit", help="submit a mini-corpus study")
    submit.add_argument("--connect", required=True)
    submit.add_argument("--mini", type=int, default=4, help="corpus size")
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--nranks", type=int, default=8)
    submit.add_argument("--engines", nargs="+", default=None)
    submit.add_argument("--record-timeout", type=float, default=None)
    submit.add_argument("--event-budget", type=int, default=None)
    submit.add_argument("--wait", type=float, default=None, metavar="SECONDS")
    submit.add_argument(
        "--json", action="store_true", help="print records + manifest as JSON"
    )

    query = sub.add_parser(
        "query", help="zero-replay sensitivity query for one spec"
    )
    query.add_argument("--connect", required=True)
    query.add_argument("--mini", type=int, default=4, help="corpus size")
    query.add_argument(
        "--index", type=int, default=0, help="which mini-corpus spec to query"
    )
    query.add_argument("--seed", type=int, default=None)
    query.add_argument("--nranks", type=int, default=8)

    status = sub.add_parser("status", help="coordinator status")
    status.add_argument("--connect", required=True)

    drain = sub.add_parser("drain", help="drain the coordinator")
    drain.add_argument("--connect", required=True)

    return parser


def _cmd_serve(args) -> int:
    from repro.serve.coordinator import Coordinator

    coordinator = Coordinator(
        args.host,
        args.port,
        cache_root=args.cache_root,
        journal_path=args.journal,
        lease_timeout=args.lease_timeout,
        fallback_grace=args.grace,
        collect_metrics=args.metrics,
    )
    address = coordinator.start()
    endpoint = protocol.format_address(address)
    if args.endpoint_file:
        path = Path(args.endpoint_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(endpoint + "\n", encoding="utf-8")
        os.replace(tmp, path)
    print(f"repro-serve coordinator listening on {endpoint}", flush=True)
    try:
        while not coordinator.drained.wait(timeout=0.2):
            pass
        print("repro-serve coordinator drained", flush=True)
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
    return 0


def _cmd_worker(args) -> int:
    from repro.core.resilience import RetryPolicy
    from repro.serve.worker import WorkerAgent

    # Mark this process as a serve worker so kill-worker fault plans
    # (and only they) may SIGKILL it.
    os.environ["REPRO_SERVE_WORKER"] = "1"
    agent = WorkerAgent(
        protocol.parse_address(args.connect),
        args.worker_id,
        worker_index=args.index,
        cache_root=args.cache_root,
        reconnect=RetryPolicy(
            max_attempts=max(1, args.reconnect_attempts),
            base_delay=0.05,
            max_delay=2.0,
        ),
        seed=args.seed,
    )
    done = agent.run()
    print(
        f"worker {args.worker_id}: {done} specs completed, "
        f"{agent.duplicates} duplicate acks",
        flush=True,
    )
    return 0


def _cmd_submit(args) -> int:
    from repro.serve.client import ServeClient
    from repro.workloads.suite import mini_corpus_specs
    from repro.util.rng import DEFAULT_SEED

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    specs = mini_corpus_specs(count=args.mini, seed=seed, nranks=args.nranks)
    client = ServeClient(protocol.parse_address(args.connect))
    study_id = client.submit(
        specs,
        seed=seed,
        engines=args.engines,
        record_timeout=args.record_timeout,
        event_budget=args.event_budget,
    )
    if args.wait is None:
        print(study_id)
        return 0
    client.wait(study_id, timeout=args.wait)
    result = client.result(study_id)
    if args.json:
        print(
            json.dumps(
                {
                    "study_id": study_id,
                    "records": [r.to_json(canonical=True) for r in result.records],
                    "manifest": result.manifest.to_json(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        summary = result.manifest.to_json()["summary"]
        print(
            f"study {study_id}: {len(result.records)} records, "
            f"workers={summary.get('workers', [])}, "
            f"leases_reclaimed={summary.get('leases_reclaimed', 0)}"
        )
    return 0


def _cmd_query(args) -> int:
    from repro.serve.client import ServeClient
    from repro.util.rng import DEFAULT_SEED
    from repro.workloads.suite import mini_corpus_specs

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    specs = mini_corpus_specs(count=args.mini, seed=seed, nranks=args.nranks)
    if not 0 <= args.index < len(specs):
        print(
            f"error: --index {args.index} outside the {len(specs)}-spec corpus",
            file=sys.stderr,
        )
        return 1
    client = ServeClient(protocol.parse_address(args.connect))
    reply = client.query_sensitivity(specs[args.index])
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0


def _cmd_status(args) -> int:
    from repro.serve.client import ServeClient

    report = ServeClient(protocol.parse_address(args.connect)).status()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def _cmd_drain(args) -> int:
    from repro.serve.client import ServeClient

    reply = ServeClient(protocol.parse_address(args.connect)).drain()
    print(json.dumps(reply, sort_keys=True))
    return 0


_COMMANDS = {
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "submit": _cmd_submit,
    "query": _cmd_query,
    "status": _cmd_status,
    "drain": _cmd_drain,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
