"""Crash-consistent coordinator journal.

An append-only JSONL file: one event object per line, flushed and
fsync'd before the coordinator acts on the completion it records.
Replay is torn-tail tolerant — a coordinator SIGKILLed mid-append
leaves at most one partial line, which :meth:`Journal.replay` skips —
so a restarted coordinator resumes every study from its journaled
entries instead of re-measuring finished specs (the record cache makes
even a lost entry cheap, but the journal is what preserves *manifest*
history: worker ids, lease generations, attempt counts).

Events are plain deterministic data (specs, options, manifest-entry
images); no event embeds a raw clock reading taken at append time.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Union

__all__ = ["Journal"]


class Journal:
    """Append-only JSONL event log with durable appends."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None

    def append(self, event: dict) -> None:
        """Durably append one event (flush + fsync before returning)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def replay(self) -> List[dict]:
        """Every complete event in append order (missing file: empty).

        Garbled or truncated lines — the torn tail a crash can leave —
        are skipped rather than aborting the replay.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        events: List[dict] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn tail from a mid-append crash
            if isinstance(event, dict):
                events.append(event)
        return events

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
