"""Worker agent: pulls leased specs, drives them, streams results back.

A :class:`WorkerAgent` is a thin network shell around
:func:`repro.core.executor.drive_spec` — every assigned spec goes
through exactly the retry/degrade/quarantine state machine a local run
would use, against a (usually worker-local) record cache.  The shell's
job is surviving the network:

* **Deterministic reconnect backoff.**  Connection attempts and
  mid-session drops feed one consecutive-failure counter that drives
  :meth:`RetryPolicy.delay` with the agent's seed and worker id — the
  same seeded-jitter substream the executor uses for record retries,
  so a chaos run's reconnect schedule is reproducible bit-for-bit.
* **At-least-once result delivery.**  A finished result is appended to
  an in-memory outbox before the send; it leaves the outbox only on
  the coordinator's ``ack``.  After a reconnect the outbox is resent
  first — the coordinator deduplicates by slot, so a drop between send
  and ack costs one counted duplicate, never a lost spec.
* **Heartbeats.**  A daemon thread sends fire-and-forget heartbeats at
  the coordinator-suggested interval (sharing the send lock with the
  main loop); the coordinator uses them to extend this worker's leases
  and to declare it dead when they stop.

Fault injection: sends pass through ``maybe_inject(stage="net")`` and
connects through ``maybe_inject(stage="net-connect")`` with the
worker's index, so :class:`~repro.util.faults.FaultPlan` can target
one worker with connection drops, partitions or slow sockets.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import List, Optional, Tuple

from repro.core.executor import drive_spec
from repro.core.resilience import QuarantineRegistry, RetryPolicy
from repro.serve import protocol
from repro.serve.coordinator import spec_from_json
from repro.util.faults import maybe_inject
from repro.util.rng import DEFAULT_SEED

__all__ = ["WorkerAgent"]

#: Default reconnect policy: a handful of attempts with seeded jitter.
DEFAULT_RECONNECT = RetryPolicy(max_attempts=8, base_delay=0.05, max_delay=2.0)


class WorkerAgent:
    """Pull-based study worker speaking the serve protocol."""

    def __init__(
        self,
        address: Tuple[str, int],
        worker_id: str,
        *,
        worker_index: int = -1,
        cache_root=None,
        quarantine_root=None,
        reconnect: Optional[RetryPolicy] = None,
        seed: Optional[int] = None,
        timeout: float = protocol.DEFAULT_TIMEOUT,
    ):
        self.address = address
        self.worker_id = worker_id
        #: Index used by fault plans to target this worker.
        self.worker_index = worker_index
        self.cache_root = cache_root
        self.reconnect = reconnect if reconnect is not None else DEFAULT_RECONNECT
        self.seed = seed if seed is not None else DEFAULT_SEED
        self.timeout = float(timeout)
        self.quarantine: Optional[QuarantineRegistry] = None
        if quarantine_root is not None:
            self.quarantine = QuarantineRegistry(quarantine_root)

        self._send_lock = threading.Lock()
        self._outbox: List[dict] = []  # unacked result messages, FIFO
        self._generation = 0  # connection generation (bumps per reconnect)
        self._connects = 0  # total connect attempts, never reset
        self._stop = threading.Event()
        self.specs_done = 0
        self.duplicates = 0

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> int:
        """Serve until drained, stopped, or reconnect attempts exhausted.

        Returns the number of specs this agent completed (acked or
        counted as duplicates by the coordinator).
        """
        failures = 0
        while not self._stop.is_set():
            try:
                sock = self._connect()
            except (OSError, TimeoutError):
                failures += 1
                if failures >= self.reconnect.max_attempts:
                    break
                self._sleep(
                    self.reconnect.delay(self.seed, self.worker_id, failures - 1)
                )
                continue
            try:
                drained = self._session(sock)
                failures = 0
                if drained:
                    break
            except (OSError, TimeoutError, protocol.ProtocolError):
                self._generation += 1
                failures += 1
                if failures >= self.reconnect.max_attempts:
                    break
                self._sleep(
                    self.reconnect.delay(self.seed, self.worker_id, failures - 1)
                )
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
        return self.specs_done

    # Stub point for tests (mirrors the executor's ``_sleep``).
    _sleep = staticmethod(time.sleep)

    # -- connection & session ----------------------------------------------

    def _connect(self):
        self._connects += 1
        maybe_inject(
            "net-connect", index=self.worker_index, attempt=self._connects
        )
        return protocol.connect(*self.address, timeout=self.timeout)

    def _send(self, sock, message: dict) -> None:
        with self._send_lock:
            maybe_inject(
                "net",
                index=self.worker_index,
                attempt=self._generation,
                engine=str(message.get("type", "")),
            )
            protocol.send_frame(sock, message)

    def _request(self, sock, message: dict) -> dict:
        self._send(sock, message)
        reply = protocol.recv_frame(sock)
        if reply is None:
            raise protocol.ProtocolError("coordinator closed the connection")
        return reply

    def _session(self, sock) -> bool:
        """One connected session; True when the coordinator drained us."""
        welcome = self._request(
            sock, {"type": "hello", "worker_id": self.worker_id}
        )
        if welcome.get("type") != "welcome":
            raise protocol.ProtocolError(f"expected welcome, got {welcome!r}")
        interval = float(welcome.get("heartbeat_interval", 1.0))
        beat_stop = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(sock, interval, beat_stop),
            name=f"repro-serve-heartbeat-{self.worker_id}",
            daemon=True,
        )
        beater.start()
        try:
            self._flush_outbox(sock)
            while not self._stop.is_set():
                reply = self._request(
                    sock, {"type": "ready", "worker_id": self.worker_id}
                )
                kind = reply.get("type")
                if kind == "assign":
                    self._execute(sock, reply)
                elif kind == "wait":
                    self._sleep(float(reply.get("backoff", 0.1)))
                elif kind == "drain":
                    self._request(
                        sock, {"type": "goodbye", "worker_id": self.worker_id}
                    )
                    return True
                else:
                    raise protocol.ProtocolError(
                        f"unexpected reply to ready: {reply!r}"
                    )
            return False
        finally:
            beat_stop.set()

    def _heartbeat_loop(self, sock, interval: float, stop) -> None:
        while not stop.wait(interval):
            try:
                self._send(
                    sock, {"type": "heartbeat", "worker_id": self.worker_id}
                )
            except (OSError, TimeoutError, protocol.ProtocolError):
                # Wake the main loop's recv by killing the socket; the
                # session-level handler owns the reconnect.
                try:
                    sock.close()
                except OSError:
                    pass
                return

    # -- execution ---------------------------------------------------------

    def _execute(self, sock, assignment: dict) -> None:
        spec = spec_from_json(assignment["spec"])
        options = dict(assignment["options"])
        if self.cache_root is not None:
            options["cache_root"] = str(self.cache_root)
        retry_json = assignment.get("retry") or {}
        entry, record, snap = drive_spec(
            spec,
            options,
            seed=assignment.get("seed"),
            retry=RetryPolicy.from_json(retry_json) if retry_json else None,
            quarantine=self.quarantine,
            lease=int(assignment.get("lease", 0)),
        )
        entry.worker_id = self.worker_id
        result = {
            "type": "result",
            "worker_id": self.worker_id,
            "study_id": assignment["study_id"],
            "index": int(assignment["index"]),
            "lease": int(assignment.get("lease", 0)),
            "entry": dataclasses.asdict(entry),
            "record": record.to_json() if record is not None else None,
            "metrics": snap,
        }
        # Outbox before send: a drop between send and ack means a
        # resend (deduplicated coordinator-side), never a lost spec.
        self._outbox.append(result)
        self._flush_outbox(sock)

    def _flush_outbox(self, sock) -> None:
        while self._outbox:
            message = self._outbox[0]
            ack = self._request(sock, message)
            if ack.get("type") != "ack":
                raise protocol.ProtocolError(f"expected ack, got {ack!r}")
            self._outbox.pop(0)
            if ack.get("duplicate"):
                self.duplicates += 1
            if not ack.get("unknown"):
                self.specs_done += 1
