"""``python -m repro.bench`` — run the simulation engine benchmark."""

from repro.bench.sim import main

if __name__ == "__main__":
    raise SystemExit(main())
