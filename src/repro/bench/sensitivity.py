"""Zero-replay analytics benchmark: recorded tape vs per-point replays.

Prices a fixed 100-point network design grid (10 latency x 10
bandwidth factors) for each trace of a seeded mini-corpus two ways:

* **replayed** — one single-configuration
  :class:`~repro.mfact.logical_clock.LogicalClockReplay` per grid
  point.  This is the general-case cost of design-space exploration:
  the vectorized multi-config grid trick only collapses axes that are
  affine per event (latency/bandwidth), so any study that perturbs
  structure-adjacent knobs pays one replay per point.
* **analytic** — record the max-plus dependency graph once
  (:func:`repro.sensitivity.record_graph`) and price all 100 points
  with a single :meth:`~repro.sensitivity.DependencyGraph.evaluate`
  call.  The timed pass includes the recording replay, so the speedup
  is end-to-end, not marginal.

Both passes are best-of-``repeats`` with GC disabled (same rationale
as :mod:`repro.bench.sim`: noise only adds time).  Every run doubles
as an accuracy check — the analytic totals must agree with the
replayed totals within the sensitivity package's documented ``1e-6``
relative band on every point, or the bench raises.

Output schema (``repro.bench.sensitivity/v1``)::

    {
      "schema": "repro.bench.sensitivity/v1",
      "pr": 10,
      "corpus": {"count": 3, "nranks": 8},
      "grid": {"points": 100, "latency_factors": 10, "bandwidth_factors": 10},
      "repeats": 3,
      "traces": {
        "<trace>": {
          "points": 100,
          "graph_nodes": <int>,
          "graph_edges": <int>,
          "replayed_seconds": <float>,   # 100 single-config replays
          "analytic_seconds": <float>,   # record once + one evaluate
          "speedup": <float>,            # replayed / analytic
          "max_rel_err": <float>         # worst point, both passes
        }
      },
      "speedup_min": <float>,            # slowest trace's speedup
      "speedup_geomean": <float>
    }
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.machines.presets import get_machine
from repro.mfact.hockney import ConfigGrid
from repro.mfact.logical_clock import LogicalClockReplay
from repro.sensitivity.graph import GraphRecorder
from repro.workloads.suite import build_trace, mini_corpus_specs

__all__ = [
    "BENCH_COUNT",
    "BENCH_NRANKS",
    "BW_FACTORS",
    "DEFAULT_REPEATS",
    "LAT_FACTORS",
    "MIN_SPEEDUP",
    "SCHEMA",
    "bench_corpus",
    "check_report",
    "main",
    "run_bench",
]

SCHEMA = "repro.bench.sensitivity/v1"

#: Standard seeded mini-corpus at its default shape; three traces keep
#: the replayed side of the bench (300 full replays per repeat) under
#: a minute while still mixing p2p- and collective-heavy apps.
BENCH_COUNT = 3
BENCH_NRANKS = 8

#: The 10 x 10 network grid.  Both axes contain the baseline factor
#: 1.0 so the grid includes the measured machine.
LAT_FACTORS = (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0)
BW_FACTORS = (0.125, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0)

DEFAULT_REPEATS = 3

#: CI gate: pricing the grid off the recorded tape must beat pricing
#: it with per-point replays by at least this factor on every trace.
MIN_SPEEDUP = 10.0

#: Inline accuracy gate: worst-point relative disagreement between the
#: analytic and replayed totals (the package's documented band).
MAX_REL_ERR = 1e-6


def bench_corpus() -> List[Tuple[object, object, object]]:
    """Build the fixed (spec, trace, machine) bench corpus."""
    corpus = []
    for spec in mini_corpus_specs(count=BENCH_COUNT, nranks=BENCH_NRANKS):
        trace = build_trace(spec)
        corpus.append((spec, trace, get_machine(trace.machine)))
    return corpus


def _grid_configs(machine) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The 100 (latency, bandwidth, compute_scale) grid points."""
    lats, bws, scales = [], [], []
    for lf in LAT_FACTORS:
        for bf in BW_FACTORS:
            lats.append(machine.latency / lf)
            bws.append(machine.bandwidth * bf)
            scales.append(machine.compute_scale)
    return np.asarray(lats), np.asarray(bws), np.asarray(scales)


def _time_pass(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` (see module docstring)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def run_bench(repeats: int = DEFAULT_REPEATS) -> Dict:
    """Measure replayed vs analytic grid pricing over the bench corpus.

    Returns the ``repro.bench.sensitivity/v1`` report dict.  Raises
    ``AssertionError`` if the two pricings disagree beyond the
    documented band on any grid point — a bench run doubles as an
    accuracy smoke test.
    """
    with obs.span("bench.sensitivity"):
        corpus = bench_corpus()
        report: Dict = {
            "schema": SCHEMA,
            "pr": 10,
            "corpus": {"count": BENCH_COUNT, "nranks": BENCH_NRANKS},
            "grid": {
                "points": len(LAT_FACTORS) * len(BW_FACTORS),
                "latency_factors": len(LAT_FACTORS),
                "bandwidth_factors": len(BW_FACTORS),
            },
            "repeats": repeats,
            "traces": {},
        }

        speedups = []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _, trace, machine in corpus:
                lats, bws, scales = _grid_configs(machine)
                replayed: List[np.ndarray] = []
                analytic: List[np.ndarray] = []
                graph_shape = [0, 0]

                def replay_pass(out=replayed, trace=trace, machine=machine,
                                lats=lats, bws=bws, scales=scales):
                    del out[:]
                    totals = np.empty(len(lats))
                    for i in range(len(lats)):
                        grid = ConfigGrid([lats[i]], [bws[i]], [scales[i]])
                        rep = LogicalClockReplay(trace, machine, grid).run()
                        totals[i] = float(rep.total_time[0])
                    out.append(totals)

                def analytic_pass(out=analytic, shape=graph_shape, trace=trace,
                                  machine=machine, lats=lats, bws=bws,
                                  scales=scales):
                    del out[:]
                    recorder = GraphRecorder(trace.nranks, machine)
                    LogicalClockReplay(
                        trace, machine, ConfigGrid.single(machine),
                        recorder=recorder,
                    ).run()
                    graph = recorder.finish()
                    shape[0], shape[1] = graph.n_nodes, graph.n_edges
                    out.append(graph.evaluate(lats, bws, scales))

                with obs.span("bench.sensitivity.replayed"):
                    replayed_seconds = _time_pass(replay_pass, repeats)
                with obs.span("bench.sensitivity.analytic"):
                    analytic_seconds = _time_pass(analytic_pass, repeats)

                rel_err = float(
                    np.max(np.abs(analytic[0] - replayed[0]) / replayed[0])
                )
                assert rel_err <= MAX_REL_ERR, (
                    f"{trace.name}: analytic grid disagrees with replays "
                    f"(max rel err {rel_err:.3g} > {MAX_REL_ERR:g})"
                )
                speedup = replayed_seconds / analytic_seconds
                speedups.append(speedup)
                report["traces"][trace.name] = {
                    "points": len(lats),
                    "graph_nodes": graph_shape[0],
                    "graph_edges": graph_shape[1],
                    "replayed_seconds": round(replayed_seconds, 6),
                    "analytic_seconds": round(analytic_seconds, 6),
                    "speedup": round(speedup, 3),
                    "max_rel_err": rel_err,
                }
        finally:
            if gc_was_enabled:
                gc.enable()

        report["speedup_min"] = round(min(speedups), 3)
        report["speedup_geomean"] = round(
            float(np.exp(np.mean(np.log(speedups)))), 3
        )
        return report


def check_report(report: Dict, min_speedup: float = MIN_SPEEDUP) -> List[str]:
    """Return gate violations: traces whose analytic pricing beats the
    replayed grid by less than ``min_speedup`` (CI fails on any)."""
    problems = []
    for name, row in report["traces"].items():
        if row["speedup"] < min_speedup:
            problems.append(
                f"{name}: analytic pricing only {row['speedup']:.2f}x faster "
                f"than per-point replays (< {min_speedup:g}x)"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.sensitivity",
        description="Benchmark recorded-tape grid pricing vs per-point replays.",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here (default: stdout)"
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help=f"best-of-N repeats per pass (default {DEFAULT_REPEATS})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the analytic path is at least "
        f"{MIN_SPEEDUP:g}x faster on every trace",
    )
    args = parser.parse_args(argv)

    report = run_bench(repeats=args.repeats)
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)

    for name, row in sorted(report["traces"].items()):
        print(
            f"{name:24s} replayed {row['replayed_seconds']:.3f}s "
            f"analytic {row['analytic_seconds']:.3f}s "
            f"-> {row['speedup']:.1f}x "
            f"(max rel err {row['max_rel_err']:.2g})",
            file=sys.stderr,
        )

    if args.check:
        problems = check_report(report)
        if problems:
            for problem in problems:
                print(f"bench-sensitivity gate: {problem}", file=sys.stderr)
            return 2
        print("bench-sensitivity gate: ok", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
