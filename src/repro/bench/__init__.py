"""Benchmark harnesses tracking the repo's performance trajectory.

Each PR that claims a performance win checks in a ``BENCH_<pr>.json``
artifact produced by one of these harnesses, so the trajectory is a
series of committed, schema-stable measurements rather than numbers in
commit messages.  ``repro.analysis.bench`` (PR 7) covers the lint
tooling; :mod:`repro.bench.sim` (PR 8) covers the simulation engines;
:mod:`repro.bench.sensitivity` (PR 10) covers zero-replay design-grid
pricing off the recorded dependency graph.

Run the simulation bench with ``make bench-sim`` or::

    python -m repro.bench --out BENCH_8.json --check

and the sensitivity bench with ``make bench-sensitivity`` or::

    python -m repro.bench.sensitivity --out BENCH_10.json --check
"""

from repro.bench.sim import bench_corpus, main, run_bench

__all__ = ["bench_corpus", "main", "run_bench"]
