"""Simulation engine benchmark: scalar vs vectorized, same run.

Replays a fixed seeded mini-corpus through every simulation engine
(packet, packet-flow, flow) twice — once on the scalar reference path,
once on the vectorized path — plus the MFACT analytic model, and
reports records/sec and events/sec per engine.  The two paths produce
bit-identical results (enforced inline here and by the differential
equivalence suite), so the comparison is pure performance.

Methodology, chosen for a noisy shared machine:

* **best-of-N**: each (engine, mode) pass replays the whole corpus
  ``repeats`` times and keeps the minimum wall time.  The minimum is
  the right statistic for throughput on a machine with background
  load — noise only ever adds time.
* **GC off** during timed passes (re-enabled after), so collection
  pauses don't land inside one mode's timing.
* **prep measured separately**: the vectorized pipeline's shared
  per-trace precomputation (collective expansion, fabric, compiled op
  streams — :class:`~repro.sim.mpi_replay.ReplayShared`) is built once
  and reused across engines and repeats, exactly as the study executor
  shares it across a record's engines.  Its one-time cost is reported
  as ``prep_seconds``, not smeared into any engine's steady-state
  number; the scalar path has no sharable prep and its timings are
  end-to-end by construction.
* **same run**: scalar and vectorized passes for an engine run
  back-to-back in one process, so machine drift degrades both sides
  equally.

The harness runs inside :func:`repro.obs.span` markers (``bench.sim``,
``bench.sim.<engine>.<mode>``) so a metrics-enabled invocation can be
broken down by span; the checked-in artifact is produced with metrics
off, which also keeps the replay layer on its zero-overhead fast path.

Output schema (``repro.bench.sim/v1``)::

    {
      "schema": "repro.bench.sim/v1",
      "pr": 8,
      "corpus": {"count": 4, "scale": 0.3, "nranks": 16},
      "repeats": 5,
      "prep_seconds": <float>,
      "engines": {
        "<engine>": {
          "records": 4,
          "events": <int>,                  # per corpus pass, identical both modes
          "scalar_seconds": <float>,        # best-of-N corpus pass
          "vectorized_seconds": <float>,
          "scalar_records_per_sec": <float>,
          "vectorized_records_per_sec": <float>,
          "scalar_events_per_sec": <float>,
          "vectorized_events_per_sec": <float>,
          "speedup": <float>               # scalar_seconds / vectorized_seconds
        },
        "mfact": {...}                     # single analytic path: no speedup
      }
    }
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.pipeline import SIM_MODELS
from repro.machines.presets import get_machine
from repro.mfact.logical_clock import model_trace
from repro.sim.mpi_replay import ReplayShared, simulate_trace
from repro.workloads.suite import build_trace, mini_corpus_specs

__all__ = [
    "BENCH_COUNT",
    "BENCH_NRANKS",
    "BENCH_SCALE",
    "DEFAULT_REPEATS",
    "SCHEMA",
    "bench_corpus",
    "main",
    "run_bench",
]

SCHEMA = "repro.bench.sim/v1"

#: Fixed seeded bench corpus: the first mini-corpus apps scaled up and
#: spread over 16 ranks, 4 per node.  This shape keeps the active flow
#: count in the small water-fill regime while producing enough
#: cross-node contention that the network models dominate the replay —
#: the regime the vectorized paths target.
BENCH_COUNT = 4
BENCH_SCALE = 0.3
BENCH_NRANKS = 16

DEFAULT_REPEATS = 5

#: CI regression gate: the vectorized path must never be slower than
#: the scalar path by more than this fraction on any engine.
MAX_REGRESSION = 0.10


def bench_corpus() -> List[Tuple[object, object, object]]:
    """Build the fixed (spec, trace, machine) bench corpus.

    Specs come from the standard seeded mini-corpus generator, so the
    workload mix (CG/EP/IS/MG-style apps, machine cycling) matches the
    study corpus; only scale and rank count are raised.
    """
    specs = [
        dataclasses.replace(s, scale=BENCH_SCALE, nranks=BENCH_NRANKS)
        for s in mini_corpus_specs(count=BENCH_COUNT)
    ]
    corpus = []
    for spec in specs:
        trace = build_trace(spec)
        corpus.append((spec, trace, get_machine(trace.machine)))
    return corpus


def _canonical(result) -> Tuple:
    """The deterministic fields of a :class:`SimResult` (walltime is
    the simulator's own execution time and legitimately differs)."""
    return (
        result.trace_name,
        result.total_time,
        result.comm_time,
        result.compute_time,
        result.events,
        result.messages,
        result.bytes_sent,
    )


def _time_pass(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` (see module docstring)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def run_bench(
    engines: Sequence[str] = SIM_MODELS,
    repeats: int = DEFAULT_REPEATS,
    include_mfact: bool = True,
) -> Dict:
    """Measure every engine scalar vs vectorized over the bench corpus.

    Returns the ``repro.bench.sim/v1`` report dict.  Raises
    ``AssertionError`` if any engine's scalar and vectorized replays
    disagree on a deterministic result field — a bench run doubles as
    an equivalence smoke test.
    """
    with obs.span("bench.sim"):
        corpus = bench_corpus()
        traces = [trace for _, trace, _ in corpus]
        machines = [machine for _, _, machine in corpus]

        t0 = time.perf_counter()
        shareds = [ReplayShared(tr, m) for tr, m in zip(traces, machines)]
        prep_seconds = time.perf_counter() - t0

        report: Dict = {
            "schema": SCHEMA,
            "pr": 8,
            "corpus": {
                "count": BENCH_COUNT,
                "scale": BENCH_SCALE,
                "nranks": BENCH_NRANKS,
            },
            "repeats": repeats,
            "prep_seconds": round(prep_seconds, 6),
            "engines": {},
        }

        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for engine in engines:
                scalar_results: List = []
                vec_results: List = []

                def scalar_pass(engine=engine, out=scalar_results):
                    del out[:]
                    for tr, m in zip(traces, machines):
                        out.append(
                            simulate_trace(tr, m, model=engine, vectorized=False)
                        )

                def vec_pass(engine=engine, out=vec_results):
                    del out[:]
                    for tr, m, sh in zip(traces, machines, shareds):
                        out.append(
                            simulate_trace(
                                tr, m, model=engine, vectorized=True, shared=sh
                            )
                        )

                with obs.span(f"bench.sim.{engine}.scalar"):
                    scalar_seconds = _time_pass(scalar_pass, repeats)
                with obs.span(f"bench.sim.{engine}.vectorized"):
                    vec_seconds = _time_pass(vec_pass, repeats)

                for s_res, v_res in zip(scalar_results, vec_results):
                    assert _canonical(s_res) == _canonical(v_res), (
                        f"{engine}: scalar and vectorized replays diverged on "
                        f"{s_res.trace_name}: {_canonical(s_res)} != {_canonical(v_res)}"
                    )
                events = sum(r.events for r in scalar_results)
                records = len(corpus)
                report["engines"][engine] = {
                    "records": records,
                    "events": events,
                    "scalar_seconds": round(scalar_seconds, 6),
                    "vectorized_seconds": round(vec_seconds, 6),
                    "scalar_records_per_sec": round(records / scalar_seconds, 3),
                    "vectorized_records_per_sec": round(records / vec_seconds, 3),
                    "scalar_events_per_sec": round(events / scalar_seconds, 1),
                    "vectorized_events_per_sec": round(events / vec_seconds, 1),
                    "speedup": round(scalar_seconds / vec_seconds, 3),
                }

            if include_mfact:
                def mfact_pass():
                    for tr, m in zip(traces, machines):
                        model_trace(tr, m)

                with obs.span("bench.sim.mfact"):
                    mfact_seconds = _time_pass(mfact_pass, repeats)
                events = sum(tr.op_count() for tr in traces)
                report["engines"]["mfact"] = {
                    "records": len(corpus),
                    "events": events,
                    "seconds": round(mfact_seconds, 6),
                    "records_per_sec": round(len(corpus) / mfact_seconds, 3),
                    "events_per_sec": round(events / mfact_seconds, 1),
                }
        finally:
            if gc_was_enabled:
                gc.enable()
        return report


def check_report(report: Dict, max_regression: float = MAX_REGRESSION) -> List[str]:
    """Return gate violations: engines where vectorized is slower than
    scalar by more than ``max_regression`` (CI fails on any)."""
    problems = []
    for engine, row in report["engines"].items():
        speedup = row.get("speedup")
        if speedup is None:
            continue  # single-path engines (mfact) have no gate
        if speedup < 1.0 - max_regression:
            problems.append(
                f"{engine}: vectorized is {1.0 / speedup:.2f}x slower than scalar "
                f"(speedup {speedup:.3f} < {1.0 - max_regression:.2f})"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the simulation engines (scalar vs vectorized).",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here (default: stdout)"
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help=f"best-of-N repeats per (engine, mode) pass (default {DEFAULT_REPEATS})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any engine's vectorized path is slower "
        f"than scalar by more than {MAX_REGRESSION:.0%}",
    )
    args = parser.parse_args(argv)

    report = run_bench(repeats=args.repeats)
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)

    for engine, row in sorted(report["engines"].items()):
        if "speedup" in row:
            print(
                f"{engine:12s} scalar {row['scalar_seconds']:.3f}s "
                f"vectorized {row['vectorized_seconds']:.3f}s "
                f"-> {row['speedup']:.2f}x "
                f"({row['vectorized_events_per_sec']:,.0f} events/s)",
                file=sys.stderr,
            )
        else:
            print(
                f"{engine:12s} {row['seconds']:.3f}s "
                f"({row['events_per_sec']:,.0f} events/s)",
                file=sys.stderr,
            )

    if args.check:
        problems = check_report(report)
        if problems:
            for problem in problems:
                print(f"bench-sim gate: {problem}", file=sys.stderr)
            return 2
        print("bench-sim gate: ok", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
