"""MFACT application classification.

MFACT classifies an application by how its predicted total time reacts
to speeding the network up and down across the configuration grid
(Section IV-A): sensitivity to an 8x bandwidth slowdown and to an 8x
latency slowdown partition applications into bandwidth-bound,
latency-bound and communication-bound; network-insensitive applications
are split into load-imbalance-bound and computation-bound by the wait
counter.

Section VI additionally uses a conservative binary grouping: an
application is *communication-sensitive* (``cs``) "if the estimated
total time increases by more than 5% as the bandwidth decreases by a
factor of 8"; otherwise it is ``ncs``.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.machines.config import MachineConfig
from repro.mfact.counters import CounterSet
from repro.mfact.hockney import ConfigGrid

__all__ = [
    "AppClass",
    "SENSITIVITY_THRESHOLD",
    "LOAD_IMBALANCE_WAIT_FRACTION",
    "bandwidth_sensitivity",
    "latency_sensitivity",
    "is_communication_sensitive",
    "classify",
]

#: Relative total-time increase beyond which a slowdown "matters" (5%).
SENSITIVITY_THRESHOLD = 0.05

#: Wait-counter share of total time beyond which a network-insensitive
#: application is called load-imbalance-bound rather than computation-bound.
LOAD_IMBALANCE_WAIT_FRACTION = 0.10

#: Factor by which classification slows the network down (paper: 8x).
SLOWDOWN_FACTOR = 8.0


class AppClass(str, Enum):
    """MFACT's five application classes."""

    COMPUTATION_BOUND = "computation-bound"
    LOAD_IMBALANCE_BOUND = "load-imbalance-bound"
    BANDWIDTH_BOUND = "bandwidth-bound"
    LATENCY_BOUND = "latency-bound"
    COMMUNICATION_BOUND = "communication-bound"

    @property
    def network_sensitive(self) -> bool:
        """True for the three classes that react to network speed."""
        return self in (
            AppClass.BANDWIDTH_BOUND,
            AppClass.LATENCY_BOUND,
            AppClass.COMMUNICATION_BOUND,
        )


def _relative_increase(
    machine: MachineConfig,
    grid: ConfigGrid,
    total_time: np.ndarray,
    bw_factor: float,
    lat_factor: float,
) -> float:
    baseline = total_time[grid.baseline]
    slow = total_time[grid.find(bw_factor, lat_factor, machine)]
    return float(slow / baseline - 1.0)


def bandwidth_sensitivity(
    machine: MachineConfig, grid: ConfigGrid, total_time: np.ndarray
) -> float:
    """Relative total-time increase under an 8x bandwidth decrease."""
    return _relative_increase(machine, grid, total_time, 1.0 / SLOWDOWN_FACTOR, 1.0)


def latency_sensitivity(
    machine: MachineConfig, grid: ConfigGrid, total_time: np.ndarray
) -> float:
    """Relative total-time increase under an 8x latency increase."""
    return _relative_increase(machine, grid, total_time, 1.0, 1.0 / SLOWDOWN_FACTOR)


def is_communication_sensitive(
    machine: MachineConfig, grid: ConfigGrid, total_time: np.ndarray
) -> bool:
    """Section VI's conservative ``cs`` grouping (bandwidth rule only)."""
    return bandwidth_sensitivity(machine, grid, total_time) > SENSITIVITY_THRESHOLD


def classify(
    trace,
    machine: MachineConfig,
    grid: ConfigGrid,
    total_time: np.ndarray,
    counters: CounterSet,
) -> AppClass:
    """Assign the 5-way MFACT class from one replay's outputs."""
    s_bw = bandwidth_sensitivity(machine, grid, total_time)
    s_lat = latency_sensitivity(machine, grid, total_time)
    bw_bound = s_bw > SENSITIVITY_THRESHOLD
    lat_bound = s_lat > SENSITIVITY_THRESHOLD
    if bw_bound and lat_bound:
        return AppClass.COMMUNICATION_BOUND
    if bw_bound:
        return AppClass.BANDWIDTH_BOUND
    if lat_bound:
        return AppClass.LATENCY_BOUND
    base = grid.baseline
    total = float(total_time[base])
    # Use the slowest rank's perspective: imbalance shows up as waiting.
    mean_wait = float(counters.wait[:, base].mean())
    if total > 0 and mean_wait / total > LOAD_IMBALANCE_WAIT_FRACTION:
        return AppClass.LOAD_IMBALANCE_BOUND
    return AppClass.COMPUTATION_BOUND
