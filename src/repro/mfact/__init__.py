"""MFACT: trace-driven MPI application modeling with logical clocks."""

from repro.mfact.classify import (
    AppClass,
    LOAD_IMBALANCE_WAIT_FRACTION,
    SENSITIVITY_THRESHOLD,
    bandwidth_sensitivity,
    classify,
    is_communication_sensitive,
    latency_sensitivity,
)
from repro.mfact.bottleneck import BottleneckReport, RankBreakdown, analyze_bottlenecks
from repro.mfact.counters import CounterSet
from repro.mfact.hockney import (
    DEFAULT_BW_FACTORS,
    DEFAULT_LAT_FACTORS,
    ConfigGrid,
    p2p_time,
)
from repro.mfact.loggp import (
    LogGPParameters,
    compare_models,
    loggp_from_machine,
    p2p_time_loggp,
)
from repro.mfact.logical_clock import LogicalClockReplay, ReplayDeadlockError, model_trace
from repro.mfact.report import MFACTReport
from repro.mfact.scaling import ScalingFit, fit_scaling, project_scaling
from repro.mfact.whatif import DesignPoint, DesignSpaceResult, explore_design_space

__all__ = [
    "AppClass",
    "SENSITIVITY_THRESHOLD",
    "LOAD_IMBALANCE_WAIT_FRACTION",
    "bandwidth_sensitivity",
    "latency_sensitivity",
    "is_communication_sensitive",
    "classify",
    "CounterSet",
    "ConfigGrid",
    "DEFAULT_BW_FACTORS",
    "DEFAULT_LAT_FACTORS",
    "p2p_time",
    "LogicalClockReplay",
    "ReplayDeadlockError",
    "model_trace",
    "MFACTReport",
    "BottleneckReport",
    "RankBreakdown",
    "analyze_bottlenecks",
    "DesignPoint",
    "DesignSpaceResult",
    "explore_design_space",
    "LogGPParameters",
    "loggp_from_machine",
    "p2p_time_loggp",
    "compare_models",
    "ScalingFit",
    "fit_scaling",
    "project_scaling",
]
