"""Bottleneck analysis from MFACT's counters.

MFACT "gauges the potential benefits of various networking options and
predicts potential application performance bottlenecks" (Section IV-A).
This module turns a finished replay into an actionable breakdown: where
each rank's time goes, which ranks straggle, and the headroom from
idealized upgrades (infinite bandwidth / zero latency / perfect
balance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.machines.config import MachineConfig
from repro.mfact.hockney import ConfigGrid
from repro.mfact.logical_clock import LogicalClockReplay
from repro.trace.trace import TraceSet

__all__ = ["RankBreakdown", "BottleneckReport", "analyze_bottlenecks"]


@dataclass(frozen=True)
class RankBreakdown:
    """One rank's logical-time decomposition at the baseline config."""

    rank: int
    total: float
    compute: float
    latency: float
    bandwidth: float
    wait: float

    @property
    def comm(self) -> float:
        return self.latency + self.bandwidth + self.wait

    def dominant(self) -> str:
        """The largest component's name."""
        parts = {
            "compute": self.compute,
            "latency": self.latency,
            "bandwidth": self.bandwidth,
            "wait": self.wait,
        }
        return max(parts, key=parts.get)


@dataclass
class BottleneckReport:
    """Application-level bottleneck summary."""

    trace_name: str
    machine: str
    ranks: List[RankBreakdown]
    total_time: float
    bandwidth_headroom: float  # speedup from 8x bandwidth
    latency_headroom: float  # speedup from 8x lower latency
    balance_headroom: float  # speedup from perfectly balanced compute

    @property
    def stragglers(self) -> List[RankBreakdown]:
        """Ranks whose *computation* exceeds the mean by over 10%.

        Final logical clocks are equalized by trailing synchronization
        (barriers), so imbalance is visible in the compute counter, not
        in the totals.
        """
        mean = float(np.mean([r.compute for r in self.ranks]))
        if mean <= 0:
            return []
        return [r for r in self.ranks if r.compute > 1.1 * mean]

    def dominant_component(self) -> str:
        """The component dominating the rank-averaged decomposition."""
        agg = {
            "compute": sum(r.compute for r in self.ranks),
            "latency": sum(r.latency for r in self.ranks),
            "bandwidth": sum(r.bandwidth for r in self.ranks),
            "wait": sum(r.wait for r in self.ranks),
        }
        return max(agg, key=agg.get)

    def recommendation(self) -> str:
        """A one-line recommendation, the way MFACT reports are read."""
        best = max(
            ("bandwidth", self.bandwidth_headroom),
            ("latency", self.latency_headroom),
            ("balance", self.balance_headroom),
            key=lambda kv: kv[1],
        )
        name, headroom = best
        if headroom < 1.05:
            return "no single upgrade buys more than 5%: the application is compute-limited"
        actions = {
            "bandwidth": "invest in network bandwidth",
            "latency": "invest in network latency",
            "balance": "fix the load imbalance before touching the network",
        }
        return f"{actions[name]} (predicted {headroom:.2f}x from an idealized upgrade)"


def analyze_bottlenecks(
    trace: TraceSet, machine: MachineConfig, upgrade_factor: float = 8.0
) -> BottleneckReport:
    """Run one replay and produce the bottleneck report.

    ``upgrade_factor`` sizes the hypothetical network upgrades used for
    headroom estimates (paper's classification uses 8x).
    """
    if upgrade_factor <= 1.0:
        raise ValueError("upgrade_factor must exceed 1")
    grid = ConfigGrid.sweep(
        machine,
        bw_factors=(1.0, upgrade_factor),
        lat_factors=(1.0, upgrade_factor),
    )
    replay = LogicalClockReplay(trace, machine, grid)
    report = replay.run()
    base = grid.baseline
    counters = replay.counters
    ranks = [
        RankBreakdown(
            rank=r,
            total=float(replay.clk[r, base]),
            compute=float(counters.compute[r, base]),
            latency=float(counters.latency[r, base]),
            bandwidth=float(counters.bandwidth[r, base]),
            wait=float(counters.wait[r, base]),
        )
        for r in range(trace.nranks)
    ]
    baseline_time = report.baseline_total_time
    bw_up = report.time_at(upgrade_factor, 1.0, machine)
    lat_up = report.time_at(1.0, upgrade_factor, machine)
    # Perfect balance: everyone computes the mean compute; communication
    # unchanged. The critical path sheds the slowest rank's excess
    # compute (a lower bound on the balanced time, hence an upper bound
    # on the headroom — appropriate for a recommendation).
    mean_compute = float(np.mean([r.compute for r in ranks]))
    max_compute = max(r.compute for r in ranks)
    balanced_total = max(1e-12, baseline_time - (max_compute - mean_compute))
    return BottleneckReport(
        trace_name=trace.name,
        machine=machine.name,
        ranks=ranks,
        total_time=baseline_time,
        bandwidth_headroom=baseline_time / bw_up if bw_up > 0 else 1.0,
        latency_headroom=baseline_time / lat_up if lat_up > 0 else 1.0,
        balance_headroom=baseline_time / balanced_total if balanced_total > 0 else 1.0,
    )
