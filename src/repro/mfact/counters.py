"""MFACT's four logical time counters.

For every rank and every network configuration MFACT tracks how the
logical clock's advance decomposes into **computation**, **latency**,
**bandwidth** and **wait** time (Section IV-A).  The application's
classification reads how these counters react as the configuration grid
speeds network parameters up and down.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CounterSet"]


class CounterSet:
    """Per-rank, per-configuration accumulators.

    All four arrays have shape ``(nranks, nconfigs)`` and are in seconds
    of logical time.
    """

    __slots__ = ("compute", "latency", "bandwidth", "wait")

    def __init__(self, nranks: int, nconfigs: int):
        if nranks < 1 or nconfigs < 1:
            raise ValueError("nranks and nconfigs must be >= 1")
        shape = (nranks, nconfigs)
        self.compute = np.zeros(shape)
        self.latency = np.zeros(shape)
        self.bandwidth = np.zeros(shape)
        self.wait = np.zeros(shape)

    @property
    def communication(self) -> np.ndarray:
        """Latency + bandwidth + wait, shape (nranks, nconfigs)."""
        return self.latency + self.bandwidth + self.wait

    def mean_over_ranks(self, config: int) -> dict:
        """Rank-averaged counter values for one configuration."""
        return {
            "compute": float(self.compute[:, config].mean()),
            "latency": float(self.latency[:, config].mean()),
            "bandwidth": float(self.bandwidth[:, config].mean()),
            "wait": float(self.wait[:, config].mean()),
        }
