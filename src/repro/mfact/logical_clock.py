"""MFACT's logical-clock trace replay engine.

The engine replays a trace once while maintaining, for every rank, one
Lamport-style logical clock **per network configuration** (an extension
of Lamport's scheme with non-unit computation and communication times,
Section IV-A).  Clocks are numpy vectors over the :class:`ConfigGrid`,
so a single replay prices the application on every configuration.

Semantics
---------
* computation: ``clk += duration * compute_scale``
* blocking send: sender pays software overhead plus the bandwidth term
  (eager, buffered); the message becomes available to the receiver at
  the sender's post-overhead clock
* non-blocking send: sender pays only overhead; the transfer overlaps
* receive completion (blocking recv, or wait on an irecv): the transfer
  costs Hockney ``alpha + m/B`` once both sides are ready; the clock
  advance is decomposed into the four counters (wait / latency /
  bandwidth, with computation tracked separately)
* collectives: priced with the Thakur–Gropp closed forms of
  :mod:`repro.collectives.cost_models`; synchronizing collectives
  complete at the member-wise max clock plus the collective cost

Matching follows MPI ordering: per (source, destination, tag) channel,
sends match posted receives FIFO.

An optional ``recorder`` (duck-typed; see
:class:`repro.sensitivity.graph.GraphRecorder`) observes every clock
update through ``on_*`` hooks, turning one replay into a reusable
max-plus dependency graph for zero-replay sensitivity analytics.  With
``recorder=None`` (the default) the hooks cost one predicate per op.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.collectives.cost_models import collective_cost
from repro.machines.config import MachineConfig
from repro.mfact.counters import CounterSet
from repro.mfact.hockney import ConfigGrid
from repro.mfact.report import MFACTReport
from repro.trace.events import OpKind
from repro.trace.trace import TraceSet

__all__ = ["LogicalClockReplay", "model_trace", "ReplayDeadlockError"]

_SYNC_COLLECTIVES = frozenset(
    {
        OpKind.BARRIER,
        OpKind.ALLREDUCE,
        OpKind.ALLGATHER,
        OpKind.ALLTOALL,
        OpKind.REDUCE_SCATTER,
    }
)


class ReplayDeadlockError(RuntimeError):
    """Raised when the trace cannot make progress (invalid matching)."""


class _Channel:
    """FIFO matching state for one (src, dst, tag) message channel."""

    __slots__ = ("messages", "slots")

    def __init__(self):
        self.messages: Deque[np.ndarray] = deque()  # availability clocks
        self.slots: Deque[Tuple[str, int]] = deque()  # ("recv", rank) | ("irecv", req)


class LogicalClockReplay:
    """One MFACT replay of a trace on a machine over a configuration grid."""

    def __init__(
        self,
        trace: TraceSet,
        machine: MachineConfig,
        grid: Optional[ConfigGrid] = None,
        recorder=None,
    ):
        self.trace = trace
        self.machine = machine
        self.grid = grid if grid is not None else ConfigGrid.sweep(machine)
        self._rec = recorder
        n = trace.nranks
        k = len(self.grid)
        self._lat = self.grid.latency.copy()
        self._inv_bw = 1.0 / self.grid.bandwidth
        self._scale = self.grid.compute_scale.copy()
        self._overhead = machine.software_overhead
        self.clk = np.zeros((n, k))
        self._inj = np.zeros((n, k))  # per-rank outgoing NIC serialization
        self._ej = np.zeros((n, k))  # per-rank incoming NIC serialization
        self.counters = CounterSet(n, k)
        self._ip = [0] * n
        self._channels: Dict[Tuple[int, int, int], _Channel] = {}
        # Per-rank request table:
        # req id -> ("isend", None, 0) | ("irecv", avail-or-None, nbytes)
        self._requests: List[Dict[int, Tuple[str, Optional[np.ndarray], int]]] = [
            {} for _ in range(n)
        ]
        self._blocked: List[Optional[Tuple]] = [None] * n  # why a rank is parked
        # Collective rendezvous: (comm, instance) -> list of (rank, clk snapshot)
        self._coll_seen: List[int] = [0] * n  # per-rank collective instance counter per comm
        self._coll_counts: Dict[Tuple[int, int], Dict[int, np.ndarray]] = {}
        self._coll_instance: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._runnable: Deque[int] = deque()
        self._queued = [False] * n
        self._finished = 0
        self._coll_messages = 0

    # -- channel helpers -------------------------------------------------

    def _channel(self, src: int, dst: int, tag: int) -> _Channel:
        key = (src, dst, tag)
        chan = self._channels.get(key)
        if chan is None:
            chan = self._channels[key] = _Channel()
        return chan

    def _wake(self, rank: int) -> None:
        if not self._queued[rank]:
            self._queued[rank] = True
            self._runnable.append(rank)

    # -- message completion ------------------------------------------------

    def _complete_recv(self, rank: int, avail: np.ndarray, nbytes: int, posted: bool) -> None:
        """Advance ``rank``'s clock past a message and attribute counters.

        ``avail`` is the fully-injected time at the sender (the Hockney
        bandwidth term is already inside it); delivery adds the wire
        latency ``alpha``.  The clock advance is decomposed into the
        wait / latency / bandwidth counters for sensitivity tracking.
        """
        o = self._overhead
        row = self.clk[rank]
        ready = row + o
        bw_term = nbytes * self._inv_bw
        # The payload drains serially through the receiving rank's NIC:
        # ``avail`` carries the header-at-receiver time (injection start
        # plus wire latency was added by the sender).
        arrived = np.maximum(avail, self._ej[rank]) + bw_term
        self._ej[rank] = arrived
        new = np.maximum(ready, arrived)
        delta = new - ready
        bw_part = np.minimum(delta, bw_term)
        lat_part = np.clip(delta - bw_term, 0.0, self._lat)
        wait_part = delta - bw_part - lat_part
        c = self.counters
        c.bandwidth[rank] += bw_part
        c.latency[rank] += lat_part
        c.wait[rank] += wait_part
        self.clk[rank] = new

    def _deliver(self, src: int, dst: int, tag: int, avail: np.ndarray, nbytes: int) -> None:
        """A send became available; match it or queue it."""
        chan = self._channel(src, dst, tag)
        if chan.slots:
            kind, ident = chan.slots.popleft()
            if kind == "recv":
                # dst is parked in a blocking recv on this channel.
                self._complete_recv(dst, avail, nbytes, posted=False)
                if self._rec is not None:
                    self._rec.on_recv_complete(dst, src, tag, nbytes)
                self._blocked[dst] = None
                self._ip[dst] += 1
                self._wake(dst)
            else:  # bound an irecv request
                nbytes = self._requests[dst][ident][2]
                self._requests[dst][ident] = ("irecv", avail, nbytes)
                if self._rec is not None:
                    self._rec.on_irecv_bind(dst, src, tag, ident)
                blocked = self._blocked[dst]
                if blocked is not None and blocked[0] == "wait" and blocked[1] == ident:
                    self._complete_recv(dst, avail, nbytes, posted=True)
                    if self._rec is not None:
                        self._rec.on_wait_complete(dst, ident, nbytes)
                    del self._requests[dst][ident]
                    self._blocked[dst] = None
                    self._ip[dst] += 1
                    self._wake(dst)
        else:
            chan.messages.append(avail)

    # -- collectives -------------------------------------------------------

    def _collective_ready(self, rank: int, op) -> bool:
        """Register arrival; fire the collective when all members arrived."""
        members = self.trace.comm_ranks(op.comm)
        inst = self._coll_instance[rank].get(op.comm, 0)
        key = (op.comm, inst)
        arrived = self._coll_counts.setdefault(key, {})
        arrived[rank] = self.clk[rank].copy()
        if len(arrived) < len(members):
            self._blocked[rank] = ("coll", key)
            return False
        self._fire_collective(op, members, arrived)
        del self._coll_counts[key]
        for r in members:
            self._coll_instance[r][op.comm] = inst + 1
            self._blocked[r] = None
            self._ip[r] += 1
            if r != rank:
                self._wake(r)
        return True

    def _fire_collective(self, op, members, arrived: Dict[int, np.ndarray]) -> None:
        p = len(members)
        cost = collective_cost(op.kind, p, op.nbytes)
        o = self._overhead
        lat_share = cost.alpha_count * self._lat
        bw_share = cost.bytes_on_wire * self._inv_bw
        total = lat_share + bw_share
        c = self.counters
        self._coll_messages += 1
        if self._rec is not None:
            self._rec.on_collective(
                op.kind, members, op.peer, op.nbytes, cost.alpha_count, cost.bytes_on_wire
            )
        if op.kind in _SYNC_COLLECTIVES:
            peak = None
            for clk in arrived.values():
                peak = clk if peak is None else np.maximum(peak, clk)
            for r in members:
                start = arrived[r] + o
                done = np.maximum(peak + o, start) + total
                c.wait[r] += done - start - total
                c.latency[r] += lat_share
                c.bandwidth[r] += bw_share
                self.clk[r] = done
            return
        root = op.peer
        if op.kind in (OpKind.BCAST, OpKind.SCATTER):
            root_done = arrived[root] + o + total
            for r in members:
                start = arrived[r] + o
                if r == root:
                    done = root_done
                    c.latency[r] += lat_share
                    c.bandwidth[r] += bw_share
                else:
                    done = np.maximum(start, root_done)
                    delta = done - start
                    bw_part = np.minimum(delta, bw_share)
                    lat_part = np.clip(delta - bw_share, 0.0, lat_share)
                    c.bandwidth[r] += bw_part
                    c.latency[r] += lat_part
                    c.wait[r] += delta - bw_part - lat_part
                self.clk[r] = done
            return
        # REDUCE / GATHER: root completes after everyone plus the tree cost;
        # non-roots leave after contributing their own single message.
        own = self._lat + op.nbytes * self._inv_bw
        peak = None
        for clk in arrived.values():
            peak = clk if peak is None else np.maximum(peak, clk)
        for r in members:
            start = arrived[r] + o
            if r == root:
                done = np.maximum(peak + o, start) + total
                c.wait[r] += done - start - total
                c.latency[r] += lat_share
                c.bandwidth[r] += bw_share
            else:
                done = start + own
                c.latency[r] += self._lat
                c.bandwidth[r] += op.nbytes * self._inv_bw
            self.clk[r] = done

    # -- diagnostics ---------------------------------------------------------

    def _deadlock_message(self, stuck: List[int]) -> str:
        """Actionable deadlock diagnostic: why each stuck rank is parked,
        plus the oldest unmatched ``(src, dst, tag)`` channel.

        Channels are reported in first-use order (``self._channels`` is
        insertion-ordered), so "oldest" is the channel that entered the
        matching state machine earliest — usually the root mismatch.
        """
        reasons = []
        for r in stuck[:8]:
            why = self._blocked[r]
            if why is None:
                reasons.append(f"rank {r} runnable but unfinished")
            elif why[0] == "recv":
                src, dst, tag = why[1]
                reasons.append(
                    f"rank {r} in blocking recv on channel (src={src}, dst={dst}, tag={tag})"
                )
            elif why[0] == "wait":
                reasons.append(f"rank {r} waiting on request {why[1]}")
            else:  # collective rendezvous
                reasons.append(f"rank {r} at collective rendezvous on comm {why[1][0]}")
        oldest = ""
        for (src, dst, tag), chan in self._channels.items():
            if chan.messages or chan.slots:
                oldest = (
                    f"; oldest unmatched channel (src={src}, dst={dst}, tag={tag}): "
                    f"{len(chan.messages)} queued send(s), "
                    f"{len(chan.slots)} posted receive(s)"
                )
                break
        return (
            f"replay of {self.trace.name} deadlocked with ranks {stuck[:8]} blocked: "
            + "; ".join(reasons)
            + oldest
        )

    # -- main loop -----------------------------------------------------------

    def _step(self, rank: int) -> bool:
        """Execute ``rank``'s next op; return False if the rank blocked."""
        ops = self.trace.ranks[rank]
        op = ops[self._ip[rank]]
        kind = op.kind
        o = self._overhead
        if kind == OpKind.COMPUTE:
            work = op.duration * self._scale
            self.clk[rank] += work
            self.counters.compute[rank] += work
            if self._rec is not None:
                self._rec.on_compute(rank, op.duration)
        elif kind == OpKind.SEND:
            # The rank's NIC serializes its outgoing messages; a blocking
            # send returns once the payload is fully injected.
            bw_term = op.nbytes * self._inv_bw
            start = self.clk[rank] + o
            inj_start = np.maximum(self._inj[rank], start)
            inj_done = inj_start + bw_term
            self._inj[rank] = inj_done
            self.counters.bandwidth[rank] += bw_term
            self.counters.wait[rank] += inj_start - start
            self.clk[rank] = inj_done.copy()
            if self._rec is not None:
                self._rec.on_send(rank, op.peer, op.tag, op.nbytes, blocking=True)
            # Header reaches the receiver one wire latency after injection
            # starts; the receiver pays the bandwidth term while draining.
            self._deliver(rank, op.peer, op.tag, inj_start + self._lat, op.nbytes)
        elif kind == OpKind.ISEND:
            # Injection overlaps with local progress; only overhead is paid.
            bw_term = op.nbytes * self._inv_bw
            inj_start = np.maximum(self._inj[rank], self.clk[rank] + o)
            self._inj[rank] = inj_start + bw_term
            self.clk[rank] += o
            self._requests[rank][op.req] = ("isend", None, 0)
            if self._rec is not None:
                self._rec.on_send(rank, op.peer, op.tag, op.nbytes, blocking=False)
            self._deliver(rank, op.peer, op.tag, inj_start + self._lat, op.nbytes)
        elif kind == OpKind.RECV:
            chan = self._channel(op.peer, rank, op.tag)
            if chan.messages:
                avail = chan.messages.popleft()
                self._complete_recv(rank, avail, op.nbytes, posted=False)
                if self._rec is not None:
                    self._rec.on_recv_complete(rank, op.peer, op.tag, op.nbytes)
            else:
                chan.slots.append(("recv", rank))
                self._blocked[rank] = ("recv", (op.peer, rank, op.tag))
                return False
        elif kind == OpKind.IRECV:
            self.clk[rank] += o
            if self._rec is not None:
                self._rec.on_overhead(rank)
            chan = self._channel(op.peer, rank, op.tag)
            if chan.messages:
                avail = chan.messages.popleft()
                self._requests[rank][op.req] = ("irecv", avail, op.nbytes)
                if self._rec is not None:
                    self._rec.on_irecv_bind(rank, op.peer, op.tag, op.req)
            else:
                chan.slots.append(("irecv", op.req))
                self._requests[rank][op.req] = ("irecv", None, op.nbytes)
        elif kind == OpKind.WAIT:
            entry = self._requests[rank].get(op.req)
            if entry is None:
                raise ReplayDeadlockError(
                    f"rank {rank} waits on unknown request {op.req} in {self.trace.name}"
                )
            state, avail, nbytes = entry
            if state == "isend":
                self.clk[rank] += o
                if self._rec is not None:
                    self._rec.on_overhead(rank)
                del self._requests[rank][op.req]
            elif avail is not None:
                self._complete_recv(rank, avail, nbytes, posted=True)
                if self._rec is not None:
                    self._rec.on_wait_complete(rank, op.req, nbytes)
                del self._requests[rank][op.req]
            else:
                self._blocked[rank] = ("wait", op.req)
                return False
        elif op.is_collective:
            return self._collective_ready(rank, op)
        else:  # pragma: no cover - OpKind is closed
            raise ValueError(f"unhandled op kind {kind!r}")
        self._ip[rank] += 1
        return True

    def run(self) -> MFACTReport:
        """Replay the whole trace and assemble the report."""
        with obs.span("mfact"):
            start = time.perf_counter()
            n = self.trace.nranks
            lengths = [len(ops) for ops in self.trace.ranks]
            steps = 0
            with obs.span("replay"):
                for rank in range(n):
                    self._wake(rank)
                done = [False] * n
                remaining = n
                while self._runnable:
                    rank = self._runnable.popleft()
                    self._queued[rank] = False
                    if done[rank] or self._blocked[rank] is not None:
                        continue
                    while self._ip[rank] < lengths[rank]:
                        steps += 1
                        if not self._step(rank):
                            break
                    if self._ip[rank] >= lengths[rank] and not done[rank]:
                        done[rank] = True
                        remaining -= 1
                if remaining:
                    stuck = [r for r in range(n) if not done[r]]
                    raise ReplayDeadlockError(self._deadlock_message(stuck))
            if obs.enabled():
                obs.counter("repro_mfact_steps_total").inc(steps)
                obs.counter("repro_mfact_replays_total").inc()
            walltime = time.perf_counter() - start
            with obs.span("report"):
                return MFACTReport.from_replay(self, walltime)


def model_trace(
    trace: TraceSet,
    machine: MachineConfig,
    grid: Optional[ConfigGrid] = None,
    recorder=None,
) -> MFACTReport:
    """Convenience wrapper: replay ``trace`` on ``machine`` and report.

    ``recorder`` (duck-typed, see :class:`LogicalClockReplay`) rides the
    same replay — the hooks are structural (ranks, tags, bytes,
    durations), so the recorded tape is independent of ``grid``.
    """
    return LogicalClockReplay(trace, machine, grid, recorder=recorder).run()
