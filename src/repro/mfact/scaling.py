"""Scaling projection from multi-size trace families.

Given MFACT predictions of the same application at several rank counts,
fit a two-term scaling law and extrapolate: compute follows an
Amdahl/Gustafson split (serial + parallel/p) and communication follows
a power law in p (halo surfaces shrink, collective depths grow).  This
answers the question the paper's conclusion gestures at — using cheap
modeling to look *beyond* the traced scales — while staying honest:
the projection carries its fit residual so wild extrapolations are
visibly uncertain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.machines.config import MachineConfig
from repro.mfact.hockney import ConfigGrid
from repro.mfact.logical_clock import LogicalClockReplay
from repro.trace.trace import TraceSet

__all__ = ["ScalingFit", "fit_scaling", "project_scaling"]


@dataclass(frozen=True)
class ScalingFit:
    """Fitted model: T(p) = serial + parallel / p + c * p^beta."""

    serial: float
    parallel: float
    comm_coefficient: float
    comm_exponent: float
    residual_rms: float
    ranks: Tuple[int, ...]

    def predict(self, p) -> np.ndarray:
        """Projected total time at rank count(s) ``p``."""
        p = np.asarray(p, dtype=float)
        return self.serial + self.parallel / p + self.comm_coefficient * p**self.comm_exponent

    def efficiency(self, p) -> np.ndarray:
        """Parallel efficiency vs the smallest fitted size."""
        p0 = float(min(self.ranks))
        t0 = float(self.predict(p0))
        p = np.asarray(p, dtype=float)
        return (t0 * p0) / (self.predict(p) * p)

    def sweet_spot(self, candidates: Sequence[int]) -> int:
        """The candidate rank count with the best time*resources product."""
        candidates = list(candidates)
        costs = [float(self.predict(p)) * p for p in candidates]
        return candidates[int(np.argmin(costs))]


def _decompose(trace: TraceSet, machine: MachineConfig) -> Tuple[float, float]:
    """(compute on critical path, communication share) via one replay."""
    replay = LogicalClockReplay(trace, machine, ConfigGrid.single(machine))
    report = replay.run()
    total = report.baseline_total_time
    compute = float(replay.counters.compute[:, 0].max())
    return compute, max(0.0, total - compute)


def fit_scaling(
    traces: Sequence[TraceSet], machine: MachineConfig
) -> ScalingFit:
    """Fit the scaling law to >= 3 sizes of one application.

    The compute terms are fitted by least squares on
    ``compute(p) = serial + parallel / p``; the communication term by a
    log-log regression on the replay's communication time.
    """
    if len(traces) < 3:
        raise ValueError("need at least three trace sizes to fit three shapes")
    ranks = [t.nranks for t in traces]
    if len(set(ranks)) != len(ranks):
        raise ValueError("trace sizes must be distinct")
    comp: List[float] = []
    comm: List[float] = []
    for trace in traces:
        c, q = _decompose(trace, machine)
        comp.append(c)
        comm.append(max(q, 1e-12))
    p = np.asarray(ranks, dtype=float)
    comp_arr = np.asarray(comp)
    # compute(p) = serial + parallel/p  (non-negative least squares, 2x2).
    A = np.column_stack([np.ones_like(p), 1.0 / p])
    coef, *_ = np.linalg.lstsq(A, comp_arr, rcond=None)
    serial, parallel = float(max(coef[0], 0.0)), float(max(coef[1], 0.0))
    # comm(p) = c * p^beta via log-log fit.
    logs = np.log(np.asarray(comm))
    B = np.column_stack([np.ones_like(p), np.log(p)])
    ccoef, *_ = np.linalg.lstsq(B, logs, rcond=None)
    c0, beta = float(np.exp(ccoef[0])), float(ccoef[1])
    fit = ScalingFit(
        serial=serial,
        parallel=parallel,
        comm_coefficient=c0,
        comm_exponent=beta,
        residual_rms=0.0,
        ranks=tuple(int(r) for r in ranks),
    )
    predicted = fit.predict(p)
    totals = comp_arr + np.asarray(comm)
    rms = float(np.sqrt(np.mean((predicted - totals) ** 2)))
    return ScalingFit(
        serial=serial,
        parallel=parallel,
        comm_coefficient=c0,
        comm_exponent=beta,
        residual_rms=rms,
        ranks=tuple(int(r) for r in ranks),
    )


def project_scaling(
    traces: Sequence[TraceSet],
    machine: MachineConfig,
    targets: Sequence[int],
) -> Dict[int, float]:
    """Fit and project in one call: {target rank count: projected time}."""
    fit = fit_scaling(traces, machine)
    return {int(p): float(fit.predict(p)) for p in targets}
