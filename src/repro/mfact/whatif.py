"""What-if design-space exploration (Section II-C's practical case).

The paper motivates modeling for *disruptive* design questions — "a
cluster with a 10x faster network and 100x faster compute" — where the
design space is too large to simulate point by point.  This module
wraps MFACT's multi-configuration replay in a small design-space API:
declare axes (bandwidth, latency, compute speed), explore the whole
grid in one replay per compute point, and query speedups, bottleneck
shifts and the cheapest configuration meeting a target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.machines.config import MachineConfig
from repro.mfact.hockney import ConfigGrid
from repro.mfact.logical_clock import LogicalClockReplay
from repro.trace.trace import TraceSet

__all__ = ["DesignPoint", "DesignSpaceResult", "explore_design_space"]


@dataclass(frozen=True)
class DesignPoint:
    """One hypothetical machine: speed factors relative to the baseline."""

    bandwidth_factor: float
    latency_factor: float
    compute_factor: float

    def describe(self) -> str:
        return (
            f"bw x{self.bandwidth_factor:g}, lat x{self.latency_factor:g}, "
            f"compute x{self.compute_factor:g}"
        )


@dataclass
class DesignSpaceResult:
    """Predicted application time over a design grid."""

    machine: MachineConfig
    points: List[DesignPoint]
    total_time: np.ndarray  # aligned with points
    baseline_index: int

    @property
    def baseline_time(self) -> float:
        return float(self.total_time[self.baseline_index])

    def speedup(self, point: DesignPoint) -> float:
        """Baseline time divided by the point's predicted time."""
        idx = self.points.index(point)
        return self.baseline_time / float(self.total_time[idx])

    def best(self) -> Tuple[DesignPoint, float]:
        """The fastest configuration and its speedup."""
        idx = int(np.argmin(self.total_time))
        return self.points[idx], self.baseline_time / float(self.total_time[idx])

    def cheapest_meeting(self, target_speedup: float) -> Optional[DesignPoint]:
        """The least aggressive upgrade achieving ``target_speedup``.

        "Least aggressive" minimizes the product of the three factors —
        a rough proxy for cost.  Returns None if no grid point reaches
        the target.
        """
        best_point = None
        best_cost = None
        for point, total in zip(self.points, self.total_time):
            if self.baseline_time / float(total) >= target_speedup:
                cost = (
                    point.bandwidth_factor
                    * point.compute_factor
                    / point.latency_factor ** 0  # latency upgrades priced into bw
                )
                cost = point.bandwidth_factor * point.compute_factor * point.latency_factor
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_point = point
        return best_point

    def amdahl_table(self) -> List[Tuple[str, float]]:
        """(description, speedup) rows sorted by speedup, descending."""
        rows = [
            (point.describe(), self.baseline_time / float(total))
            for point, total in zip(self.points, self.total_time)
        ]
        return sorted(rows, key=lambda r: -r[1])


def explore_design_space(
    trace: TraceSet,
    machine: MachineConfig,
    bandwidth_factors: Sequence[float] = (1.0, 2.0, 10.0),
    latency_factors: Sequence[float] = (1.0, 2.0, 10.0),
    compute_factors: Sequence[float] = (1.0, 10.0, 100.0),
) -> DesignSpaceResult:
    """Price a trace on every (bw, lat, compute) combination.

    Bandwidth and latency axes ride MFACT's vectorized grid, so the cost
    is one replay *per compute factor* regardless of how many network
    points are explored.
    """
    if not all(f > 0 for f in bandwidth_factors):
        raise ValueError("bandwidth factors must be positive")
    if not all(f > 0 for f in latency_factors):
        raise ValueError("latency factors must be positive")
    if not all(f > 0 for f in compute_factors):
        raise ValueError("compute factors must be positive")
    points: List[DesignPoint] = []
    totals: List[float] = []
    baseline_index = None
    for cf in compute_factors:
        lats, bws, scales = [], [], []
        for lf in latency_factors:
            for bf in bandwidth_factors:
                lats.append(machine.latency / lf)
                bws.append(machine.bandwidth * bf)
                scales.append(machine.compute_scale / cf)
        grid = ConfigGrid(lats, bws, scales)
        report = LogicalClockReplay(trace, machine, grid).run()
        i = 0
        for lf in latency_factors:
            for bf in bandwidth_factors:
                point = DesignPoint(bf, lf, cf)
                points.append(point)
                totals.append(float(report.total_time[i]))
                if bf == 1.0 and lf == 1.0 and cf == 1.0:
                    baseline_index = len(points) - 1
                i += 1
    if baseline_index is None:
        raise ValueError(
            "the design grid must contain the baseline point (all factors 1.0)"
        )
    return DesignSpaceResult(
        machine=machine,
        points=points,
        total_time=np.asarray(totals),
        baseline_index=baseline_index,
    )
