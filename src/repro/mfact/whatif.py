"""What-if design-space exploration (Section II-C's practical case).

The paper motivates modeling for *disruptive* design questions — "a
cluster with a 10x faster network and 100x faster compute" — where the
design space is too large to simulate point by point.  This module
wraps MFACT's multi-configuration replay in a small design-space API:
declare axes (bandwidth, latency, compute speed), explore the whole
grid in one replay per compute point, and query speedups, bottleneck
shifts and the cheapest configuration meeting a target.

``explore_design_space(analytic=True)`` drops the replays entirely:
one *recorded* replay builds the max-plus dependency graph
(:mod:`repro.sensitivity`), and every grid point is priced by tape
evaluation — zero replays per design point, agreeing with the replayed
path within the package's documented ``1e-6`` relative band (the
differential suite asserts ``1e-9`` on the mini-corpus).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.machines.config import MachineConfig
from repro.mfact.hockney import ConfigGrid
from repro.mfact.logical_clock import LogicalClockReplay
from repro.trace.trace import TraceSet

__all__ = ["DesignPoint", "DesignSpaceResult", "explore_design_space"]


@dataclass(frozen=True)
class DesignPoint:
    """One hypothetical machine: speed factors relative to the baseline."""

    bandwidth_factor: float
    latency_factor: float
    compute_factor: float

    def describe(self) -> str:
        return (
            f"bw x{self.bandwidth_factor:g}, lat x{self.latency_factor:g}, "
            f"compute x{self.compute_factor:g}"
        )


@dataclass
class DesignSpaceResult:
    """Predicted application time over a design grid."""

    machine: MachineConfig
    points: List[DesignPoint]
    total_time: np.ndarray  # aligned with points
    baseline_index: int

    @property
    def baseline_time(self) -> float:
        return float(self.total_time[self.baseline_index])

    def speedup(self, point: DesignPoint) -> float:
        """Baseline time divided by the point's predicted time."""
        idx = self.points.index(point)
        return self.baseline_time / float(self.total_time[idx])

    def best(self) -> Tuple[DesignPoint, float]:
        """The fastest configuration and its speedup."""
        idx = int(np.argmin(self.total_time))
        return self.points[idx], self.baseline_time / float(self.total_time[idx])

    def cheapest_meeting(
        self, target_speedup: float, rel_tol: float = 1e-9
    ) -> Optional[DesignPoint]:
        """The least aggressive upgrade achieving ``target_speedup``.

        "Least aggressive" minimizes the product of the three factors —
        a rough proxy for cost.  Returns None if no grid point reaches
        the target.

        Boundary behavior is deterministic: a point qualifies when its
        speedup reaches the target within ``rel_tol`` relative slack
        (so a speedup equal to the target except for float rounding —
        e.g. ``1.9999999999999998`` vs ``2.0`` — is not dropped), and a
        candidate replaces the incumbent only when its cost is smaller
        by more than the same relative slack — cost ties, exact or
        float-noise, keep the *first* qualifying point in grid order.
        """
        best_point = None
        best_cost = None
        threshold = target_speedup * (1.0 - rel_tol)
        for point, total in zip(self.points, self.total_time):
            if self.baseline_time / float(total) < threshold:
                continue
            cost = point.bandwidth_factor * point.compute_factor * point.latency_factor
            if best_cost is None or cost < best_cost * (1.0 - rel_tol):
                best_cost = cost
                best_point = point
        return best_point

    def amdahl_table(self) -> List[Tuple[str, float]]:
        """(description, speedup) rows sorted by speedup, descending."""
        rows = [
            (point.describe(), self.baseline_time / float(total))
            for point, total in zip(self.points, self.total_time)
        ]
        return sorted(rows, key=lambda r: -r[1])


def explore_design_space(
    trace: TraceSet,
    machine: MachineConfig,
    bandwidth_factors: Sequence[float] = (1.0, 2.0, 10.0),
    latency_factors: Sequence[float] = (1.0, 2.0, 10.0),
    compute_factors: Sequence[float] = (1.0, 10.0, 100.0),
    analytic: bool = False,
) -> DesignSpaceResult:
    """Price a trace on every (bw, lat, compute) combination.

    Bandwidth and latency axes ride MFACT's vectorized grid, so the cost
    is one replay *per compute factor* regardless of how many network
    points are explored.  With ``analytic=True`` a single *recorded*
    replay prices the whole grid — including the compute axis — by
    evaluating the max-plus dependency graph (:mod:`repro.sensitivity`);
    point ordering, the baseline requirement and the result shape are
    identical to the replayed path.
    """
    if not all(f > 0 for f in bandwidth_factors):
        raise ValueError("bandwidth factors must be positive")
    if not all(f > 0 for f in latency_factors):
        raise ValueError("latency factors must be positive")
    if not all(f > 0 for f in compute_factors):
        raise ValueError("compute factors must be positive")
    if analytic:
        return _explore_analytic(
            trace, machine, bandwidth_factors, latency_factors, compute_factors
        )
    points: List[DesignPoint] = []
    totals: List[float] = []
    baseline_index = None
    for cf in compute_factors:
        lats, bws, scales = [], [], []
        for lf in latency_factors:
            for bf in bandwidth_factors:
                lats.append(machine.latency / lf)
                bws.append(machine.bandwidth * bf)
                scales.append(machine.compute_scale / cf)
        grid = ConfigGrid(lats, bws, scales)
        report = LogicalClockReplay(trace, machine, grid).run()
        i = 0
        for lf in latency_factors:
            for bf in bandwidth_factors:
                point = DesignPoint(bf, lf, cf)
                points.append(point)
                totals.append(float(report.total_time[i]))
                if bf == 1.0 and lf == 1.0 and cf == 1.0:
                    baseline_index = len(points) - 1
                i += 1
    if baseline_index is None:
        raise ValueError(
            "the design grid must contain the baseline point (all factors 1.0)"
        )
    return DesignSpaceResult(
        machine=machine,
        points=points,
        total_time=np.asarray(totals),
        baseline_index=baseline_index,
    )


def _explore_analytic(
    trace: TraceSet,
    machine: MachineConfig,
    bandwidth_factors: Sequence[float],
    latency_factors: Sequence[float],
    compute_factors: Sequence[float],
) -> DesignSpaceResult:
    """Zero-replay grid pricing: record once, tape-evaluate every point."""
    # Imported here: whatif is a mfact module and repro.sensitivity
    # builds on mfact's replay, so a top-level import would be cyclic.
    from repro.sensitivity.analysis import record_graph

    graph, _ = record_graph(trace, machine)
    points: List[DesignPoint] = []
    lats: List[float] = []
    bws: List[float] = []
    scales: List[float] = []
    baseline_index = None
    for cf in compute_factors:
        for lf in latency_factors:
            for bf in bandwidth_factors:
                points.append(DesignPoint(bf, lf, cf))
                lats.append(machine.latency / lf)
                bws.append(machine.bandwidth * bf)
                scales.append(machine.compute_scale / cf)
                if bf == 1.0 and lf == 1.0 and cf == 1.0:
                    baseline_index = len(points) - 1
    if baseline_index is None:
        raise ValueError(
            "the design grid must contain the baseline point (all factors 1.0)"
        )
    totals = graph.evaluate(np.asarray(lats), np.asarray(bws), np.asarray(scales))
    return DesignSpaceResult(
        machine=machine,
        points=points,
        total_time=totals,
        baseline_index=baseline_index,
    )
