"""Hockney point-to-point model and the network configuration grid.

MFACT characterizes the communication subsystem by two parameters,
latency ``alpha`` and bandwidth ``B`` (Hockney's model): a message of
``m`` bytes costs ``alpha + m / B``.  Its signature feature is replaying
one trace while maintaining logical clocks for *many* network
configurations concurrently; :class:`ConfigGrid` is that set of
configurations, stored as parallel numpy arrays so every clock update is
one vectorized expression.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.machines.config import MachineConfig
from repro.util.validation import require

__all__ = ["ConfigGrid", "DEFAULT_BW_FACTORS", "DEFAULT_LAT_FACTORS", "p2p_time"]

#: Default bandwidth scaling factors explored in one replay (x1/8 ... x8).
DEFAULT_BW_FACTORS = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
#: Default latency scaling factors explored in one replay.
DEFAULT_LAT_FACTORS = (0.125, 1.0, 8.0)


class ConfigGrid:
    """A family of network configurations evaluated in one replay.

    Attributes
    ----------
    latency, bandwidth, compute_scale:
        1-D float arrays of equal length ``n``; configuration ``i`` is
        the triple ``(latency[i], bandwidth[i], compute_scale[i])``.
    baseline:
        Index of the configuration matching the physical machine.
    """

    def __init__(
        self,
        latency: Sequence[float],
        bandwidth: Sequence[float],
        compute_scale: Optional[Sequence[float]] = None,
        baseline: int = 0,
    ):
        self.latency = np.asarray(latency, dtype=float)
        self.bandwidth = np.asarray(bandwidth, dtype=float)
        n = self.latency.size
        require(self.bandwidth.size == n, "latency and bandwidth lengths differ")
        if compute_scale is None:
            self.compute_scale = np.ones(n)
        else:
            self.compute_scale = np.asarray(compute_scale, dtype=float)
            require(self.compute_scale.size == n, "compute_scale length differs")
        require(n >= 1, "ConfigGrid needs at least one configuration")
        require(bool(np.all(self.latency > 0)), "latencies must be positive")
        require(bool(np.all(self.bandwidth > 0)), "bandwidths must be positive")
        require(bool(np.all(self.compute_scale > 0)), "compute scales must be positive")
        require(0 <= baseline < n, f"baseline index {baseline} out of range")
        self.baseline = int(baseline)

    def __len__(self) -> int:
        return int(self.latency.size)

    @classmethod
    def single(cls, machine: MachineConfig) -> "ConfigGrid":
        """Only the machine's own configuration."""
        return cls([machine.latency], [machine.bandwidth], [machine.compute_scale])

    @classmethod
    def sweep(
        cls,
        machine: MachineConfig,
        bw_factors: Sequence[float] = DEFAULT_BW_FACTORS,
        lat_factors: Sequence[float] = DEFAULT_LAT_FACTORS,
    ) -> "ConfigGrid":
        """Cartesian sweep of bandwidth x latency factors around a machine.

        The grid always contains the exact baseline (factor 1, 1); its
        index is recorded in :attr:`baseline`.
        """
        bw_factors = tuple(bw_factors)
        lat_factors = tuple(lat_factors)
        require(len(bw_factors) >= 1 and len(lat_factors) >= 1, "factor lists must be non-empty")
        lats, bws = [], []
        baseline = None
        for lf in lat_factors:
            for bf in bw_factors:
                # A "faster" network has lower latency and higher bandwidth;
                # factors scale speed, so latency divides and bandwidth multiplies.
                lats.append(machine.latency / lf)
                bws.append(machine.bandwidth * bf)
                if lf == 1.0 and bf == 1.0:
                    baseline = len(lats) - 1
        if baseline is None:
            lats.append(machine.latency)
            bws.append(machine.bandwidth)
            baseline = len(lats) - 1
        scales = [machine.compute_scale] * len(lats)
        return cls(lats, bws, scales, baseline=baseline)

    def find(self, bw_factor: float, lat_factor: float, machine: MachineConfig) -> int:
        """Index of the configuration at the given speed factors."""
        target_lat = machine.latency / lat_factor
        target_bw = machine.bandwidth * bw_factor
        match = np.flatnonzero(
            np.isclose(self.latency, target_lat) & np.isclose(self.bandwidth, target_bw)
        )
        if match.size == 0:
            raise KeyError(f"no configuration at bw x{bw_factor}, lat x{lat_factor}")
        return int(match[0])


def p2p_time(nbytes: int, latency, bandwidth):
    """Hockney cost ``alpha + m / B``; broadcasts over config arrays."""
    return latency + nbytes / bandwidth
