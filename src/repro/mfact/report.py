"""MFACT modeling results.

A :class:`MFACTReport` carries per-configuration predicted total and
communication times, the four counters at the baseline configuration,
the application classification and the modeling wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

import numpy as np

from repro.mfact.classify import AppClass, classify, is_communication_sensitive
from repro.mfact.hockney import ConfigGrid

if TYPE_CHECKING:  # pragma: no cover
    from repro.mfact.logical_clock import LogicalClockReplay

__all__ = ["MFACTReport"]


@dataclass
class MFACTReport:
    """Modeling output of one trace on one machine.

    Attributes
    ----------
    trace_name, app, machine:
        Identity of the modeled run.
    grid:
        The configuration grid of the replay.
    total_time:
        Predicted application time per configuration (max final logical
        clock over ranks), shape ``(nconfigs,)``.
    comm_time:
        Predicted communication time per configuration (rank-mean of
        latency + bandwidth + wait counters), shape ``(nconfigs,)``.
    baseline_counters:
        Rank-averaged counters at the baseline configuration.
    classification:
        The 5-way MFACT application class.
    communication_sensitive:
        Section VI's conservative "CS" grouping: total time grows by
        more than 5% when bandwidth drops 8x.
    walltime:
        Modeling wall-clock time in seconds.
    """

    trace_name: str
    app: str
    machine: str
    grid: ConfigGrid
    total_time: np.ndarray
    comm_time: np.ndarray
    baseline_counters: Dict[str, float]
    classification: AppClass
    communication_sensitive: bool
    walltime: float
    per_rank_total: np.ndarray = field(repr=False, default=None)

    @property
    def baseline_total_time(self) -> float:
        """Predicted total time at the machine's own configuration."""
        return float(self.total_time[self.grid.baseline])

    @property
    def baseline_comm_time(self) -> float:
        """Predicted communication time at the machine's own configuration."""
        return float(self.comm_time[self.grid.baseline])

    @classmethod
    def from_replay(cls, replay: "LogicalClockReplay", walltime: float) -> "MFACTReport":
        """Assemble the report from a finished replay engine."""
        grid = replay.grid
        total = replay.clk.max(axis=0)
        comm = replay.counters.communication.mean(axis=0)
        base = grid.baseline
        baseline_counters = replay.counters.mean_over_ranks(base)
        try:
            label = classify(replay.trace, replay.machine, grid, total, replay.counters)
            cs = is_communication_sensitive(replay.machine, grid, total)
        except KeyError:
            # Single-configuration replays cannot observe sensitivity.
            label = None
            cs = False
        return cls(
            trace_name=replay.trace.name,
            app=replay.trace.app,
            machine=replay.machine.name,
            grid=grid,
            total_time=total,
            comm_time=comm,
            baseline_counters=baseline_counters,
            classification=label,
            communication_sensitive=cs,
            walltime=walltime,
            per_rank_total=replay.clk[:, base].copy(),
        )

    def time_at(self, bw_factor: float, lat_factor: float, machine) -> float:
        """Predicted total time at given speed factors around ``machine``."""
        return float(self.total_time[self.grid.find(bw_factor, lat_factor, machine)])
