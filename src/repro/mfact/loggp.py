"""LogGP point-to-point cost model (the related-work baseline).

The paper's related work compares against "theoretical LogGP-based
models" (Culler et al.; Martinez et al. report 15-20% errors for them).
LogGP prices a message of ``m`` bytes as::

    T(m) = L + 2o + (m - 1) * G        (one-way)

with ``L`` the wire latency, ``o`` the per-end software overhead, ``g``
the minimum inter-message gap at one sender, and ``G`` the per-byte
gap.  This module provides the model, a conversion from a machine's
Hockney parameters, and a comparison helper that reprices an MFACT
report's message traffic under LogGP — quantifying how much the model
choice (not the replay machinery) moves the predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.machines.config import MachineConfig
from repro.trace.events import OpKind
from repro.trace.trace import TraceSet

__all__ = ["LogGPParameters", "loggp_from_machine", "p2p_time_loggp", "compare_models"]


@dataclass(frozen=True)
class LogGPParameters:
    """The LogGP tuple (seconds; G is seconds per byte)."""

    L: float
    o: float
    g: float
    G: float

    def __post_init__(self):
        for name in ("L", "o", "g", "G"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def one_way(self, nbytes) -> np.ndarray:
        """T(m) = L + 2o + (m-1) G, vectorized over message sizes."""
        m = np.asarray(nbytes, dtype=float)
        return self.L + 2 * self.o + np.maximum(m - 1, 0) * self.G

    def sender_occupancy(self, nbytes) -> np.ndarray:
        """Time the sender is busy per message: max(o, g) + (m-1) G."""
        m = np.asarray(nbytes, dtype=float)
        return max(self.o, self.g) + np.maximum(m - 1, 0) * self.G


def loggp_from_machine(machine: MachineConfig) -> LogGPParameters:
    """Derive LogGP parameters from a machine's Hockney description.

    ``G = 1/B`` and the Hockney ``alpha`` splits into wire latency and
    two software overheads (the machine's per-call overhead); ``g``
    defaults to the overhead (one outstanding message per call).
    """
    o = machine.software_overhead
    L = max(machine.latency - 2 * o, machine.latency * 0.5)
    return LogGPParameters(L=L, o=o, g=o, G=1.0 / machine.bandwidth)


def p2p_time_loggp(nbytes, params: LogGPParameters) -> np.ndarray:
    """One-way message time under LogGP."""
    return params.one_way(nbytes)


def compare_models(trace: TraceSet, machine: MachineConfig) -> Dict[str, float]:
    """Total p2p pricing under Hockney vs LogGP for one trace.

    Sums each model's one-way cost over every p2p message (a pure
    model-form comparison, deliberately ignoring overlap and
    contention, which the replay engines handle identically for both).
    """
    sizes = np.array(
        [op.nbytes for stream in trace.ranks for op in stream if op.is_send_like],
        dtype=float,
    )
    if sizes.size == 0:
        return {
            "messages": 0.0,
            "hockney_total": 0.0,
            "loggp_total": 0.0,
            "relative_gap": 0.0,
        }
    hockney = machine.latency + sizes / machine.bandwidth
    params = loggp_from_machine(machine)
    loggp = params.one_way(sizes)
    hockney_total = float(hockney.sum())
    loggp_total = float(loggp.sum())
    return {
        "messages": float(sizes.size),
        "hockney_total": hockney_total,
        "loggp_total": loggp_total,
        "relative_gap": abs(loggp_total / hockney_total - 1.0),
    }
