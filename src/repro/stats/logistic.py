"""Logistic regression fitted by iteratively reweighted least squares.

A from-scratch GLM with binomial family and logit link — the parametric
model the paper selects because 235 observations are too few for
flexible learners.  A tiny L2 ridge keeps the Newton steps defined
under quasi-complete separation (which Table IV's huge ``CL{ncs}``
coefficient shows the paper's own fit ran into).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["DegenerateLabelsError", "LogisticModel", "fit_logistic"]

_MAX_ETA = 30.0

#: Symmetric probability clamp applied before every ``log`` in the
#: likelihood/AIC path, so a saturated fit can never produce a NaN AIC.
_P_EPS = 1e-12


class DegenerateLabelsError(ValueError):
    """The labels are single-class; a logistic fit would be meaningless.

    With a base rate of exactly 0 or 1 the intercept's MLE is ±infinity
    and every coefficient is unidentifiable — the old behaviour of
    silently initializing the intercept to 0.0 and "fitting" anyway
    produced a model whose predictions reflect the ridge penalty, not
    the data.  Callers that resample folds (e.g.
    :func:`repro.stats.mccv.monte_carlo_cv`) catch this and record a
    skipped split instead.
    """


def _sigmoid(eta: np.ndarray) -> np.ndarray:
    eta = np.clip(eta, -_MAX_ETA, _MAX_ETA)
    return 1.0 / (1.0 + np.exp(-eta))


@dataclass
class LogisticModel:
    """Fitted logistic regression.

    ``coef[0]`` is the intercept; ``coef[1:]`` align with
    ``feature_names``.
    """

    coef: np.ndarray
    feature_names: tuple
    log_likelihood: float
    n_obs: int
    converged: bool

    @property
    def n_params(self) -> int:
        return int(self.coef.size)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(y=1) for rows of ``X`` (without intercept column)."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.coef.size - 1:
            raise ValueError(
                f"X has {X.shape[1]} features, model expects {self.coef.size - 1}"
            )
        return _sigmoid(self.coef[0] + X @ self.coef[1:])

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 labels at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(int)

    def aic(self) -> float:
        """Akaike information criterion: 2k - 2 log L."""
        return 2.0 * self.n_params - 2.0 * self.log_likelihood


def fit_logistic(
    X: np.ndarray,
    y: Sequence[int],
    feature_names: Optional[Sequence[str]] = None,
    max_iter: int = 60,
    tol: float = 1e-8,
    ridge: float = 1e-6,
) -> LogisticModel:
    """Fit ``P(y=1 | x) = sigmoid(b0 + x . b)`` by IRLS.

    ``X`` is (n, k) without an intercept column; ``ridge`` is the L2
    penalty that regularizes separated fits.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X[:, None]
    y = np.asarray(y, dtype=float)
    n, k = X.shape
    if y.shape != (n,):
        raise ValueError(f"y has shape {y.shape}, expected ({n},)")
    if not np.all((y == 0) | (y == 1)):
        raise ValueError("y must be binary 0/1")
    if feature_names is None:
        feature_names = tuple(f"x{i}" for i in range(k))
    else:
        feature_names = tuple(feature_names)
        if len(feature_names) != k:
            raise ValueError("feature_names length must match X columns")
    # Standardize internally for numerical stability; fold back after.
    mu = X.mean(axis=0)
    sd = X.std(axis=0)
    sd[sd == 0] = 1.0
    Z = (X - mu) / sd
    design = np.column_stack([np.ones(n), Z])
    beta = np.zeros(k + 1)
    base = y.mean() if n else 0.0
    if not 0.0 < base < 1.0:
        raise DegenerateLabelsError(
            f"labels are single-class (base rate {base:g}); logistic fit is undefined"
        )
    beta[0] = np.log(base / (1.0 - base))
    converged = False
    penalty = ridge * np.eye(k + 1)
    penalty[0, 0] = 0.0  # never penalize the intercept
    for _ in range(max_iter):
        eta = design @ beta
        p = _sigmoid(eta)
        w = np.maximum(p * (1 - p), 1e-10)
        grad = design.T @ (y - p) - penalty @ beta
        hess = (design * w[:, None]).T @ design + penalty
        try:
            step = np.linalg.solve(hess, grad)
        except np.linalg.LinAlgError:
            step = np.linalg.lstsq(hess, grad, rcond=None)[0]
        beta = beta + step
        if np.max(np.abs(step)) < tol:
            converged = True
            break
    p_hat = np.clip(_sigmoid(design @ beta), _P_EPS, 1.0 - _P_EPS)
    ll = float(np.sum(y * np.log(p_hat) + (1.0 - y) * np.log1p(-p_hat)))
    # Unfold standardization: b_j = beta_j / sd_j; b0 = beta0 - sum mu_j b_j.
    coef = np.empty(k + 1)
    coef[1:] = beta[1:] / sd
    coef[0] = beta[0] - float(mu @ coef[1:])
    return LogisticModel(
        coef=coef,
        feature_names=feature_names,
        log_likelihood=ll,
        n_obs=n,
        converged=converged,
    )
