"""Probability-calibration diagnostics for the logistic predictor.

The enhanced MFACT emits probabilities, and the paper's discussion
notes that cases near the 2% DIFFtotal boundary drive the remaining
misclassifications.  Calibration diagnostics make that visible: the
Brier score, a reliability (calibration) table, and the probability
margin distribution of the errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["brier_score", "reliability_table", "error_margins", "CalibrationBin"]


def brier_score(y_true: Sequence[int], probabilities: Sequence[float]) -> float:
    """Mean squared error of probabilistic predictions (0 is perfect)."""
    y = np.asarray(y_true, dtype=float)
    p = np.asarray(probabilities, dtype=float)
    if y.shape != p.shape:
        raise ValueError("y_true and probabilities must have the same shape")
    if y.size == 0:
        raise ValueError("empty inputs")
    if np.any((p < 0) | (p > 1)):
        raise ValueError("probabilities must lie in [0, 1]")
    return float(np.mean((p - y) ** 2))


@dataclass(frozen=True)
class CalibrationBin:
    """One reliability-table row."""

    lower: float
    upper: float
    count: int
    mean_probability: float
    observed_rate: float

    @property
    def gap(self) -> float:
        """Predicted minus observed frequency (0 = perfectly calibrated)."""
        return self.mean_probability - self.observed_rate


def reliability_table(
    y_true: Sequence[int], probabilities: Sequence[float], bins: int = 10
) -> List[CalibrationBin]:
    """Bucket predictions by probability and compare to outcomes."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    y = np.asarray(y_true, dtype=float)
    p = np.asarray(probabilities, dtype=float)
    if y.shape != p.shape:
        raise ValueError("y_true and probabilities must have the same shape")
    edges = np.linspace(0.0, 1.0, bins + 1)
    table: List[CalibrationBin] = []
    for lower, upper in zip(edges[:-1], edges[1:]):
        mask = (p >= lower) & (p < upper if upper < 1.0 else p <= upper)
        if not mask.any():
            continue
        table.append(
            CalibrationBin(
                lower=float(lower),
                upper=float(upper),
                count=int(mask.sum()),
                mean_probability=float(p[mask].mean()),
                observed_rate=float(y[mask].mean()),
            )
        )
    return table


def error_margins(
    y_true: Sequence[int], probabilities: Sequence[float], threshold: float = 0.5
) -> np.ndarray:
    """|p - threshold| for the *misclassified* cases.

    Small margins mean the errors sit near the decision boundary — the
    paper's "DIFF values close to the 2% threshold" failure mode; large
    margins would indicate confidently wrong predictions, a model
    problem rather than a data problem.
    """
    y = np.asarray(y_true, dtype=int)
    p = np.asarray(probabilities, dtype=float)
    if y.shape != p.shape:
        raise ValueError("y_true and probabilities must have the same shape")
    predicted = (p >= threshold).astype(int)
    wrong = predicted != y
    return np.abs(p[wrong] - threshold)
