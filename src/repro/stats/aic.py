"""Akaike information criterion helpers."""

from __future__ import annotations

from repro.stats.logistic import LogisticModel

__all__ = ["aic", "aicc"]


def aic(model: LogisticModel) -> float:
    """AIC = 2k - 2 log L (lower is better)."""
    return model.aic()


def aicc(model: LogisticModel) -> float:
    """Small-sample corrected AIC (Hurvich & Tsai)."""
    k = model.n_params
    n = model.n_obs
    if n - k - 1 <= 0:
        return float("inf")
    return model.aic() + 2.0 * k * (k + 1) / (n - k - 1)
