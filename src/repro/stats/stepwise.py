"""Step-wise forward variable selection by AIC (Section VI-B2).

At each step the candidate variable whose addition most improves the
Akaike information criterion joins the model; selection stops when no
candidate improves AIC or the cap (five variables, to limit over-fitting
and multi-collinearity) is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.stats.logistic import LogisticModel, fit_logistic

__all__ = ["StepwiseResult", "stepwise_forward", "MAX_VARIABLES"]

#: The paper caps models at five variables.
MAX_VARIABLES = 5


@dataclass
class StepwiseResult:
    """Outcome of one forward-selection run."""

    selected: Tuple[str, ...]
    model: LogisticModel
    aic_path: Tuple[float, ...]  # AIC after each accepted step


def stepwise_forward(
    X: np.ndarray,
    y: Sequence[int],
    feature_names: Sequence[str],
    max_vars: int = MAX_VARIABLES,
    ridge: float = 1e-6,
) -> StepwiseResult:
    """Forward-select up to ``max_vars`` columns of ``X`` by AIC."""
    X = np.asarray(X, dtype=float)
    names = list(feature_names)
    if X.shape[1] != len(names):
        raise ValueError("feature_names must match X columns")
    if max_vars < 1:
        raise ValueError("max_vars must be >= 1")
    chosen: List[int] = []
    aic_path: List[float] = []
    # AIC of the intercept-only model.
    current_model = fit_logistic(np.zeros((X.shape[0], 0)), y, (), ridge=ridge)
    best_aic = current_model.aic()
    remaining = list(range(len(names)))
    while remaining and len(chosen) < max_vars:
        best_candidate = None
        best_candidate_aic = best_aic
        best_candidate_model = None
        for j in remaining:
            cols = chosen + [j]
            model = fit_logistic(
                X[:, cols], y, tuple(names[c] for c in cols), ridge=ridge
            )
            candidate_aic = model.aic()
            if candidate_aic < best_candidate_aic - 1e-9:
                best_candidate = j
                best_candidate_aic = candidate_aic
                best_candidate_model = model
        if best_candidate is None:
            break
        chosen.append(best_candidate)
        remaining.remove(best_candidate)
        best_aic = best_candidate_aic
        current_model = best_candidate_model
        aic_path.append(best_aic)
    return StepwiseResult(
        selected=tuple(names[c] for c in chosen),
        model=current_model,
        aic_path=tuple(aic_path),
    )
