"""Classification metrics as the paper defines them (Section VI-B3).

Positive class = "requires simulation".  The FN rate is FN / (FN + TP);
the FP rate is FP / (FP + TN); the misclassification rate is the share
of wrong predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ConfusionCounts", "confusion", "misclassification_rate"]


@dataclass(frozen=True)
class ConfusionCounts:
    """2x2 confusion counts with the paper's derived rates."""

    tp: int
    tn: int
    fp: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.tn + self.fp + self.fn

    @property
    def misclassification_rate(self) -> float:
        """(FP + FN) / total."""
        return (self.fp + self.fn) / self.total if self.total else 0.0

    @property
    def fn_rate(self) -> float:
        """FN / (FN + TP); 0 when no positives exist."""
        denom = self.fn + self.tp
        return self.fn / denom if denom else 0.0

    @property
    def fp_rate(self) -> float:
        """FP / (FP + TN); 0 when no negatives exist."""
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def success_rate(self) -> float:
        """1 - misclassification rate."""
        return 1.0 - self.misclassification_rate


def confusion(y_true: Sequence[int], y_pred: Sequence[int]) -> ConfusionCounts:
    """Tally the confusion counts of binary predictions."""
    yt = np.asarray(y_true, dtype=int)
    yp = np.asarray(y_pred, dtype=int)
    if yt.shape != yp.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    return ConfusionCounts(
        tp=int(np.sum((yt == 1) & (yp == 1))),
        tn=int(np.sum((yt == 0) & (yp == 0))),
        fp=int(np.sum((yt == 0) & (yp == 1))),
        fn=int(np.sum((yt == 1) & (yp == 0))),
    )


def misclassification_rate(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of wrong predictions."""
    return confusion(y_true, y_pred).misclassification_rate
