"""Monte Carlo cross-validation (Section VI-B2/B3).

100 random 80/20 train/test partitions (sampling without replacement);
on each partition a stepwise-selected logistic model is fitted on the
training fold and scored on the held-out fold.  Aggregates: trimmed
means of MR / FN / FP (top and bottom 2% discarded) plus per-variable
selection frequencies and mean coefficients (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.stats.logistic import DegenerateLabelsError
from repro.stats.metrics import ConfusionCounts, confusion
from repro.stats.stepwise import MAX_VARIABLES, StepwiseResult, stepwise_forward
from repro.util.rng import substream
from repro.util.stats import trimmed_mean

__all__ = ["CrossValidationResult", "VariableStats", "monte_carlo_cv"]


@dataclass(frozen=True)
class VariableStats:
    """Table IV row: how often a variable was selected, mean coefficient."""

    name: str
    selected_pct: float
    mean_coefficient: float


@dataclass
class CrossValidationResult:
    """Aggregated Monte Carlo CV outcome.

    ``runs`` is the number of partitions *requested*; ``skipped`` counts
    the splits whose training fold was single-class (degenerate) and was
    therefore recorded as skipped rather than fitted.  ``confusions``
    and all rate aggregates cover only the ``runs - skipped`` completed
    splits, as do the Table IV selection percentages.
    """

    runs: int
    confusions: List[ConfusionCounts]
    variable_stats: List[VariableStats]
    skipped: int = 0

    @property
    def completed(self) -> int:
        """Splits that actually produced a fitted, scored model."""
        return self.runs - self.skipped

    @property
    def misclassification_rates(self) -> np.ndarray:
        return np.array([c.misclassification_rate for c in self.confusions])

    @property
    def trimmed_mr(self) -> float:
        """Trimmed-mean misclassification rate (paper: 6.8%)."""
        return trimmed_mean(self.misclassification_rates)

    @property
    def trimmed_fn(self) -> float:
        """Trimmed-mean false-negative rate (paper: 6.2%)."""
        return trimmed_mean([c.fn_rate for c in self.confusions])

    @property
    def trimmed_fp(self) -> float:
        """Trimmed-mean false-positive rate (paper: 6.7%)."""
        return trimmed_mean([c.fp_rate for c in self.confusions])

    @property
    def success_rate(self) -> float:
        """1 - trimmed MR (paper: 93.2%)."""
        return 1.0 - self.trimmed_mr

    def top_variables(self, k: int = 10) -> List[VariableStats]:
        """Table IV: the k most frequently selected variables."""
        return sorted(self.variable_stats, key=lambda v: -v.selected_pct)[:k]


def monte_carlo_cv(
    X: np.ndarray,
    y: Sequence[int],
    feature_names: Sequence[str],
    runs: int = 100,
    train_fraction: float = 0.8,
    max_vars: int = MAX_VARIABLES,
    seed: int = 0,
) -> CrossValidationResult:
    """Run the paper's Monte Carlo cross-validation protocol."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    n = X.shape[0]
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if n < 5:
        raise ValueError("need at least 5 observations")
    names = list(feature_names)
    n_train = max(2, int(round(train_fraction * n)))
    confusions: List[ConfusionCounts] = []
    selected_count: Dict[str, int] = {name: 0 for name in names}
    coef_sums: Dict[str, float] = {name: 0.0 for name in names}
    skipped = 0
    for run in range(runs):
        rng = substream(seed, "mccv", run)
        perm = rng.permutation(n)
        train_idx, test_idx = perm[:n_train], perm[n_train:]
        # A single-class training fold has no logistic MLE; record the
        # split as skipped instead of fitting a meaningless model.  The
        # substream indexing by `run` keeps the surviving splits
        # identical to a run where no fold was degenerate.
        try:
            result = stepwise_forward(X[train_idx], y[train_idx], names, max_vars=max_vars)
        except DegenerateLabelsError:
            skipped += 1
            continue
        for name, coef in zip(result.model.feature_names, result.model.coef[1:]):
            selected_count[name] += 1
            coef_sums[name] += float(coef)
        cols = [names.index(s) for s in result.selected]
        if cols:
            preds = result.model.predict(X[np.ix_(test_idx, cols)])
        else:
            majority = int(round(float(y[train_idx].mean())))
            preds = np.full(test_idx.size, majority)
        confusions.append(confusion(y[test_idx], preds))
    completed = runs - skipped
    if completed == 0:
        raise DegenerateLabelsError(
            f"all {runs} cross-validation splits had single-class training folds"
        )
    variable_stats = [
        VariableStats(
            name=name,
            selected_pct=100.0 * selected_count[name] / completed,
            mean_coefficient=(
                coef_sums[name] / selected_count[name] if selected_count[name] else 0.0
            ),
        )
        for name in names
    ]
    return CrossValidationResult(
        runs=runs, confusions=confusions, variable_stats=variable_stats, skipped=skipped
    )
