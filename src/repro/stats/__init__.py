"""Statistics: logistic regression, AIC, stepwise selection, Monte Carlo CV."""

from repro.stats.aic import aic, aicc
from repro.stats.calibration import (
    CalibrationBin,
    brier_score,
    error_margins,
    reliability_table,
)
from repro.stats.logistic import DegenerateLabelsError, LogisticModel, fit_logistic
from repro.stats.mccv import CrossValidationResult, VariableStats, monte_carlo_cv
from repro.stats.metrics import ConfusionCounts, confusion, misclassification_rate
from repro.stats.stepwise import MAX_VARIABLES, StepwiseResult, stepwise_forward

__all__ = [
    "aic",
    "aicc",
    "CalibrationBin",
    "brier_score",
    "error_margins",
    "reliability_table",
    "DegenerateLabelsError",
    "LogisticModel",
    "fit_logistic",
    "CrossValidationResult",
    "VariableStats",
    "monte_carlo_cv",
    "ConfusionCounts",
    "confusion",
    "misclassification_rate",
    "MAX_VARIABLES",
    "StepwiseResult",
    "stepwise_forward",
]
