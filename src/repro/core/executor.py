"""Parallel study execution with a per-record result cache.

The paper's campaign replays every corpus trace through four tools.
Each (trace, machine, engine-suite, code-version) measurement is
independent, so the study is embarrassingly parallel: this module fans
:func:`repro.core.pipeline.measure_trace` out over a
:class:`concurrent.futures.ProcessPoolExecutor` and memoizes every
finished :class:`~repro.core.pipeline.StudyRecord` in a
content-addressed cache under ``.cache/records/``.

Properties the executor guarantees:

* **Determinism** — a parallel run (``jobs > 1``) produces records
  identical to the serial run; results are reassembled in corpus
  order regardless of completion order.
* **Incrementality** — each record is cached the moment it finishes,
  keyed by :func:`repro.util.fingerprint.record_cache_key`.  Editing a
  workload generator changes only its traces' fingerprints, so a
  re-run recomputes only the affected records; editing any engine
  changes the code version and recomputes everything.
* **Resumability** — interrupting a run (Ctrl-C) loses only records
  that were in flight; completed records are already on disk and a
  re-run turns them into cache hits.
* **Failure isolation** — one crashing replay becomes a ``failed``
  manifest entry carrying the exception, while the remaining records
  complete.
* **Observability** — every run emits a
  :class:`~repro.util.manifest.RunManifest` with per-record timing,
  cache hit/miss, worker pid and failure diagnostics.

``jobs=1`` runs entirely in-process (no pool, no pickling), preserving
the pipeline's historical serial path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.pipeline import SIM_MODELS, StudyRecord, measure_trace
from repro.machines.presets import get_machine
from repro.trace.trace import TraceSet
from repro.util.fingerprint import (
    code_version,
    machine_config_hash,
    record_cache_key,
    trace_fingerprint,
    workloads_code_version,
)
from repro.util.manifest import ManifestEntry, RunManifest

__all__ = [
    "DEFAULT_RECORD_CACHE",
    "MANIFEST_NAME",
    "RecordCache",
    "RecordOutcome",
    "StudyRun",
    "execute_study",
    "execute_traces",
    "spec_cache_key",
    "trace_cache_key",
]

#: Default location of the per-record cache.
DEFAULT_RECORD_CACHE = Path(".cache") / "records"

#: Manifest filename written inside the record cache after each run.
MANIFEST_NAME = "last_run_manifest.json"


def trace_cache_key(trace: TraceSet, engines: Sequence[str] = SIM_MODELS) -> str:
    """Cache key for measuring ``trace`` on its own machine preset."""
    machine = get_machine(trace.machine)
    return record_cache_key(
        trace_fingerprint(trace),
        machine_config_hash(machine),
        tuple(engines),
        code_version(),
    )


def spec_cache_key(spec, engines: Sequence[str] = SIM_MODELS) -> str:
    """Spec-index key: identifies a record *without building the trace*.

    Combines the spec's fields with the workload-generation code hash
    (what the spec would build), the machine config hash, the engine
    suite and the measurement code version.  A warm run with unchanged
    code resolves records straight from this index; editing any
    generator invalidates it, and the run falls back to
    build-and-fingerprint where the per-record layer still answers for
    traces that came out unchanged.
    """
    image = json.dumps(dataclasses.asdict(spec), sort_keys=True)
    digest = hashlib.sha256()
    for part in (
        image,
        workloads_code_version(),
        machine_config_hash(get_machine(spec.machine)),
        "+".join(engines),
        code_version(),
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


class RecordCache:
    """Content-addressed store of finished study records.

    One JSON file per record, named by its cache key; writes go through
    a temporary file plus :func:`os.replace` so an interrupted run never
    leaves a torn entry behind.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_RECORD_CACHE):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """Cache file backing ``key``."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[StudyRecord]:
        """The cached record for ``key``, or None (corrupt files miss)."""
        path = self.path(key)
        try:
            return StudyRecord.from_json(json.loads(path.read_text()))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, key: str, record: StudyRecord) -> None:
        """Atomically persist ``record`` under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record.to_json()))
        os.replace(tmp, path)

    # The spec index: ``<spec_key>.key`` files mapping a spec-level key
    # to the record key it resolved to, letting warm runs skip trace
    # construction entirely.

    def alias_path(self, spec_key: str) -> Path:
        return self.root / f"{spec_key}.key"

    def get_alias(self, spec_key: str) -> Optional[str]:
        """Record key the spec index maps ``spec_key`` to, or None."""
        try:
            return self.alias_path(spec_key).read_text().strip() or None
        except OSError:
            return None

    def put_alias(self, spec_key: str, record_key: str) -> None:
        """Atomically point the spec index at ``record_key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.alias_path(spec_key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(record_key)
        os.replace(tmp, path)

    def keys(self) -> List[str]:
        """Keys of every complete entry on disk."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json") if p.name != MANIFEST_NAME)

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete all entries and spec-index links; returns the entry count."""
        keys = self.keys()
        for key in keys:
            self.path(key).unlink(missing_ok=True)
        if self.root.is_dir():
            for alias in self.root.glob("*.key"):
                alias.unlink(missing_ok=True)
        return len(keys)


@dataclass
class RecordOutcome:
    """What happened to one work item (returned by workers)."""

    index: int
    name: str
    key: str
    record: Optional[StudyRecord]
    cache_hit: bool
    walltime: float
    worker: int
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.record is not None

    def manifest_entry(self) -> ManifestEntry:
        return ManifestEntry(
            name=self.name,
            spec_index=self.index,
            key=self.key,
            status="ok" if self.ok else "failed",
            cache_hit=self.cache_hit,
            walltime=self.walltime,
            worker=self.worker,
            error=self.error,
        )


@dataclass
class StudyRun:
    """Executor output: surviving records plus the full manifest."""

    records: List[StudyRecord] = field(default_factory=list)
    manifest: RunManifest = field(default_factory=RunManifest)

    @property
    def failures(self) -> List[ManifestEntry]:
        return self.manifest.failures


# -- worker-side measurement --------------------------------------------------
#
# Work items must cross a process boundary, so everything a worker needs
# is a plain picklable tuple: (index, spec-or-path, options dict).


def _measure_built_trace(
    index: int,
    name: str,
    trace: TraceSet,
    suite: str,
    cache_root: Optional[str],
    lint_gate: bool,
    engines: Tuple[str, ...],
) -> RecordOutcome:
    """Fingerprint, cache-check, and (on a miss) measure one trace."""
    t0 = time.perf_counter()
    key = trace_cache_key(trace, engines)
    cache = RecordCache(cache_root) if cache_root else None
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return RecordOutcome(
                index=index,
                name=name,
                key=key,
                record=hit,
                cache_hit=True,
                walltime=time.perf_counter() - t0,
                worker=os.getpid(),
            )
    record = measure_trace(trace, spec_index=index, suite=suite, lint_gate=lint_gate)
    if cache is not None:
        cache.put(key, record)
    return RecordOutcome(
        index=index,
        name=name,
        key=key,
        record=record,
        cache_hit=False,
        walltime=time.perf_counter() - t0,
        worker=os.getpid(),
    )


def _run_spec_task(task: Tuple[int, object, dict]) -> RecordOutcome:
    """Build one corpus spec's trace and measure it (picklable).

    Consults the spec index first: on a warm cache with unchanged code
    the record resolves without building the trace at all.
    """
    from repro.workloads.suite import build_trace

    index, spec, options = task
    t0 = time.perf_counter()
    cache_root = options.get("cache_root")
    engines = tuple(options.get("engines", SIM_MODELS))
    clean = not options.get("defects", {}).get(spec.index)
    try:
        if cache_root and clean:
            cache = RecordCache(cache_root)
            spec_key = spec_cache_key(spec, engines)
            record_key = cache.get_alias(spec_key)
            if record_key:
                record = cache.get(record_key)
                if record is not None:
                    return RecordOutcome(
                        index=spec.index,
                        name=spec.name,
                        key=record_key,
                        record=record,
                        cache_hit=True,
                        walltime=time.perf_counter() - t0,
                        worker=os.getpid(),
                    )
        trace = build_trace(spec)
        defect = options.get("defects", {}).get(spec.index)
        if defect:
            from repro.workloads.synthesis import inject_defect

            trace = inject_defect(trace, defect, seed=spec.seed)
        outcome = _measure_built_trace(
            index=spec.index,
            name=spec.name,
            trace=trace,
            suite=spec.suite,
            cache_root=cache_root,
            lint_gate=options.get("lint_gate", False),
            engines=engines,
        )
        if cache_root and clean and outcome.ok:
            RecordCache(cache_root).put_alias(spec_cache_key(spec, engines), outcome.key)
        return outcome
    except Exception as exc:
        return RecordOutcome(
            index=spec.index,
            name=spec.name,
            key="",
            record=None,
            cache_hit=False,
            walltime=time.perf_counter() - t0,
            worker=os.getpid(),
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=5)}",
        )


def _run_path_task(task: Tuple[int, object, dict]) -> RecordOutcome:
    """Load one trace file and measure it (picklable)."""
    from repro.trace.binary import read_trace_binary
    from repro.trace.dumpi import read_trace

    index, path, options = task
    path = str(path)
    t0 = time.perf_counter()
    try:
        trace = read_trace_binary(path) if path.endswith(".bin") else read_trace(path)
        return _measure_built_trace(
            index=index,
            name=trace.name,
            trace=trace,
            suite=trace.metadata.get("suite", ""),
            cache_root=options.get("cache_root"),
            lint_gate=options.get("lint_gate", False),
            engines=tuple(options.get("engines", SIM_MODELS)),
        )
    except Exception as exc:
        return RecordOutcome(
            index=index,
            name=path,
            key="",
            record=None,
            cache_hit=False,
            walltime=time.perf_counter() - t0,
            worker=os.getpid(),
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=5)}",
        )


# -- driver -------------------------------------------------------------------


def _drive(
    tasks: List[Tuple[int, object, dict]],
    worker: Callable[[Tuple[int, object, dict]], RecordOutcome],
    jobs: int,
    manifest: RunManifest,
    progress: Optional[Callable[[int, RecordOutcome], None]],
) -> Dict[int, RecordOutcome]:
    """Run ``worker`` over ``tasks``, serially or via a process pool.

    On :class:`KeyboardInterrupt` the partial outcome map is preserved
    on ``manifest`` (marked ``interrupted``) before the exception
    propagates — together with the per-record cache this is what makes
    interrupted studies resumable.
    """
    outcomes: Dict[int, RecordOutcome] = {}

    def note(outcome: RecordOutcome) -> None:
        outcomes[outcome.index] = outcome
        manifest.entries.append(outcome.manifest_entry())
        if progress:
            progress(outcome.index, outcome)

    try:
        if jobs <= 1:
            for task in tasks:
                note(worker(task))
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                pending = {pool.submit(worker, task) for task in tasks}
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        note(future.result())
    except KeyboardInterrupt:
        manifest.interrupted = True
        raise
    finally:
        manifest.entries.sort(key=lambda e: e.spec_index)
    return outcomes


def _finish(
    outcomes: Dict[int, RecordOutcome],
    manifest: RunManifest,
    cache_root: Optional[Path],
    manifest_path: Optional[Union[str, Path]],
) -> StudyRun:
    if manifest_path is None and cache_root is not None:
        manifest_path = Path(cache_root) / MANIFEST_NAME
    if manifest_path is not None:
        manifest.write(manifest_path)
    records = [
        outcomes[i].record for i in sorted(outcomes) if outcomes[i].record is not None
    ]
    return StudyRun(records=records, manifest=manifest)


def execute_study(
    specs: Sequence,
    jobs: int = 1,
    cache_root: Optional[Union[str, Path]] = DEFAULT_RECORD_CACHE,
    lint_gate: bool = False,
    engines: Sequence[str] = SIM_MODELS,
    defects: Optional[Dict[int, str]] = None,
    progress: Optional[Callable[[int, RecordOutcome], None]] = None,
    manifest_path: Optional[Union[str, Path]] = None,
    seed: Optional[int] = None,
) -> StudyRun:
    """Measure every :class:`~repro.workloads.suite.TraceSpec` in ``specs``.

    ``jobs`` processes build and measure the traces concurrently
    (``jobs=1`` stays in-process).  ``cache_root=None`` disables the
    record cache entirely.  ``defects`` maps spec indices to
    :func:`~repro.workloads.synthesis.inject_defect` kinds and exists
    for fault-injection testing of the failure-isolation path.
    ``progress`` is called with ``(spec_index, outcome)`` as records
    finish (completion order under ``jobs > 1``).

    Returns a :class:`StudyRun`; failed records appear only in its
    manifest.  The manifest is also written to ``manifest_path``
    (default: ``<cache_root>/last_run_manifest.json`` when caching).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    options = {
        "cache_root": str(cache_root) if cache_root is not None else None,
        "lint_gate": lint_gate,
        "engines": tuple(engines),
        "defects": dict(defects or {}),
    }
    manifest = RunManifest(
        seed=seed,
        jobs=jobs,
        engines=list(engines),
        code_version=code_version(),
    )
    tasks = [(spec.index, spec, options) for spec in specs]
    try:
        outcomes = _drive(tasks, _run_spec_task, jobs, manifest, progress)
    except KeyboardInterrupt:
        _finish({}, manifest, Path(cache_root) if cache_root else None, manifest_path)
        raise
    return _finish(outcomes, manifest, Path(cache_root) if cache_root else None, manifest_path)


def execute_traces(
    paths: Sequence[Union[str, Path]],
    jobs: int = 1,
    cache_root: Optional[Union[str, Path]] = DEFAULT_RECORD_CACHE,
    lint_gate: bool = False,
    engines: Sequence[str] = SIM_MODELS,
    progress: Optional[Callable[[int, RecordOutcome], None]] = None,
    manifest_path: Optional[Union[str, Path]] = None,
) -> StudyRun:
    """Measure already-serialized trace files (``.dmp`` ASCII or ``.bin``).

    Same parallelism, caching, isolation and manifest semantics as
    :func:`execute_study`, but the work items are file paths — the CLI
    entry point ``python -m repro.trace.cli measure``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    options = {
        "cache_root": str(cache_root) if cache_root is not None else None,
        "lint_gate": lint_gate,
        "engines": tuple(engines),
    }
    manifest = RunManifest(jobs=jobs, engines=list(engines), code_version=code_version())
    tasks = [(i, str(p), options) for i, p in enumerate(paths)]
    try:
        outcomes = _drive(tasks, _run_path_task, jobs, manifest, progress)
    except KeyboardInterrupt:
        _finish({}, manifest, Path(cache_root) if cache_root else None, manifest_path)
        raise
    return _finish(outcomes, manifest, Path(cache_root) if cache_root else None, manifest_path)
