"""Parallel study execution with a per-record result cache.

The paper's campaign replays every corpus trace through four tools.
Each (trace, machine, engine-suite, code-version) measurement is
independent, so the study is embarrassingly parallel: this module fans
:func:`repro.core.pipeline.measure_trace` out over a watchdog-supervised
worker pool (:class:`repro.core.resilience.WorkerPool`) and memoizes
every finished :class:`~repro.core.pipeline.StudyRecord` in a
content-addressed cache under ``.cache/records/``.

Properties the executor guarantees:

* **Determinism** — a parallel run (``jobs > 1``) produces records
  identical to the serial run; results are reassembled in corpus
  order regardless of completion order.  This holds even under a
  seeded fault plan (:mod:`repro.util.faults`): retries, backoff
  delays and ladder steps depend only on (record, attempt), never on
  scheduling.
* **Incrementality** — each record is cached the moment it finishes,
  keyed by :func:`repro.util.fingerprint.record_cache_key`; cached
  files carry a checksum, so corruption is detected on read (counted
  as ``cache_corrupt``, the bad file deleted, the record recomputed).
* **Resumability** — interrupting a run (Ctrl-C, including during a
  retry backoff wait) loses only records that were in flight.
* **Bounded failure** — a crashing replay retries with exponential
  backoff (:class:`~repro.core.resilience.RetryPolicy`); a replay that
  blows its wall/event budget — or a worker the parent watchdog had to
  kill — falls down the engine-degradation ladder
  (packet → packet-flow → flow → mfact-only) with the loss annotated
  on the record; a trace that fails every attempt at every step lands
  in the quarantine registry and is skipped (with reason) next run.
* **Observability** — every run emits a
  :class:`~repro.util.manifest.RunManifest` (schema v3) with per-record
  timing (total and compute-only walltime), cache hit/miss/corrupt,
  attempts, backoffs, ladder state, worker pid and failure diagnostics.
  With metrics collection on (``collect_metrics=True``, or a registry
  enabled via :mod:`repro.obs`), every worker attempt captures a
  task-local metrics snapshot that rides back on the result pipe; the
  driver merges them with its own counters into the manifest's
  ``metrics`` block, identically for serial and parallel runs.

``jobs=1`` runs entirely in-process (no pool, no pickling), preserving
the pipeline's historical serial path; hard worker hangs can only be
watchdog-killed under ``jobs > 1``, but cooperative in-engine budgets
protect both paths.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.pipeline import SIM_MODELS, StudyRecord, measure_trace
from repro.core.resilience import (
    LADDER,
    MFACT_ONLY_STEP,
    PoolWorkerError,
    QuarantineEntry,
    QuarantineRegistry,
    RetryPolicy,
    WorkerPool,
    classify_failure,
    step_engines,
)
from repro.machines.presets import get_machine
from repro.sim import modes
from repro.trace.trace import TraceSet
from repro.util.budget import Budget
from repro.util.faults import maybe_inject
from repro.util.fingerprint import (
    code_version,
    machine_config_hash,
    record_cache_key,
    trace_fingerprint,
    workloads_code_version,
)
from repro.util.manifest import ManifestEntry, RunManifest

__all__ = [
    "DEFAULT_RECORD_CACHE",
    "DEFAULT_RETRY_POLICY",
    "MANIFEST_NAME",
    "RecordCache",
    "RecordOutcome",
    "StudyRun",
    "drive_spec",
    "execute_study",
    "execute_traces",
    "spec_cache_key",
    "study_options",
    "trace_cache_key",
]

#: Default location of the per-record cache.
DEFAULT_RECORD_CACHE = Path(".cache") / "records"

#: Manifest filename written inside the record cache after each run.
MANIFEST_NAME = "last_run_manifest.json"

#: Retry policy applied when the caller does not pass one.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: The parent watchdog allows this much of the cooperative budget
#: (plus a constant) before concluding a worker is hung and killing it.
_WATCHDOG_FACTOR = 1.5
_WATCHDOG_SLACK = 1.0

#: Interruptible sleep used for retry backoff (module-level so tests
#: can stub it to simulate Ctrl-C during a backoff wait).
_sleep = time.sleep


def _watchdog_deadline(record_timeout: Optional[float]) -> Optional[float]:
    """Parent-side kill deadline for one attempt (None = no watchdog).

    Deadlines measure *attempt compute time only*: the cooperative
    budget is armed inside :func:`~repro.core.pipeline.measure_trace`
    and the watchdog clock starts at dispatch
    (:meth:`~repro.core.resilience.WorkerPool.dispatch` stamps
    ``seat.started``), so retry-backoff sleeps and queueing — which
    happen in the parent between attempts — never eat into a record's
    ``record_timeout``.  The factor/slack headroom covers worker-side
    setup (trace build, MFACT modeling) that runs before the
    cooperative budget is armed.
    """
    if record_timeout is None:
        return None
    return record_timeout * _WATCHDOG_FACTOR + _WATCHDOG_SLACK


def trace_cache_key(trace: TraceSet, engines: Sequence[str] = SIM_MODELS) -> str:
    """Cache key for measuring ``trace`` on its own machine preset."""
    machine = get_machine(trace.machine)
    return record_cache_key(
        trace_fingerprint(trace),
        machine_config_hash(machine),
        tuple(engines),
        code_version(),
    )


def spec_cache_key(spec, engines: Sequence[str] = SIM_MODELS) -> str:
    """Spec-index key: identifies a record *without building the trace*.

    Combines the spec's fields with the workload-generation code hash
    (what the spec would build), the machine config hash, the engine
    suite and the measurement code version.  A warm run with unchanged
    code resolves records straight from this index; editing any
    generator invalidates it, and the run falls back to
    build-and-fingerprint where the per-record layer still answers for
    traces that came out unchanged.
    """
    image = json.dumps(dataclasses.asdict(spec), sort_keys=True)
    digest = hashlib.sha256()
    for part in (
        image,
        workloads_code_version(),
        machine_config_hash(get_machine(spec.machine)),
        "+".join(engines),
        code_version(),
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


class RecordCache:
    """Content-addressed store of finished study records.

    One JSON file per record, named by its cache key; writes go through
    a temporary file plus :func:`os.replace` so an interrupted run never
    leaves a torn entry behind.  Each file is a verified envelope
    ``{"key", "checksum", "record"}``: reads check the stored key
    against the requested one and the payload against its checksum, so
    a corrupted or misfiled entry is *detected* (and deleted) rather
    than silently treated as a miss or — worse — returned as data.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_RECORD_CACHE):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """Cache file backing ``key``."""
        return self.root / f"{key}.json"

    @staticmethod
    def _checksum(payload_text: str) -> str:
        return hashlib.sha256(payload_text.encode("utf-8")).hexdigest()

    def get_checked(self, key: str) -> Tuple[Optional[StudyRecord], str]:
        """The record for ``key`` plus a status: ``hit``/``miss``/``corrupt``.

        A ``corrupt`` entry (unparseable file, missing envelope, key or
        checksum mismatch) is deleted so the slot recomputes cleanly.
        """
        path = self.path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            obs.counter("repro_cache_reads_total", result="miss").inc()
            return None, "miss"
        try:
            # json.loads decodes the bytes itself; undecodable garbage
            # raises UnicodeDecodeError, a ValueError — i.e. "corrupt".
            envelope = json.loads(raw)
            if (
                not isinstance(envelope, dict)
                or envelope.get("key") != key
                or "record" not in envelope
            ):
                raise ValueError("missing or mismatched cache envelope")
            payload_text = json.dumps(envelope["record"], sort_keys=True)
            if self._checksum(payload_text) != envelope.get("checksum"):
                raise ValueError("cache checksum mismatch")
            record = StudyRecord.from_json(envelope["record"])
            obs.counter("repro_cache_reads_total", result="hit").inc()
            return record, "hit"
        except (ValueError, KeyError, TypeError):
            path.unlink(missing_ok=True)
            obs.counter("repro_cache_reads_total", result="corrupt").inc()
            obs.counter("repro_cache_evictions_total", reason="corrupt").inc()
            return None, "corrupt"

    def get(self, key: str) -> Optional[StudyRecord]:
        """The cached record for ``key``, or None (corrupt entries deleted)."""
        record, _ = self.get_checked(key)
        return record

    def put(self, key: str, record: StudyRecord) -> None:
        """Atomically persist ``record`` under ``key`` (with checksum)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload_text = json.dumps(record.to_json(), sort_keys=True)
        envelope = {
            "key": key,
            "checksum": self._checksum(payload_text),
            "record": record.to_json(),
        }
        path = self.path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(envelope))
        os.replace(tmp, path)
        obs.counter("repro_cache_writes_total").inc()

    # The spec index: ``<spec_key>.key`` files mapping a spec-level key
    # to the record key it resolved to, letting warm runs skip trace
    # construction entirely.

    def alias_path(self, spec_key: str) -> Path:
        return self.root / f"{spec_key}.key"

    def get_alias(self, spec_key: str) -> Optional[str]:
        """Record key the spec index maps ``spec_key`` to, or None."""
        try:
            return self.alias_path(spec_key).read_text().strip() or None
        except OSError:
            return None

    def put_alias(self, spec_key: str, record_key: str) -> None:
        """Atomically point the spec index at ``record_key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.alias_path(spec_key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(record_key)
        os.replace(tmp, path)

    def keys(self) -> List[str]:
        """Keys of every complete entry on disk."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json") if p.name != MANIFEST_NAME)

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete all entries and spec-index links; returns the entry count."""
        keys = self.keys()
        for key in keys:
            self.path(key).unlink(missing_ok=True)
        if self.root.is_dir():
            for alias in self.root.glob("*.key"):
                alias.unlink(missing_ok=True)
        return len(keys)


@dataclass
class RecordOutcome:
    """What happened to one measurement *attempt* (returned by workers)."""

    index: int
    name: str
    key: str
    record: Optional[StudyRecord]
    cache_hit: bool
    walltime: float
    worker: int
    error: str = ""
    failure_kind: str = ""
    cache_corrupt: bool = False
    #: Task-local metrics snapshot (JSON image) captured around this
    #: attempt when the run collects metrics; None otherwise.  Plain
    #: dict so the outcome stays picklable across the result pipe.
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.record is not None


@dataclass
class StudyRun:
    """Executor output: surviving records plus the full manifest."""

    records: List[StudyRecord] = field(default_factory=list)
    manifest: RunManifest = field(default_factory=RunManifest)

    @property
    def failures(self) -> List[ManifestEntry]:
        return self.manifest.failures


# -- worker-side measurement --------------------------------------------------
#
# Work items must cross a process boundary, so everything a worker needs
# is a plain picklable tuple: (index, spec-or-path, options dict).  The
# options carry the attempt's resilience state (attempt number, ladder
# step, engine set, budgets) so faults, budgets and cache keys depend
# only on values, never on which process runs the attempt.


def _attempt_budget(options: dict) -> Optional[Budget]:
    timeout = options.get("record_timeout")
    events = options.get("event_budget")
    if timeout is None and events is None:
        return None
    return Budget(wall_seconds=timeout, events=events)


def _measure_built_trace(
    index: int,
    name: str,
    trace: TraceSet,
    suite: str,
    options: dict,
    corrupt_seen: bool = False,
) -> RecordOutcome:
    """Fingerprint, cache-check, and (on a miss) measure one trace."""
    t0 = time.perf_counter()
    attempt = options.get("attempt", 0)
    engines = tuple(options.get("engines", SIM_MODELS))
    key = trace_cache_key(trace, engines)
    cache_root = options.get("cache_root")
    cache = RecordCache(cache_root) if cache_root else None
    corrupt = corrupt_seen
    if cache is not None:
        maybe_inject("cache", index=index, attempt=attempt, cache_path=cache.path(key))
        hit, status = cache.get_checked(key)
        if status == "corrupt":
            corrupt = True
        if hit is not None:
            return RecordOutcome(
                index=index,
                name=name,
                key=key,
                record=hit,
                cache_hit=True,
                walltime=time.perf_counter() - t0,
                worker=os.getpid(),
                cache_corrupt=corrupt,
            )
    with obs.span("record"):
        record = measure_trace(
            trace,
            spec_index=index,
            suite=suite,
            lint_gate=options.get("lint_gate", False),
            engines=engines,
            budget=_attempt_budget(options),
            ladder_step=options.get("ladder_step", 0),
            degraded_from=options.get("degraded_from", ""),
            attempt=attempt,
            sim_vectorized=options.get("sim_vectorized"),
        )
    if cache is not None:
        cache.put(key, record)
    return RecordOutcome(
        index=index,
        name=name,
        key=key,
        record=record,
        cache_hit=False,
        walltime=time.perf_counter() - t0,
        worker=os.getpid(),
        cache_corrupt=corrupt,
    )


def _failure_outcome(
    index: int, name: str, exc: Exception, t0: float
) -> RecordOutcome:
    return RecordOutcome(
        index=index,
        name=name,
        key="",
        record=None,
        cache_hit=False,
        walltime=time.perf_counter() - t0,
        worker=os.getpid(),
        error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=5)}",
        failure_kind=classify_failure(exc),
    )


def _capture_task_metrics(impl, task: Tuple[int, object, dict]) -> RecordOutcome:
    """Run one task, collecting its metrics when the run asked for them.

    The task-local registry isolates this attempt's instrumentation;
    its snapshot travels home on the outcome (a plain dict over the
    result pipe).  Both the serial path and pool workers funnel through
    here, which is what makes serial and parallel aggregation identical.
    """
    if not task[2].get("metrics"):
        return impl(task)
    with obs.collect_task() as registry:
        outcome = impl(task)
    snap = registry.snapshot()
    if not snap.is_empty():
        outcome.metrics = snap.to_json()
    return outcome


def _run_spec_task(task: Tuple[int, object, dict]) -> RecordOutcome:
    """Build one corpus spec's trace and measure it (picklable).

    Consults the spec index first: on a warm cache with unchanged code
    the record resolves without building the trace at all.
    """
    return _capture_task_metrics(_run_spec_task_impl, task)


def _run_path_task(task: Tuple[int, object, dict]) -> RecordOutcome:
    """Load one trace file and measure it (picklable)."""
    return _capture_task_metrics(_run_path_task_impl, task)


def _run_spec_task_impl(task: Tuple[int, object, dict]) -> RecordOutcome:
    from repro.workloads.suite import build_trace

    index, spec, options = task
    t0 = time.perf_counter()
    attempt = options.get("attempt", 0)
    engines = tuple(options.get("engines", SIM_MODELS))
    cache_root = options.get("cache_root")
    clean = not options.get("defects", {}).get(spec.index)
    try:
        maybe_inject(
            "record",
            index=spec.index,
            attempt=attempt,
            engines=engines,
            lease=options.get("lease", 0),
        )
        corrupt = False
        if cache_root and clean:
            cache = RecordCache(cache_root)
            spec_key = spec_cache_key(spec, engines)
            record_key = cache.get_alias(spec_key)
            if record_key:
                maybe_inject(
                    "cache",
                    index=spec.index,
                    attempt=attempt,
                    cache_path=cache.path(record_key),
                )
                record, status = cache.get_checked(record_key)
                if status == "corrupt":
                    corrupt = True
                if record is not None:
                    return RecordOutcome(
                        index=spec.index,
                        name=spec.name,
                        key=record_key,
                        record=record,
                        cache_hit=True,
                        walltime=time.perf_counter() - t0,
                        worker=os.getpid(),
                    )
        trace = build_trace(spec)
        defect = options.get("defects", {}).get(spec.index)
        if defect:
            from repro.workloads.synthesis import inject_defect

            trace = inject_defect(trace, defect, seed=spec.seed)
        outcome = _measure_built_trace(
            index=spec.index,
            name=spec.name,
            trace=trace,
            suite=spec.suite,
            options=options,
            corrupt_seen=corrupt,
        )
        if cache_root and clean and outcome.ok:
            RecordCache(cache_root).put_alias(spec_cache_key(spec, engines), outcome.key)
        return outcome
    except Exception as exc:
        return _failure_outcome(spec.index, spec.name, exc, t0)


def _run_path_task_impl(task: Tuple[int, object, dict]) -> RecordOutcome:
    from repro.trace.binary import read_trace_binary
    from repro.trace.dumpi import read_trace

    index, path, options = task
    path = str(path)
    t0 = time.perf_counter()
    try:
        maybe_inject(
            "record",
            index=index,
            attempt=options.get("attempt", 0),
            engines=tuple(options.get("engines", SIM_MODELS)),
            lease=options.get("lease", 0),
        )
        trace = read_trace_binary(path) if path.endswith(".bin") else read_trace(path)
        return _measure_built_trace(
            index=index,
            name=trace.name,
            trace=trace,
            suite=trace.metadata.get("suite", ""),
            options=options,
        )
    except Exception as exc:
        return _failure_outcome(index, path, exc, t0)


# -- driver -------------------------------------------------------------------


@dataclass
class _TaskState:
    """Parent-side resilience state of one record across its attempts."""

    index: int
    name: str
    payload: object
    quarantine_key: str = ""
    attempt: int = 0  # attempt within the current ladder step
    step: int = 0
    total_attempts: int = 0
    backoffs: List[float] = field(default_factory=list)
    degraded_from: str = ""
    #: Wall seconds across *all* attempts, cache lookups included.
    walltime: float = 0.0
    #: Wall seconds spent actually measuring (cache-hit attempts
    #: excluded) — the number warm-vs-cold speedup claims must use;
    #: folding near-zero cache-hit times into one total under-reports
    #: warm-run cost and over-reports speedup.
    compute_walltime: float = 0.0
    cache_corrupt: bool = False
    last_error: str = ""
    last_kind: str = ""
    last_worker: int = 0


class _Driver:
    """Shared retry/degrade/quarantine resolution for both drive paths."""

    def __init__(
        self,
        worker: Callable[[Tuple[int, object, dict]], RecordOutcome],
        options: dict,
        manifest: RunManifest,
        policy: RetryPolicy,
        quarantine: Optional[QuarantineRegistry],
        progress: Optional[Callable[[int, RecordOutcome], None]],
        metrics: Optional[obs.MetricsRegistry] = None,
    ):
        self.worker = worker
        self.options = options
        self.manifest = manifest
        self.policy = policy
        self.quarantine = quarantine
        self.progress = progress
        self.metrics = metrics
        self.base_engines: Tuple[str, ...] = tuple(options.get("engines", SIM_MODELS))
        self.outcomes: Dict[int, RecordOutcome] = {}

    # -- task construction -------------------------------------------------

    def task_for(self, state: _TaskState) -> Tuple[int, object, dict]:
        options = dict(self.options)
        options["attempt"] = state.attempt
        options["ladder_step"] = state.step
        options["degraded_from"] = state.degraded_from
        options["engines"] = step_engines(state.step, self.base_engines)
        return (state.index, state.payload, options)

    # -- pre-dispatch quarantine check -------------------------------------

    def quarantined_entry(self, state: _TaskState) -> Optional[ManifestEntry]:
        """Skip entry when a previous run quarantined this record."""
        if self.quarantine is None or not state.quarantine_key:
            return None
        hit = self.quarantine.get(state.quarantine_key)
        if hit is None:
            return None
        if self.metrics is not None:
            self.metrics.counter(
                "repro_executor_records_total", status="skipped"
            ).inc()
        return ManifestEntry(
            name=state.name,
            spec_index=state.index,
            key="",
            status="quarantined",
            cache_hit=False,
            walltime=0.0,
            worker=os.getpid(),
            error=f"quarantined: {hit.reason}",
            attempts=0,
            quarantined=True,
        )

    # -- outcome resolution ------------------------------------------------

    def resolve(self, state: _TaskState, outcome: RecordOutcome):
        """Returns ``("done"|"fail"|"quarantine", None)`` or ``("retry", delay)``
        or ``("degrade", None)`` after updating ``state``."""
        state.total_attempts += 1
        state.walltime += outcome.walltime
        if not outcome.cache_hit:
            contribution = outcome.walltime
            if outcome.failure_kind == "timeout":
                # A watchdog kill reports the parent-side elapsed time,
                # which includes the factor/slack headroom past the
                # compute budget; cap the *compute* accounting at the
                # budget itself so deadline kills don't inflate
                # compute_walltime with watchdog slack.
                limit = self.options.get("record_timeout")
                if limit is not None:
                    contribution = min(contribution, float(limit))
            state.compute_walltime += contribution
        state.cache_corrupt = state.cache_corrupt or outcome.cache_corrupt
        state.last_worker = outcome.worker
        m = self.metrics
        if m is not None:
            m.merge_snapshot(outcome.metrics)
            m.counter("repro_executor_attempts_total").inc()
        if outcome.ok:
            return "done", None
        kind = outcome.failure_kind or "permanent"
        state.last_error = outcome.error
        state.last_kind = kind
        if kind == "permanent":
            return "fail", None
        if kind == "transient" and state.attempt + 1 < self.policy.max_attempts:
            delay = self.policy.delay(
                self.manifest.seed, state.name, state.total_attempts - 1
            )
            state.backoffs.append(delay)
            state.attempt += 1
            if m is not None:
                m.counter("repro_executor_retries_total").inc()
                m.counter("repro_executor_backoff_seconds_total").inc(delay)
                # Delays come from the seeded backoff substream, so this
                # histogram is deterministic — keep "seconds" out of its
                # name so the serial-vs-parallel diff covers it.
                m.histogram("repro_executor_backoff_delay").observe(delay)
            return "retry", delay
        # Budget/timeout (retrying would blow the same budget) or a
        # transient failure that exhausted its attempts: step down the
        # engine-degradation ladder, skipping steps whose engine set is
        # unchanged for this run's suite.
        current = step_engines(state.step, self.base_engines)
        step = state.step
        while step < MFACT_ONLY_STEP:
            step += 1
            if step_engines(step, self.base_engines) != current:
                break
        if step == state.step:  # already at mfact-only: nowhere left to fall
            return "quarantine", None
        if not state.degraded_from:
            state.degraded_from = next(
                (name for name in LADDER if name in current),
                current[0] if current else "",
            )
        state.step = step
        state.attempt = 0
        if m is not None:
            m.counter("repro_executor_ladder_steps_total").inc()
        return "degrade", None

    # -- manifest/bookkeeping ----------------------------------------------

    def finish(self, state: _TaskState, outcome: RecordOutcome, action: str) -> None:
        """Record the final entry for ``state`` and fire progress."""
        if action == "done":
            record = outcome.record
            entry = ManifestEntry(
                name=state.name,
                spec_index=state.index,
                key=outcome.key,
                status="ok",
                cache_hit=outcome.cache_hit,
                walltime=state.walltime,
                compute_walltime=state.compute_walltime,
                worker=outcome.worker,
                attempts=state.total_attempts,
                backoffs=list(state.backoffs),
                ladder_step=record.ladder_step,
                degraded_from=record.degraded_from,
                cache_corrupt=state.cache_corrupt,
            )
        else:
            # "quarantine" means every recovery path was exhausted; the
            # entry is only *marked* quarantined when a registry exists
            # to actually enforce the skip on the next run.
            quarantined = (
                action == "quarantine"
                and self.quarantine is not None
                and bool(state.quarantine_key)
            )
            reason = ""
            if quarantined:
                reason = (
                    f"failed {state.total_attempts} attempts across "
                    f"ladder steps 0..{state.step}"
                )
                self.quarantine.add(
                    QuarantineEntry(
                        key=state.quarantine_key,
                        name=state.name,
                        reason=reason,
                        attempts=state.total_attempts,
                        ladder_step=state.step,
                        error=state.last_error.splitlines()[0]
                        if state.last_error
                        else "",
                    )
                )
            entry = ManifestEntry(
                name=state.name,
                spec_index=state.index,
                key="",
                status="failed",
                cache_hit=False,
                walltime=state.walltime,
                compute_walltime=state.compute_walltime,
                worker=state.last_worker,
                error=(f"quarantined: {reason}\n" if quarantined else "")
                + state.last_error,
                attempts=state.total_attempts,
                backoffs=list(state.backoffs),
                ladder_step=state.step,
                degraded_from=state.degraded_from,
                failure_kind=state.last_kind,
                cache_corrupt=state.cache_corrupt,
                quarantined=quarantined,
            )
        if self.metrics is not None:
            status = {"done": "ok", "fail": "failed", "quarantine": "quarantined"}[action]
            self.metrics.counter("repro_executor_records_total", status=status).inc()
            self.metrics.counter(
                "repro_executor_record_walltime_seconds_total"
            ).inc(state.walltime)
            self.metrics.counter(
                "repro_executor_compute_walltime_seconds_total"
            ).inc(state.compute_walltime)
        self.outcomes[state.index] = outcome
        self.manifest.entries.append(entry)
        if self.progress:
            self.progress(state.index, outcome)

    def synthetic_failure(self, state: _TaskState, kind: str, detail) -> RecordOutcome:
        """Outcome standing in for a worker the pool killed or lost."""
        if kind == "timeout":
            error = f"watchdog killed hung worker after {detail:.2f}s"
            walltime = float(detail)
        else:
            error = str(detail)
            walltime = 0.0
        return RecordOutcome(
            index=state.index,
            name=state.name,
            key="",
            record=None,
            cache_hit=False,
            walltime=walltime,
            worker=state.last_worker,
            error=error,
            failure_kind="timeout" if kind == "timeout" else "transient",
        )


def _drive_serial(driver: _Driver, states: List[_TaskState]) -> None:
    for state in states:
        skip = driver.quarantined_entry(state)
        if skip is not None:
            driver.manifest.entries.append(skip)
            continue
        while True:
            outcome = driver.worker(driver.task_for(state))
            if isinstance(outcome, PoolWorkerError):  # pragma: no cover - pool only
                outcome = driver.synthetic_failure(state, "crashed", outcome.error)
            action, delay = driver.resolve(state, outcome)
            if action == "retry":
                _sleep(delay)
                continue
            if action == "degrade":
                continue
            driver.finish(state, outcome, action)
            break


def _drive_parallel(
    driver: _Driver, states: List[_TaskState], jobs: int, record_timeout: Optional[float]
) -> None:
    deadline = _watchdog_deadline(record_timeout)
    pool = WorkerPool(driver.worker, jobs)
    ready: List[_TaskState] = []
    for state in states:
        skip = driver.quarantined_entry(state)
        if skip is not None:
            driver.manifest.entries.append(skip)
        else:
            ready.append(state)
    waiting: List[Tuple[float, _TaskState]] = []  # (due monotonic, state)
    active: Dict[int, _TaskState] = {}
    try:
        while ready or waiting or active:
            now = time.monotonic()
            due = [w for w in waiting if w[0] <= now]
            if due:
                waiting = [w for w in waiting if w[0] > now]
                ready.extend(state for _, state in due)
            while ready and pool.idle_count() > 0:
                state = ready.pop(0)
                pool.dispatch(state.index, driver.task_for(state), deadline=deadline)
                active[state.index] = state
            if not active:
                if waiting:
                    _sleep(max(0.0, min(0.05, waiting[0][0] - time.monotonic())))
                continue
            for kind, task_id, detail in pool.poll(timeout=0.05):
                state = active.pop(task_id)
                if kind == "done" and not isinstance(detail, PoolWorkerError):
                    outcome = detail
                elif kind == "done":
                    outcome = driver.synthetic_failure(state, "crashed", detail.error)
                else:
                    outcome = driver.synthetic_failure(state, kind, detail)
                action, delay = driver.resolve(state, outcome)
                if action == "retry":
                    waiting.append((time.monotonic() + delay, state))
                    waiting.sort(key=lambda w: w[0])
                elif action == "degrade":
                    ready.append(state)
                else:
                    driver.finish(state, outcome, action)
    finally:
        pool.shutdown()


def _drive(
    states: List[_TaskState],
    worker: Callable[[Tuple[int, object, dict]], RecordOutcome],
    jobs: int,
    manifest: RunManifest,
    options: dict,
    policy: RetryPolicy,
    quarantine: Optional[QuarantineRegistry],
    progress: Optional[Callable[[int, RecordOutcome], None]],
    metrics: Optional[obs.MetricsRegistry] = None,
) -> Dict[int, RecordOutcome]:
    """Run the resilient measurement loop, serially or via the pool.

    On :class:`KeyboardInterrupt` — including one delivered during a
    retry backoff wait — the partial outcome map is preserved on
    ``manifest`` (marked ``interrupted``) before the exception
    propagates; together with the per-record cache this is what makes
    interrupted studies resumable.
    """
    driver = _Driver(worker, options, manifest, policy, quarantine, progress, metrics)
    try:
        if jobs <= 1:
            _drive_serial(driver, states)
        else:
            _drive_parallel(driver, states, jobs, options.get("record_timeout"))
    except KeyboardInterrupt:
        manifest.interrupted = True
        raise
    finally:
        manifest.entries.sort(key=lambda e: e.spec_index)
    return driver.outcomes


def _finish(
    outcomes: Dict[int, RecordOutcome],
    manifest: RunManifest,
    cache_root: Optional[Path],
    manifest_path: Optional[Union[str, Path]],
    metrics: Optional[obs.MetricsRegistry] = None,
) -> StudyRun:
    if metrics is not None:
        # Embed the run's merged snapshot in the manifest, and fold it
        # into the globally-active registry (if any) so callers like
        # repro-experiments aggregate across several runs.
        manifest.metrics = metrics.snapshot().to_json()
        active = obs.active_registry()
        if active is not None and active is not metrics:
            active.merge_snapshot(manifest.metrics)
    if manifest_path is None and cache_root is not None:
        manifest_path = Path(cache_root) / MANIFEST_NAME
    if manifest_path is not None:
        manifest.write(manifest_path)
    records = [
        outcomes[i].record for i in sorted(outcomes) if outcomes[i].record is not None
    ]
    return StudyRun(records=records, manifest=manifest)


def _quarantine_registry(
    quarantine_root: Optional[Union[str, Path]],
    cache_root: Optional[Union[str, Path]],
) -> Optional[QuarantineRegistry]:
    """Registry under ``quarantine_root``; derived from the cache layout
    (``<cache parent>/quarantine``) when caching is on and no explicit
    root is given; None (disabled) for cacheless runs."""
    if quarantine_root is not None:
        return QuarantineRegistry(quarantine_root)
    if cache_root is not None:
        return QuarantineRegistry(Path(cache_root).parent / "quarantine")
    return None


def _open_quarantine(
    quarantine_root: Optional[Union[str, Path]],
    cache_root: Optional[Union[str, Path]],
    manifest: RunManifest,
) -> Optional[QuarantineRegistry]:
    """Open the quarantine registry and prune stale entries.

    Quarantine keys embed the measurement code version, so entries
    written under a different version can never match again; dropping
    them at open keeps the registry from accumulating dead files, and
    the count lands on the manifest (``quarantine_pruned``).
    """
    registry = _quarantine_registry(quarantine_root, cache_root)
    if registry is not None:
        manifest.quarantine_pruned = registry.prune_stale(code_version())
    return registry


def study_options(
    cache_root: Optional[Union[str, Path]] = None,
    lint_gate: bool = False,
    engines: Sequence[str] = SIM_MODELS,
    defects: Optional[Dict[int, str]] = None,
    record_timeout: Optional[float] = None,
    event_budget: Optional[int] = None,
    metrics: bool = False,
    sim_vectorized: Optional[bool] = None,
) -> dict:
    """The picklable options dict shipped to every measurement task.

    Single construction point shared by :func:`execute_study`,
    :func:`execute_traces` and the :mod:`repro.serve` worker agent, so
    a distributed attempt sees exactly the knobs a local attempt would
    — which is what keeps distributed canonical records byte-identical
    to serial ones.  ``sim_vectorized`` is resolved here (never re-read
    from the environment inside a worker).
    """
    return {
        "cache_root": str(cache_root) if cache_root is not None else None,
        "lint_gate": lint_gate,
        "engines": tuple(engines),
        "defects": dict(defects or {}),
        "record_timeout": record_timeout,
        "event_budget": event_budget,
        "metrics": metrics,
        "sim_vectorized": modes.resolve(sim_vectorized),
    }


def drive_spec(
    spec,
    options: dict,
    seed: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    quarantine: Optional[QuarantineRegistry] = None,
    lease: int = 0,
) -> Tuple[ManifestEntry, Optional[StudyRecord], Optional[dict]]:
    """Drive one corpus spec through the full resilience state machine.

    This is the unit of work a :mod:`repro.serve` worker executes per
    assignment: the same retry/degrade/quarantine ``_Driver`` loop the
    local executor runs, in-process, for a single spec.  ``lease`` is
    the serve lease generation (forwarded to fault hooks and stamped on
    the entry).  Returns ``(manifest entry, record or None, task
    metrics snapshot or None)``; because backoff delays, ladder steps
    and cache keys depend only on (spec, attempt, seed), the entry and
    record match what a serial :func:`execute_study` would produce.
    """
    policy = retry if retry is not None else DEFAULT_RETRY_POLICY
    run_metrics = obs.MetricsRegistry() if options.get("metrics") else None
    manifest = RunManifest(
        seed=seed,
        jobs=1,
        engines=list(options.get("engines", SIM_MODELS)),
        code_version=code_version(),
        retry_policy=policy.to_json(),
        record_timeout=options.get("record_timeout"),
        event_budget=options.get("event_budget"),
    )
    task_options = dict(options)
    task_options["lease"] = lease
    state = _TaskState(
        index=spec.index,
        name=spec.name,
        payload=spec,
        quarantine_key=spec_cache_key(spec, tuple(options.get("engines", SIM_MODELS))),
    )
    driver = _Driver(
        _run_spec_task, task_options, manifest, policy, quarantine, None, run_metrics
    )
    _drive_serial(driver, [state])
    entry = manifest.entries[0]
    entry.lease = lease
    outcome = driver.outcomes.get(spec.index)
    record = outcome.record if outcome is not None else None
    snapshot = None
    if run_metrics is not None:
        snap = run_metrics.snapshot()
        if not snap.is_empty():
            snapshot = snap.to_json()
    return entry, record, snapshot


def execute_study(
    specs: Sequence,
    jobs: int = 1,
    cache_root: Optional[Union[str, Path]] = DEFAULT_RECORD_CACHE,
    lint_gate: bool = False,
    engines: Sequence[str] = SIM_MODELS,
    defects: Optional[Dict[int, str]] = None,
    progress: Optional[Callable[[int, RecordOutcome], None]] = None,
    manifest_path: Optional[Union[str, Path]] = None,
    seed: Optional[int] = None,
    record_timeout: Optional[float] = None,
    event_budget: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    quarantine_root: Optional[Union[str, Path]] = None,
    collect_metrics: Optional[bool] = None,
    sim_vectorized: Optional[bool] = None,
) -> StudyRun:
    """Measure every :class:`~repro.workloads.suite.TraceSpec` in ``specs``.

    ``jobs`` processes build and measure the traces concurrently
    (``jobs=1`` stays in-process).  ``cache_root=None`` disables the
    record cache entirely.  ``defects`` maps spec indices to
    :func:`~repro.workloads.synthesis.inject_defect` kinds and exists
    for fault-injection testing of the failure-isolation path.
    ``progress`` is called with ``(spec_index, outcome)`` as records
    finish (completion order under ``jobs > 1``).

    Resilience: ``record_timeout`` (wall seconds) and ``event_budget``
    bound every attempt — enforced cooperatively in-engine and, under
    ``jobs > 1``, by a watchdog that kills hung workers; over-budget
    records fall down the engine-degradation ladder instead of
    failing.  Transient failures retry under ``retry`` (default
    :data:`DEFAULT_RETRY_POLICY`) with deterministic backoff.  Records
    that exhaust every attempt at every ladder step are quarantined
    under ``quarantine_root`` (default: ``quarantine/`` beside the
    record cache) and skipped on later runs.

    Returns a :class:`StudyRun`; failed records appear only in its
    manifest.  The manifest is also written to ``manifest_path``
    (default: ``<cache_root>/last_run_manifest.json`` when caching).

    ``collect_metrics`` turns the :mod:`repro.obs` layer on for this
    run (default: on iff a registry is already enabled); the merged
    snapshot lands in ``manifest.metrics`` — identical for serial and
    parallel runs on all non-walltime series.

    ``sim_vectorized`` picks the engines' scalar or vectorized paths
    (``None``: this process's :mod:`repro.sim.modes` default).  The
    choice is resolved *here* and shipped to workers as an explicit
    bool, so a pool worker never re-reads the environment; it is not
    part of the record cache key because canonical records are
    byte-identical across modes.  Pool workers are long-lived: each one
    keeps its process (imports, numpy buffers, engine event pools) warm
    across all the records it measures.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    policy = retry if retry is not None else DEFAULT_RETRY_POLICY
    collect = obs.enabled() if collect_metrics is None else bool(collect_metrics)
    run_metrics = obs.MetricsRegistry() if collect else None
    options = study_options(
        cache_root=cache_root,
        lint_gate=lint_gate,
        engines=engines,
        defects=defects,
        record_timeout=record_timeout,
        event_budget=event_budget,
        metrics=collect,
        sim_vectorized=sim_vectorized,
    )
    manifest = RunManifest(
        seed=seed,
        jobs=jobs,
        engines=list(engines),
        code_version=code_version(),
        retry_policy=policy.to_json(),
        record_timeout=record_timeout,
        event_budget=event_budget,
    )
    quarantine = _open_quarantine(quarantine_root, cache_root, manifest)
    states = [
        _TaskState(
            index=spec.index,
            name=spec.name,
            payload=spec,
            quarantine_key=spec_cache_key(spec, tuple(engines)),
        )
        for spec in specs
    ]
    try:
        outcomes = _drive(
            states, _run_spec_task, jobs, manifest, options, policy, quarantine,
            progress, run_metrics,
        )
    except KeyboardInterrupt:
        _finish({}, manifest, Path(cache_root) if cache_root else None, manifest_path)
        raise
    return _finish(
        outcomes, manifest, Path(cache_root) if cache_root else None, manifest_path,
        run_metrics,
    )


def execute_traces(
    paths: Sequence[Union[str, Path]],
    jobs: int = 1,
    cache_root: Optional[Union[str, Path]] = DEFAULT_RECORD_CACHE,
    lint_gate: bool = False,
    engines: Sequence[str] = SIM_MODELS,
    progress: Optional[Callable[[int, RecordOutcome], None]] = None,
    manifest_path: Optional[Union[str, Path]] = None,
    record_timeout: Optional[float] = None,
    event_budget: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    quarantine_root: Optional[Union[str, Path]] = None,
    collect_metrics: Optional[bool] = None,
    sim_vectorized: Optional[bool] = None,
) -> StudyRun:
    """Measure already-serialized trace files (``.dmp`` ASCII or ``.bin``).

    Same parallelism, caching, isolation, budget/retry/ladder/quarantine,
    metrics-collection, manifest and ``sim_vectorized`` semantics as
    :func:`execute_study`, but the work items are file paths — the CLI
    entry point ``python -m repro.trace.cli measure``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    policy = retry if retry is not None else DEFAULT_RETRY_POLICY
    collect = obs.enabled() if collect_metrics is None else bool(collect_metrics)
    run_metrics = obs.MetricsRegistry() if collect else None
    options = study_options(
        cache_root=cache_root,
        lint_gate=lint_gate,
        engines=engines,
        record_timeout=record_timeout,
        event_budget=event_budget,
        metrics=collect,
        sim_vectorized=sim_vectorized,
    )
    manifest = RunManifest(
        jobs=jobs,
        engines=list(engines),
        code_version=code_version(),
        retry_policy=policy.to_json(),
        record_timeout=record_timeout,
        event_budget=event_budget,
    )
    quarantine = _open_quarantine(quarantine_root, cache_root, manifest)
    states = []
    for i, p in enumerate(paths):
        digest = hashlib.sha256(str(Path(p).resolve()).encode("utf-8"))
        digest.update(code_version().encode("utf-8"))
        states.append(
            _TaskState(
                index=i,
                name=str(p),
                payload=str(p),
                quarantine_key=f"path-{digest.hexdigest()}",
            )
        )
    try:
        outcomes = _drive(
            states, _run_path_task, jobs, manifest, options, policy, quarantine,
            progress, run_metrics,
        )
    except KeyboardInterrupt:
        _finish({}, manifest, Path(cache_root) if cache_root else None, manifest_path)
        raise
    return _finish(
        outcomes, manifest, Path(cache_root) if cache_root else None, manifest_path,
        run_metrics,
    )
