"""The paper's contribution: DIFFtotal, the study pipeline (with its
parallel executor and per-record cache), enhanced MFACT."""

from repro.core.difftotal import DIFF_THRESHOLD, diff_total, requires_simulation
from repro.core.enhanced_mfact import (
    CANDIDATE_NAMES,
    EnhancedMFACT,
    design_matrix,
    labels,
    naive_heuristic_success,
)
from repro.core.executor import (
    RecordCache,
    StudyRun,
    execute_study,
    execute_traces,
    trace_cache_key,
)
from repro.core.pipeline import (
    StudyRecord,
    ToolRun,
    load_or_run_study,
    measure_trace,
    run_study,
    study_cache_path,
)

__all__ = [
    "RecordCache",
    "StudyRun",
    "execute_study",
    "execute_traces",
    "trace_cache_key",
    "DIFF_THRESHOLD",
    "diff_total",
    "requires_simulation",
    "CANDIDATE_NAMES",
    "EnhancedMFACT",
    "design_matrix",
    "labels",
    "naive_heuristic_success",
    "StudyRecord",
    "ToolRun",
    "measure_trace",
    "run_study",
    "load_or_run_study",
    "study_cache_path",
]
