"""DIFFtotal and the need-for-simulation label (Section VI).

``DIFFtotal = |T_sim / T_MFACT - 1|`` compares the estimated total
application time of the simulation (packet-flow, the most robust model)
against the modeling estimate.  An application with DIFFtotal <= 2%
does not require simulation — modeling answers the same question one to
two orders of magnitude faster.
"""

from __future__ import annotations

__all__ = ["DIFF_THRESHOLD", "diff_total", "requires_simulation"]

#: The paper's decision threshold on DIFFtotal.
DIFF_THRESHOLD = 0.02


def diff_total(sim_total: float, mfact_total: float) -> float:
    """``|sim / mfact - 1|``; raises if the modeling estimate is <= 0."""
    if mfact_total <= 0:
        raise ValueError(f"MFACT total time must be positive, got {mfact_total}")
    if sim_total < 0:
        raise ValueError(f"simulated total time must be >= 0, got {sim_total}")
    return abs(sim_total / mfact_total - 1.0)


def requires_simulation(
    sim_total: float, mfact_total: float, threshold: float = DIFF_THRESHOLD
) -> bool:
    """True when simulation yields a meaningfully different answer."""
    return diff_total(sim_total, mfact_total) > threshold
