"""End-to-end study pipeline.

Runs the paper's full measurement campaign over the corpus: for every
trace, MFACT modeling plus packet, flow and packet-flow simulations,
Table III feature extraction, and the DIFFtotal label, producing one
:class:`StudyRecord` per trace.

Execution and caching are delegated to :mod:`repro.core.executor`:
``jobs > 1`` fans the per-trace measurements out over a process pool,
and every finished record is stored in a content-addressed cache under
``.cache/records/`` keyed by (trace fingerprint, machine config hash,
engine suite, code version) — so interrupted studies resume, and
editing one workload generator only recomputes its own traces.  A full
study additionally writes the aggregate ``.cache/study_seed<seed>.json``
snapshot that the experiment and benchmark modules load in one read.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.analysis.lint import LintGateError, lint_trace
from repro.core.difftotal import DIFF_THRESHOLD, diff_total
from repro.core.resilience import LADDER, band_for_step
from repro.machines.presets import get_machine
from repro.mfact.logical_clock import model_trace
from repro.sensitivity.analysis import analyze_graph, record_graph
from repro.sim import modes
from repro.sim.mpi_replay import ReplayShared, simulate_trace
from repro.sim.network import UnsupportedTraceError
from repro.trace.features import extract_features
from repro.trace.trace import TraceSet
from repro.util.budget import Budget, BudgetExceeded, WallClockExceeded
from repro.util.faults import maybe_inject
from repro.util.rng import DEFAULT_SEED
from repro.workloads.suite import corpus_specs

__all__ = ["ToolRun", "StudyRecord", "run_study", "load_or_run_study", "study_cache_path"]

SIM_MODELS = ("packet", "flow", "packet-flow")


@dataclass
class ToolRun:
    """One tool's outcome on one trace."""

    completed: bool
    total_time: float = 0.0
    comm_time: float = 0.0
    walltime: float = 0.0
    events: int = 0
    error: str = ""


@dataclass
class StudyRecord:
    """All measurements for one corpus trace."""

    name: str
    app: str
    suite: str
    machine: str
    nranks: int
    spec_index: int
    measured_total: float
    measured_comm: float
    comm_fraction: float
    mfact: ToolRun = field(default_factory=lambda: ToolRun(False))
    mfact_class: str = ""
    mfact_cs: bool = False
    sims: Dict[str, ToolRun] = field(default_factory=dict)
    features: Dict[str, float] = field(default_factory=dict)
    # Engine-degradation annotations (empty/zero when measured at full
    # detail): the most detailed engine given up on, the ladder step
    # the record was finally measured at, and the expected |DIFFtotal|
    # accuracy band at that step — so downstream tables and figures can
    # flag degraded cells instead of silently mixing or dropping them.
    degraded_from: str = ""
    ladder_step: int = 0
    expected_diff_band: str = ""

    # -- derived -----------------------------------------------------------

    def diff_total(self, model: str = "packet-flow") -> Optional[float]:
        """DIFFtotal against one simulation model (None if it failed)."""
        sim = self.sims.get(model)
        if sim is None or not sim.completed or not self.mfact.completed:
            return None
        return diff_total(sim.total_time, self.mfact.total_time)

    def requires_simulation(self, threshold: float = DIFF_THRESHOLD) -> Optional[bool]:
        """The Section VI ground-truth label."""
        diff = self.diff_total()
        return None if diff is None else diff > threshold

    def to_json(self, canonical: bool = False) -> dict:
        """JSON image of the record.

        ``canonical=True`` drops every tool's ``walltime`` — the only
        nondeterministic field (it times the *meter*, not the modeled
        application), so canonical payloads are bitwise-identical across
        serial/parallel runs and repeated runs with the same seed.
        """
        out = asdict(self)
        if canonical:
            out["mfact"].pop("walltime", None)
            for sim in out["sims"].values():
                sim.pop("walltime", None)
        return out

    @classmethod
    def from_json(cls, data: dict) -> "StudyRecord":
        data = dict(data)
        data["mfact"] = ToolRun(**data["mfact"])
        data["sims"] = {k: ToolRun(**v) for k, v in data["sims"].items()}
        return cls(**data)


def measure_trace(
    trace: TraceSet,
    spec_index: int = -1,
    suite: str = "",
    lint_gate: bool = False,
    engines: Sequence[str] = SIM_MODELS,
    budget: Optional[Budget] = None,
    ladder_step: int = 0,
    degraded_from: str = "",
    attempt: int = 0,
    sim_vectorized: Optional[bool] = None,
) -> StudyRecord:
    """Run all four tools and feature extraction on one stamped trace.

    With ``lint_gate=True`` the trace is first vetted by the static
    analyzer (:func:`repro.analysis.lint.lint_trace`); any error-level
    diagnostic raises :class:`~repro.analysis.lint.LintGateError`
    *before* any replay engine spends time on a trace that would fail
    or produce meaningless results mid-flight.

    ``engines`` restricts which simulation models run (the executor's
    degradation ladder passes the reduced suite; MFACT always runs).
    ``budget`` bounds the whole record: each engine gets the wall time
    remaining, and an engine exceeding it is marked failed while the
    *cheaper* engines still run — an in-record step down the ladder,
    annotated on the returned record.  ``ladder_step``/``degraded_from``
    carry executor-level degradation into the record's annotations;
    ``attempt`` is forwarded to the chaos harness
    (:func:`repro.util.faults.maybe_inject`) so fault plans can scope
    faults per attempt.

    ``sim_vectorized`` selects the simulation engines' scalar or
    vectorized paths (``None``: the :mod:`repro.sim.modes` process
    default).  Canonical record content is identical either way — the
    differential equivalence suite enforces it — so the choice never
    enters the record cache key.  In vectorized mode the collective
    expansion, fabric and compiled op streams are built once per record
    and shared across all engines instead of once per engine.
    """
    if lint_gate:
        report = lint_trace(trace)
        if not report.ok:
            raise LintGateError(report)
    machine = get_machine(trace.machine)
    with obs.span("features"):
        features = extract_features(trace)
    record = StudyRecord(
        name=trace.name,
        app=trace.app,
        suite=suite or trace.metadata.get("suite", ""),
        machine=trace.machine,
        nranks=trace.nranks,
        spec_index=spec_index,
        measured_total=trace.measured_total_time(),
        measured_comm=trace.measured_comm_time(),
        comm_fraction=trace.comm_fraction(),
        features=features,
    )
    report = model_trace(trace, machine)
    record.mfact = ToolRun(
        completed=True,
        total_time=report.baseline_total_time,
        comm_time=report.baseline_comm_time,
        walltime=report.walltime,
        events=trace.op_count(),
    )
    record.mfact_class = report.classification.value
    record.mfact_cs = bool(report.communication_sensitive)
    # Zero-replay sensitivity features: one recorded single-config
    # replay (kept separate so ``record.mfact.walltime`` stays the pure
    # tool cost the paper's Table II ranking is about), then lean tape
    # analytics.  Curves are skipped; the features need only the
    # baseline/half-bandwidth/cap probes and the Newton threshold, and
    # are bitwise-identical to a full analyze_trace().
    graph, _ = record_graph(trace, machine)
    record.features.update(
        analyze_graph(graph, machine, lat_factors=(), bw_factors=()).features()
    )
    wall_deadline = None
    if budget is not None and budget.wall_seconds is not None:
        wall_deadline = time.perf_counter() + budget.wall_seconds
    step = ladder_step
    degraded = degraded_from
    vectorized = modes.resolve(sim_vectorized)
    active_engines = [m for m in SIM_MODELS if m in engines]
    shared = ReplayShared(trace, machine) if vectorized and active_engines else None
    for model in active_engines:
        remaining = None
        if wall_deadline is not None:
            remaining = wall_deadline - time.perf_counter()
            if remaining <= 0.0:
                # The record budget is gone before this (cheaper) engine
                # even started: give it up too and let MFACT stand.
                record.sims[model] = ToolRun(
                    completed=False, error="WallClockExceeded: record budget exhausted"
                )
                obs.counter("repro_engine_runs_total", engine=model, status="skipped").inc()
                degraded = degraded or model
                step = max(step, LADDER.index(model) + 1 if model in LADDER else step)
                continue
        try:
            maybe_inject(
                "engine",
                index=spec_index,
                attempt=attempt,
                engine=model,
                wall_remaining=remaining,
            )
            result = simulate_trace(
                trace,
                machine,
                model,
                budget=Budget(
                    wall_seconds=remaining,
                    events=budget.events if budget is not None else None,
                ),
                vectorized=vectorized,
                shared=shared,
            )
            record.sims[model] = ToolRun(
                completed=True,
                total_time=result.total_time,
                comm_time=result.comm_time,
                walltime=result.walltime,
                events=result.events,
            )
            obs.counter("repro_engine_runs_total", engine=model, status="ok").inc()
        except UnsupportedTraceError as exc:
            record.sims[model] = ToolRun(completed=False, error=str(exc))
            obs.counter("repro_engine_runs_total", engine=model, status="unsupported").inc()
        except BudgetExceeded as exc:
            # Step down the ladder *inside* the attempt: mark this
            # engine failed with the structured diagnostic and keep
            # measuring with the cheaper engines.  Wall-clock messages
            # embed elapsed seconds, which vary run to run; records must
            # stay canonical across serial/parallel runs, so store a
            # fixed text for those (event budgets are deterministic).
            detail = (
                "wall-clock record budget exceeded"
                if isinstance(exc, WallClockExceeded)
                else str(exc)
            )
            record.sims[model] = ToolRun(
                completed=False,
                error=f"{type(exc).__name__}: {detail}",
                events=getattr(exc, "events_executed", 0),
            )
            obs.counter("repro_engine_runs_total", engine=model, status="budget").inc()
            degraded = degraded or model
            if model in LADDER:
                step = max(step, LADDER.index(model) + 1)
    record.degraded_from = degraded
    record.ladder_step = step
    record.expected_diff_band = band_for_step(step) if degraded else ""
    obs.counter("repro_records_measured_total").inc()
    return record


def run_study(
    seed: int = DEFAULT_SEED,
    limit: Optional[int] = None,
    progress: Optional[Callable[[int, StudyRecord], None]] = None,
    lint_gate: bool = False,
    jobs: int = 1,
    cache_root: Optional[Path] = None,
    manifest_path: Optional[Path] = None,
    record_timeout: Optional[float] = None,
    event_budget: Optional[int] = None,
    retry=None,
    sim_vectorized: Optional[bool] = None,
) -> List[StudyRecord]:
    """Build the corpus and measure every trace with all four tools.

    ``jobs`` measurement processes run concurrently (``jobs=1`` keeps
    the historical in-process path); results are identical either way.
    ``cache_root`` enables the per-record cache at that directory
    (``None`` recomputes everything).  Failures are isolated: a record
    whose replay raises — including a lint rejection under
    ``lint_gate=True`` — is dropped from the returned list and reported
    in the run manifest (written to ``manifest_path`` when given)
    instead of killing the study.  ``record_timeout`` (wall seconds)
    and ``event_budget`` bound each record, with over-budget records
    degrading down the engine ladder rather than failing; ``retry`` is
    a :class:`~repro.core.resilience.RetryPolicy` for transient
    failures (default: the executor's standard policy).
    """
    from repro.core.executor import execute_study

    specs = corpus_specs(seed)
    if limit is not None:
        specs = specs[:limit]

    def forward(index: int, outcome) -> None:
        if progress and outcome.ok:
            progress(index, outcome.record)

    run = execute_study(
        specs,
        jobs=jobs,
        cache_root=cache_root,
        lint_gate=lint_gate,
        progress=forward if progress else None,
        manifest_path=manifest_path,
        seed=seed,
        record_timeout=record_timeout,
        event_budget=event_budget,
        retry=retry,
        sim_vectorized=sim_vectorized,
    )
    return run.records


def study_cache_path(seed: int = DEFAULT_SEED, root: Optional[Path] = None) -> Path:
    """Location of the JSON study cache for ``seed``."""
    root = Path(root) if root is not None else Path(".cache")
    return root / f"study_seed{seed}.json"


def load_or_run_study(
    seed: int = DEFAULT_SEED,
    limit: Optional[int] = None,
    cache_root: Optional[Path] = None,
    verbose: bool = False,
    jobs: int = 1,
    use_cache: bool = True,
    record_timeout: Optional[float] = None,
    event_budget: Optional[int] = None,
) -> List[StudyRecord]:
    """Load cached study records, or run the study and cache it.

    Two cache layers live under ``cache_root`` (default ``.cache/``):
    the aggregate per-seed snapshot ``study_seed<seed>.json`` (one read
    for the common load path) and the per-record content-addressed
    store ``records/`` that the executor maintains — the layer that
    makes interrupted or partially invalidated studies incremental.
    ``use_cache=False`` bypasses both and recomputes from scratch.
    ``jobs`` controls how many measurement processes run a cold study.
    """
    root = Path(cache_root) if cache_root is not None else Path(".cache")
    path = study_cache_path(seed, root)
    if use_cache and path.exists():
        data = json.loads(path.read_text())
        records = [StudyRecord.from_json(r) for r in data["records"]]
        if limit is None or limit <= len(records):
            return records if limit is None else records[:limit]
    t0 = time.time()

    def progress(index, record):
        if verbose:
            diff = record.diff_total()
            diff_text = f"{100 * diff:6.2f}%" if diff is not None else "   n/a"
            print(
                f"[{time.time() - t0:7.1f}s] {index + 1:3d} {record.name:34s} "
                f"DIFF={diff_text} class={record.mfact_class}",
                flush=True,
            )

    records = run_study(
        seed,
        limit=limit,
        progress=progress,
        jobs=jobs,
        cache_root=(root / "records") if use_cache else None,
        record_timeout=record_timeout,
        event_budget=event_budget,
    )
    if use_cache and limit is None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"seed": seed, "records": [r.to_json() for r in records]}))
    return records
