"""Enhanced MFACT: predicting the need for simulation (Section VI).

The enhancement bolts a statistical model onto MFACT: from one modeling
replay it extracts the Table III features plus the ``CL`` communication-
sensitivity classification, and a stepwise-selected logistic regression
predicts whether packet-flow simulation would disagree with modeling by
more than the 2% DIFFtotal threshold.  The paper's naive baseline —
"simulate everything MFACT calls communication-sensitive" — is also
implemented for comparison (73.4% vs. 93.2% success).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.pipeline import StudyRecord
from repro.machines.config import MachineConfig
from repro.mfact.logical_clock import model_trace
from repro.stats.logistic import LogisticModel
from repro.stats.mccv import CrossValidationResult, monte_carlo_cv
from repro.stats.metrics import ConfusionCounts, confusion
from repro.sensitivity.analysis import analyze_trace
from repro.stats.stepwise import MAX_VARIABLES, stepwise_forward
from repro.trace.features import (
    NUMERIC_FEATURE_NAMES,
    SENSITIVITY_FEATURE_NAMES,
    extract_features,
)
from repro.trace.trace import TraceSet

__all__ = [
    "CANDIDATE_NAMES",
    "design_matrix",
    "labels",
    "EnhancedMFACT",
    "naive_heuristic_success",
]

#: Design-matrix column names: Table III numerics, the zero-replay
#: sensitivity features, and the CL indicator (kept last).
CANDIDATE_NAMES: List[str] = (
    NUMERIC_FEATURE_NAMES + SENSITIVITY_FEATURE_NAMES + ["CL{ncs}"]
)


def _row(features: Dict[str, float], cs: bool) -> List[float]:
    row = [float(features[name]) for name in NUMERIC_FEATURE_NAMES]
    # Sensitivity features are attached by the pipeline; records
    # measured before they existed (or hand-built fixtures) may lack
    # them, in which case the column is a harmless constant 0.
    row.extend(float(features.get(name, 0.0)) for name in SENSITIVITY_FEATURE_NAMES)
    row.append(0.0 if cs else 1.0)  # CL{ncs} indicator
    return row


def design_matrix(records: Sequence[StudyRecord]) -> np.ndarray:
    """(n, 38) candidate-feature matrix for study records."""
    return np.array([_row(r.features, r.mfact_cs) for r in records], dtype=float)


def labels(records: Sequence[StudyRecord]) -> np.ndarray:
    """Ground-truth "requires simulation" labels (DIFFtotal > 2%)."""
    out = []
    for record in records:
        label = record.requires_simulation()
        if label is None:
            raise ValueError(f"record {record.name} lacks a packet-flow DIFFtotal")
        out.append(int(label))
    return np.array(out, dtype=int)


def naive_heuristic_success(records: Sequence[StudyRecord]) -> Tuple[float, ConfusionCounts]:
    """The naive rule: recommend simulation iff MFACT says ``cs``.

    Returns (success rate, confusion counts); the paper reports 73.4%.
    """
    y_true = labels(records)
    y_pred = np.array([int(r.mfact_cs) for r in records])
    counts = confusion(y_true, y_pred)
    return counts.success_rate, counts


@dataclass
class EnhancedMFACT:
    """MFACT plus the trained need-for-simulation predictor."""

    model: LogisticModel
    selected: Tuple[str, ...]
    cv: Optional[CrossValidationResult] = None

    @classmethod
    def train(
        cls,
        records: Sequence[StudyRecord],
        runs: int = 100,
        max_vars: int = MAX_VARIABLES,
        seed: int = 0,
        cross_validate: bool = True,
    ) -> "EnhancedMFACT":
        """Train on study records with the paper's protocol.

        Monte Carlo CV (``runs`` 80/20 partitions) estimates the
        generalization rates; the deployed model is the stepwise fit on
        the full data set.
        """
        with obs.span("enhanced"):
            with obs.span("features"):
                X = design_matrix(records)
                y = labels(records)
            with obs.span("mccv"):
                cv = (
                    monte_carlo_cv(
                        X, y, CANDIDATE_NAMES, runs=runs, max_vars=max_vars, seed=seed
                    )
                    if cross_validate
                    else None
                )
            with obs.span("fit"):
                final = stepwise_forward(X, y, CANDIDATE_NAMES, max_vars=max_vars)
        return cls(model=final.model, selected=final.selected, cv=cv)

    # -- prediction ----------------------------------------------------------

    def _vector(self, features: Dict[str, float], cs: bool) -> np.ndarray:
        full = dict(zip(CANDIDATE_NAMES, _row(features, cs)))
        return np.array([full[name] for name in self.selected], dtype=float)

    def predict_record(self, record: StudyRecord) -> bool:
        """Recommend simulation for a measured study record."""
        return bool(self.model.predict(self._vector(record.features, record.mfact_cs))[0])

    def probability(self, record: StudyRecord) -> float:
        """P(simulation required) for a study record."""
        return float(self.model.predict_proba(self._vector(record.features, record.mfact_cs))[0])

    def predict_trace(self, trace: TraceSet, machine: MachineConfig) -> bool:
        """End-to-end: model the trace with MFACT, then recommend.

        This is the deployment path: one cheap modeling replay decides
        whether the expensive simulation is worth running.
        """
        report = model_trace(trace, machine)
        features = dict(extract_features(trace))
        features.update(analyze_trace(trace, machine).features())
        return bool(
            self.model.predict(self._vector(features, report.communication_sensitive))[0]
        )

    def evaluate(self, records: Sequence[StudyRecord]) -> ConfusionCounts:
        """Confusion counts of the deployed model on records."""
        y_true = labels(records)
        y_pred = np.array([int(self.predict_record(r)) for r in records])
        return confusion(y_true, y_pred)

    @property
    def success_rate(self) -> float:
        """Cross-validated success rate (paper: 93.2%)."""
        if self.cv is None:
            raise ValueError("model was trained without cross-validation")
        return self.cv.success_rate
