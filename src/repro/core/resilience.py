"""Resilient study execution: budgets, retries, degradation, quarantine.

The paper's central trade-off — detailed simulation is accurate but can
be orders of magnitude more expensive than MFACT modeling — becomes an
operational policy here.  When a detailed replay blows its budget or
keeps failing, the executor walks the **engine-degradation ladder**

    packet  →  packet-flow  →  flow  →  mfact-only

recording which engine was given up (``degraded_from``), the ladder
step reached and the expected DIFFtotal accuracy band, so downstream
tables can flag degraded cells instead of silently mixing or dropping
them.  Four cooperating mechanisms:

* :class:`~repro.util.budget.Budget` deadlines enforced in-engine
  (cooperative checks raising :class:`BudgetExceeded` subclasses) and
  by the parent-side watchdog in :class:`WorkerPool`, which kills and
  replaces a hung worker process;
* :class:`RetryPolicy` — exponential backoff with deterministic,
  seed-derived jitter for transient failures (worker crash, ``OSError``,
  cache races);
* the degradation ladder (:data:`LADDER`, :func:`ladder_engines`);
* a :class:`QuarantineRegistry` under ``.cache/quarantine/`` so a trace
  that fails all attempts across all ladder steps is skipped (with its
  reason) on subsequent runs rather than re-burning its budget.

SST/Macro and CODES apply the same discipline to long simulations with
event budgets and component-level fault models; this module brings it
to the replay stack (see PAPERS.md).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from dataclasses import fields as _dc_fields
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.util.budget import (
    Budget,
    BudgetExceeded,
    EventBudgetExceeded,
    WallClockExceeded,
)
from repro.util.rng import substream

__all__ = [
    "Budget",
    "BudgetExceeded",
    "EventBudgetExceeded",
    "WallClockExceeded",
    "LADDER",
    "MFACT_ONLY_STEP",
    "EXPECTED_DIFF_BANDS",
    "ladder_engines",
    "step_engines",
    "band_for_step",
    "RetryPolicy",
    "classify_failure",
    "QuarantineEntry",
    "QuarantineRegistry",
    "DEFAULT_QUARANTINE",
    "PoolWorkerError",
    "WorkerPool",
]

# -- engine-degradation ladder ------------------------------------------------

#: Simulation engines in decreasing detail (and cost) order.  Ladder
#: step ``s`` keeps ``LADDER[s:]``; the step past the end is mfact-only.
LADDER: Tuple[str, ...] = ("packet", "packet-flow", "flow")

#: Ladder step at which no simulation engine runs at all.
MFACT_ONLY_STEP = len(LADDER)

#: Expected |DIFFtotal| accuracy band once the most detailed available
#: engine is the one at that ladder step (paper Sections IV-V: the
#: packet-flow engine stays within ~10% of the detailed packet replay,
#: the flow model within ~20%, and MFACT alone is unbounded — that gap
#: is exactly what DIFFtotal measures).
EXPECTED_DIFF_BANDS: Tuple[str, ...] = ("reference", "<=10%", "<=20%", "unbounded")


def ladder_engines(step: int) -> Tuple[str, ...]:
    """Engines still allowed at ``step`` (most detailed first)."""
    if step < 0:
        raise ValueError(f"ladder step must be >= 0, got {step}")
    return LADDER[step:]


def step_engines(step: int, base: Sequence[str]) -> Tuple[str, ...]:
    """``base`` engines surviving at ladder ``step``, in ``base`` order.

    Preserving the caller's engine ordering keeps cache keys stable:
    the suite component of a record key is the ordered engine tuple.
    """
    allowed = set(ladder_engines(step))
    return tuple(m for m in base if m in allowed)


def band_for_step(step: int) -> str:
    """Expected DIFFtotal band label for ``step`` (clamped at mfact-only)."""
    return EXPECTED_DIFF_BANDS[min(max(step, 0), MFACT_ONLY_STEP)]


# -- retry policy -------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter for transient failures.

    ``max_attempts`` caps attempts *per ladder step*; the delay before
    attempt ``k`` (0-based count of completed attempts) is
    ``min(max_delay, base_delay * multiplier**k)`` shrunk by up to
    ``jitter`` of itself.  The jitter draw comes from a
    :func:`repro.util.rng.substream` keyed by (seed, record name,
    attempt), so serial and parallel runs — and re-runs — back off
    identically; the policy is serialized into the run manifest.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, seed: Optional[int], name: str, attempt: int) -> float:
        """Deterministic backoff before retrying ``name`` after ``attempt``."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if self.jitter <= 0.0 or raw <= 0.0:
            return raw
        rng = substream(seed or 0, "retry-backoff", name, attempt)
        return raw * (1.0 - self.jitter * float(rng.random()))

    def to_json(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "multiplier": self.multiplier,
            "jitter": self.jitter,
        }

    @classmethod
    def from_json(cls, data: Optional[dict]) -> "RetryPolicy":
        return cls(**(data or {}))


# -- failure classification ---------------------------------------------------

#: Exception types worth retrying: environmental, usually self-healing.
_TRANSIENT_TYPES = (OSError, EOFError, ConnectionError, InterruptedError)

#: OSError subclasses that re-running cannot fix (a missing trace file
#: will still be missing on attempt three).
_PERMANENT_OS_TYPES = (
    FileNotFoundError,
    IsADirectoryError,
    NotADirectoryError,
    PermissionError,
)


def classify_failure(exc: BaseException) -> str:
    """Sort an exception into ``"budget"``, ``"transient"`` or ``"permanent"``.

    Budget exceedances trigger the degradation ladder (retrying the
    same engine would blow the same budget); transient failures retry
    with backoff; everything else — lint rejections, malformed traces,
    missing files, code bugs — fails immediately, because re-running
    deterministic code on the same input cannot help.
    """
    from repro.util.faults import FaultInjected

    if isinstance(exc, BudgetExceeded):
        return "budget"
    if isinstance(exc, FaultInjected):
        return "transient" if exc.transient else "permanent"
    if isinstance(exc, _PERMANENT_OS_TYPES):
        return "permanent"
    if isinstance(exc, _TRANSIENT_TYPES):
        return "transient"
    return "permanent"


# -- quarantine registry ------------------------------------------------------

#: Default location of the quarantine registry.
DEFAULT_QUARANTINE = Path(".cache") / "quarantine"


@dataclass
class QuarantineEntry:
    """Why one trace is excluded from further study runs.

    ``code_version`` stamps the measurement-code fingerprint the entry
    was written under.  Because quarantine keys embed the code version,
    an entry written by older code can never match a lookup again — it
    is pure accumulation — so :meth:`QuarantineRegistry.prune_stale`
    deletes entries whose stamp no longer matches at registry open.
    """

    key: str
    name: str
    reason: str
    attempts: int = 0
    ladder_step: int = 0
    error: str = ""
    code_version: str = ""

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "name": self.name,
            "reason": self.reason,
            "attempts": self.attempts,
            "ladder_step": self.ladder_step,
            "error": self.error,
            "code_version": self.code_version,
        }

    @classmethod
    def from_json(cls, data: dict) -> "QuarantineEntry":
        known = {f.name for f in _dc_fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class QuarantineRegistry:
    """On-disk set of traces that exhausted every recovery path.

    One JSON file per quarantined trace under ``root``, named by the
    trace's stable identity key (the spec-level cache key for corpus
    specs, a path digest for trace files).  Because the key includes
    the measurement code version, editing the code naturally releases
    old quarantine entries.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_QUARANTINE):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[QuarantineEntry]:
        """The entry quarantining ``key``, or None (corrupt files ignored)."""
        try:
            return QuarantineEntry.from_json(json.loads(self.path(key).read_text()))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def add(self, entry: QuarantineEntry) -> None:
        """Atomically persist ``entry`` (stamping the code version)."""
        if not entry.code_version:
            from repro.util.fingerprint import code_version

            entry.code_version = code_version()
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(entry.key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry.to_json(), indent=2, sort_keys=True))
        os.replace(tmp, path)

    def prune_stale(self, current: Optional[str] = None) -> int:
        """Drop entries whose code-version stamp no longer matches.

        Quarantine keys embed the measurement code version, so entries
        written under a different version (or by pre-stamp code, whose
        version is unknowable) can never match a lookup again — they
        only accumulate.  Called once at registry open by the executor
        and the serve coordinator; returns how many entries were
        deleted so the run manifest can report it.
        """
        if current is None:
            from repro.util.fingerprint import code_version

            current = code_version()
        pruned = 0
        if not self.root.is_dir():
            return pruned
        for path in sorted(self.root.glob("*.json")):
            entry = self.get(path.stem)
            if entry is not None and entry.code_version != current:
                path.unlink(missing_ok=True)
                pruned += 1
        return pruned

    def discard(self, key: str) -> None:
        self.path(key).unlink(missing_ok=True)

    def entries(self) -> List[QuarantineEntry]:
        """All quarantine entries, sorted by trace name."""
        if not self.root.is_dir():
            return []
        out = []
        for path in sorted(self.root.glob("*.json")):
            entry = self.get(path.stem)
            if entry is not None:
                out.append(entry)
        return sorted(out, key=lambda e: e.name)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        count = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                count += 1
        return count


# -- watchdog worker pool -----------------------------------------------------


@dataclass
class PoolWorkerError:
    """Structured record of a worker-side failure the pool itself caught."""

    task_id: int
    error: str


def _pool_worker_main(worker_fn: Callable, conn) -> None:
    """Child process loop: receive a task, run it, send the result back.

    Each worker owns one duplex pipe — no locks are shared between
    workers, so the parent can ``terminate()`` a hung sibling without
    wedging anyone else's queue.
    """
    os.environ["REPRO_IN_WORKER"] = "1"
    while True:
        try:
            item = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        if item is None:
            return
        task_id, payload = item
        try:
            result = worker_fn(payload)
        except KeyboardInterrupt:
            return
        except BaseException as exc:
            result = PoolWorkerError(task_id=task_id, error=f"{type(exc).__name__}: {exc}")
        try:
            conn.send((task_id, result))
        except (BrokenPipeError, OSError):
            return


@dataclass
class _PoolSeat:
    """One worker process and its private pipe."""

    proc: multiprocessing.Process
    conn: object
    task_id: Optional[int] = None
    started: float = 0.0
    deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.task_id is not None


class WorkerPool:
    """Process pool with per-task deadlines and kill-and-replace recovery.

    Unlike :class:`concurrent.futures.ProcessPoolExecutor`, every worker
    gets its own pipe, so the parent can watchdog-kill a hung worker
    (``terminate`` + replacement spawn) without poisoning shared queue
    locks, and a worker that dies mid-task surfaces as a per-task
    ``crashed`` event instead of a pool-wide ``BrokenProcessPool``.

    :meth:`poll` yields ``(kind, task_id, detail)`` events where kind is
    ``"done"`` (detail: the worker's return value or a
    :class:`PoolWorkerError`), ``"crashed"`` (worker process died;
    detail: description) or ``"timeout"`` (watchdog killed it; detail:
    elapsed seconds).
    """

    def __init__(self, worker_fn: Callable, jobs: int):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._worker_fn = worker_fn
        self._ctx = multiprocessing.get_context()
        self._seats: List[_PoolSeat] = [self._spawn() for _ in range(jobs)]
        self.kills = 0

    def _spawn(self) -> _PoolSeat:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker_main, args=(self._worker_fn, child_conn), daemon=True
        )
        proc.start()
        child_conn.close()
        return _PoolSeat(proc=proc, conn=parent_conn)

    def idle_count(self) -> int:
        return sum(1 for seat in self._seats if not seat.busy)

    def active_count(self) -> int:
        return sum(1 for seat in self._seats if seat.busy)

    def dispatch(self, task_id: int, payload, deadline: Optional[float] = None) -> None:
        """Hand ``payload`` to an idle worker (``deadline`` in seconds)."""
        for seat in self._seats:
            if not seat.busy:
                seat.conn.send((task_id, payload))
                seat.task_id = task_id
                seat.started = time.monotonic()
                seat.deadline = deadline
                return
        raise RuntimeError("dispatch called with no idle worker")

    def _replace(self, seat: _PoolSeat) -> None:
        """Kill ``seat``'s process and put a fresh worker in its place."""
        seat.proc.terminate()
        seat.proc.join(timeout=2.0)
        if seat.proc.is_alive():  # pragma: no cover - terminate sufficed so far
            seat.proc.kill()
            seat.proc.join(timeout=2.0)
        try:
            seat.conn.close()
        except OSError:  # pragma: no cover
            pass
        self._seats[self._seats.index(seat)] = self._spawn()
        self.kills += 1

    def poll(self, timeout: float = 0.05) -> List[Tuple[str, int, object]]:
        """Collect finished/crashed/timed-out tasks (waits up to ``timeout``)."""
        events: List[Tuple[str, int, object]] = []
        busy = [seat for seat in self._seats if seat.busy]
        conns = [seat.conn for seat in busy]
        ready = multiprocessing.connection.wait(conns, timeout) if conns else []
        for seat in busy:
            if seat.conn not in ready:
                continue
            task_id = seat.task_id
            try:
                received_id, result = seat.conn.recv()
            except (EOFError, OSError):
                # The worker died mid-task (crash fault, OOM kill, ...).
                code = seat.proc.exitcode
                seat.task_id = None
                self._replace(seat)
                events.append(
                    ("crashed", task_id, f"worker process died (exit code {code})")
                )
                continue
            seat.task_id = None
            seat.deadline = None
            events.append(("done", received_id, result))
        # Watchdog scan: kill and replace workers past their deadline.
        now = time.monotonic()
        for seat in list(self._seats):
            if seat.busy and seat.deadline is not None:
                elapsed = now - seat.started
                if elapsed > seat.deadline:
                    task_id = seat.task_id
                    seat.task_id = None
                    self._replace(seat)
                    events.append(("timeout", task_id, elapsed))
        return events

    def shutdown(self) -> None:
        """Stop every worker (graceful for idle seats, kill for busy ones)."""
        for seat in self._seats:
            try:
                if seat.busy:
                    seat.proc.terminate()
                else:
                    seat.conn.send(None)
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for seat in self._seats:
            seat.proc.join(timeout=2.0)
            if seat.proc.is_alive():
                seat.proc.kill()
                seat.proc.join(timeout=2.0)
            try:
                seat.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._seats = []
