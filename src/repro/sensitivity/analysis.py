"""Latency/bandwidth tolerance analytics over a recorded graph.

One recorded replay yields a :class:`~repro.sensitivity.graph.DependencyGraph`;
everything here is pure tape evaluation — thousands of what-if points
for the cost of that single replay:

* :func:`latency_curve` / :func:`bandwidth_curve` — predicted totals as
  the network degrades or improves along one axis.
* :func:`latency_tolerance` — the largest latency multiplier the
  application absorbs within a relative slowdown budget (LLAMP's
  question).  The predicted total is a *convex* nondecreasing
  piecewise-linear function of the latency multiplier (a max over
  paths, each affine in it), so the threshold is found exactly by
  guarded parametric Newton: the critical path at a trial multiplier
  gives both the value and the slope (``alpha_count * latency``), and
  once the binding path at the crossing is reached the step lands on
  the root.  Deterministic in both result and work.
* :func:`analyze_trace` — the full :class:`SensitivityReport` with the
  three design-matrix features.

Degenerate traces are first-class: a pure-compute trace (or an empty
one) has an *unbounded* latency tolerance — reported as ``inf``, capped
at :data:`LAT_TOLERANCE_CAP` in feature space — zero bandwidth
sensitivity, and a critical path that is all compute.  No division by
zero or NaN ever reaches the design matrix; the Hypothesis suite in
``tests/test_sensitivity.py`` holds that line.

Tolerance semantics
-------------------

``lat_tolerance`` answers: *by what factor can wire latency grow before
the application slows down more than ``tolerance`` (default 5%)?*  A
latency-bound ring exchange tolerates barely more than 1x; a
compute-dominated stencil tolerates orders of magnitude.  The feature
fed to the classifier is ``log10`` of the (capped) multiplier, in
``[0, 6]``.  ``bw_sensitivity`` is the relative slowdown when bandwidth
halves, and ``critical_path_frac`` the non-compute fraction of the
critical path — both already in ``[0, 1]``-ish ranges that need no
transform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro import obs
from repro.machines.config import MachineConfig
from repro.mfact.hockney import ConfigGrid
from repro.mfact.logical_clock import LogicalClockReplay
from repro.mfact.report import MFACTReport
from repro.sensitivity.graph import CriticalPath, DependencyGraph, GraphRecorder
from repro.trace.trace import TraceSet

__all__ = [
    "DEFAULT_BW_CURVE_FACTORS",
    "DEFAULT_LAT_CURVE_FACTORS",
    "DEFAULT_TOLERANCE",
    "LAT_TOLERANCE_CAP",
    "SensitivityReport",
    "analyze_graph",
    "analyze_trace",
    "bandwidth_curve",
    "latency_curve",
    "latency_tolerance",
    "record_graph",
]

#: Relative slowdown budget defining the latency-tolerance threshold.
DEFAULT_TOLERANCE = 0.05

#: Largest latency multiplier probed; tolerances beyond it are ``inf``.
LAT_TOLERANCE_CAP = 1.0e6

#: Latency multipliers (>= 1 degrades the network) for the curve.
DEFAULT_LAT_CURVE_FACTORS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 256.0, 1024.0)

#: Bandwidth multipliers (< 1 degrades the network) for the curve.
DEFAULT_BW_CURVE_FACTORS = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)

#: Threshold search: iteration cap on the guarded parametric Newton.
#: Each step pivots to a new binding path, so the cap is only a
#: backstop — real tapes converge in a handful of steps.
_NEWTON_MAX_STEPS = 64
#: Feasibility slack absorbing float noise at the exact crossing.
_NEWTON_SLACK = 1e-12


def record_graph(
    trace: TraceSet, machine: MachineConfig
) -> Tuple[DependencyGraph, MFACTReport]:
    """One recorded single-configuration replay: the sealed graph plus
    the ordinary MFACT report of that replay."""
    recorder = GraphRecorder(trace.nranks, machine)
    with obs.span("sensitivity_graph"):
        report = LogicalClockReplay(
            trace, machine, ConfigGrid.single(machine), recorder=recorder
        ).run()
        graph = recorder.finish()
    if obs.enabled():
        obs.counter("repro_sensitivity_graphs_total").inc()
        obs.counter("repro_sensitivity_nodes_total").inc(graph.n_nodes)
        obs.counter("repro_sensitivity_edges_total").inc(graph.n_edges)
    return graph, report


def latency_curve(
    graph: DependencyGraph,
    machine: MachineConfig,
    factors: Sequence[float] = DEFAULT_LAT_CURVE_FACTORS,
) -> List[Tuple[float, float]]:
    """``(latency multiplier, predicted total)`` points, one tape pass."""
    f = np.asarray(factors, dtype=float)
    totals = graph.evaluate(machine.latency * f, machine.bandwidth, machine.compute_scale)
    return [(float(x), float(t)) for x, t in zip(f, totals)]


def bandwidth_curve(
    graph: DependencyGraph,
    machine: MachineConfig,
    factors: Sequence[float] = DEFAULT_BW_CURVE_FACTORS,
) -> List[Tuple[float, float]]:
    """``(bandwidth multiplier, predicted total)`` points, one tape pass."""
    f = np.asarray(factors, dtype=float)
    totals = graph.evaluate(machine.latency, machine.bandwidth * f, machine.compute_scale)
    return [(float(x), float(t)) for x, t in zip(f, totals)]


def latency_tolerance(
    graph: DependencyGraph,
    machine: MachineConfig,
    tolerance: float = DEFAULT_TOLERANCE,
    cap: float = LAT_TOLERANCE_CAP,
) -> float:
    """Largest latency multiplier with ``T(m * alpha) <= (1 + tolerance)
    * T(alpha)``; ``inf`` when even ``cap`` stays inside the budget
    (pure-compute traces, or zero-time degenerate traces)."""
    t0 = float(graph.evaluate(machine.latency, machine.bandwidth, machine.compute_scale)[0])
    if t0 <= 0.0:
        return math.inf
    t_cap = float(
        graph.evaluate(machine.latency * cap, machine.bandwidth, machine.compute_scale)[0]
    )
    return _tolerance_root(graph, machine, (1.0 + tolerance) * t0, t_cap, cap)


def _tolerance_root(
    graph: DependencyGraph,
    machine: MachineConfig,
    budget: float,
    t_cap: float,
    cap: float,
) -> float:
    """Solve ``T(m) == budget`` by guarded parametric Newton.

    ``T`` is a max over paths, each affine in the multiplier ``m``, so
    it is convex piecewise-linear and nondecreasing; the critical path
    at a trial point gives the exact tangent (value and slope).  The
    bracket ``[lo, hi]`` keeps ``T(lo) <= budget < T(hi)``; any Newton
    proposal outside it falls back to the geometric midpoint, so the
    search terminates even on float-noise plateaus.
    """
    if t_cap <= budget:
        return math.inf
    lat0, bw0, scale0 = machine.latency, machine.bandwidth, machine.compute_scale
    lo, hi = 1.0, cap
    m = 1.0
    for _ in range(_NEWTON_MAX_STEPS):
        cp = graph.critical_path(latency=lat0 * m, bandwidth=bw0, compute_scale=scale0)
        t, slope = float(cp.total), float(cp.alpha_count) * lat0
        if abs(t - budget) <= _NEWTON_SLACK * budget:
            return m  # landed on the crossing
        if t <= budget:
            lo = max(lo, m)
        else:
            hi = min(hi, m)
        if hi <= lo * (1.0 + _NEWTON_SLACK):
            break
        m_next = m + (budget - t) / slope if slope > 0.0 else math.nan
        if not (lo < m_next < hi):  # Newton left the bracket (or nan)
            m_next = math.sqrt(lo * hi)
        m = m_next
    return lo


@dataclass
class SensitivityReport:
    """Everything one recorded replay says about network sensitivity."""

    trace_name: str
    machine: str
    baseline_total: float
    tolerance: float
    lat_tolerance: float  # latency multiplier; inf == insensitive
    bw_sensitivity: float  # relative slowdown at half bandwidth
    critical_path: CriticalPath
    lat_curve: List[Tuple[float, float]]
    bw_curve: List[Tuple[float, float]]
    n_nodes: int
    n_edges: int

    @property
    def critical_path_frac(self) -> float:
        """Non-compute fraction of the critical path, clipped to [0, 1]."""
        cp = self.critical_path
        if cp.total <= 0.0:
            return 0.0
        return float(min(max((cp.total - cp.compute_time) / cp.total, 0.0), 1.0))

    def features(self) -> Dict[str, float]:
        """The three design-matrix features; always finite (see
        :data:`repro.trace.features.SENSITIVITY_FEATURE_NAMES`)."""
        capped = min(self.lat_tolerance, LAT_TOLERANCE_CAP)
        return {
            "lat_tolerance": math.log10(max(capped, 1.0)),
            "bw_sensitivity": float(self.bw_sensitivity),
            "critical_path_frac": self.critical_path_frac,
        }

    def to_json(self) -> dict:
        return {
            "trace": self.trace_name,
            "machine": self.machine,
            "baseline_total": self.baseline_total,
            "tolerance": self.tolerance,
            # JSON has no inf: None marks an unbounded tolerance.
            "lat_tolerance": None if math.isinf(self.lat_tolerance) else self.lat_tolerance,
            "bw_sensitivity": self.bw_sensitivity,
            "critical_path": self.critical_path.to_json(),
            "lat_curve": [[f, t] for f, t in self.lat_curve],
            "bw_curve": [[f, t] for f, t in self.bw_curve],
            "graph": {"nodes": self.n_nodes, "edges": self.n_edges},
            "features": self.features(),
        }


def analyze_graph(
    graph: DependencyGraph,
    machine: MachineConfig,
    trace_name: str = "",
    machine_name: str = "",
    tolerance: float = DEFAULT_TOLERANCE,
    lat_factors: Sequence[float] = DEFAULT_LAT_CURVE_FACTORS,
    bw_factors: Sequence[float] = DEFAULT_BW_CURVE_FACTORS,
) -> SensitivityReport:
    """Analytics over an already-recorded graph (no replay at all).

    Every independent probe — baseline, half-bandwidth, the tolerance
    cap, and both curves — rides one batched tape pass; only the
    Newton threshold search needs further (scalar) passes.
    """
    lf = np.asarray(lat_factors, dtype=float)
    bf = np.asarray(bw_factors, dtype=float)
    lat_mult = np.concatenate(([1.0, 1.0, LAT_TOLERANCE_CAP], lf, np.ones_like(bf)))
    bw_mult = np.concatenate(([1.0, 0.5, 1.0], np.ones_like(lf), bf))
    totals = graph.evaluate(
        machine.latency * lat_mult, machine.bandwidth * bw_mult, machine.compute_scale
    )
    t0, t_half, t_cap = float(totals[0]), float(totals[1]), float(totals[2])
    lat_curve = [(float(x), float(t)) for x, t in zip(lf, totals[3 : 3 + lf.size])]
    bw_curve = [(float(x), float(t)) for x, t in zip(bf, totals[3 + lf.size :])]
    bw_sens = max((t_half - t0) / t0, 0.0) if t0 > 0.0 else 0.0
    if t0 <= 0.0:
        lat_tol = math.inf
    else:
        lat_tol = _tolerance_root(
            graph, machine, (1.0 + tolerance) * t0, t_cap, LAT_TOLERANCE_CAP
        )
    return SensitivityReport(
        trace_name=trace_name,
        machine=machine_name,
        baseline_total=t0,
        tolerance=tolerance,
        lat_tolerance=lat_tol,
        bw_sensitivity=bw_sens,
        critical_path=graph.critical_path(),
        lat_curve=lat_curve,
        bw_curve=bw_curve,
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
    )


def analyze_trace(
    trace: TraceSet,
    machine: MachineConfig,
    tolerance: float = DEFAULT_TOLERANCE,
    lat_factors: Sequence[float] = DEFAULT_LAT_CURVE_FACTORS,
    bw_factors: Sequence[float] = DEFAULT_BW_CURVE_FACTORS,
) -> SensitivityReport:
    """End-to-end: one recorded replay, then pure tape analytics."""
    graph, _ = record_graph(trace, machine)
    return analyze_graph(
        graph,
        machine,
        trace_name=trace.name,
        machine_name=trace.machine,
        tolerance=tolerance,
        lat_factors=lat_factors,
        bw_factors=bw_factors,
    )
