"""The recorded happens-before graph and its max-plus evaluator.

Graph model
-----------

Every node is one *clock value* produced during the replay — a rank's
clock after an op, a NIC injection/ejection milestone, a message's
availability time, or a collective's completion.  A node's value is

``value(v) = max over incoming edges (u, c) of  value(u) + cost(c)``

where each edge cost is affine in the network configuration::

    cost = const + alpha_count * latency + bytes / bandwidth
                 + compute_seconds * compute_scale

``const`` carries the software overhead ``o``; ``alpha_count`` counts
wire latencies; ``bytes`` are the bytes serialized through a NIC or a
collective's on-wire volume; ``compute_seconds`` are unscaled measured
compute durations.  Because ``max`` and ``+`` are monotone, evaluating
the recorded tape bottom-up (nodes are created in topological order)
reproduces the replay's clocks for any configuration.

Two deliberate reassociations keep the tape small and fast — they are
the only sources of float divergence from a real replay, both bounded
by a few ulps per op (see the package docstring's accuracy contract):

* consecutive additive advances on one rank (compute ops, ISEND/WAIT
  overheads) are *folded* into the next edge that reads the clock
  instead of materializing a node each;
* the replay's ``max(a, b) + c`` is recorded as ``max(a + c, b + c)``.

The recorder keeps its own per-``(src, dst, tag)`` token FIFOs and its
own request table, mirroring the replay's matching: the replay consumes
messages per channel strictly FIFO, so popping the recorder's deque at
binding time pairs each completion with the right send's availability
node without sharing any state with the replay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence, Tuple

import numpy as np

from repro import obs
from repro.machines.config import MachineConfig
from repro.trace.events import OpKind

__all__ = ["CriticalPath", "DependencyGraph", "GraphRecorder"]

#: Collectives where every member completes at the shared rendezvous
#: time (mirrors the replay's ``_SYNC_COLLECTIVES``).
_SYNC_COLLECTIVES = frozenset(
    {
        OpKind.BARRIER,
        OpKind.ALLREDUCE,
        OpKind.ALLGATHER,
        OpKind.ALLTOALL,
        OpKind.REDUCE_SCATTER,
    }
)

#: Configs per evaluation chunk are sized so one value matrix stays
#: around 32 MB regardless of graph size.
_CHUNK_FLOATS = 4_000_000


@dataclass(frozen=True)
class CriticalPath:
    """The binding chain from the epoch to the terminal node.

    Along the chain every node's value equals its predecessor's value
    plus the edge cost (the max was achieved there), so ``total`` is
    exactly the sum of the traversed edge costs and decomposes into the
    four components with no slack term.
    """

    total: float
    compute_time: float
    latency_time: float
    bandwidth_time: float
    overhead_time: float
    alpha_count: float
    bytes_on_wire: float
    n_edges: int

    @property
    def comm_time(self) -> float:
        """Non-compute time on the path (latency + bandwidth + overhead)."""
        return self.latency_time + self.bandwidth_time + self.overhead_time

    def to_json(self) -> dict:
        return {
            "total": self.total,
            "compute_time": self.compute_time,
            "latency_time": self.latency_time,
            "bandwidth_time": self.bandwidth_time,
            "overhead_time": self.overhead_time,
            "alpha_count": self.alpha_count,
            "bytes_on_wire": self.bytes_on_wire,
            "n_edges": self.n_edges,
        }


class DependencyGraph:
    """Frozen max-plus tape of one recorded replay."""

    def __init__(
        self,
        pred: np.ndarray,
        const: np.ndarray,
        alpha: np.ndarray,
        nbytes: np.ndarray,
        compute: np.ndarray,
        starts: np.ndarray,
        node_rank: np.ndarray,
        terminal: int,
        baseline: Tuple[float, float, float],
    ):
        self.pred = pred
        self.const = const
        self.alpha = alpha
        self.nbytes = nbytes
        self.compute = compute
        self.starts = starts  # len n_nodes + 1; edges of node i are starts[i]:starts[i+1]
        self.node_rank = node_rank  # -1 epoch/terminal, -2 shared collective completion
        self.terminal = int(terminal)
        self.baseline = baseline  # (latency, bandwidth, compute_scale)
        # Plain-list views: the evaluation loops index element-wise, and
        # list indexing is several times cheaper than ndarray indexing.
        self._starts_list = self.starts.tolist()
        self._pred_list = self.pred.tolist()

    @property
    def n_nodes(self) -> int:
        return int(self.node_rank.size)

    @property
    def n_edges(self) -> int:
        return int(self.pred.size)

    # -- evaluation --------------------------------------------------------

    def _broadcast(self, latency, bandwidth, compute_scale):
        lat = np.atleast_1d(np.asarray(latency, dtype=float))
        bw = np.atleast_1d(np.asarray(bandwidth, dtype=float))
        scale = np.atleast_1d(np.asarray(compute_scale, dtype=float))
        lat, bw, scale = np.broadcast_arrays(lat, bw, scale)
        return np.ascontiguousarray(lat), np.ascontiguousarray(bw), np.ascontiguousarray(scale)

    def _values(self, lat: np.ndarray, bw: np.ndarray, scale: np.ndarray) -> np.ndarray:
        """Full (n_nodes, K) value matrix for one configuration batch."""
        k = lat.size
        if k == 1:
            return self._values_scalar(float(lat[0]), float(bw[0]), float(scale[0]))
        inv_bw = 1.0 / bw
        cost = (
            self.const[:, None]
            + self.alpha[:, None] * lat[None, :]
            + self.nbytes[:, None] * inv_bw[None, :]
            + self.compute[:, None] * scale[None, :]
        )
        vals = np.zeros((self.n_nodes, k))
        starts = self._starts_list
        pred = self._pred_list
        for i in range(self.n_nodes):
            s, e = starts[i], starts[i + 1]
            if e == s:  # the epoch node: value 0
                continue
            row = vals[i]
            np.add(vals[pred[s]], cost[s], out=row)
            for j in range(s + 1, e):
                np.maximum(row, vals[pred[j]] + cost[j], out=row)
        return vals

    def _values_scalar(self, lat: float, bw: float, scale: float) -> np.ndarray:
        """Single-configuration value pass on plain Python floats.

        Per-element ndarray arithmetic costs ~1us an op; for K=1 the
        same adds and maxes on list floats are an order of magnitude
        cheaper.  The operations (and hence the rounding) are identical
        to the batched path, so both return bitwise-equal values.
        """
        cost = (
            self.const
            + self.alpha * lat
            + self.nbytes * (1.0 / bw)
            + self.compute * scale
        ).tolist()
        vals = [0.0] * self.n_nodes
        starts = self._starts_list
        pred = self._pred_list
        for i in range(self.n_nodes):
            s, e = starts[i], starts[i + 1]
            if e == s:  # the epoch node: value 0
                continue
            best = vals[pred[s]] + cost[s]
            for j in range(s + 1, e):
                v = vals[pred[j]] + cost[j]
                if v > best:
                    best = v
            vals[i] = best
        return np.asarray(vals)[:, None]

    def evaluate(self, latency, bandwidth, compute_scale) -> np.ndarray:
        """Predicted application total for each configuration.

        Arguments broadcast against each other: scalars price one
        configuration, equal-length arrays price a batch in one pass.
        Always returns a 1-D array aligned with the broadcast shape.
        """
        lat, bw, scale = self._broadcast(latency, bandwidth, compute_scale)
        k = lat.size
        chunk = max(1, _CHUNK_FLOATS // max(self.n_nodes, 1))
        totals = np.empty(k)
        with obs.span("sensitivity_solve"):
            for lo in range(0, k, chunk):
                hi = min(lo + chunk, k)
                vals = self._values(lat[lo:hi], bw[lo:hi], scale[lo:hi])
                totals[lo:hi] = vals[self.terminal]
        if obs.enabled():
            obs.counter("repro_sensitivity_configs_total").inc(k)
        return totals

    def critical_path(
        self, latency=None, bandwidth=None, compute_scale=None
    ) -> CriticalPath:
        """Backtrack the binding chain at one configuration (default:
        the recorded machine's baseline) and decompose its cost.

        Ties between equally-binding edges keep the lowest edge index,
        so the path is deterministic.
        """
        lat0, bw0, scale0 = self.baseline
        lat = float(latency) if latency is not None else lat0
        bw = float(bandwidth) if bandwidth is not None else bw0
        scale = float(compute_scale) if compute_scale is not None else scale0
        vals = self._values(np.array([lat]), np.array([bw]), np.array([scale]))[:, 0]
        inv_bw = 1.0 / bw
        cost = (
            self.const
            + self.alpha * lat
            + self.nbytes * inv_bw
            + self.compute * scale
        ).tolist()
        starts = self._starts_list
        pred = self._pred_list
        node = self.terminal
        comp_t = lat_t = bw_t = ovh_t = 0.0
        alphas = wire_bytes = 0.0
        n_edges = 0
        while True:
            s, e = starts[node], starts[node + 1]
            if e == s:
                break  # reached the epoch
            best_j = s
            best_val = vals[pred[s]] + cost[s]
            for j in range(s + 1, e):
                v = vals[pred[j]] + cost[j]
                if v > best_val:
                    best_val = v
                    best_j = j
            j = best_j
            comp_t += self.compute[j] * scale
            lat_t += self.alpha[j] * lat
            bw_t += self.nbytes[j] * inv_bw
            ovh_t += self.const[j]
            alphas += self.alpha[j]
            wire_bytes += self.nbytes[j]
            n_edges += 1
            node = pred[j]
        return CriticalPath(
            total=float(vals[self.terminal]),
            compute_time=comp_t,
            latency_time=lat_t,
            bandwidth_time=bw_t,
            overhead_time=ovh_t,
            alpha_count=alphas,
            bytes_on_wire=wire_bytes,
            n_edges=n_edges,
        )


class GraphRecorder:
    """Builds a :class:`DependencyGraph` from replay hook calls.

    :class:`~repro.mfact.logical_clock.LogicalClockReplay` calls the
    ``on_*`` hooks (duck-typed; the replay never imports this module)
    at every clock update.  Per-rank pending additive costs
    (``_pend_const`` / ``_pend_comp``) fold chains of compute and
    overhead advances into the next edge that reads the clock.
    """

    def __init__(self, nranks: int, machine: MachineConfig):
        self.nranks = int(nranks)
        self._o = machine.software_overhead
        self._baseline = (machine.latency, machine.bandwidth, machine.compute_scale)
        # Flat edge arrays; node i's edges occupy _starts[i]:_starts[i+1].
        self._ep: List[int] = []
        self._ec: List[float] = []
        self._ea: List[float] = []
        self._eb: List[float] = []
        self._ew: List[float] = []
        self._starts: List[int] = [0]
        self._rank_of: List[int] = []
        epoch = self._new_node(-1, ())
        self._clk = [epoch] * self.nranks
        self._inj = [epoch] * self.nranks
        self._ej = [epoch] * self.nranks
        self._pend_const = [0.0] * self.nranks
        self._pend_comp = [0.0] * self.nranks
        self._chan: Dict[Tuple[int, int, int], Deque[int]] = {}
        self._req: List[Dict[int, int]] = [dict() for _ in range(self.nranks)]

    # -- node construction -------------------------------------------------

    def _new_node(self, rank: int, edges: Sequence[Tuple[int, float, float, float, float]]) -> int:
        for p, c, a, b, w in edges:
            self._ep.append(p)
            self._ec.append(c)
            self._ea.append(a)
            self._eb.append(b)
            self._ew.append(w)
        self._starts.append(len(self._ep))
        self._rank_of.append(rank)
        return len(self._rank_of) - 1

    def _clk_edge(
        self, rank: int, const: float = 0.0, alpha: float = 0.0, nbytes: float = 0.0
    ) -> Tuple[int, float, float, float, float]:
        """Edge from ``rank``'s current clock plus extra cost, with the
        rank's pending additive advances folded in."""
        return (
            self._clk[rank],
            const + self._pend_const[rank],
            alpha,
            nbytes,
            self._pend_comp[rank],
        )

    def _set_clk(self, rank: int, node: int) -> None:
        self._clk[rank] = node
        self._pend_const[rank] = 0.0
        self._pend_comp[rank] = 0.0

    # -- replay hooks ------------------------------------------------------

    def on_compute(self, rank: int, duration: float) -> None:
        self._pend_comp[rank] += duration

    def on_overhead(self, rank: int) -> None:
        self._pend_const[rank] += self._o

    def on_send(self, rank: int, dst: int, tag: int, nbytes: int, blocking: bool) -> None:
        b = float(nbytes)
        inj_start = self._new_node(
            rank,
            ((self._inj[rank], 0.0, 0.0, 0.0, 0.0), self._clk_edge(rank, const=self._o)),
        )
        inj_done = self._new_node(rank, ((inj_start, 0.0, 0.0, b, 0.0),))
        self._inj[rank] = inj_done
        avail = self._new_node(rank, ((inj_start, 0.0, 1.0, 0.0, 0.0),))
        self._chan.setdefault((rank, dst, tag), deque()).append(avail)
        if blocking:
            self._set_clk(rank, inj_done)
        else:
            self._pend_const[rank] += self._o

    def _finish_recv(self, rank: int, avail: int, nbytes: int) -> None:
        b = float(nbytes)
        arrived = self._new_node(
            rank,
            ((avail, 0.0, 0.0, b, 0.0), (self._ej[rank], 0.0, 0.0, b, 0.0)),
        )
        self._ej[rank] = arrived
        done = self._new_node(
            rank,
            (self._clk_edge(rank, const=self._o), (arrived, 0.0, 0.0, 0.0, 0.0)),
        )
        self._set_clk(rank, done)

    def on_recv_complete(self, rank: int, src: int, tag: int, nbytes: int) -> None:
        self._finish_recv(rank, self._chan[(src, rank, tag)].popleft(), nbytes)

    def on_irecv_bind(self, rank: int, src: int, tag: int, req: int) -> None:
        self._req[rank][req] = self._chan[(src, rank, tag)].popleft()

    def on_wait_complete(self, rank: int, req: int, nbytes: int) -> None:
        self._finish_recv(rank, self._req[rank].pop(req), nbytes)

    def on_collective(
        self,
        kind: OpKind,
        members: Sequence[int],
        root: int,
        nbytes: int,
        alpha_count: float,
        bytes_on_wire: float,
    ) -> None:
        o = self._o
        a = float(alpha_count)
        b = float(bytes_on_wire)
        if kind in _SYNC_COLLECTIVES:
            # Every member completes at max over members of
            # clk + o + alpha_count*L + bytes/B: one shared node.
            done = self._new_node(
                -2, tuple(self._clk_edge(m, const=o, alpha=a, nbytes=b) for m in members)
            )
            for m in members:
                self._set_clk(m, done)
        elif kind in (OpKind.BCAST, OpKind.SCATTER):
            root_done = self._new_node(root, (self._clk_edge(root, const=o, alpha=a, nbytes=b),))
            for m in members:
                if m == root:
                    self._set_clk(m, root_done)
                else:
                    done = self._new_node(
                        m, (self._clk_edge(m, const=o), (root_done, 0.0, 0.0, 0.0, 0.0))
                    )
                    self._set_clk(m, done)
        else:  # REDUCE / GATHER
            root_done = self._new_node(
                -2, tuple(self._clk_edge(m, const=o, alpha=a, nbytes=b) for m in members)
            )
            for m in members:
                if m == root:
                    self._set_clk(m, root_done)
                else:
                    done = self._new_node(
                        m, (self._clk_edge(m, const=o, alpha=1.0, nbytes=float(nbytes)),)
                    )
                    self._set_clk(m, done)

    # -- finalization ------------------------------------------------------

    def finish(self) -> DependencyGraph:
        """Seal the tape: add the terminal node (the application's total
        is the max over every rank's final clock) and freeze the arrays."""
        terminal = self._new_node(-1, tuple(self._clk_edge(r) for r in range(self.nranks)))
        return DependencyGraph(
            pred=np.asarray(self._ep, dtype=np.int64),
            const=np.asarray(self._ec, dtype=float),
            alpha=np.asarray(self._ea, dtype=float),
            nbytes=np.asarray(self._eb, dtype=float),
            compute=np.asarray(self._ew, dtype=float),
            starts=np.asarray(self._starts, dtype=np.int64),
            node_rank=np.asarray(self._rank_of, dtype=np.int64),
            terminal=terminal,
            baseline=self._baseline,
        )
