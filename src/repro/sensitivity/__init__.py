"""Zero-replay sensitivity analytics over the logical-clock graph.

MFACT's logical-clock replay (:mod:`repro.mfact.logical_clock`) updates
every clock with only two operations: ``max`` over predecessor clocks
and ``+`` a cost that is affine in the network parameters — latency
``alpha``, inverse bandwidth ``1/B`` and the compute scale.  That makes
the whole replay a max-plus expression over the happens-before graph:
record the graph once, and the application's predicted total time for
*any* (latency, bandwidth, compute) configuration is one vectorized
bottom-up pass over the recorded nodes — no replay, no matching, no
scheduling.

This package provides that layer (ROADMAP item 3, LLAMP-style):

* :class:`~repro.sensitivity.graph.GraphRecorder` — hooks called by
  :class:`~repro.mfact.logical_clock.LogicalClockReplay` during one
  replay to record each clock update as a node with cost-decomposed
  edges ``(overhead, alpha_count, bytes, compute_seconds)``.
* :class:`~repro.sensitivity.graph.DependencyGraph` — the frozen
  max-plus tape: :meth:`~repro.sensitivity.graph.DependencyGraph.evaluate`
  prices a batch of configurations in one pass, and
  :meth:`~repro.sensitivity.graph.DependencyGraph.critical_path`
  backtracks the binding chain and decomposes it by cost component.
* :mod:`~repro.sensitivity.analysis` — latency-tolerance and
  bandwidth-sensitivity curves, tolerance thresholds and the
  ``lat_tolerance`` / ``bw_sensitivity`` / ``critical_path_frac``
  features consumed by the enhanced-MFACT design matrix.

Accuracy contract: tape evaluation reassociates the replay's float
additions (``max(a, b) + c`` becomes ``max(a + c, b + c)``, and chains
of compute advances are folded into one edge), so analytic totals agree
with a real replay to relative error far below the documented band of
``1e-6`` — the differential suite asserts ``1e-9`` on the mini-corpus.
"""

from repro.sensitivity.analysis import (
    DEFAULT_BW_CURVE_FACTORS,
    DEFAULT_LAT_CURVE_FACTORS,
    DEFAULT_TOLERANCE,
    LAT_TOLERANCE_CAP,
    SensitivityReport,
    analyze_graph,
    analyze_trace,
    bandwidth_curve,
    latency_curve,
    latency_tolerance,
    record_graph,
)
from repro.sensitivity.graph import CriticalPath, DependencyGraph, GraphRecorder

__all__ = [
    "CriticalPath",
    "DEFAULT_BW_CURVE_FACTORS",
    "DEFAULT_LAT_CURVE_FACTORS",
    "DEFAULT_TOLERANCE",
    "DependencyGraph",
    "GraphRecorder",
    "LAT_TOLERANCE_CAP",
    "SensitivityReport",
    "analyze_graph",
    "analyze_trace",
    "bandwidth_curve",
    "latency_curve",
    "latency_tolerance",
    "record_graph",
]
