"""Renderers for :class:`~repro.obs.registry.MetricsSnapshot`.

Three output surfaces:

* :func:`render_prometheus` — Prometheus text exposition format
  (``--metrics-out``); :func:`parse_prometheus` validates it back,
  which is what tests and the CI self-check rely on.
* :func:`render_report` — human-readable summary used by the
  ``stats`` CLI subcommand.
* :func:`render_top_spans` — top-N span table for ``--profile``.

:func:`write_metrics` is the shared CLI helper: it writes the
Prometheus text to ``FILE`` and the JSON snapshot next to it at
``FILE.json``.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import (
    HISTOGRAM_BUCKETS,
    MetricsSnapshot,
    series_name,
)

__all__ = [
    "render_prometheus",
    "parse_prometheus",
    "render_report",
    "render_top_spans",
    "write_metrics",
    "load_snapshot",
]

# One sample line: name, optional {labels}, value.  Label values may
# contain escaped quotes/backslashes; values are floats or +/-Inf/NaN.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*,?\})?"
    r" (?P<value>[+-]?(?:Inf|NaN|[0-9.eE+-]+))$"
)


def _split_series(key: str) -> Tuple[str, str]:
    """Split ``name{a="b"}`` into (name, 'a="b"'); labels may be ''."""
    if "{" not in key:
        return key, ""
    name, rest = key.split("{", 1)
    return name, rest.rstrip("}")


def _with_label(labels: str, extra: str) -> str:
    return f"{{{labels},{extra}}}" if labels else f"{{{extra}}}"


def _fmt(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def render_prometheus(snap: MetricsSnapshot) -> str:
    """Render a snapshot in Prometheus text exposition format.

    Series are emitted sorted, grouped under one ``# TYPE`` line per
    metric family.  Span aggregates are exported as the synthetic
    families ``repro_span_count``, ``repro_span_seconds_total`` and
    ``repro_span_seconds_max`` with a ``path`` label.
    """
    lines: List[str] = []
    typed: set = set()

    def emit(kind: str, key: str, value) -> None:
        name = series_name(key)
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{key} {_fmt(value)}")

    for key in sorted(snap.counters):
        emit("counter", key, snap.counters[key])
    for key in sorted(snap.gauges):
        emit("gauge", key, snap.gauges[key])
    for key in sorted(snap.histograms):
        data = snap.histograms[key]
        name, labels = _split_series(key)
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(HISTOGRAM_BUCKETS, data["counts"]):
            cumulative += count
            le = _with_label(labels, f'le="{_fmt(float(bound))}"')
            lines.append(f"{name}_bucket{le} {_fmt(cumulative)}")
        cumulative += data["counts"][-1]
        le = _with_label(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{le} {_fmt(cumulative)}")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}_sum{suffix} {_fmt(data['sum'])}")
        lines.append(f"{name}_count{suffix} {_fmt(data['count'])}")
    span_families = (
        ("repro_span_count", "counter", "count"),
        ("repro_span_seconds_total", "counter", "total_seconds"),
        ("repro_span_seconds_max", "gauge", "max_seconds"),
    )
    for family, kind, field in span_families:
        if snap.spans:
            lines.append(f"# TYPE {family} {kind}")
        for path in sorted(snap.spans):
            escaped = path.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(f'{family}{{path="{escaped}"}} {_fmt(snap.spans[path][field])}')
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse/validate Prometheus text format into ``{series: value}``.

    Strict on purpose — this is the validator the CI self-check runs
    over our own output.  Raises ValueError on any malformed line.
    """
    samples: Dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if not re.match(r"^# (HELP|TYPE|EOF|[^ ])", line):
                raise ValueError(f"line {lineno}: malformed comment {raw!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        key = m.group("name") + (m.group("labels") or "")
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate series {key!r}")
        value = m.group("value")
        if value == "+Inf":
            samples[key] = math.inf
        elif value == "-Inf":
            samples[key] = -math.inf
        else:
            samples[key] = float(value)
    return samples


def render_top_spans(snap: MetricsSnapshot, top: int = 15) -> str:
    """Top-N span table by total time — the ``--profile`` surface."""
    if not snap.spans:
        return "no spans recorded\n"
    rows = sorted(
        snap.spans.items(), key=lambda kv: kv[1]["total_seconds"], reverse=True
    )[:top]
    width = max(len("span"), max(len(path) for path, _ in rows))
    out = [
        f"{'span':<{width}}  {'count':>8}  {'total_s':>10}  {'mean_ms':>9}  {'max_ms':>9}",
        "-" * (width + 44),
    ]
    for path, data in rows:
        count = data["count"]
        total = data["total_seconds"]
        mean_ms = 1e3 * total / count if count else 0.0
        out.append(
            f"{path:<{width}}  {count:>8}  {total:>10.4f}  "
            f"{mean_ms:>9.3f}  {1e3 * data['max_seconds']:>9.3f}"
        )
    return "\n".join(out) + "\n"


def render_report(snap: MetricsSnapshot, top_spans: int = 15) -> str:
    """Human-readable summary: counters, gauges, histograms, spans."""
    if snap.is_empty():
        return "no metrics collected (was the run made with metrics enabled?)\n"
    out: List[str] = []
    if snap.counters:
        out.append("== counters ==")
        for key in sorted(snap.counters):
            out.append(f"  {key} = {_fmt(snap.counters[key])}")
    if snap.gauges:
        out.append("== gauges ==")
        for key in sorted(snap.gauges):
            out.append(f"  {key} = {_fmt(snap.gauges[key])}")
    if snap.histograms:
        out.append("== histograms ==")
        for key in sorted(snap.histograms):
            data = snap.histograms[key]
            count = data["count"]
            mean = data["sum"] / count if count else 0.0
            out.append(f"  {key}: count={count} sum={data['sum']:.6g} mean={mean:.6g}")
    if snap.spans:
        out.append("== spans ==")
        out.append(render_top_spans(snap, top=top_spans).rstrip("\n"))
    return "\n".join(out) + "\n"


def write_metrics(snap: MetricsSnapshot, path) -> None:
    """Write Prometheus text to ``path`` and JSON to ``path + '.json'``."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_prometheus(snap))
    Path(str(path) + ".json").write_text(
        json.dumps(snap.to_json(), indent=2, sort_keys=True) + "\n"
    )


def load_snapshot(path) -> Optional[MetricsSnapshot]:
    """Load a snapshot from a JSON file.

    Accepts either a bare snapshot (as written by ``--metrics-out``'s
    ``.json`` sidecar) or a run manifest whose ``metrics`` block holds
    one.  Returns None when a manifest has no metrics block.
    """
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if "entries" in data or "version" in data:
        metrics = data.get("metrics")
        if metrics is None:
            return None
        return MetricsSnapshot.from_json(metrics)
    return MetricsSnapshot.from_json(data)
