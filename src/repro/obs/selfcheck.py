"""CI gate: serial and parallel runs must agree on every non-walltime metric.

Builds a small seeded trace corpus, measures it twice through the real
CLI (``trace.cli measure --metrics-out`` at ``-j 1`` and ``-j N``),
validates both Prometheus outputs with our strict parser, and diffs the
deterministic views (everything outside the walltime family).  Any
difference means the metrics pipeline leaks scheduling into numbers it
claims are schedule-independent.

Run it locally with::

    python -m repro.obs.selfcheck

Exit code 0 on agreement, 1 on any divergence or invalid output.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.obs.registry import deterministic_view
from repro.obs.report import load_snapshot, parse_prometheus
from repro.trace.dumpi import write_trace
from repro.workloads.suite import build_trace, mini_corpus_specs

SEED = 97


def _diff_views(serial: dict, parallel: dict) -> List[str]:
    lines: List[str] = []
    for section in sorted(set(serial) | set(parallel)):
        left, right = serial.get(section, {}), parallel.get(section, {})
        for key in sorted(set(left) | set(right)):
            if left.get(key) != right.get(key):
                lines.append(
                    f"  {section} {key}: serial={left.get(key)!r} "
                    f"parallel={right.get(key)!r}"
                )
    return lines


def run_selfcheck(records: int = 4, jobs: int = 4, workdir=None) -> int:
    from repro.trace.cli import main as trace_cli_main

    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-obs-selfcheck-")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    paths = []
    for spec in mini_corpus_specs(records, seed=SEED):
        path = workdir / f"{spec.name}.dmp"
        write_trace(build_trace(spec), path)
        paths.append(str(path))

    outputs = {}
    for mode, n in (("serial", 1), ("parallel", jobs)):
        out = workdir / f"{mode}.prom"
        code = trace_cli_main(
            ["measure", *paths, "-j", str(n), "--no-cache",
             "--metrics-out", str(out)]
        )
        if code != 0:
            print(f"selfcheck: {mode} measure exited {code}", file=sys.stderr)
            return 1
        samples = parse_prometheus(out.read_text())
        if not samples:
            print(f"selfcheck: {out} contains no samples", file=sys.stderr)
            return 1
        print(f"selfcheck: {mode} (-j {n}): {len(samples)} Prometheus samples ok")
        outputs[mode] = deterministic_view(load_snapshot(str(out) + ".json"))

    diff = _diff_views(outputs["serial"], outputs["parallel"])
    if diff:
        print(
            f"selfcheck: FAIL — {len(diff)} non-walltime series differ "
            f"between -j 1 and -j {jobs}:",
            file=sys.stderr,
        )
        for line in diff:
            print(line, file=sys.stderr)
        return 1
    print(
        f"selfcheck: OK — serial and -j {jobs} agree on all "
        "non-walltime metrics"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.selfcheck", description=__doc__
    )
    parser.add_argument("--records", type=int, default=4,
                        help="mini-corpus size (default 4)")
    parser.add_argument("--jobs", "-j", type=int, default=4,
                        help="parallel worker count to compare against (default 4)")
    parser.add_argument("--workdir", default=None,
                        help="directory for traces and metric files "
                             "(default: a fresh temp dir)")
    args = parser.parse_args(argv)
    return run_selfcheck(records=args.records, jobs=args.jobs, workdir=args.workdir)


if __name__ == "__main__":
    sys.exit(main())
