"""Metrics registry: counters, gauges, histograms and span timers.

A dependency-free observability core for the study pipeline.  Three
design rules make its numbers trustworthy across execution modes:

* **Fixed log-spaced histogram buckets** (:data:`HISTOGRAM_BUCKETS`,
  shared by every histogram) — serial and parallel runs bucket every
  observation identically, so merged snapshots are bitwise-equal for
  any deterministic quantity no matter how work was scheduled.
* **Order-independent merging** — counters and histogram buckets merge
  by summation, gauges by maximum, span timers by (count-sum,
  seconds-sum, max).  Worker processes serialize a
  :class:`MetricsSnapshot` back to the parent over the existing result
  pipe; the parent folds them in, in completion order, and the result
  does not depend on that order.
* **A true no-op mode** — when no registry is active (the default),
  the module-level helpers hand out shared null instruments whose
  methods do nothing, and instrumented hot loops skip their
  bookkeeping entirely, so disabled metrics cost nothing measurable.

Naming convention: metric names are Prometheus-compatible
(``repro_<area>_<what>_<unit>``); anything measuring host wall-clock
time carries ``seconds`` or ``walltime`` in its name — that is the
**walltime family**, the only metrics allowed to differ between serial
and parallel runs of the same seeded corpus
(see :func:`is_walltime_series`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "HISTOGRAM_BUCKETS",
    "METRIC_NAME_RE",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanStats",
    "MetricsSnapshot",
    "MetricsRegistry",
    "active_registry",
    "enabled",
    "enable",
    "disable",
    "reset",
    "snapshot",
    "counter",
    "gauge",
    "histogram",
    "span",
    "collect_task",
    "is_walltime_series",
    "deterministic_view",
]

import re

#: Valid Prometheus metric names (labels use the same alphabet minus ':').
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Shared histogram bucket upper bounds: two log-spaced buckets per
#: decade from 1e-6 to ~3.2e9, identical for every histogram so that
#: snapshots from any execution mode aggregate bucket-for-bucket.
#: Observations above the top bound land in the implicit +Inf bucket.
HISTOGRAM_BUCKETS: Tuple[float, ...] = tuple(10.0 ** (k / 2.0) for k in range(-12, 20))


def _series_key(name: str, labels: Dict[str, str]) -> str:
    """Canonical series identity: ``name`` or ``name{k="v",...}``.

    Labels are sorted by key so the same (name, labels) always maps to
    the same series string regardless of call-site keyword order.
    """
    if not METRIC_NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        value = str(labels[key])
        value = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        parts.append(f'{key}="{value}"')
    return f"{name}{{{','.join(parts)}}}"


def series_name(key: str) -> str:
    """Base metric name of a series key (labels stripped)."""
    return key.split("{", 1)[0]


def is_walltime_series(key: str) -> bool:
    """True when the series measures host wall-clock time.

    The walltime family — any metric whose base name contains
    ``seconds`` or ``walltime`` — is the only set of metrics allowed
    to differ between serial and parallel runs of the same corpus.
    """
    name = series_name(key)
    return "seconds" in name or "walltime" in name


# -- instruments --------------------------------------------------------------


class Counter:
    """Monotonically increasing value (int-exact until a float is added)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Point-in-time value; merges across processes by maximum."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def set_max(self, value) -> None:
        """Keep the largest value seen (high-water-mark semantics)."""
        with self._lock:
            if value > self.value:
                self.value = value


class Histogram:
    """Distribution over the shared :data:`HISTOGRAM_BUCKETS` bounds.

    ``counts[i]`` tallies observations ``<= HISTOGRAM_BUCKETS[i]``
    (non-cumulative); ``counts[-1]`` is the overflow (+Inf) bucket.
    """

    __slots__ = ("_lock", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.counts = [0] * (len(HISTOGRAM_BUCKETS) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value) -> None:
        value = float(value)
        lo, hi = 0, len(HISTOGRAM_BUCKETS)
        while lo < hi:  # first bound >= value
            mid = (lo + hi) // 2
            if HISTOGRAM_BUCKETS[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self.counts[lo] += 1
            self.sum += value
            self.count += 1


@dataclass
class SpanStats:
    """Aggregated timings of one span path."""

    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds


class _SpanTimer:
    """Context manager recording one timed span under the registry.

    Span paths nest: entering ``span("sim/packet")`` inside
    ``span("record")`` records the path ``record/sim/packet``, giving
    a per-phase tree whose *counts* are deterministic and whose
    *seconds* are walltime-family.
    """

    __slots__ = ("_registry", "_name", "_path", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._path = ""
        self._t0 = 0.0

    def __enter__(self) -> "_SpanTimer":
        stack = self._registry._span_stack()
        stack.append(self._name)
        self._path = "/".join(stack)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._t0
        stack = self._registry._span_stack()
        if stack and stack[-1] == self._name:
            stack.pop()
        self._registry._record_span(self._path, elapsed)


# -- snapshot -----------------------------------------------------------------


@dataclass
class MetricsSnapshot:
    """Immutable value image of a registry, safe to pickle/serialize.

    Keys are canonical series strings (``name{label="v"}``).  Histogram
    values are ``{"counts": [...], "sum": s, "count": n}`` aligned with
    :data:`HISTOGRAM_BUCKETS` plus the overflow slot; span values are
    ``{"count": n, "total_seconds": t, "max_seconds": m}``.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, dict] = field(default_factory=dict)
    spans: Dict[str, dict] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "spans": {k: dict(v) for k, v in self.spans.items()},
        }

    @classmethod
    def from_json(cls, data: Optional[dict]) -> "MetricsSnapshot":
        data = data or {}
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={k: dict(v) for k, v in data.get("histograms", {}).items()},
            spans={k: dict(v) for k, v in data.get("spans", {}).items()},
        )

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms or self.spans)


def deterministic_view(snap: MetricsSnapshot) -> dict:
    """The schedule-independent projection of a snapshot.

    Everything except the walltime family and span timings: counters,
    gauges, histogram bucket counts, and span *counts*.  Two runs of
    the same seeded corpus — serial or parallel, any completion order —
    must produce identical views; tests and the CI self-check diff
    exactly this.
    """
    return {
        "counters": {
            k: v for k, v in sorted(snap.counters.items()) if not is_walltime_series(k)
        },
        "gauges": {
            k: v for k, v in sorted(snap.gauges.items()) if not is_walltime_series(k)
        },
        "histograms": {
            k: {"counts": list(v["counts"]), "count": v["count"]}
            for k, v in sorted(snap.histograms.items())
            if not is_walltime_series(k)
        },
        "span_counts": {k: v["count"] for k, v in sorted(snap.spans.items())},
    }


# -- registry -----------------------------------------------------------------


class MetricsRegistry:
    """Thread-safe home of every instrument created under one scope.

    Instrument creation and value mutation share one lock (mutations
    are tiny; contention is negligible at our thread counts).  Worker
    *processes* never share a registry — each task collects into its
    own (:func:`collect_task`) and the snapshot rides home on the
    result pipe, where :meth:`merge_snapshot` folds it in.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: Dict[str, SpanStats] = {}
        self._local = threading.local()

    # -- instrument access -------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = _series_key(name, labels)
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(self._lock)
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = _series_key(name, labels)
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(self._lock)
        return inst

    def histogram(self, name: str, **labels) -> Histogram:
        key = _series_key(name, labels)
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(self._lock)
        return inst

    def span(self, name: str) -> _SpanTimer:
        return _SpanTimer(self, name)

    # -- span plumbing -----------------------------------------------------

    def _span_stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record_span(self, path: str, seconds: float) -> None:
        with self._lock:
            stats = self._spans.get(path)
            if stats is None:
                stats = self._spans[path] = SpanStats()
            stats.add(seconds)

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                counters={k: c.value for k, c in self._counters.items()},
                gauges={k: g.value for k, g in self._gauges.items()},
                histograms={
                    k: {"counts": list(h.counts), "sum": h.sum, "count": h.count}
                    for k, h in self._histograms.items()
                },
                spans={
                    k: {
                        "count": s.count,
                        "total_seconds": s.total_seconds,
                        "max_seconds": s.max_seconds,
                    }
                    for k, s in self._spans.items()
                },
            )

    def merge_snapshot(self, snap) -> None:
        """Fold a snapshot (or its JSON image) into this registry.

        Counters and histogram buckets add, gauges keep the maximum,
        spans add counts/totals and keep the max — all order-free, so
        merging worker snapshots in completion order is deterministic.
        """
        if isinstance(snap, dict):
            snap = MetricsSnapshot.from_json(snap)
        if snap is None or snap.is_empty():
            return
        with self._lock:
            for key, value in snap.counters.items():
                inst = self._counters.get(key)
                if inst is None:
                    inst = self._counters[key] = Counter(self._lock)
                inst.value += value
            for key, value in snap.gauges.items():
                inst = self._gauges.get(key)
                if inst is None:
                    inst = self._gauges[key] = Gauge(self._lock)
                if value > inst.value:
                    inst.value = value
            for key, data in snap.histograms.items():
                hist = self._histograms.get(key)
                if hist is None:
                    hist = self._histograms[key] = Histogram(self._lock)
                counts = data.get("counts", [])
                if len(counts) != len(hist.counts):
                    raise ValueError(
                        f"histogram {key!r} has {len(counts)} buckets, "
                        f"expected {len(hist.counts)} (bucket scheme mismatch)"
                    )
                for i, c in enumerate(counts):
                    hist.counts[i] += c
                hist.sum += data.get("sum", 0.0)
                hist.count += data.get("count", 0)
            for key, data in snap.spans.items():
                stats = self._spans.get(key)
                if stats is None:
                    stats = self._spans[key] = SpanStats()
                stats.count += data.get("count", 0)
                stats.total_seconds += data.get("total_seconds", 0.0)
                stats.max_seconds = max(stats.max_seconds, data.get("max_seconds", 0.0))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()


# -- null instruments (no-op mode) --------------------------------------------


class _NullCounter:
    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value) -> None:
        pass

    def set_max(self, value) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_SPAN = _NullSpan()


# -- module-level active registry ---------------------------------------------
#
# ``_active`` is the registry instrumented code writes to.  None (the
# default) is no-op mode.  ``enable()`` installs the process-global
# registry; ``collect_task()`` temporarily swaps in a fresh registry so
# one task's metrics can travel home over a process boundary — worker
# entrypoints use it on both the serial and the parallel path, which is
# what makes the two modes aggregate identically.

_GLOBAL = MetricsRegistry()
_active: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The registry currently collecting, or None in no-op mode."""
    return _active


def enabled() -> bool:
    """True when some registry is actively collecting."""
    return _active is not None


def enable() -> MetricsRegistry:
    """Activate the process-global registry (idempotent); returns it."""
    global _active
    _active = _GLOBAL
    return _GLOBAL


def disable() -> None:
    """Return to no-op mode (the global registry keeps its values)."""
    global _active
    _active = None


def reset() -> None:
    """Clear the process-global registry's values."""
    _GLOBAL.reset()


def snapshot() -> MetricsSnapshot:
    """Snapshot of the active registry (empty snapshot in no-op mode)."""
    return _active.snapshot() if _active is not None else MetricsSnapshot()


def counter(name: str, **labels):
    """Counter on the active registry, or a shared no-op."""
    return _active.counter(name, **labels) if _active is not None else NULL_COUNTER


def gauge(name: str, **labels):
    """Gauge on the active registry, or a shared no-op."""
    return _active.gauge(name, **labels) if _active is not None else NULL_GAUGE


def histogram(name: str, **labels):
    """Histogram on the active registry, or a shared no-op."""
    return _active.histogram(name, **labels) if _active is not None else NULL_HISTOGRAM


def span(name: str):
    """Span timer on the active registry, or a shared no-op."""
    return _active.span(name) if _active is not None else NULL_SPAN


class collect_task:
    """Context manager: collect one task's metrics into a fresh registry.

    Worker entrypoints wrap each task with this so the task's metrics
    are isolated and serializable; the previous active registry (if
    any) is restored on exit.  ``enabled=False`` degrades to a no-op
    that yields None, keeping disabled runs on the null path.
    """

    __slots__ = ("_enabled", "_registry", "_previous")

    def __init__(self, enabled: bool = True):
        self._enabled = enabled
        self._registry: Optional[MetricsRegistry] = None
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> Optional[MetricsRegistry]:
        global _active
        if not self._enabled:
            return None
        self._previous = _active
        self._registry = MetricsRegistry()
        _active = self._registry
        return self._registry

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active
        if self._enabled:
            _active = self._previous
