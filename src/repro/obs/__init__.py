"""repro.obs — dependency-free metrics, tracing and profiling.

Instrumented code calls the module-level helpers::

    from repro import obs

    obs.counter("repro_cache_reads_total", result="hit").inc()
    with obs.span("record"):
        ...

By default nothing is collected: the helpers return shared null
instruments and hot loops skip their bookkeeping (zero-overhead no-op
mode).  ``obs.enable()`` turns collection on for the process;
``obs.collect_task()`` scopes collection to one executor task so its
snapshot can ride back to the parent over the result pipe.

Rendering (Prometheus text, JSON, human-readable report, top-span
profile table) lives in :mod:`repro.obs.report`; the serial-vs-parallel
determinism gate CI runs is :mod:`repro.obs.selfcheck`.
"""

from repro.obs.registry import (
    HISTOGRAM_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    SpanStats,
    active_registry,
    collect_task,
    counter,
    deterministic_view,
    disable,
    enable,
    enabled,
    gauge,
    histogram,
    is_walltime_series,
    reset,
    snapshot,
    span,
)

__all__ = [
    "HISTOGRAM_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SpanStats",
    "active_registry",
    "collect_task",
    "counter",
    "deterministic_view",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "is_walltime_series",
    "reset",
    "snapshot",
    "span",
]
