"""Trace file command-line tools.

Usage::

    python -m repro.trace.cli info trace.dmp
    python -m repro.trace.cli validate trace.dmp
    python -m repro.trace.cli lint trace.dmp [--json]
    python -m repro.trace.cli features trace.dmp
    python -m repro.trace.cli sensitivity trace.dmp [--json] [--tolerance 0.05]
    python -m repro.trace.cli compress-stats trace.dmp
    python -m repro.trace.cli convert trace.dmp trace.bin   # ascii <-> binary
    python -m repro.trace.cli measure a.dmp b.bin -j 4      # replay with all tools
    python -m repro.trace.cli stats metrics.txt.json        # render a metrics snapshot

``measure`` runs the full four-tool measurement (MFACT plus the three
simulation engines) on each given trace file, fanning out over
``--jobs/-j`` worker processes (``-j 1``, the default, stays
in-process) and memoizing results in the per-record cache under
``.cache/records/`` (``--no-cache`` disables it).  One crashing replay
is reported per-file and does not stop the others.  Each record can be
budget-bounded: ``--record-timeout`` caps one record's wall seconds and
``--event-budget`` its engine events — over-budget replays step down
the engine-degradation ladder rather than failing — while
``--max-attempts`` caps the retries a transient failure gets per
ladder step.  ``--metrics-out FILE`` writes the run's merged metrics
snapshot (Prometheus text to ``FILE`` plus a JSON image to
``FILE.json``) and ``--profile`` prints the top span timings; either
flag turns metrics collection on for the run.  ``stats`` renders a
previously written snapshot (or a manifest that embeds one) as a
human-readable report.

``sensitivity`` runs the zero-replay analytics layer
(:mod:`repro.sensitivity`): one recorded MFACT replay builds the
max-plus dependency graph, from which the latency-tolerance threshold,
latency/bandwidth degradation curves and the critical-path cost
decomposition are computed analytically — no simulation, no design-grid
replays.  ``--tolerance`` sets the slowdown budget defining the latency
tolerance (default 5%); ``--json`` emits the full report including both
curves.

Every subcommand returns a conventional exit code: ``0`` on success,
``1`` on a warning-level or usage failure, ``2`` on an error-level
finding, ``3`` when a budget or deadline was the cause.  ``lint`` maps
its exit code directly from the worst diagnostic severity (0 clean /
1 warnings / 2 errors); ``measure`` returns ``2`` if any file failed
to measure, or ``3`` only when *every* failure was a budget/timeout
exhaustion (the study is fine, the budget was not) — mixed
budget-and-error runs return ``2``, see :func:`measure_exit_code`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.trace.binary import read_trace_binary, write_trace_binary
from repro.trace.compress import compress_trace
from repro.trace.dumpi import read_trace, write_trace
from repro.trace.features import extract_features
from repro.trace.trace import TraceValidationError
from repro.util.units import format_time

__all__ = ["main"]

#: Exit codes shared by all subcommands.
EXIT_OK = 0
EXIT_WARN = 1
EXIT_ERROR = 2
#: Every failure was a budget/deadline exhaustion (typed
#: :class:`~repro.util.budget.BudgetExceeded` or a watchdog kill).
EXIT_BUDGET = 3


def _cmd_info(trace, args) -> int:
    print(f"name            {trace.name}")
    print(f"application     {trace.app}")
    print(f"machine         {trace.machine}")
    print(f"ranks           {trace.nranks} ({trace.ranks_per_node} per node, "
          f"{trace.nnodes} nodes)")
    print(f"ops             {trace.op_count()}")
    print(f"p2p messages    {trace.message_count()} ({trace.total_send_bytes()} bytes)")
    print(f"communicators   {len(trace.comms)}")
    print(f"flags           comm_split={trace.uses_comm_split} threads={trace.uses_threads}")
    if trace.has_timestamps():
        print(f"measured total  {format_time(trace.measured_total_time())}")
        print(f"measured comm   {format_time(trace.measured_comm_time())} "
              f"({100 * trace.comm_fraction():.1f}%)")
    else:
        print("measured total  (trace is unstamped)")
    return EXIT_OK


def _cmd_validate(trace, args) -> int:
    try:
        trace.validate()
    except TraceValidationError as exc:
        print(f"INVALID: {exc}")
        return EXIT_ERROR
    print(f"{trace.name}: valid ({trace.op_count()} ops, {trace.nranks} ranks)")
    return EXIT_OK


def _cmd_lint(trace, args) -> int:
    from repro.analysis.lint import lint_trace

    report = lint_trace(trace)
    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return report.exit_code()


def _cmd_features(trace, args) -> int:
    if not trace.has_timestamps():
        print("trace is unstamped; features need measured timestamps", file=sys.stderr)
        return EXIT_WARN
    features = extract_features(trace)
    width = max(len(name) for name in features)
    for name, value in features.items():
        print(f"{name:<{width}s}  {value:.6g}")
    return EXIT_OK


def _cmd_sensitivity(trace, args) -> int:
    import math

    from repro.machines.presets import get_machine
    from repro.mfact.logical_clock import ReplayDeadlockError
    from repro.sensitivity.analysis import analyze_trace

    try:
        machine = get_machine(trace.machine)
    except KeyError as exc:
        print(f"unknown machine for sensitivity analysis: {exc}", file=sys.stderr)
        return EXIT_ERROR
    try:
        report = analyze_trace(trace, machine, tolerance=args.tolerance)
    except ReplayDeadlockError as exc:
        print(f"cannot analyze: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.as_json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return EXIT_OK
    cp = report.critical_path
    total = cp.total if cp.total > 0 else 1.0
    print(f"trace              {report.trace_name}")
    print(f"machine            {report.machine}")
    print(f"graph              {report.n_nodes} nodes, {report.n_edges} edges")
    print(f"predicted total    {format_time(report.baseline_total)}")
    if math.isinf(report.lat_tolerance):
        print(f"latency tolerance  unbounded (insensitive within "
              f"{100 * report.tolerance:.0f}% up to x1e6)")
    else:
        print(f"latency tolerance  x{report.lat_tolerance:.3g} "
              f"(largest multiplier within {100 * report.tolerance:.0f}% slowdown)")
    print(f"bw sensitivity     {100 * report.bw_sensitivity:.2f}% slowdown at half bandwidth")
    print(f"critical path      {cp.n_edges} edges: "
          f"compute {100 * cp.compute_time / total:.1f}%, "
          f"latency {100 * cp.latency_time / total:.1f}%, "
          f"bandwidth {100 * cp.bandwidth_time / total:.1f}%, "
          f"overhead {100 * cp.overhead_time / total:.1f}%")
    print(f"comm on path       {100 * report.critical_path_frac:.1f}%")
    base = report.baseline_total if report.baseline_total > 0 else 1.0
    print("latency curve      multiplier -> predicted total (slowdown)")
    for factor, t in report.lat_curve:
        print(f"  x{factor:<10g} {format_time(t):>12s}  ({100 * (t / base - 1.0):+7.2f}%)")
    print("bandwidth curve    multiplier -> predicted total (slowdown)")
    for factor, t in report.bw_curve:
        print(f"  x{factor:<10g} {format_time(t):>12s}  ({100 * (t / base - 1.0):+7.2f}%)")
    return EXIT_OK


def _cmd_compress_stats(trace, args) -> int:
    compressed = compress_trace(trace, max_block=args.max_block)
    print(f"ops          {compressed.op_count()}")
    print(f"stored ops   {compressed.stored_ops()}")
    print(f"ratio        {compressed.compression_ratio:.2f}x")
    runs = sum(len(s.runs) for s in compressed.streams)
    print(f"runs         {runs} across {len(compressed.streams)} ranks")
    return EXIT_OK


def _cmd_convert(trace, args) -> int:
    out = args.output
    if out is None:
        print("convert needs an output path", file=sys.stderr)
        return EXIT_WARN
    if out.endswith(".bin"):
        write_trace_binary(trace, out)
    else:
        write_trace(trace, out)
    print(f"wrote {out}")
    return EXIT_OK


def measure_exit_code(failures) -> int:
    """Exit code for ``measure`` given the manifest's failed entries.

    No failures → 0.  Every failure a budget/timeout exhaustion → 3
    (the study is fine, the budget was not).  Any other failure —
    including a *mix* of budget and genuine errors — → 2: error
    outranks budget, because a mixed run still contains a failure the
    budget does not explain.
    """
    if not failures:
        return EXIT_OK
    if all(f.failure_kind in ("budget", "timeout") for f in failures):
        return EXIT_BUDGET
    return EXIT_ERROR


def _cmd_measure(args) -> int:
    """Measure one or more trace files with all four tools."""
    from repro.core.executor import DEFAULT_RECORD_CACHE, execute_traces
    from repro.core.resilience import RetryPolicy

    retry = None
    if args.max_attempts is not None:
        retry = RetryPolicy(max_attempts=args.max_attempts)
    collect = bool(args.metrics_out or args.profile)
    run = execute_traces(
        args.paths,
        jobs=args.jobs,
        cache_root=None if args.no_cache else DEFAULT_RECORD_CACHE,
        record_timeout=args.record_timeout,
        event_budget=args.event_budget,
        retry=retry,
        collect_metrics=True if collect else None,
    )
    if collect:
        _emit_metrics(run.manifest.metrics, args)
    if args.as_json:
        print(json.dumps(
            {
                "records": [r.to_json() for r in run.records],
                "manifest": run.manifest.to_json(),
            },
            indent=2,
        ))
    else:
        for entry, record in zip(
            [e for e in run.manifest.entries if e.status == "ok"], run.records
        ):
            diff = record.diff_total()
            diff_text = f"{100 * diff:6.2f}%" if diff is not None else "   n/a"
            source = "cache" if entry.cache_hit else f"{entry.walltime:.2f}s"
            print(f"{record.name:34s} DIFF={diff_text} class={record.mfact_class:22s} "
                  f"[{source}]")
        for failure in run.manifest.failures:
            first_line = failure.error.splitlines()[0] if failure.error else "unknown error"
            print(f"{failure.name}: FAILED: {first_line}", file=sys.stderr)
    return measure_exit_code(run.manifest.failures)


def _emit_metrics(metrics: Optional[dict], args) -> None:
    """Write/print the measure run's metrics per ``--metrics-out``/``--profile``."""
    from repro.obs import MetricsSnapshot
    from repro.obs.report import render_top_spans, write_metrics

    snap = MetricsSnapshot.from_json(metrics) if metrics else MetricsSnapshot()
    if args.metrics_out:
        write_metrics(snap, args.metrics_out)
        print(f"metrics written to {args.metrics_out} (+ .json)", file=sys.stderr)
    if args.profile:
        print(render_top_spans(snap))


def _cmd_stats(args) -> int:
    """Render a metrics snapshot (or manifest with one) as a report."""
    from repro.obs.report import load_snapshot, render_report

    path = args.paths[0]
    try:
        snap = load_snapshot(path)
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return EXIT_WARN
    except ValueError as exc:
        print(f"{path}: not a metrics snapshot: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if snap is None or snap.is_empty():
        print(f"{path}: no metrics recorded", file=sys.stderr)
        return EXIT_WARN
    print(render_report(snap))
    return EXIT_OK


_COMMANDS = {
    "info": _cmd_info,
    "validate": _cmd_validate,
    "lint": _cmd_lint,
    "features": _cmd_features,
    "sensitivity": _cmd_sensitivity,
    "compress-stats": _cmd_compress_stats,
    "convert": _cmd_convert,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.trace.cli", description=__doc__)
    parser.add_argument("command", choices=sorted(_COMMANDS) + ["measure", "stats"])
    parser.add_argument("paths", nargs="+", metavar="path",
                        help="trace file(s) (.dmp ascii or .bin binary); convert "
                             "takes input then output, measure accepts several, "
                             "stats takes a metrics JSON or manifest file")
    parser.add_argument("--max-block", type=int, default=128,
                        help="compression search window (compress-stats)")
    parser.add_argument("--tolerance", type=float, default=0.05, metavar="FRAC",
                        help="slowdown budget defining the latency tolerance "
                             "(sensitivity; default 0.05)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable output (lint, measure)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for measure (default 1: in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the per-record result cache (measure)")
    parser.add_argument("--record-timeout", type=float, default=None, metavar="SEC",
                        help="wall-clock budget per record; over-budget replays "
                             "degrade down the engine ladder (measure)")
    parser.add_argument("--event-budget", type=int, default=None, metavar="N",
                        help="engine event budget per record (measure)")
    parser.add_argument("--max-attempts", type=int, default=None, metavar="K",
                        help="retry attempts per ladder step for transient "
                             "failures (measure; default 3)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the run's metrics snapshot: Prometheus text "
                             "to FILE, JSON image to FILE.json (measure)")
    parser.add_argument("--profile", action="store_true",
                        help="print the top span timings after the run (measure)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return EXIT_WARN
    if args.command == "measure":
        return _cmd_measure(args)
    if args.command == "stats":
        if len(args.paths) != 1:
            print("stats takes exactly one metrics/manifest file", file=sys.stderr)
            return EXIT_WARN
        return _cmd_stats(args)
    if args.command == "convert":
        if len(args.paths) != 2:
            print("convert needs an input and an output path", file=sys.stderr)
            return EXIT_WARN
        args.output = args.paths[1]
    else:
        args.output = None
        if len(args.paths) != 1:
            print(f"{args.command} takes exactly one trace file", file=sys.stderr)
            return EXIT_WARN
    path = args.paths[0]
    try:
        if path.endswith(".bin"):
            trace = read_trace_binary(path)
        else:
            trace = read_trace(path)
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return EXIT_WARN
    except (TraceValidationError, ValueError) as exc:
        # A file that exists but does not parse as a trace is an
        # error-level finding, not a usage warning — and must not
        # escape as an uncaught traceback.
        print(f"{path}: invalid trace: {exc}", file=sys.stderr)
        return EXIT_ERROR
    return _COMMANDS[args.command](trace, args)


if __name__ == "__main__":
    sys.exit(main())
