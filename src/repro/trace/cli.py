"""Trace file command-line tools.

Usage::

    python -m repro.trace.cli info trace.dmp
    python -m repro.trace.cli validate trace.dmp
    python -m repro.trace.cli lint trace.dmp [--json]
    python -m repro.trace.cli features trace.dmp
    python -m repro.trace.cli compress-stats trace.dmp
    python -m repro.trace.cli convert trace.dmp trace.bin   # ascii <-> binary

Every subcommand returns a conventional exit code: ``0`` on success,
``1`` on a warning-level or usage failure, ``2`` on an error-level
finding.  ``lint`` maps its exit code directly from the worst
diagnostic severity (0 clean / 1 warnings / 2 errors).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.trace.binary import read_trace_binary, write_trace_binary
from repro.trace.compress import compress_trace
from repro.trace.dumpi import read_trace, write_trace
from repro.trace.features import extract_features
from repro.trace.trace import TraceValidationError
from repro.util.units import format_time

__all__ = ["main"]

#: Exit codes shared by all subcommands.
EXIT_OK = 0
EXIT_WARN = 1
EXIT_ERROR = 2


def _cmd_info(trace, args) -> int:
    print(f"name            {trace.name}")
    print(f"application     {trace.app}")
    print(f"machine         {trace.machine}")
    print(f"ranks           {trace.nranks} ({trace.ranks_per_node} per node, "
          f"{trace.nnodes} nodes)")
    print(f"ops             {trace.op_count()}")
    print(f"p2p messages    {trace.message_count()} ({trace.total_send_bytes()} bytes)")
    print(f"communicators   {len(trace.comms)}")
    print(f"flags           comm_split={trace.uses_comm_split} threads={trace.uses_threads}")
    if trace.has_timestamps():
        print(f"measured total  {format_time(trace.measured_total_time())}")
        print(f"measured comm   {format_time(trace.measured_comm_time())} "
              f"({100 * trace.comm_fraction():.1f}%)")
    else:
        print("measured total  (trace is unstamped)")
    return EXIT_OK


def _cmd_validate(trace, args) -> int:
    try:
        trace.validate()
    except TraceValidationError as exc:
        print(f"INVALID: {exc}")
        return EXIT_ERROR
    print(f"{trace.name}: valid ({trace.op_count()} ops, {trace.nranks} ranks)")
    return EXIT_OK


def _cmd_lint(trace, args) -> int:
    from repro.analysis.lint import lint_trace

    report = lint_trace(trace)
    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return report.exit_code()


def _cmd_features(trace, args) -> int:
    if not trace.has_timestamps():
        print("trace is unstamped; features need measured timestamps", file=sys.stderr)
        return EXIT_WARN
    features = extract_features(trace)
    width = max(len(name) for name in features)
    for name, value in features.items():
        print(f"{name:<{width}s}  {value:.6g}")
    return EXIT_OK


def _cmd_compress_stats(trace, args) -> int:
    compressed = compress_trace(trace, max_block=args.max_block)
    print(f"ops          {compressed.op_count()}")
    print(f"stored ops   {compressed.stored_ops()}")
    print(f"ratio        {compressed.compression_ratio:.2f}x")
    runs = sum(len(s.runs) for s in compressed.streams)
    print(f"runs         {runs} across {len(compressed.streams)} ranks")
    return EXIT_OK


def _cmd_convert(trace, args) -> int:
    out = args.output
    if out is None:
        print("convert needs an output path", file=sys.stderr)
        return EXIT_WARN
    if out.endswith(".bin"):
        write_trace_binary(trace, out)
    else:
        write_trace(trace, out)
    print(f"wrote {out}")
    return EXIT_OK


_COMMANDS = {
    "info": _cmd_info,
    "validate": _cmd_validate,
    "lint": _cmd_lint,
    "features": _cmd_features,
    "compress-stats": _cmd_compress_stats,
    "convert": _cmd_convert,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.trace.cli", description=__doc__)
    parser.add_argument("command", choices=sorted(_COMMANDS))
    parser.add_argument("path", help="trace file (.dmp ascii or .bin binary)")
    parser.add_argument("output", nargs="?", default=None,
                        help="output path for the convert command")
    parser.add_argument("--max-block", type=int, default=128,
                        help="compression search window (compress-stats)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable output (lint)")
    args = parser.parse_args(argv)
    try:
        if args.path.endswith(".bin"):
            trace = read_trace_binary(args.path)
        else:
            trace = read_trace(args.path)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return EXIT_WARN
    return _COMMANDS[args.command](trace, args)


if __name__ == "__main__":
    sys.exit(main())
