"""Trace substrate: event model, containers, DUMPI-like I/O, features, stats."""

from repro.trace.compress import (
    CompressedStream,
    CompressedTrace,
    compress_trace,
    decompress_trace,
)
from repro.trace.binary import (
    dumps_binary,
    loads_binary,
    read_trace_binary,
    write_trace_binary,
)
from repro.trace.dumpi import dumps, loads, read_trace, write_trace
from repro.trace.dumpi_import import import_dumpi_ascii, parse_rank_stream
from repro.trace.events import COLLECTIVE_KINDS, P2P_KINDS, Op, OpKind, make_compute
from repro.trace.features import (
    FEATURE_DESCRIPTIONS,
    FEATURE_NAMES,
    NUMERIC_FEATURE_NAMES,
    extract_features,
)
from repro.trace.stats import comm_histogram, rank_histogram, summarize_corpus
from repro.trace.timeline import render_timeline
from repro.trace.trace import TraceSet, TraceValidationError

__all__ = [
    "CompressedStream",
    "CompressedTrace",
    "compress_trace",
    "decompress_trace",
    "Op",
    "OpKind",
    "make_compute",
    "P2P_KINDS",
    "COLLECTIVE_KINDS",
    "TraceSet",
    "TraceValidationError",
    "dumps",
    "dumps_binary",
    "loads_binary",
    "read_trace_binary",
    "write_trace_binary",
    "import_dumpi_ascii",
    "parse_rank_stream",
    "loads",
    "read_trace",
    "write_trace",
    "FEATURE_NAMES",
    "NUMERIC_FEATURE_NAMES",
    "FEATURE_DESCRIPTIONS",
    "extract_features",
    "rank_histogram",
    "comm_histogram",
    "summarize_corpus",
    "render_timeline",
]
