"""Trace containers: one op stream per rank plus run-level metadata."""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.trace.events import Op, OpKind
from repro.util.validation import check_rank, require

__all__ = ["TraceSet", "TraceValidationError"]


class TraceValidationError(ValueError):
    """Raised when a trace violates MPI matching semantics."""


class TraceSet:
    """A complete multi-rank application trace.

    Parameters
    ----------
    name:
        Unique trace instance name, e.g. ``"lulesh.512.cielito.s3"``.
    app:
        Application family name, e.g. ``"LULESH"``.
    ranks:
        Per-rank op lists; ``ranks[r]`` is rank ``r``'s program-ordered
        stream.
    machine:
        Name of the machine the trace was collected on.
    ranks_per_node:
        Processes per node in the original run (used for rank→node
        mapping and the ``RN`` feature).
    comms:
        Mapping from communicator id to the tuple of world ranks it
        contains.  Communicator ``0`` is always the world and is filled
        in automatically.
    uses_comm_split / uses_threads:
        Flags mirroring the trace properties that SST/Macro 3.0's packet
        and flow engines cannot handle (complex MPI grouping operations
        and MPI multi-threading, Section V-A).
    metadata:
        Free-form run metadata (problem size, seed, generator params).
    """

    def __init__(
        self,
        name: str,
        app: str,
        ranks: Sequence[List[Op]],
        machine: str = "unknown",
        ranks_per_node: int = 16,
        comms: Optional[Dict[int, Tuple[int, ...]]] = None,
        uses_comm_split: bool = False,
        uses_threads: bool = False,
        metadata: Optional[dict] = None,
    ):
        require(len(ranks) >= 1, "a trace needs at least one rank")
        require(ranks_per_node >= 1, "ranks_per_node must be >= 1")
        self.name = str(name)
        self.app = str(app)
        self.ranks: List[List[Op]] = [list(stream) for stream in ranks]
        self.machine = str(machine)
        self.ranks_per_node = int(ranks_per_node)
        self.comms: Dict[int, Tuple[int, ...]] = dict(comms or {})
        self.comms.setdefault(0, tuple(range(len(self.ranks))))
        self.uses_comm_split = bool(uses_comm_split)
        self.uses_threads = bool(uses_threads)
        self.metadata = dict(metadata or {})

    # -- basic shape ---------------------------------------------------

    @property
    def nranks(self) -> int:
        """Number of application processes in the trace."""
        return len(self.ranks)

    @property
    def nnodes(self) -> int:
        """Number of nodes the run occupied."""
        return -(-self.nranks // self.ranks_per_node)

    def __iter__(self) -> Iterator[List[Op]]:
        return iter(self.ranks)

    def __len__(self) -> int:
        return len(self.ranks)

    def op_count(self) -> int:
        """Total number of ops across all ranks."""
        return sum(len(stream) for stream in self.ranks)

    def message_count(self) -> int:
        """Number of p2p send initiations across all ranks."""
        return sum(1 for stream in self.ranks for op in stream if op.is_send_like)

    def total_send_bytes(self) -> int:
        """Total p2p payload bytes across all ranks."""
        return sum(op.nbytes for stream in self.ranks for op in stream if op.is_send_like)

    def comm_ranks(self, comm: int) -> Tuple[int, ...]:
        """World ranks belonging to communicator ``comm``."""
        try:
            return self.comms[comm]
        except KeyError:
            raise KeyError(f"trace {self.name!r} has no communicator {comm}") from None

    # -- measured times -------------------------------------------------

    def has_timestamps(self) -> bool:
        """True once the ground-truth synthesizer stamped every op."""
        return all(
            not math.isnan(op.t_entry) and not math.isnan(op.t_exit)
            for stream in self.ranks
            for op in stream
        )

    def measured_total_time(self) -> float:
        """Measured application time: the latest op exit across ranks."""
        latest = 0.0
        for stream in self.ranks:
            if stream:
                t = stream[-1].t_exit
                if math.isnan(t):
                    raise ValueError(f"trace {self.name!r} has no measured timestamps")
                latest = max(latest, t)
        return latest

    def measured_comm_time(self) -> float:
        """Measured time in MPI calls, averaged over ranks."""
        per_rank = []
        for stream in self.ranks:
            total = 0.0
            for op in stream:
                if op.kind != OpKind.COMPUTE:
                    d = op.measured_duration
                    if math.isnan(d):
                        raise ValueError(f"trace {self.name!r} has no measured timestamps")
                    total += d
            per_rank.append(total)
        return sum(per_rank) / len(per_rank)

    def comm_fraction(self) -> float:
        """Measured communication intensity: mean MPI time / total time."""
        total = self.measured_total_time()
        if total <= 0:
            return 0.0
        return min(1.0, self.measured_comm_time() / total)

    # -- validation -----------------------------------------------------

    def validate(self) -> None:
        """Check MPI matching semantics; raise :class:`TraceValidationError`.

        Verifies that (1) every ISEND/IRECV request is waited exactly
        once and requests are unique per rank, (2) p2p traffic matches:
        for every (src, dst, tag) the send count, and the per-position
        byte counts, equal the receive count posted at ``dst`` for
        ``src``, and (3) all ranks of a communicator issue the same
        sequence of collectives with consistent parameters.
        """
        sends: Dict[Tuple[int, int, int], List[int]] = {}
        recvs: Dict[Tuple[int, int, int], List[int]] = {}
        coll_seq: Dict[int, Dict[int, List[Tuple]]] = {}
        for rank, stream in enumerate(self.ranks):
            pending: Dict[int, OpKind] = {}
            for op in stream:
                if op.kind in (OpKind.ISEND, OpKind.IRECV):
                    if op.req in pending:
                        raise TraceValidationError(
                            f"{self.name}: rank {rank} reuses request {op.req} before wait"
                        )
                    pending[op.req] = op.kind
                elif op.kind == OpKind.WAIT:
                    if op.req not in pending:
                        raise TraceValidationError(
                            f"{self.name}: rank {rank} waits on unknown request {op.req}"
                        )
                    del pending[op.req]
                if op.is_send_like:
                    check_rank(op.peer, self.nranks, "send peer")
                    sends.setdefault((rank, op.peer, op.tag), []).append(op.nbytes)
                elif op.is_recv_like:
                    check_rank(op.peer, self.nranks, "recv peer")
                    recvs.setdefault((op.peer, rank, op.tag), []).append(op.nbytes)
                elif op.is_collective:
                    members = self.comm_ranks(op.comm)
                    if rank not in members:
                        raise TraceValidationError(
                            f"{self.name}: rank {rank} calls {op.kind.name} on comm "
                            f"{op.comm} it does not belong to"
                        )
                    coll_seq.setdefault(op.comm, {}).setdefault(rank, []).append(
                        (int(op.kind), op.peer, op.nbytes)
                    )
            if pending:
                raise TraceValidationError(
                    f"{self.name}: rank {rank} leaves requests {sorted(pending)} unwaited"
                )
        if set(sends) != set(recvs):
            missing = set(sends) ^ set(recvs)
            raise TraceValidationError(f"{self.name}: unmatched p2p channels {sorted(missing)[:5]}")
        for channel, sizes in sends.items():
            if sizes != recvs[channel]:
                raise TraceValidationError(
                    f"{self.name}: byte mismatch on channel {channel}: "
                    f"{len(sizes)} sends vs {len(recvs[channel])} recvs"
                )
        for comm, per_rank in coll_seq.items():
            members = self.comm_ranks(comm)
            sequences = {r: per_rank.get(r, []) for r in members}
            reference = sequences[members[0]]
            for r, seq in sequences.items():
                if seq != reference:
                    raise TraceValidationError(
                        f"{self.name}: collective sequence mismatch on comm {comm} "
                        f"between ranks {members[0]} and {r}"
                    )

    def __repr__(self) -> str:
        return (
            f"TraceSet(name={self.name!r}, app={self.app!r}, nranks={self.nranks}, "
            f"ops={self.op_count()}, machine={self.machine!r})"
        )
