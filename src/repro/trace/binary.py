"""Compact binary trace format.

The ASCII format (:mod:`repro.trace.dumpi`) is convenient to diff but
bulky — a million-op trace costs ~60 MB.  This module packs the same
information with ``struct``: a header, a communicator table, then one
fixed-width 40-byte record per op.  Files are 5-10x smaller and load
about an order of magnitude faster.

Layout (little-endian)::

    magic      8s   b"REPROTR1"
    header     JSON blob (length-prefixed u32): name, app, machine,
               ranks_per_node, flags, metadata, comm table
    nranks     u32
    per rank:  u32 op count, then op records
    op record: u8 kind, i32 peer, u64 nbytes, i32 tag, i32 comm,
               i32 req, f64 duration, f64 t_entry, f64 t_exit
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path
from typing import List, Union

from repro.trace.events import Op, OpKind
from repro.trace.trace import TraceSet

__all__ = ["write_trace_binary", "read_trace_binary", "MAGIC"]

MAGIC = b"REPROTR1"
# kind, peer, nbytes, tag, comm, req, duration, t_entry, t_exit
_OP = struct.Struct("<Biqiiiddd")
_U32 = struct.Struct("<I")


def _pack_header(trace: TraceSet) -> bytes:
    header = {
        "name": trace.name,
        "app": trace.app,
        "machine": trace.machine,
        "ranks_per_node": trace.ranks_per_node,
        "uses_comm_split": trace.uses_comm_split,
        "uses_threads": trace.uses_threads,
        "metadata": trace.metadata,
        "comms": {str(cid): list(members) for cid, members in trace.comms.items()},
    }
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    return _U32.pack(len(blob)) + blob


def dumps_binary(trace: TraceSet) -> bytes:
    """Serialize a trace to the binary format."""
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(_pack_header(trace))
    out.write(_U32.pack(trace.nranks))
    for stream in trace.ranks:
        out.write(_U32.pack(len(stream)))
        for op in stream:
            out.write(
                _OP.pack(
                    int(op.kind),
                    op.peer,
                    op.nbytes,
                    op.tag,
                    op.comm,
                    op.req,
                    op.duration,
                    op.t_entry,
                    op.t_exit,
                )
            )
    return out.getvalue()


def loads_binary(data: bytes) -> TraceSet:
    """Parse the binary format back into a :class:`TraceSet`."""
    view = memoryview(data)
    if bytes(view[: len(MAGIC)]) != MAGIC:
        raise ValueError("not a REPROTR1 binary trace")
    offset = len(MAGIC)
    (hlen,) = _U32.unpack_from(view, offset)
    offset += _U32.size
    header = json.loads(bytes(view[offset : offset + hlen]).decode("utf-8"))
    offset += hlen
    (nranks,) = _U32.unpack_from(view, offset)
    offset += _U32.size
    ranks: List[List[Op]] = []
    for _ in range(nranks):
        (nops,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        stream: List[Op] = []
        for _ in range(nops):
            kind, peer, nbytes, tag, comm, req, dur, entry, exit_ = _OP.unpack_from(
                view, offset
            )
            offset += _OP.size
            stream.append(
                Op(
                    OpKind(kind),
                    peer=peer,
                    nbytes=nbytes,
                    tag=tag,
                    comm=comm,
                    req=req,
                    duration=dur,
                    t_entry=entry,
                    t_exit=exit_,
                )
            )
        ranks.append(stream)
    return TraceSet(
        name=header["name"],
        app=header["app"],
        ranks=ranks,
        machine=header["machine"],
        ranks_per_node=header["ranks_per_node"],
        comms={int(cid): tuple(members) for cid, members in header["comms"].items()},
        uses_comm_split=header["uses_comm_split"],
        uses_threads=header["uses_threads"],
        metadata=header["metadata"],
    )


def write_trace_binary(trace: TraceSet, path: Union[str, Path]) -> Path:
    """Write ``trace`` in the binary format; returns the path."""
    path = Path(path)
    path.write_bytes(dumps_binary(trace))
    return path


def read_trace_binary(path: Union[str, Path]) -> TraceSet:
    """Read a trace written by :func:`write_trace_binary`."""
    return loads_binary(Path(path).read_bytes())
