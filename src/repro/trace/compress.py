"""ScalaTrace-style structural trace compression.

Iterative MPI applications repeat the same communication pattern every
timestep; ScalaTrace exploits this to store traces in near-constant
space.  This module does the structural part: per rank, consecutive
repeats of an op block are folded into ``(block, count)`` runs, with
request ids canonicalized inside each block (their absolute values
differ between iterations; their *wiring* does not).

Compression is lossy in timestamps (a compressed trace is a *program*,
not a measurement): decompression yields structurally identical op
streams with fresh request ids and unset timestamps, ready for the
ground-truth synthesizer or direct replay.

Only *request-closed* blocks — every nonblocking request is both opened
and waited inside the block — are eligible for folding, so decompressed
traces always validate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.events import Op, OpKind
from repro.trace.trace import TraceSet

__all__ = ["CompressedStream", "CompressedTrace", "compress_trace", "decompress_trace"]

#: Largest repeated-block length the encoder searches for.
MAX_BLOCK = 128


def _quantize(duration: float, quantum: float) -> float:
    if quantum <= 0:
        return duration
    return round(duration / quantum)


def _canonical(ops: Sequence[Op], quantum: float = 0.0) -> Tuple:
    """Structural signature with block-relative request numbering.

    ``quantum`` buckets computation durations so per-iteration timing
    jitter does not defeat structural matching (ScalaTrace's lossy-time
    mode); the stored block keeps the first iteration's durations.
    """
    req_map: Dict[int, int] = {}
    out = []
    for op in ops:
        if op.req >= 0:
            local = req_map.setdefault(op.req, len(req_map))
        else:
            local = -1
        out.append(
            (int(op.kind), op.peer, op.nbytes, op.tag, op.comm, local,
             _quantize(op.duration, quantum))
        )
    return tuple(out)


def _request_closed(ops: Sequence[Op]) -> bool:
    """True when every request opened in the block is waited inside it."""
    opened = set()
    waited = set()
    for op in ops:
        if op.kind in (OpKind.ISEND, OpKind.IRECV):
            opened.add(op.req)
        elif op.kind == OpKind.WAIT:
            waited.add(op.req)
    return opened == waited


@dataclass
class CompressedStream:
    """One rank's stream as (block, repeat count) runs."""

    runs: List[Tuple[List[Op], int]]

    def op_count(self) -> int:
        return sum(len(block) * count for block, count in self.runs)

    def stored_ops(self) -> int:
        return sum(len(block) for block, _ in self.runs)


@dataclass
class CompressedTrace:
    """A whole trace in compressed form plus its header fields."""

    name: str
    app: str
    machine: str
    ranks_per_node: int
    comms: Dict[int, Tuple[int, ...]]
    uses_comm_split: bool
    uses_threads: bool
    metadata: dict
    streams: List[CompressedStream]

    def op_count(self) -> int:
        return sum(stream.op_count() for stream in self.streams)

    def stored_ops(self) -> int:
        return sum(stream.stored_ops() for stream in self.streams)

    @property
    def compression_ratio(self) -> float:
        """Original ops over stored ops (>= 1)."""
        stored = self.stored_ops()
        return self.op_count() / stored if stored else 1.0


def _compress_stream(ops: Sequence[Op], max_block: int, quantum: float) -> CompressedStream:
    ops = list(ops)
    n = len(ops)
    # Cheap per-op keys for fast window prefiltering (ignores requests).
    keys = [
        (int(op.kind), op.peer, op.nbytes, op.tag, op.comm,
         _quantize(op.duration, quantum))
        for op in ops
    ]
    runs: List[Tuple[List[Op], int]] = []
    i = 0
    while i < n:
        best: Optional[Tuple[int, int]] = None
        best_saving = 0
        limit = min(max_block, (n - i) // 2)
        for w in range(1, limit + 1):
            if keys[i : i + w] != keys[i + w : i + 2 * w]:
                continue
            if not _request_closed(ops[i : i + w]):
                continue
            first = _canonical(ops[i : i + w], quantum)
            repeats = 1
            j = i + w
            while (
                j + w <= n
                and keys[j : j + w] == keys[i : i + w]
                and _canonical(ops[j : j + w], quantum) == first
            ):
                repeats += 1
                j += w
            if repeats > 1:
                saving = (repeats - 1) * w
                if saving > best_saving:
                    best_saving = saving
                    best = (w, repeats)
        if best is None:
            runs.append(([ops[i]], 1))
            i += 1
        else:
            w, repeats = best
            runs.append((list(ops[i : i + w]), repeats))
            i += w * repeats
    # Merge adjacent literal runs into one block for compactness.
    merged: List[Tuple[List[Op], int]] = []
    for block, count in runs:
        if count == 1 and merged and merged[-1][1] == 1:
            merged[-1][0].extend(block)
        else:
            merged.append((list(block), count))
    return CompressedStream(runs=merged)


def compress_trace(
    trace: TraceSet, max_block: int = MAX_BLOCK, duration_quantum: float = 0.0
) -> CompressedTrace:
    """Fold per-rank iteration structure into repeat runs.

    ``duration_quantum > 0`` enables lossy-time matching: computation
    durations within the same quantum bucket count as equal, and the
    folded block stores the first iteration's durations.
    """
    if max_block < 1:
        raise ValueError("max_block must be >= 1")
    if duration_quantum < 0:
        raise ValueError("duration_quantum must be >= 0")
    return CompressedTrace(
        name=trace.name,
        app=trace.app,
        machine=trace.machine,
        ranks_per_node=trace.ranks_per_node,
        comms=dict(trace.comms),
        uses_comm_split=trace.uses_comm_split,
        uses_threads=trace.uses_threads,
        metadata=dict(trace.metadata),
        streams=[
            _compress_stream(stream, max_block, duration_quantum)
            for stream in trace.ranks
        ],
    )


def _emit(op: Op, req: int) -> Op:
    return Op(
        op.kind,
        peer=op.peer,
        nbytes=op.nbytes,
        tag=op.tag,
        comm=op.comm,
        req=req,
        duration=op.duration,
    )


def decompress_trace(compressed: CompressedTrace) -> TraceSet:
    """Expand runs back into a full (unstamped) trace."""
    ranks: List[List[Op]] = []
    for stream in compressed.streams:
        next_req = 1
        literal_map: Dict[int, int] = {}
        ops: List[Op] = []
        for block, count in stream.runs:
            if count == 1:
                # Literal region: requests may span adjacent literal
                # blocks, so the remapping persists across them.
                for op in block:
                    req = op.req
                    if req >= 0:
                        if req not in literal_map:
                            literal_map[req] = next_req
                            next_req += 1
                        req = literal_map[req]
                    ops.append(_emit(op, req))
            else:
                # Folded block: request-closed by construction, so each
                # repetition gets its own fresh wiring.
                for _ in range(count):
                    block_map: Dict[int, int] = {}
                    for op in block:
                        req = op.req
                        if req >= 0:
                            if req not in block_map:
                                block_map[req] = next_req
                                next_req += 1
                            req = block_map[req]
                        ops.append(_emit(op, req))
        ranks.append(ops)
    return TraceSet(
        name=compressed.name,
        app=compressed.app,
        ranks=ranks,
        machine=compressed.machine,
        ranks_per_node=compressed.ranks_per_node,
        comms=dict(compressed.comms),
        uses_comm_split=compressed.uses_comm_split,
        uses_threads=compressed.uses_threads,
        metadata=dict(compressed.metadata),
    )
