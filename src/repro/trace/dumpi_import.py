"""Importer for ``dumpi2ascii`` text dumps.

Real DUMPI traces are binary, one file per rank; SST ships
``dumpi2ascii``, which renders each rank's stream as text records::

    MPI_Send entering at walltime 11534.21554, cputime 0.05960 ...
    int count=4096
    int dest=3
    int tag=7
    MPI_Send returning at walltime 11534.21580, cputime ...

This module parses that shape into a :class:`TraceSet`: one call per
``entering``/``returning`` pair, arguments from the indented attribute
lines, and the wall-time gaps between consecutive calls materialized as
COMPUTE ops — exactly the preprocessing MFACT and SST/Macro perform.

Supported calls: MPI_Send/Isend/Recv/Irecv/Wait/Waitall, MPI_Barrier,
MPI_Bcast, MPI_Reduce, MPI_Allreduce, MPI_Allgather, MPI_Alltoall,
MPI_Gather, MPI_Scatter, MPI_Init, MPI_Finalize.  Datatype sizes follow
the common MPI defaults (8 bytes unless a ``datatype`` hint is given).
Unknown calls are skipped with their wall time preserved as compute,
which is how trace replayers usually treat unmodeled calls.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.events import Op, OpKind
from repro.trace.trace import TraceSet

__all__ = ["parse_rank_stream", "import_dumpi_ascii", "DATATYPE_SIZES"]

#: Byte widths for the datatype names dumpi2ascii prints.
DATATYPE_SIZES: Dict[str, int] = {
    "MPI_CHAR": 1,
    "MPI_BYTE": 1,
    "MPI_SHORT": 2,
    "MPI_INT": 4,
    "MPI_FLOAT": 4,
    "MPI_LONG": 8,
    "MPI_DOUBLE": 8,
    "MPI_LONG_LONG": 8,
    "MPI_DOUBLE_COMPLEX": 16,
}
_DEFAULT_TYPE_SIZE = 8

_ENTER_RE = re.compile(r"^(MPI_\w+) entering at walltime ([0-9.eE+-]+)")
_RETURN_RE = re.compile(r"^(MPI_\w+) returning at walltime ([0-9.eE+-]+)")
_ATTR_RE = re.compile(r"^\s*(?:int|string)\s+(\w+)=(.+?)\s*$")

_P2P_SEND = {"MPI_Send": OpKind.SEND, "MPI_Isend": OpKind.ISEND}
_P2P_RECV = {"MPI_Recv": OpKind.RECV, "MPI_Irecv": OpKind.IRECV}
_COLLECTIVES = {
    "MPI_Barrier": OpKind.BARRIER,
    "MPI_Bcast": OpKind.BCAST,
    "MPI_Reduce": OpKind.REDUCE,
    "MPI_Allreduce": OpKind.ALLREDUCE,
    "MPI_Allgather": OpKind.ALLGATHER,
    "MPI_Alltoall": OpKind.ALLTOALL,
    "MPI_Gather": OpKind.GATHER,
    "MPI_Scatter": OpKind.SCATTER,
}
_IGNORED = {"MPI_Init", "MPI_Finalize", "MPI_Comm_rank", "MPI_Comm_size", "MPI_Wtime"}


def _type_size(attrs: Dict[str, str]) -> int:
    # dumpi2ascii prints "datatype=1 (MPI_DOUBLE)": take the symbolic name.
    value = attrs.get("datatype", "")
    match = re.search(r"(MPI_\w+)", value)
    name = match.group(1) if match else value.strip()
    return DATATYPE_SIZES.get(name, _DEFAULT_TYPE_SIZE)


def _payload(attrs: Dict[str, str]) -> int:
    count = int(attrs.get("count", attrs.get("sendcount", "0")))
    return max(0, count) * _type_size(attrs)


def parse_rank_stream(text: str) -> List[Op]:
    """Parse one rank's dumpi2ascii dump into an op stream.

    Gaps between a call's return and the next call's entry become
    COMPUTE ops; each call's measured entry/exit walltimes are stamped
    on the op.
    """
    ops: List[Op] = []
    lines = text.splitlines()
    i = 0
    prev_exit: Optional[float] = None
    base: Optional[float] = None
    next_req = 1
    open_requests: List[int] = []  # issue order, consumed by Wait/Waitall
    while i < len(lines):
        enter = _ENTER_RE.match(lines[i])
        if not enter:
            i += 1
            continue
        call, t_entry = enter.group(1), float(enter.group(2))
        attrs: Dict[str, str] = {}
        i += 1
        t_exit = t_entry
        while i < len(lines):
            ret = _RETURN_RE.match(lines[i])
            if ret:
                if ret.group(1) == call:
                    t_exit = float(ret.group(2))
                    i += 1
                    break
            attr = _ATTR_RE.match(lines[i])
            if attr:
                attrs[attr.group(1)] = attr.group(2)
            i += 1
        if base is None:
            base = t_entry
        entry_rel, exit_rel = t_entry - base, t_exit - base
        if prev_exit is not None and entry_rel > prev_exit + 1e-12:
            gap = entry_rel - prev_exit
            ops.append(
                Op(OpKind.COMPUTE, duration=gap, t_entry=prev_exit, t_exit=entry_rel)
            )
        prev_exit = exit_rel
        if call in _IGNORED:
            continue
        if call in _P2P_SEND:
            kind = _P2P_SEND[call]
            req = -1
            if kind == OpKind.ISEND:
                req = next_req
                next_req += 1
                open_requests.append(req)
            ops.append(
                Op(
                    kind,
                    peer=int(attrs.get("dest", attrs.get("dst", "0"))),
                    nbytes=_payload(attrs),
                    tag=int(attrs.get("tag", "0")),
                    req=req,
                    t_entry=entry_rel,
                    t_exit=exit_rel,
                )
            )
        elif call in _P2P_RECV:
            kind = _P2P_RECV[call]
            req = -1
            if kind == OpKind.IRECV:
                req = next_req
                next_req += 1
                open_requests.append(req)
            ops.append(
                Op(
                    kind,
                    peer=int(attrs.get("source", attrs.get("src", "0"))),
                    nbytes=_payload(attrs),
                    tag=int(attrs.get("tag", "0")),
                    req=req,
                    t_entry=entry_rel,
                    t_exit=exit_rel,
                )
            )
        elif call == "MPI_Wait":
            if open_requests:
                ops.append(
                    Op(OpKind.WAIT, req=open_requests.pop(0),
                       t_entry=entry_rel, t_exit=exit_rel)
                )
        elif call == "MPI_Waitall":
            count = int(attrs.get("count", str(len(open_requests))))
            for _ in range(min(count, len(open_requests))):
                ops.append(
                    Op(OpKind.WAIT, req=open_requests.pop(0),
                       t_entry=entry_rel, t_exit=exit_rel)
                )
        elif call in _COLLECTIVES:
            kind = _COLLECTIVES[call]
            root = int(attrs.get("root", "0")) if kind in (
                OpKind.BCAST, OpKind.REDUCE, OpKind.GATHER, OpKind.SCATTER
            ) else -1
            ops.append(
                Op(
                    kind,
                    peer=root,
                    nbytes=_payload(attrs),
                    t_entry=entry_rel,
                    t_exit=exit_rel,
                )
            )
        else:
            # Unknown MPI call: keep its wall time as computation.
            ops.append(
                Op(OpKind.COMPUTE, duration=max(0.0, exit_rel - entry_rel),
                   t_entry=entry_rel, t_exit=exit_rel)
            )
    return ops


def import_dumpi_ascii(
    rank_texts: Sequence[str],
    name: str = "imported",
    app: str = "unknown",
    machine: str = "unknown",
    ranks_per_node: int = 16,
    validate: bool = True,
) -> TraceSet:
    """Build a trace from per-rank dumpi2ascii dumps (rank order).

    ``rank_texts[i]`` is the text dump of rank ``i``.  Paths are also
    accepted and read from disk.
    """
    streams: List[List[Op]] = []
    for item in rank_texts:
        if isinstance(item, (str, Path)) and "\n" not in str(item) and Path(str(item)).exists():
            text = Path(str(item)).read_text()
        else:
            text = str(item)
        streams.append(parse_rank_stream(text))
    trace = TraceSet(
        name=name,
        app=app,
        ranks=streams,
        machine=machine,
        ranks_per_node=ranks_per_node,
    )
    if validate:
        trace.validate()
    return trace
