"""ASCII timeline rendering for stamped traces.

A lightweight Gantt view for terminals and logs: each rank becomes one
row of fixed-width cells, each cell showing what dominated that time
slice — computation, point-to-point, collective, or idle.  Useful for
eyeballing load imbalance and synchronization structure without any
plotting dependency.

::

    rank  0 ######--####C-####C-##
    rank  1 ####--##--##C-##--##C-
            0.0ms                21.4ms
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.trace.events import OpKind
from repro.trace.trace import TraceSet
from repro.util.units import format_time

__all__ = ["render_timeline", "CELL_SYMBOLS"]

#: Cell glyphs by activity class (idle wins only when nothing else ran).
CELL_SYMBOLS = {
    "compute": "#",
    "p2p": "-",
    "collective": "C",
    "idle": ".",
}

_P2P = {OpKind.SEND, OpKind.ISEND, OpKind.RECV, OpKind.IRECV, OpKind.WAIT}


def _classify(op) -> str:
    if op.kind == OpKind.COMPUTE:
        return "compute"
    if op.kind in _P2P:
        return "p2p"
    return "collective"


def render_timeline(
    trace: TraceSet,
    width: int = 72,
    ranks: Optional[Sequence[int]] = None,
    t_start: float = 0.0,
    t_end: Optional[float] = None,
) -> str:
    """Render the stamped trace as one text row per rank.

    Each cell covers ``(t_end - t_start) / width`` seconds and shows the
    activity with the most time in that slice.  ``ranks`` selects a
    subset (default: all, capped at 32 rows with head/tail elision).
    """
    if width < 8:
        raise ValueError("width must be >= 8")
    if not trace.has_timestamps():
        raise ValueError("trace is unstamped; run the ground-truth synthesizer first")
    total = trace.measured_total_time()
    t_end = total if t_end is None else t_end
    if not t_end > t_start:
        raise ValueError("t_end must exceed t_start")
    span = t_end - t_start
    cell = span / width
    if ranks is None:
        if trace.nranks <= 32:
            ranks = list(range(trace.nranks))
        else:
            ranks = list(range(16)) + list(range(trace.nranks - 16, trace.nranks))
    lines: List[str] = []
    elided = trace.nranks > len(ranks)
    previous = None
    for rank in ranks:
        if previous is not None and rank != previous + 1 and elided:
            lines.append("  ...")
        previous = rank
        buckets: List[Dict[str, float]] = [dict() for _ in range(width)]
        for op in trace.ranks[rank]:
            lo, hi = op.t_entry, op.t_exit
            if hi <= t_start or lo >= t_end or hi <= lo:
                continue
            kind = _classify(op)
            first = max(0, int((lo - t_start) / cell))
            last = min(width - 1, int((hi - t_start) / cell))
            for c in range(first, last + 1):
                cell_lo = t_start + c * cell
                cell_hi = cell_lo + cell
                overlap = min(hi, cell_hi) - max(lo, cell_lo)
                if overlap > 0:
                    buckets[c][kind] = buckets[c].get(kind, 0.0) + overlap
        row = []
        for bucket in buckets:
            if not bucket:
                row.append(CELL_SYMBOLS["idle"])
            else:
                row.append(CELL_SYMBOLS[max(bucket, key=bucket.get)])
        lines.append(f"rank {rank:4d} " + "".join(row))
    footer_pad = " " * 10
    left = format_time(t_start)
    right = format_time(t_end)
    gap = max(1, width - len(left) - len(right))
    lines.append(footer_pad + left + " " * gap + right)
    legend = "  ".join(f"{sym}={name}" for name, sym in CELL_SYMBOLS.items())
    lines.append(footer_pad + legend)
    return "\n".join(lines)
