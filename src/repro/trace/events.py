"""MPI trace event model.

A trace is a per-rank, program-ordered sequence of :class:`Op` records,
mirroring what the DUMPI tracer captures: for every MPI call its entry
and exit timestamps plus communication metadata (peer, byte count, tag,
communicator), and for the gaps between MPI calls the local computation
time.  We materialize computation explicitly as ``COMPUTE`` ops so that
replay engines never need to reconstruct inter-call gaps.

Timestamps (``t_entry``/``t_exit``) hold the *measured* execution times
from the (synthesized) original run; replay engines read only the op
structure and compute durations, exactly as MFACT and SST/Macro replay
DUMPI traces.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterable, Optional, Tuple

__all__ = ["OpKind", "Op", "P2P_KINDS", "COLLECTIVE_KINDS", "make_compute"]


class OpKind(IntEnum):
    """MPI operation kinds recorded in traces."""

    COMPUTE = 0
    SEND = 1  # blocking MPI_Send
    ISEND = 2  # MPI_Isend
    RECV = 3  # blocking MPI_Recv
    IRECV = 4  # MPI_Irecv
    WAIT = 5  # MPI_Wait on an earlier request
    BARRIER = 6
    BCAST = 7
    REDUCE = 8
    ALLREDUCE = 9
    ALLGATHER = 10
    ALLTOALL = 11
    GATHER = 12
    SCATTER = 13
    REDUCE_SCATTER = 14


#: Point-to-point op kinds (initiation side).
P2P_KINDS = frozenset(
    {OpKind.SEND, OpKind.ISEND, OpKind.RECV, OpKind.IRECV}
)

#: Collective op kinds.
COLLECTIVE_KINDS = frozenset(
    {
        OpKind.BARRIER,
        OpKind.BCAST,
        OpKind.REDUCE,
        OpKind.ALLREDUCE,
        OpKind.ALLGATHER,
        OpKind.ALLTOALL,
        OpKind.GATHER,
        OpKind.SCATTER,
        OpKind.REDUCE_SCATTER,
    }
)

_ROOTED = frozenset({OpKind.BCAST, OpKind.REDUCE, OpKind.GATHER, OpKind.SCATTER})


class Op:
    """One trace record.

    Attributes
    ----------
    kind:
        The :class:`OpKind`.
    peer:
        Destination/source rank for p2p ops; root rank for rooted
        collectives; ``-1`` otherwise.
    nbytes:
        Message payload for p2p ops; per-rank payload for collectives.
    tag:
        MPI tag for p2p ops (``0`` otherwise).
    comm:
        Communicator id; ``0`` is ``MPI_COMM_WORLD``.
    req:
        Request id for ISEND/IRECV (unique per rank) and the request a
        WAIT completes; ``-1`` otherwise.
    duration:
        For COMPUTE ops, the local computation time in seconds as
        measured in the original run (replay engines may scale it).
    t_entry, t_exit:
        Measured wall-clock entry/exit times of the call in the original
        run, in seconds from application start (``nan`` until the
        ground-truth synthesizer fills them in).
    """

    __slots__ = ("kind", "peer", "nbytes", "tag", "comm", "req", "duration", "t_entry", "t_exit")

    def __init__(
        self,
        kind: OpKind,
        peer: int = -1,
        nbytes: int = 0,
        tag: int = 0,
        comm: int = 0,
        req: int = -1,
        duration: float = 0.0,
        t_entry: float = float("nan"),
        t_exit: float = float("nan"),
    ):
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        if kind in P2P_KINDS and peer < 0:
            raise ValueError(f"{OpKind(kind).name} requires a peer rank")
        if kind in _ROOTED and peer < 0:
            raise ValueError(f"{OpKind(kind).name} requires a root rank in peer")
        if kind in (OpKind.ISEND, OpKind.IRECV, OpKind.WAIT) and req < 0:
            raise ValueError(f"{OpKind(kind).name} requires a request id")
        self.kind = OpKind(kind)
        self.peer = int(peer)
        self.nbytes = int(nbytes)
        self.tag = int(tag)
        self.comm = int(comm)
        self.req = int(req)
        self.duration = float(duration)
        self.t_entry = float(t_entry)
        self.t_exit = float(t_exit)

    # -- convenience -------------------------------------------------

    @property
    def is_p2p(self) -> bool:
        """True for point-to-point initiation ops."""
        return self.kind in P2P_KINDS

    @property
    def is_collective(self) -> bool:
        """True for collective ops."""
        return self.kind in COLLECTIVE_KINDS

    @property
    def is_send_like(self) -> bool:
        """True for SEND and ISEND."""
        return self.kind in (OpKind.SEND, OpKind.ISEND)

    @property
    def is_recv_like(self) -> bool:
        """True for RECV and IRECV."""
        return self.kind in (OpKind.RECV, OpKind.IRECV)

    @property
    def measured_duration(self) -> float:
        """Measured call duration ``t_exit - t_entry`` (nan if unset)."""
        return self.t_exit - self.t_entry

    def key(self) -> Tuple:
        """Structural identity tuple (ignores timestamps)."""
        return (int(self.kind), self.peer, self.nbytes, self.tag, self.comm, self.req, self.duration)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Op):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        parts = [self.kind.name]
        if self.kind == OpKind.COMPUTE:
            parts.append(f"duration={self.duration:.3g}")
        else:
            if self.peer >= 0:
                parts.append(f"peer={self.peer}")
            if self.nbytes:
                parts.append(f"nbytes={self.nbytes}")
            if self.req >= 0:
                parts.append(f"req={self.req}")
            if self.comm:
                parts.append(f"comm={self.comm}")
        return f"Op({', '.join(parts)})"


def make_compute(duration: float) -> Op:
    """Shorthand for a computation segment of ``duration`` seconds."""
    return Op(OpKind.COMPUTE, duration=duration)


def total_payload(ops: Iterable[Op]) -> int:
    """Sum of payload bytes over send-like and collective ops."""
    return sum(op.nbytes for op in ops if op.is_send_like or op.is_collective)
