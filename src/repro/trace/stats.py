"""Corpus summary statistics (Table I).

Bins a collection of traces by rank count and by measured communication
intensity using exactly the bin edges of Table Ia and Table Ib.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.trace.trace import TraceSet

__all__ = ["RANK_BINS", "COMM_BINS", "rank_histogram", "comm_histogram", "summarize_corpus"]

#: Table Ia bins: inclusive (low, high) rank ranges.
RANK_BINS: List[Tuple[int, int]] = [
    (64, 64),
    (65, 128),
    (129, 256),
    (257, 512),
    (513, 1024),
    (1025, 1728),
]

#: Table Ib bins: (low, high] percentage of time in communication.
COMM_BINS: List[Tuple[float, float]] = [
    (0.0, 5.0),
    (5.0, 10.0),
    (10.0, 20.0),
    (20.0, 40.0),
    (40.0, 60.0),
    (60.0, 100.0),
]


def _rank_label(lo: int, hi: int) -> str:
    return str(lo) if lo == hi else f"{lo}-{hi}"


def _comm_label(lo: float, hi: float) -> str:
    if lo == 0.0:
        return f"<={hi:g}"
    if hi >= 100.0:
        return f">{lo:g}"
    return f"{lo:g}-{hi:g}"


def rank_histogram(traces: Iterable[TraceSet]) -> Dict[str, int]:
    """Count traces per Table Ia rank bin; labels match the paper's rows."""
    counts = {_rank_label(lo, hi): 0 for lo, hi in RANK_BINS}
    for trace in traces:
        for lo, hi in RANK_BINS:
            if lo <= trace.nranks <= hi:
                counts[_rank_label(lo, hi)] += 1
                break
        else:
            raise ValueError(f"trace {trace.name!r} has {trace.nranks} ranks, outside Table I bins")
    return counts


def comm_histogram(traces: Iterable[TraceSet]) -> Dict[str, int]:
    """Count traces per Table Ib communication-intensity bin."""
    counts = {_comm_label(lo, hi): 0 for lo, hi in COMM_BINS}
    for trace in traces:
        pct = 100.0 * trace.comm_fraction()
        for lo, hi in COMM_BINS:
            if lo < pct <= hi or (lo == 0.0 and pct <= hi):
                counts[_comm_label(lo, hi)] += 1
                break
        else:
            raise ValueError(f"trace {trace.name!r} has comm fraction {pct:.1f}% outside bins")
    return counts


def summarize_corpus(traces: Iterable[TraceSet]) -> Dict[str, Dict[str, int]]:
    """Both Table I panels plus the total, as nested dicts."""
    traces = list(traces)
    return {
        "ranks": rank_histogram(traces),
        "comm_time_pct": comm_histogram(traces),
        "total": {"traces": len(traces)},
    }
