"""DUMPI-like ASCII trace serialization.

Real DUMPI traces are binary, one file per rank, recording entry/exit
times and call metadata for each MPI call.  We keep the same information
content in a single line-oriented ASCII file per :class:`TraceSet`:
a header block followed by one section per rank with one line per op
(kind, peer, nbytes, tag, comm, req, duration, entry, exit).  The format
round-trips exactly (timestamps are stored as hex floats).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.trace.events import Op, OpKind
from repro.trace.trace import TraceSet

__all__ = ["write_trace", "read_trace", "dumps", "loads", "FORMAT_MAGIC"]

FORMAT_MAGIC = "#DUMPI-LIKE 1"


def _float_repr(x: float) -> str:
    # Hex floats round-trip exactly, including nan for unstamped traces.
    if x != x:
        return "nan"
    return x.hex()


def _float_parse(s: str) -> float:
    if s == "nan":
        return float("nan")
    return float.fromhex(s)


def dumps(trace: TraceSet) -> str:
    """Serialize a :class:`TraceSet` to the ASCII format."""
    lines: List[str] = [FORMAT_MAGIC]
    lines.append(f"name {trace.name}")
    lines.append(f"app {trace.app}")
    lines.append(f"machine {trace.machine}")
    lines.append(f"nranks {trace.nranks}")
    lines.append(f"ranks_per_node {trace.ranks_per_node}")
    lines.append(f"flags comm_split={int(trace.uses_comm_split)} threads={int(trace.uses_threads)}")
    lines.append("meta " + json.dumps(trace.metadata, sort_keys=True))
    for comm_id in sorted(trace.comms):
        members = " ".join(str(r) for r in trace.comms[comm_id])
        lines.append(f"comm {comm_id} {members}")
    for rank, stream in enumerate(trace.ranks):
        lines.append(f"rank {rank} {len(stream)}")
        for op in stream:
            lines.append(
                f"{int(op.kind)} {op.peer} {op.nbytes} {op.tag} {op.comm} {op.req} "
                f"{_float_repr(op.duration)} {_float_repr(op.t_entry)} {_float_repr(op.t_exit)}"
            )
    lines.append("")
    return "\n".join(lines)


def loads(text: str) -> TraceSet:
    """Parse the ASCII format back into a :class:`TraceSet`."""
    lines = text.splitlines()
    if not lines or lines[0] != FORMAT_MAGIC:
        raise ValueError(f"not a {FORMAT_MAGIC} trace")
    header = {}
    comms = {}
    idx = 1

    def take(prefix: str) -> str:
        nonlocal idx
        line = lines[idx]
        if not line.startswith(prefix + " "):
            raise ValueError(f"expected {prefix!r} at line {idx + 1}, got {line!r}")
        idx += 1
        return line[len(prefix) + 1 :]

    header["name"] = take("name")
    header["app"] = take("app")
    header["machine"] = take("machine")
    nranks = int(take("nranks"))
    ranks_per_node = int(take("ranks_per_node"))
    flag_text = take("flags")
    flags = dict(item.split("=", 1) for item in flag_text.split())
    metadata = json.loads(take("meta"))
    while idx < len(lines) and lines[idx].startswith("comm "):
        parts = lines[idx].split()
        comms[int(parts[1])] = tuple(int(p) for p in parts[2:])
        idx += 1
    ranks: List[List[Op]] = []
    for rank in range(nranks):
        fields = take("rank").split()
        if int(fields[0]) != rank:
            raise ValueError(f"rank section out of order at line {idx}")
        nops = int(fields[1])
        stream: List[Op] = []
        for _ in range(nops):
            parts = lines[idx].split()
            idx += 1
            stream.append(
                Op(
                    OpKind(int(parts[0])),
                    peer=int(parts[1]),
                    nbytes=int(parts[2]),
                    tag=int(parts[3]),
                    comm=int(parts[4]),
                    req=int(parts[5]),
                    duration=_float_parse(parts[6]),
                    t_entry=_float_parse(parts[7]),
                    t_exit=_float_parse(parts[8]),
                )
            )
        ranks.append(stream)
    return TraceSet(
        name=header["name"],
        app=header["app"],
        ranks=ranks,
        machine=header["machine"],
        ranks_per_node=ranks_per_node,
        comms=comms,
        uses_comm_split=bool(int(flags.get("comm_split", "0"))),
        uses_threads=bool(int(flags.get("threads", "0"))),
        metadata=metadata,
    )


def write_trace(trace: TraceSet, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(dumps(trace))
    return path


def read_trace(path: Union[str, Path]) -> TraceSet:
    """Read a trace written by :func:`write_trace`."""
    return loads(Path(path).read_text())
